"""Tests for the tier stack (repro.cache.tiers) and ring (repro.cache.ring).

The contracts that make tiering safe:

* what moves between tiers is the wrapped entry blob — promotion and
  replication never re-serialise, so a payload read out of any tier is
  identical to what the disk tier would have returned;
* a corrupted entry in any tier degrades to a miss on that tier (counted
  in its degradations), falls through to the tier below, and the
  promotion on the way back self-heals the corrupted slot;
* every instance of the ring computes the same owner for the same key,
  and membership changes remap only a minority of the keyspace.
"""

from __future__ import annotations

import hashlib
import pickle

import pytest

from repro import faults
from repro.cache import keys as cache_keys
from repro.cache.ring import DEFAULT_REPLICAS, HashRing, normalize_node
from repro.cache.store import DiscoveryCache
from repro.cache.tiers import (
    DiskTier,
    MemoryTier,
    PeerTier,
    TieredCache,
    build_worker_cache,
)
from repro.faults import FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy

KEY = "ab" * 32
OTHER = "cd" * 32


def wrap(key: str, payload, version: int = cache_keys.SCHEMA_VERSION) -> bytes:
    """A wrapped entry blob exactly as the disk store writes it."""
    return pickle.dumps(
        {"schema": version, "key": key, "payload": payload},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def plan(*specs: FaultSpec, seed: int = 0) -> FaultPlan:
    return FaultPlan(list(specs), seed=seed)


def synthetic_keys(n: int) -> list[str]:
    return [hashlib.sha256(f"key-{i}".encode()).hexdigest() for i in range(n)]


# ---------------------------------------------------------------------- #
# ring                                                                    #
# ---------------------------------------------------------------------- #


class TestNormalizeNode:
    def test_canonical_form(self):
        assert normalize_node("HTTP://Host:8734/") == "http://host:8734"
        assert normalize_node("host:8734") == "http://host:8734"
        assert normalize_node("  http://a:1  ") == "http://a:1"
        # path survives (minus the trailing slash), query/fragment do not
        assert normalize_node("http://a:1/base/") == "http://a:1/base"

    def test_unusable_urls_raise(self):
        with pytest.raises(ValueError):
            normalize_node("")
        with pytest.raises(ValueError):
            normalize_node("http://")


class TestHashRing:
    def test_every_instance_routes_identically(self):
        urls = ["http://a:1", "http://b:2", "http://c:3"]
        rings = [HashRing(me, [u for u in urls if u != me]) for me in urls]
        for key in synthetic_keys(50):
            owners = {ring.owner(key) for ring in rings}
            assert len(owners) == 1

    def test_cosmetic_url_differences_do_not_split_the_ring(self):
        a = HashRing("http://a:1", ["HTTP://B:2/"])
        b = HashRing("b:2", ["http://a:1"])
        for key in synthetic_keys(20):
            assert a.owner(key) == b.owner(key)

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing("http://a:1", ["http://b:2", "http://c:3"])
        counts = {node: 0 for node in ring.nodes}
        n = 1500
        for key in synthetic_keys(n):
            counts[ring.owner(key)] += 1
        # 64 vnodes per member: no member should be starved or dominant.
        for node, count in counts.items():
            assert count / n > 0.15, (node, counts)

    def test_preference_is_distinct_and_owner_first(self):
        ring = HashRing("http://a:1", ["http://b:2", "http://c:3"])
        pref = ring.preference(KEY)
        assert len(pref) == len(set(pref)) == 3
        assert pref[0] == ring.owner(KEY)
        assert ring.preference(KEY, count=2) == pref[:2]

    def test_peer_target_excludes_self(self):
        urls = ["http://a:1", "http://b:2"]
        for me in urls:
            ring = HashRing(me, [u for u in urls if u != me])
            for key in synthetic_keys(20):
                target = ring.peer_target(key)
                assert target is not None and target != ring.self_node

    def test_single_member_ring_has_no_peer_target(self):
        ring = HashRing("http://only:1")
        assert ring.owner(KEY) == "http://only:1"
        assert ring.is_owner(KEY)
        assert ring.peer_target(KEY) is None

    def test_membership_change_remaps_a_minority(self):
        before = HashRing("http://a:1", ["http://b:2"])
        after = HashRing("http://a:1", ["http://b:2", "http://c:3"])
        keys = synthetic_keys(600)
        moved = sum(1 for k in keys if before.owner(k) != after.owner(k))
        # Growing 2 -> 3 members should move ~1/3 of the keyspace, and
        # every moved key must land on the new member.
        assert 0 < moved < len(keys) * 0.55
        for k in keys:
            if before.owner(k) != after.owner(k):
                assert after.owner(k) == "http://c:3"

    def test_bad_replicas_raise(self):
        with pytest.raises(ValueError):
            HashRing("http://a:1", replicas=0)
        assert DEFAULT_REPLICAS >= 16  # enough vnodes to balance a pair


# ---------------------------------------------------------------------- #
# memory tier                                                             #
# ---------------------------------------------------------------------- #


class TestMemoryTier:
    def test_roundtrip_and_lru_eviction(self):
        blob = wrap(KEY, {"x": 1})
        tier = MemoryTier(max_bytes=len(blob) * 2 + 1)
        assert tier.put_blob(KEY, blob)
        got = tier.fetch(KEY)
        assert got is not None and got[0] == blob and got[1] == {"x": 1}
        assert tier.hits == 1 and tier.current_bytes == len(blob)
        # Two more entries of the same size: the budget holds two, so
        # the least recently used entry goes.
        tier.put_blob(OTHER, wrap(OTHER, {"x": 2}))
        tier.fetch(KEY)  # refresh KEY's recency: OTHER is now the LRU
        third = "ef" * 32
        tier.put_blob(third, wrap(third, {"x": 3}))
        assert len(tier) == 2
        assert tier.fetch(OTHER) is None  # the LRU victim
        assert tier.fetch(KEY) is not None and tier.fetch(third) is not None

    def test_oversize_blob_is_rejected(self):
        tier = MemoryTier(max_bytes=8)
        assert not tier.put_blob(KEY, wrap(KEY, list(range(100))))
        assert len(tier) == 0 and tier.stores == 0

    def test_wrong_address_degrades_to_miss_and_evicts(self):
        tier = MemoryTier()
        tier.put_blob(KEY, wrap(OTHER, {"x": 1}))  # blob addressed elsewhere
        assert tier.fetch(KEY) is None
        assert tier.degradations["corrupt_entry"] == 1
        assert len(tier) == 0  # self-healed: the slot is gone

    def test_injected_corruption_degrades_and_heals(self):
        tier = MemoryTier()
        tier.put_blob(KEY, wrap(KEY, {"x": 1}))
        with faults.injected(plan(FaultSpec("tier.memory", "corrupt", label=KEY))):
            assert tier.fetch(KEY) is None
            assert tier.degradations["corrupt_entry"] == 1
            assert len(tier) == 0
            # Re-landed (as promotion would) the entry serves again: the
            # spec fired on occurrence 0 only.
            tier.put_blob(KEY, wrap(KEY, {"x": 1}))
            assert tier.fetch(KEY) is not None

    def test_injected_io_error_is_a_read_error(self):
        tier = MemoryTier()
        tier.put_blob(KEY, wrap(KEY, {"x": 1}))
        with faults.injected(plan(FaultSpec("tier.memory", "io_error", label=KEY))):
            assert tier.fetch(KEY) is None
        assert tier.degradations["read_error"] == 1
        assert tier.fetch(KEY) is not None  # the entry itself is intact


# ---------------------------------------------------------------------- #
# the composed stack                                                      #
# ---------------------------------------------------------------------- #


def stack(tmp_path, **kw) -> TieredCache:
    return TieredCache(
        [MemoryTier(), DiskTier(DiscoveryCache(tmp_path / "store"))], **kw
    )


class TestTieredCache:
    def test_write_through_lands_everywhere_and_memory_serves(self, tmp_path):
        cache = stack(tmp_path)
        assert cache.put(KEY, {"x": 1})
        stats = cache.tier_stats()
        assert stats["memory"]["stores"] == 1 and stats["disk"]["stores"] == 1
        assert cache.get(KEY) == {"x": 1}
        stats = cache.tier_stats()
        assert stats["memory"]["hits"] == 1 and stats["disk"]["hits"] == 0

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        stack(tmp_path).put(KEY, {"x": 1})
        fresh = stack(tmp_path)  # new process: cold memory, warm disk
        assert fresh.get(KEY) == {"x": 1}
        stats = fresh.tier_stats()
        assert stats["memory"]["misses"] == 1 and stats["disk"]["hits"] == 1
        assert fresh.get(KEY) == {"x": 1}
        assert fresh.tier_stats()["memory"]["hits"] == 1  # promoted

    def test_promoted_blob_is_the_disk_blob_byte_for_byte(self, tmp_path):
        cache = stack(tmp_path)
        cache.put(KEY, {"x": 1})
        disk_blob = cache.store._read_validated(KEY)[0]
        fresh = stack(tmp_path)
        assert fresh.get_blob(KEY) == disk_blob  # served off disk
        assert fresh.get_blob(KEY) == disk_blob  # served from memory

    def test_corrupt_memory_falls_through_to_disk_and_self_heals(self, tmp_path):
        cache = stack(tmp_path)
        cache.put(KEY, {"x": 1})
        with faults.injected(plan(FaultSpec("tier.memory", "corrupt", label=KEY))):
            assert cache.get(KEY) == {"x": 1}  # disk carried the read
            stats = cache.tier_stats()
            assert stats["memory"]["degradations"]["corrupt_entry"] == 1
            assert stats["disk"]["hits"] == 1
            assert cache.degradations["corrupt_entry"] == 1  # aggregate view
            # promotion re-landed the blob: memory serves again
            assert cache.get(KEY) == {"x": 1}
            assert cache.tier_stats()["memory"]["hits"] == 1
        assert cache.misses == 0  # never a full miss

    def test_corrupt_disk_entry_is_a_counted_full_miss(self, tmp_path):
        cache = stack(tmp_path)
        cache.put(KEY, {"x": 1})
        blob_path = next(p for p in cache.root.rglob("*") if p.is_file())
        blob_path.write_bytes(b"rotted")
        fresh = stack(tmp_path)  # cold memory, rotted disk, no peers
        assert fresh.get(KEY) is None
        assert fresh.tier_stats()["disk"]["degradations"]["corrupt_entry"] == 1
        assert fresh.misses == 1

    def test_peer_false_skips_the_peer_tier(self, tmp_path):
        cache = stack(tmp_path)
        ring = HashRing("http://self:1", ["http://127.0.0.1:1"])
        peer = PeerTier(ring, retry=RetryPolicy(attempts=1, base_delay=0.001,
                                                max_delay=0.01), timeout=0.2)
        cache.add_tier(peer)
        assert cache.get(KEY, peer=False) is None
        assert peer.misses == 0  # never consulted
        assert cache.get_blob(KEY, peer=False) is None
        assert peer.misses == 0

    def test_garbage_blob_never_lands_on_disk(self, tmp_path):
        cache = stack(tmp_path)
        assert not cache.store.put_blob(KEY, b"not a wrapped entry")
        assert cache.store.degradations["corrupt_entry"] == 1
        assert cache.store.entry_count() == 0

    def test_write_back_buffers_serve_and_flush(self, tmp_path):
        cache = TieredCache(
            [DiskTier(DiscoveryCache(tmp_path / "store"))],
            policy={"disk": "back"},
            write_back_max=10,
        )
        cache.put(KEY, {"x": 1})
        assert cache.pending_writes() == 1
        assert cache.store.entry_count() == 0  # nothing durable yet
        assert cache.get(KEY) == {"x": 1}  # the backlog still answers
        assert cache.flush() == 1
        assert cache.pending_writes() == 0
        assert cache.store.entry_count() == 1
        assert cache.get(KEY) == {"x": 1}

    def test_write_back_auto_flushes_at_the_watermark(self, tmp_path):
        cache = TieredCache(
            [DiskTier(DiscoveryCache(tmp_path / "store"))],
            policy={"disk": "back"},
            write_back_max=2,
        )
        cache.put(KEY, {"x": 1})
        assert cache.store.entry_count() == 0
        cache.put(OTHER, {"x": 2})
        assert cache.pending_writes() == 0  # watermark hit: drained
        assert cache.store.entry_count() == 2

    def test_write_off_tier_still_heals_via_promotion(self, tmp_path):
        cache = stack(tmp_path, policy={"memory": "off"})
        cache.put(KEY, {"x": 1})
        assert cache.tier_stats()["memory"]["stores"] == 0  # write skipped
        assert cache.get(KEY) == {"x": 1}  # disk hit...
        assert cache.tier_stats()["memory"]["stores"] == 1  # ...promotes anyway

    def test_unknown_write_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown write mode"):
            stack(tmp_path, policy={"memory": "sideways"})

    def test_disk_tier_is_mandatory(self):
        with pytest.raises(ValueError, match="DiskTier"):
            TieredCache([MemoryTier()])

    def test_counters_are_a_drop_in_for_the_bare_store(self, tmp_path):
        cache = stack(tmp_path)
        cache.put(KEY, {"x": 1})
        cache.get(KEY)
        cache.get(OTHER)
        assert cache.hits == 1
        assert cache.misses == 1  # OTHER missed everywhere; the memory
        assert cache.stores == 1  # miss on KEY's read is not aggregate
        assert set(cache.degradations) >= {"read_error", "corrupt_entry"}


# ---------------------------------------------------------------------- #
# peer tier (no live peer: transport failures and the breaker)            #
# ---------------------------------------------------------------------- #


class TestPeerTier:
    def _tier(self, threshold=2) -> PeerTier:
        # 127.0.0.1:1 refuses connections immediately — a dead peer
        # without needing a socket fixture.
        ring = HashRing("http://self:1", ["http://127.0.0.1:1"])
        return PeerTier(
            ring,
            retry=RetryPolicy(attempts=1, base_delay=0.001, max_delay=0.01),
            timeout=0.2,
            breaker_threshold=threshold,
            breaker_cooldown=60.0,
        )

    def test_candidates_exclude_self(self):
        tier = self._tier()
        assert tier.candidates(KEY) == ["http://127.0.0.1:1"]

    def test_dead_peer_opens_the_breaker(self):
        tier = self._tier(threshold=2)
        assert tier.fetch(KEY) is None
        assert tier.fetch(KEY) is None
        assert tier.degradations["read_error"] == 2
        assert tier.open_peers() == ["http://127.0.0.1:1"]
        # Blocked: the next fetch is a miss without another attempt.
        assert tier.fetch(KEY) is None
        assert tier.degradations["read_error"] == 2
        assert tier.misses == 3

    def test_ringless_tier_always_misses(self):
        tier = PeerTier(None)
        assert tier.candidates(KEY) == []
        assert tier.fetch(KEY) is None and tier.misses == 1

    def test_put_blob_is_a_no_op(self):
        tier = self._tier()
        assert not tier.put_blob(KEY, wrap(KEY, {"x": 1}))
        assert tier.stores == 0


# ---------------------------------------------------------------------- #
# the standard worker stack                                               #
# ---------------------------------------------------------------------- #


class TestBuildWorkerCache:
    def test_none_in_none_out(self):
        assert build_worker_cache(None) is None

    def test_default_stack_is_memory_over_disk(self, tmp_path):
        cache = build_worker_cache(tmp_path / "store")
        assert [t.name for t in cache.tiers] == ["memory", "disk"]
        assert cache.root == tmp_path / "store"

    def test_zero_memory_budget_disables_the_memory_tier(self, tmp_path):
        cache = build_worker_cache(tmp_path / "store", memory_bytes=0)
        assert [t.name for t in cache.tiers] == ["disk"]
        cache.put(KEY, {"x": 1})
        assert cache.get(KEY) == {"x": 1}
