"""Tests for the content-addressed discovery cache (repro.cache).

Correctness contract, in order of importance:

* a cache hit is *byte-identical* to the cold run it replaces (report
  content, raw sweep artefacts, restored tool state);
* any input change — spec mutation, config change, seed, carveout,
  targets, validate flag, schema-salt bump — produces a different key
  (invalidation by construction);
* a corrupted or truncated entry degrades to a silent miss + re-measure
  and heals itself;
* concurrent fleet workers sharing one store produce byte-identical
  reports, and re-running a fleet replays it near-free;
* the cost-aware scheduler orders longest-first from recorded walls and
  never changes results or entry order.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import MT4G, DiscoveryCache, SimulatedGPU
from repro.cache import keys as cache_keys
from repro.cache.costs import estimate_discovery_cost, schedule_order
from repro.core.benchmarks.base import MeasurementResult
from repro.gpuspec.presets import get_preset
from repro.pchase.config import PChaseConfig
from repro.validate.fleet import discover_fleet, fleet_schedule

PRESET = "TestGPU-NV"


def content(report) -> str:
    return json.dumps(report.content_dict(), default=str, sort_keys=True)


def device(seed: int = 0, **kw) -> SimulatedGPU:
    return SimulatedGPU.from_preset(PRESET, seed=seed, **kw)


@pytest.fixture
def store(tmp_path) -> DiscoveryCache:
    return DiscoveryCache(tmp_path / "cache")


# ---------------------------------------------------------------------- #
# key derivation                                                          #
# ---------------------------------------------------------------------- #


class TestKeys:
    def test_deterministic(self):
        a = cache_keys.report_key(device(), PChaseConfig(), ["L1"], [], False)
        b = cache_keys.report_key(device(), PChaseConfig(), ["L1"], [], False)
        assert a == b and len(a) == 64

    def test_target_order_is_canonical(self):
        a = cache_keys.report_key(
            device(), PChaseConfig(), ["L1", "L2"], [], False
        )
        b = cache_keys.report_key(
            device(), PChaseConfig(), ["L2", "L1"], [], False
        )
        assert a == b

    @pytest.mark.parametrize(
        "mutant",
        [
            lambda d, c: (device(seed=1), c, False),
            lambda d, c: (device(cache_config="PreferShared"), c, False),
            lambda d, c: (d, dataclasses.replace(c, n_samples=c.n_samples * 2), False),
            lambda d, c: (d, dataclasses.replace(c, engine="exact"), False),
            lambda d, c: (d, c, True),  # validate flag
        ],
    )
    def test_input_changes_change_the_key(self, mutant):
        dev, cfg = device(), PChaseConfig()
        base = cache_keys.report_key(dev, cfg, ["L1"], [], False)
        mdev, mcfg, mval = mutant(dev, cfg)
        assert cache_keys.report_key(mdev, mcfg, ["L1"], [], mval) != base

    def test_spec_mutation_changes_the_key(self):
        base_spec = get_preset(PRESET)
        caches = tuple(
            dataclasses.replace(c, size=c.size * 2, physical_id=c.effective_physical_id)
            if c.name == "L2"
            else c
            for c in base_spec.caches
        )
        mutated = dataclasses.replace(base_spec, caches=caches)
        a = cache_keys.report_key(device(), PChaseConfig(), ["L1"], [], False)
        b = cache_keys.report_key(
            SimulatedGPU(mutated, seed=0), PChaseConfig(), ["L1"], [], False
        )
        assert a != b

    def test_version_salt_changes_the_key(self):
        a = cache_keys.report_key(device(), PChaseConfig(), ["L1"], [], False)
        b = cache_keys.report_key(
            device(), PChaseConfig(), ["L1"], [], False, version=999
        )
        assert a != b

    def test_used_device_keys_differently_from_fresh(self):
        # A device that already executed work has advanced its noise
        # stream: measuring on it again gives different results than a
        # fresh same-seed device, so it must not share the pristine key.
        fresh_key = cache_keys.report_key(device(), PChaseConfig(), ["L1"], [], False)
        used = device()
        MT4G(used, targets=["L1"]).discover()
        used_key = cache_keys.report_key(used, PChaseConfig(), ["L1"], [], False)
        assert used_key != fresh_key

    def test_tool_version_changes_the_key(self, monkeypatch):
        # A release that changes measurement behaviour must orphan old
        # entries even when the payload schema (and so the salt) is
        # unchanged.
        import repro

        a = cache_keys.report_key(device(), PChaseConfig(), ["L1"], [], False)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        b = cache_keys.report_key(device(), PChaseConfig(), ["L1"], [], False)
        assert a != b

    def test_numpy_values_canonicalise(self):
        import numpy as np

        assert cache_keys.canonicalize(np.int64(7)) == 7
        assert cache_keys.canonicalize(np.array([1, 2, 3])) == [1, 2, 3]
        assert cache_keys.canonicalize({"a": np.float64(1.5)}) == {"a": 1.5}

    def test_unkeyable_object_raises_instead_of_repr_keying(self):
        # A generic repr embeds a memory address: hashing it would key
        # per-process and miss forever.  Refusing loudly lets the tool
        # degrade to uncached measurement instead.
        class Opaque:
            pass

        with pytest.raises(TypeError):
            cache_keys.canonicalize(Opaque())

    def test_failing_key_derivation_degrades_to_uncached(self, store, monkeypatch):
        # "A cache must never sink a run": an unkeyable input refuses
        # loudly at the canonicaliser, and the tool responds by simply
        # measuring uncached.
        def boom(*args, **kwargs):
            raise TypeError("unkeyable input")

        monkeypatch.setattr(store, "report_key", boom)
        tool = MT4G(device(), cache=store, targets=["L1"])
        report = tool.discover()  # must not raise
        assert "cache" not in report.meta
        assert store.stores == 0

    def test_measurement_key_tracks_tool_state(self):
        dev, cfg = device(), PChaseConfig()
        a = cache_keys.measurement_key(
            dev, cfg, "L1", "size", 1009, context={"sizes": {"L1": 4096}}
        )
        b = cache_keys.measurement_key(
            dev, cfg, "L1", "size", 1009, context={"sizes": {"L1": 8192}}
        )
        c = cache_keys.measurement_key(
            dev, cfg, "L1", "size", 2003, context={"sizes": {"L1": 4096}}
        )
        assert len({a, b, c}) == 3


# ---------------------------------------------------------------------- #
# the store                                                               #
# ---------------------------------------------------------------------- #


class TestStore:
    KEY = "ab" * 32

    def test_round_trip(self, store):
        assert store.get(self.KEY) is None
        assert store.put(self.KEY, {"v": [1, 2, 3]})
        assert store.get(self.KEY) == {"v": [1, 2, 3]}
        assert (store.hits, store.misses, store.stores) == (1, 1, 1)

    def test_garbage_entry_is_a_silent_miss_and_heals(self, store):
        store.put(self.KEY, "payload")
        path = store._entry_path(self.KEY)
        path.write_bytes(b"\x00garbage, not a pickle")
        assert store.get(self.KEY) is None
        assert not path.exists()  # unreadable entry deleted
        assert store.put(self.KEY, "payload")  # re-measure + re-store heals
        assert store.get(self.KEY) == "payload"

    def test_truncated_entry_is_a_silent_miss(self, store):
        store.put(self.KEY, {"big": list(range(1000))})
        path = store._entry_path(self.KEY)
        path.write_bytes(path.read_bytes()[: 40])
        assert store.get(self.KEY) is None

    def test_entry_under_wrong_address_is_a_miss(self, store):
        other = "cd" * 32
        store.put(self.KEY, "payload")
        target = store._entry_path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(store._entry_path(self.KEY).read_bytes())
        assert store.get(other) is None  # embedded key check

    def test_version_bump_orphans_entries(self, tmp_path):
        v1 = DiscoveryCache(tmp_path, version=1)
        v2 = DiscoveryCache(tmp_path, version=2)
        dev, cfg = device(), PChaseConfig()
        key1 = v1.report_key(dev, cfg, ["L1"], [], False)
        key2 = v2.report_key(dev, cfg, ["L1"], [], False)
        assert key1 != key2
        v1.put(key1, "old")
        assert v2.get(key2) is None
        # even a forged same-key read fails the embedded schema check
        assert v2.get(key1) is None

    def test_unwritable_root_never_raises(self):
        store = DiscoveryCache("/proc/definitely/not/writable")
        assert not store.put(self.KEY, "x")
        assert store.get(self.KEY) is None
        store.record_wall("p", 1.0)
        assert store.recorded_walls() == {}
        assert store.prune() == 0

    def test_prune_removes_least_recently_used_first(self, store):
        import os
        import time

        keys = [f"{i:02d}" * 32 for i in range(4)]
        for i, key in enumerate(keys):
            store.put(key, "x" * 1000)
            past = time.time() - 1000 + i
            os.utime(store._entry_path(key), (past, past))
        # Touch the oldest entry via a hit: it becomes most recent.
        assert store.get(keys[0]) == "x" * 1000
        total = sum(
            p.stat().st_size for p in (store.root / "entries").glob("*/*.pkl")
        )
        per_entry = total // 4
        removed = store.prune(max_bytes=2 * per_entry)
        assert removed == 2
        assert store.get(keys[0]) is not None  # recently used: kept
        assert store.get(keys[3]) is not None  # newest: kept
        assert store.get(keys[1]) is None
        assert store.get(keys[2]) is None

    def test_prune_noop_under_budget(self, store):
        store.put(self.KEY, "payload")
        assert store.prune() == 0
        assert store.get(self.KEY) == "payload"

    def test_prune_reclaims_crash_orphaned_temp_files(self, store):
        import os
        import time

        store.put(self.KEY, "payload")
        shard = store._entry_path(self.KEY).parent
        stale = shard / f".{self.KEY}.999.dead.tmp"
        stale.write_bytes(b"orphaned by a crash mid-write")
        past = time.time() - 7200
        os.utime(stale, (past, past))
        live = shard / f".{self.KEY}.998.live.tmp"
        live.write_bytes(b"a concurrent writer's in-flight temp")
        store.prune()
        assert not stale.exists()  # old orphan reclaimed even under budget
        assert live.exists()  # fresh temp (possible in-flight write) kept
        assert store.get(self.KEY) == "payload"


# ---------------------------------------------------------------------- #
# discovery through the cache                                             #
# ---------------------------------------------------------------------- #


class TestCachedDiscovery:
    def test_hit_is_byte_identical_and_restores_state(self, store):
        cold_tool = MT4G(device(), cache=store)
        cold = cold_tool.discover()
        warm_tool = MT4G(device(), cache=store)
        warm = warm_tool.discover()
        plain = MT4G(device()).discover()
        assert content(cold) == content(warm) == content(plain)
        assert cold.meta["cache"]["status"] == "miss"
        assert warm.meta["cache"]["status"] == "hit"
        assert plain.meta == {}
        # the raw sweep artefacts and measured sizes come back too
        assert json.dumps(warm_tool.raw_data, default=str) == json.dumps(
            cold_tool.raw_data, default=str
        )
        assert warm_tool._measured_sizes == cold_tool._measured_sizes
        assert warm_tool._measured_fg == cold_tool._measured_fg
        # the hit executed zero benchmarks
        assert warm_tool.ctx.benchmarks_run == 0
        assert warm_tool.device.elapsed_seconds() == 0.0

    def test_validated_hit_is_byte_identical(self, store):
        cold = MT4G(device(), cache=store).discover(validate=True)
        warm = MT4G(device(), cache=store).discover(validate=True)
        plain = MT4G(device()).discover(validate=True)
        assert content(cold) == content(warm) == content(plain)
        assert warm.meta["cache"]["status"] == "hit"

    def test_validate_flag_has_its_own_entry(self, store):
        MT4G(device(), cache=store).discover(validate=False)
        report = MT4G(device(), cache=store).discover(validate=True)
        assert report.meta["cache"]["status"] == "miss"
        assert report.validation is not None

    def test_corrupted_report_entry_remeasures(self, store):
        tool = MT4G(device(), cache=store)
        cold = tool.discover()
        key = cold.meta["cache"]["key"]
        store._entry_path(key).write_bytes(b"truncated")
        again = MT4G(device(), cache=store).discover()
        assert again.meta["cache"]["status"] == "miss"
        assert content(again) == content(cold)
        # ...and the entry healed: next run hits
        assert MT4G(device(), cache=store).discover().meta["cache"]["status"] == "hit"

    def test_rejected_payload_leaks_no_stale_state(self, store):
        # A payload that passes the store's key/schema check but lacks a
        # field (a build that changed the payload dict without bumping
        # the salt) must be rejected *atomically*: the fresh measurement
        # that follows must not merge with the rejected run's artefacts.
        tool = MT4G(device(), cache=store)
        cold = tool.discover()
        key = cold.meta["cache"]["key"]
        store.put(key, {"report": cold, "raw_data": {"SENTINEL": {}}})
        tool2 = MT4G(device(), cache=store)
        again = tool2.discover()
        assert again.meta["cache"]["status"] == "miss"
        assert "SENTINEL" not in tool2.raw_data
        assert content(again) == content(cold)

    def test_escalation_measurements_cached_per_seed_offset(self, store):
        # First pass measures and stores the per-(seed offset) escalation
        # re-measurements; a second validation of a *fresh* cold report
        # replays them from the store.
        tool1 = MT4G(device(), cache=store)
        report1 = tool1.discover()
        tool1.validate(report1)
        assert report1.validation.escalations, "fixture must escalate"
        measured_stores = store.stores
        hits_before = store.hits

        tool2 = MT4G(device(), cache=store)
        report2 = tool2.discover()  # report-level hit
        tool2.validate(report2)
        assert store.hits > hits_before
        assert store.stores == measured_stores  # nothing re-measured
        assert json.dumps(
            report1.validation.as_dict(), default=str, sort_keys=True
        ) == json.dumps(report2.validation.as_dict(), default=str, sort_keys=True)

    def test_cached_measurement_round_trips_type(self, store):
        dev, cfg = device(), PChaseConfig()
        key = store.measurement_key(dev, cfg, "L1", "size", 1009)
        m = MeasurementResult("size", "L1", 4096, "B", 0.9, note="n")
        store.put(key, m)
        got = store.get(key)
        assert isinstance(got, MeasurementResult)
        assert got == m


# ---------------------------------------------------------------------- #
# fleet: shared store + cost-aware scheduling                             #
# ---------------------------------------------------------------------- #


FLEET_PRESETS = ["TestGPU-NV", "TestGPU-AMD"]


def fleet_content(result) -> str:
    payload = result.as_dict()["reports"]
    for report in payload.values():
        report.pop("meta", None)
    return json.dumps(payload, default=str, sort_keys=True)


class TestFleetCache:
    def test_concurrent_workers_share_store_byte_identically(self, tmp_path):
        cache_dir = tmp_path / "fleet-cache"
        concurrent = discover_fleet(
            FLEET_PRESETS, seed=0, jobs=2, validate=True, cache_dir=cache_dir
        )
        uncached = discover_fleet(FLEET_PRESETS, seed=0, validate=True, parallel=False)
        assert fleet_content(concurrent) == fleet_content(uncached)
        assert all(e.cache_status == "miss" for e in concurrent.entries)

        warm = discover_fleet(
            FLEET_PRESETS, seed=0, jobs=2, validate=True, cache_dir=cache_dir
        )
        assert fleet_content(warm) == fleet_content(uncached)
        assert all(e.cache_status == "hit" for e in warm.entries)
        # entries keep the caller's input order regardless of scheduling
        assert [e.preset for e in warm.entries] == FLEET_PRESETS

    def test_cold_walls_recorded_hit_walls_not(self, tmp_path):
        cache_dir = tmp_path / "fleet-cache"
        store = DiscoveryCache(cache_dir)
        discover_fleet(FLEET_PRESETS, seed=0, parallel=False, cache_dir=cache_dir)
        walls = store.recorded_walls()
        assert set(walls) == set(FLEET_PRESETS)
        assert all(w > 0 for w in walls.values())
        discover_fleet(FLEET_PRESETS, seed=0, parallel=False, cache_dir=cache_dir)
        assert store.recorded_walls() == walls  # hits don't poison the LPT data


class TestScheduling:
    def test_recorded_walls_order_longest_first(self):
        names = ["a", "b", "c"]
        order = schedule_order(
            names, {"a": 1.0, "b": 9.0, "c": 3.0}, {n: 1.0 for n in names}
        )
        assert order == ["b", "c", "a"]

    def test_estimates_fill_gaps_on_recorded_scale(self):
        # "b" was never run; its estimate (scaled onto the recorded
        # wall/estimate ratio of 2x) ranks it between a and c.
        order = schedule_order(
            ["a", "b", "c"],
            {"a": 8.0, "c": 2.0},
            {"a": 4.0, "b": 3.0, "c": 1.0},
        )
        assert order == ["a", "b", "c"]

    def test_ties_keep_input_order(self):
        order = schedule_order(["x", "y"], {}, {"x": 1.0, "y": 1.0})
        assert order == ["x", "y"]

    def test_estimate_scales_with_topology(self):
        big = estimate_discovery_cost(get_preset("H100-80"))
        small = estimate_discovery_cost(get_preset("TestGPU-NV"))
        assert big > small > 0

    def test_fleet_schedule_without_store_uses_estimates(self):
        order = fleet_schedule(["TestGPU-NV", "H100-80"], None)
        assert order == ["H100-80", "TestGPU-NV"]

    def test_fleet_schedule_prefers_recorded_walls(self, tmp_path):
        store = DiscoveryCache(tmp_path)
        store.record_wall("TestGPU-NV", 50.0)
        store.record_wall("H100-80", 1.0)
        order = fleet_schedule(["H100-80", "TestGPU-NV"], store)
        assert order == ["TestGPU-NV", "H100-80"]

    def test_record_wall_smooths(self, tmp_path):
        store = DiscoveryCache(tmp_path)
        store.record_wall("p", 10.0)
        store.record_wall("p", 20.0)
        assert store.recorded_walls()["p"] == pytest.approx(15.0)


# ---------------------------------------------------------------------- #
# enumeration (the serving catalog's store API)                           #
# ---------------------------------------------------------------------- #


class TestEnumeration:
    def test_entries_yields_all_readable_payloads(self, store):
        keys = {f"{i:02d}" * 32: {"n": i} for i in range(4)}
        for key, payload in keys.items():
            store.put(key, payload)
        assert dict(store.entries()) == keys
        assert store.entry_count() == 4

    def test_entries_sorted_by_key(self, store):
        for key in ("ff" * 32, "00" * 32, "7a" * 32):
            store.put(key, key[:2])
        assert [k for k, _ in store.entries()] == sorted(
            ("ff" * 32, "00" * 32, "7a" * 32)
        )

    def test_entries_skips_corruption_and_wrong_schema(self, store, tmp_path):
        good, bad = "aa" * 32, "bb" * 32
        store.put(good, "ok")
        store.put(bad, "garbage-to-be")
        store._entry_path(bad).write_bytes(b"\x00not a pickle")
        DiscoveryCache(tmp_path / "cache", version=99).put("cc" * 32, "other-schema")
        assert dict(store.entries()) == {good: "ok"}

    def test_entries_does_not_touch_hit_miss_counters(self, store):
        store.put("aa" * 32, "x")
        list(store.entries())
        store.entry_count()
        assert (store.hits, store.misses) == (0, 0)

    def test_entries_on_missing_root(self, tmp_path):
        assert list(DiscoveryCache(tmp_path / "nope").entries()) == []
        assert DiscoveryCache(tmp_path / "nope").entry_count() == 0

    def test_enumeration_racing_prune_skips_unlinked_entries(self, store):
        # A concurrent prune() unlinking files mid-walk must behave like
        # a miss for the walker, never like an error.
        import threading

        for i in range(64):
            store.put(f"{i:02x}" * 32, "x" * 256)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                store.prune(0)  # delete everything, repeatedly
                for i in range(64):
                    store.put(f"{i:02x}" * 32, "x" * 256)

        t = threading.Thread(target=churn)
        t.start()
        try:
            for _ in range(20):
                seen = list(store.entries())
                assert all(payload == "x" * 256 for _, payload in seen)
        finally:
            stop.set()
            t.join()


# ---------------------------------------------------------------------- #
# wall sidecar: merge-on-write                                            #
# ---------------------------------------------------------------------- #


class TestRecordWallMerge:
    def test_concurrent_label_landed_mid_window_is_kept(self, store, monkeypatch):
        # Simulate the fleet-parents race: another writer lands label
        # "other" between this writer's entry into record_wall and its
        # atomic replace.  The merge-on-write re-read must pick it up
        # instead of silently reverting the sidecar.
        other_writer = DiscoveryCache(store.root)
        real_read = DiscoveryCache._read_stats
        injected = {"done": False}

        def read_with_interleaved_writer(self):
            if not injected["done"]:
                injected["done"] = True
                real_read_self = real_read  # the un-patched read
                monkeypatch.setattr(DiscoveryCache, "_read_stats", real_read_self)
                other_writer.record_wall("other", 7.0)
                monkeypatch.setattr(
                    DiscoveryCache, "_read_stats", read_with_interleaved_writer
                )
            return real_read(self)

        monkeypatch.setattr(
            DiscoveryCache, "_read_stats", read_with_interleaved_writer
        )
        store.record_wall("mine", 3.0)
        walls = store.recorded_walls()
        assert walls == {"mine": pytest.approx(3.0), "other": pytest.approx(7.0)}

    def test_threaded_writers_lose_no_labels(self, store):
        import threading

        labels = [f"preset-{i}" for i in range(8)]

        def hammer(label):
            for _ in range(5):
                store.record_wall(label, 2.0)

        threads = [threading.Thread(target=hammer, args=(l,)) for l in labels]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        walls = store.recorded_walls()
        assert sorted(walls) == sorted(labels)
        # every write was merged, so every label saw all 5 smoothed runs
        stats = json.loads((store.root / "stats.json").read_text())
        assert all(stats["walls"][l]["runs"] == 5 for l in labels)

    # Same-label races stay last-writer-wins (both smoothed values are
    # valid); sequential smoothing is already pinned by
    # TestScheduling.test_record_wall_smooths above.

    def test_stale_lock_is_reclaimed(self, store):
        import os
        import time

        store.root.mkdir(parents=True, exist_ok=True)
        lock = store.root / ".stats.lock"
        lock.write_text("12345")
        old = time.time() - 60.0
        os.utime(lock, (old, old))
        store.record_wall("p", 1.0)  # must not hang or drop the wall
        assert store.recorded_walls() == {"p": pytest.approx(1.0)}
        assert not lock.exists()

    def test_held_lock_times_out_and_degrades_to_lock_free_write(self, store):
        store.root.mkdir(parents=True, exist_ok=True)
        (store.root / ".stats.lock").write_text("1")
        store._STATS_LOCK_STALE_SECONDS = 3600.0  # never reclaim
        assert store._acquire_stats_lock(timeout=0.05) is None
        store.record_wall("p", 1.0)  # proceeds unlocked (best-effort)
        assert store.recorded_walls() == {"p": pytest.approx(1.0)}

    def test_lock_timeout_degradation_is_counted(self, store, monkeypatch):
        # The lock-free fallback used to be invisible to operators; it
        # must now show up as a named degradation (folded into /metrics).
        monkeypatch.setattr(
            DiscoveryCache, "_acquire_stats_lock", lambda self, timeout=1.0: None
        )
        assert store.degradations["lock_timeout"] == 0
        store.record_wall("p", 1.0)
        assert store.degradations["lock_timeout"] == 1
        assert store.recorded_walls() == {"p": pytest.approx(1.0)}


# ---------------------------------------------------------------------- #
# wall sidecar: corruption degrades, then self-heals                      #
# ---------------------------------------------------------------------- #


class TestStatsSidecarCorruption:
    @pytest.mark.parametrize(
        "garbage",
        [
            b"not json at all {{{",
            b'{"walls": {"p": {"seconds": 1.0',  # truncated mid-object
            b'["a", "list", "not", "a", "dict"]',
            b"",
        ],
        ids=["non-json", "truncated", "wrong-shape", "empty"],
    )
    def test_corrupted_sidecar_degrades_to_empty_walls(self, store, garbage):
        store.root.mkdir(parents=True, exist_ok=True)
        (store.root / "stats.json").write_bytes(garbage)
        assert store.recorded_walls() == {}
        assert store.degradations["stats_corrupt"] == 1

    def test_record_wall_heals_a_corrupted_sidecar(self, store):
        store.root.mkdir(parents=True, exist_ok=True)
        (store.root / "stats.json").write_bytes(b"not json at all {{{")
        store.record_wall("p", 2.0)  # re-reads (degrades), rewrites valid
        assert store.degradations["stats_corrupt"] == 1
        # healed: the sidecar is valid JSON again and the wall landed
        stats = json.loads((store.root / "stats.json").read_text())
        assert stats["walls"]["p"]["seconds"] == pytest.approx(2.0)
        assert store.recorded_walls() == {"p": pytest.approx(2.0)}
        assert store.degradations["stats_corrupt"] == 1  # no new hits

    def test_missing_sidecar_is_not_a_degradation(self, store):
        assert store.recorded_walls() == {}
        assert store.degradations["stats_corrupt"] == 0
