"""Analytic vs. exact engine equivalence at the kernel and tool layers.

The analytic engine (batched warms, analytic timed passes, incremental
sweeps) must be measurement-for-measurement indistinguishable from the
exact per-load simulator: identical latency vectors, identical hit
vectors, identical simulated-time accounting and — end to end —
byte-identical :class:`TopologyReport` dictionaries at a fixed seed.
"""

import json

import numpy as np
import pytest

from repro import MT4G, SimulatedGPU
from repro.gpusim.isa import LoadKind
from repro.gpusim.kernel import pchase_addresses, probe_hits, run_pchase, warm
from repro.pchase import PChaseConfig, PChaseRunner


def fresh(seed: int = 7) -> SimulatedGPU:
    return SimulatedGPU.from_preset("TestGPU-NV", seed=seed)


PCHASE_CASES = [
    # (kind, alloc, nbytes, stride, warmup_passes, flush)
    (LoadKind.LD_GLOBAL_CA, 1 << 20, 2048, 32, 1, True),  # in-cache
    (LoadKind.LD_GLOBAL_CA, 1 << 20, 300_000, 32, 1, True),  # L1 thrash
    (LoadKind.LD_GLOBAL_CA, 1 << 20, 8 * 1024, 32, 1, True),  # boundary mix
    (LoadKind.LD_GLOBAL_CG, 1 << 20, 64 * 1024, 256, 0, True),  # cold DRAM
    (LoadKind.LD_CONST, 32 * 1024, 8 * 1024, 64, 2, True),  # 3-level path
    (LoadKind.LDG, 1 << 20, 150_000, 32, 1, False),  # no flush (merge warm)
    (LoadKind.TEX1DFETCH, 1 << 20, 4096, 16, 1, True),  # sub-sector stride
    (LoadKind.LD_GLOBAL_CA, 1 << 20, 1024, 32, 1, True),  # n_samples > ring
]


class TestRunPchaseEquivalence:
    @pytest.mark.parametrize("case", PCHASE_CASES)
    def test_latencies_and_accounting_identical(self, case):
        kind, alloc, nbytes, stride, warmup, flush = case
        results = {}
        for engine in ("analytic", "exact"):
            device = fresh()
            base = device.alloc(kind, alloc)
            lat = run_pchase(
                device,
                kind,
                base,
                nbytes,
                stride,
                warmup_passes=warmup,
                flush=flush,
                engine=engine,
            )
            results[engine] = (lat, device.elapsed_seconds(), device.total_loads)
        assert np.array_equal(results["analytic"][0], results["exact"][0])
        assert results["analytic"][1] == results["exact"][1]
        assert results["analytic"][2] == results["exact"][2]

    def test_single_warm_pass_is_fixed_point(self):
        """Satellite: one executed warm pass == many, time charged for all."""
        lat1 = lat3 = None
        t1 = t3 = None
        for passes in (1, 3):
            device = fresh()
            base = device.alloc(LoadKind.LD_GLOBAL_CA, 1 << 20)
            lat = run_pchase(
                device, LoadKind.LD_GLOBAL_CA, base, 4096, 32,
                warmup_passes=passes, flush=True,
            )
            if passes == 1:
                lat1, t1 = lat, device.elapsed_seconds()
            else:
                lat3, t3 = lat, device.elapsed_seconds()
        assert np.array_equal(lat1, lat3)  # measurements identical
        assert t3 > t1  # ...but every requested pass is charged

    def test_cold_warm_pass_charged_at_miss_latency(self):
        """Satellite: the first warm pass after a flush costs a miss, not a hit."""
        device = fresh()
        base = device.alloc(LoadKind.LD_GLOBAL_CA, 1 << 20)
        n_ring = 4096 // 32
        before = device.clock.cycles
        run_pchase(device, LoadKind.LD_GLOBAL_CA, base, 4096, 32, flush=True)
        spent = device.clock.cycles - before
        path = device.resolve_path(LoadKind.LD_GLOBAL_CA)
        hit_only_warm = n_ring * path.levels[0][1]
        # The warm portion alone must exceed a hit-latency-only estimate.
        assert spent > hit_only_warm + n_ring * (
            path.terminal_latency - path.levels[0][1]
        ) * 0.99


class TestProbeEquivalence:
    @pytest.mark.parametrize("shared", [True, False])
    def test_probe_hits_identical(self, shared):
        """Warm-A / warm-B / probe-A protocol rounds match per engine."""
        results = {}
        for engine in ("analytic", "exact"):
            device = fresh()
            a = device.alloc(LoadKind.LD_GLOBAL_CA, 1 << 16)
            b = device.alloc(LoadKind.LD_GLOBAL_CA, 1 << 16)
            addrs_a = pchase_addresses(a, 6 * 1024, 32)
            addrs_b = pchase_addresses(b, 6 * 1024 if shared else 512, 32)
            device.flush_caches()
            warm(device, LoadKind.LD_GLOBAL_CA, addrs_a, stride=32, engine=engine)
            warm(device, LoadKind.LD_GLOBAL_CA, addrs_b, stride=32, engine=engine)
            hits, lat = probe_hits(
                device, LoadKind.LD_GLOBAL_CA, addrs_a, engine=engine
            )
            results[engine] = (hits, lat, device.elapsed_seconds())
        assert np.array_equal(results["analytic"][0], results["exact"][0])
        assert np.array_equal(results["analytic"][1], results["exact"][1])
        assert results["analytic"][2] == results["exact"][2]


class TestRunnerEquivalence:
    def test_sweep_identical_with_incremental_reuse(self):
        """Incremental sweeps return the flush-per-size matrix exactly."""
        matrices = {}
        for engine in ("analytic", "exact"):
            device = fresh(seed=3)
            runner = PChaseRunner(device, PChaseConfig(n_samples=96, engine=engine))
            sizes = np.array([2048, 4096, 6144, 8192, 12288, 16384])
            matrices[engine] = (
                runner.sweep(LoadKind.LD_GLOBAL_CA, sizes, 32),
                device.elapsed_seconds(),
            )
        assert np.array_equal(matrices["analytic"][0], matrices["exact"][0])
        assert matrices["analytic"][1] == matrices["exact"][1]

    def test_descending_and_interleaved_sizes_identical(self):
        """Non-extendable requests fall back to flush + full warm."""
        for sizes in ([16384, 4096, 8192, 2048], [4096, 4096, 2048, 16384]):
            results = {}
            for engine in ("analytic", "exact"):
                device = fresh(seed=9)
                runner = PChaseRunner(device, PChaseConfig(n_samples=64, engine=engine))
                results[engine] = np.vstack(
                    [runner.latencies(LoadKind.LD_GLOBAL_CA, s, 32) for s in sizes]
                )
            assert np.array_equal(results["analytic"], results["exact"])

    def test_foreign_op_invalidates_warm_reuse(self):
        """A protocol op between sweep runs must not corrupt measurements."""
        results = {}
        for engine in ("analytic", "exact"):
            device = fresh(seed=13)
            runner = PChaseRunner(device, PChaseConfig(n_samples=64, engine=engine))
            out = [runner.latencies(LoadKind.LD_GLOBAL_CA, 4096, 32)]
            runner.warm(LoadKind.LD_GLOBAL_CG, 2048, 64)  # foreign mutation
            out.append(runner.latencies(LoadKind.LD_GLOBAL_CA, 8192, 32))
            results[engine] = np.vstack(out)
        assert np.array_equal(results["analytic"], results["exact"])


class TestDiscoveryEquivalence:
    @pytest.mark.parametrize("preset", ["TestGPU-NV", "TestGPU-AMD"])
    def test_reports_byte_identical(self, preset):
        reports = {}
        for engine in ("analytic", "exact"):
            device = SimulatedGPU.from_preset(preset, seed=42)
            report = MT4G(device, config=PChaseConfig(engine=engine)).discover()
            reports[engine] = json.dumps(
                report.as_dict(), default=str, sort_keys=True
            )
        assert reports["analytic"] == reports["exact"]
