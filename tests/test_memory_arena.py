"""Tests for the device-memory arenas and the errors hierarchy."""

import pytest

from repro import errors
from repro.gpusim.memory import CONSTANT_ARRAY_LIMIT, Arena, DeviceMemory
from repro.gpuspec.presets import get_preset


class TestArena:
    def test_bump_allocation(self):
        arena = Arena("test", base=4096, capacity=16384)
        a = arena.allocate(1000, align=256)
        b = arena.allocate(1000, align=256)
        assert a % 256 == 0 and b % 256 == 0
        assert b >= a + 1000

    def test_exhaustion(self):
        arena = Arena("test", base=0, capacity=1024)
        arena.allocate(512, align=1)
        with pytest.raises(errors.AllocationError):
            arena.allocate(1024, align=1)

    def test_reset(self):
        arena = Arena("test", base=0, capacity=1024)
        first = arena.allocate(512, align=1)
        arena.reset()
        assert arena.allocate(512, align=1) == first

    def test_zero_size_rejected(self):
        with pytest.raises(errors.AllocationError):
            Arena("test", base=0, capacity=10).allocate(0)


class TestDeviceMemory:
    @pytest.fixture
    def mem(self):
        return DeviceMemory(get_preset("TestGPU-NV").memory)

    def test_spaces_are_disjoint(self, mem):
        g = mem.allocate_global(4096)
        c = mem.allocate_constant(4096)
        s = mem.allocate_scratch(4096)
        ranges = sorted([(g, g + 4096), (c, c + 4096), (s, s + 4096)])
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end <= start

    def test_constant_bank_limit(self, mem):
        # Paper Section III-C: the 64 KiB constant-array limitation.
        mem.allocate_constant(CONSTANT_ARRAY_LIMIT)
        with pytest.raises(errors.AllocationError):
            mem.allocate_constant(CONSTANT_ARRAY_LIMIT + 1)

    def test_reset_frees_all_spaces(self, mem):
        mem.allocate_constant(CONSTANT_ARRAY_LIMIT)
        mem.reset()
        mem.allocate_constant(CONSTANT_ARRAY_LIMIT)

    def test_properties(self, mem):
        assert mem.size == get_preset("TestGPU-NV").memory.size
        assert mem.load_latency == 300.0


class TestErrorHierarchy:
    """Catchability contracts the library documents."""

    @pytest.mark.parametrize(
        "exc",
        [
            errors.SpecError,
            errors.SimulationError,
            errors.SchedulingError,
            errors.AllocationError,
            errors.APIUnavailableError,
            errors.BenchmarkError,
            errors.BenchmarkInconclusiveError,
            errors.BenchmarkUnsupportedError,
            errors.OutputError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_scheduling_is_simulation_error(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)

    def test_unknown_gpu_is_keyerror_too(self):
        assert issubclass(errors.UnknownGPUError, KeyError)
        err = errors.UnknownGPUError("X", ("A", "B"))
        assert "A" in str(err)
