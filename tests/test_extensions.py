"""Tests for the Section VII future-work extensions.

The paper's conclusions list four planned extensions; three are
implemented here as opt-ins: FLOPS/tensor-engine characterisation,
low-level-cache bandwidth, and the configurable L2 fetch granularity
(the Section IV-D remark about ``cudaDeviceSetLimit``).
"""

import pytest

from repro import MT4G, SimulatedGPU
from repro.core.benchmarks.base import BenchmarkContext, Source
from repro.core.benchmarks.fetch_granularity import measure_fetch_granularity
from repro.core.benchmarks.flops import measure_all_flops, measure_flops
from repro.errors import SimulationError, SpecError
from repro.gpusim.compute import ComputeThroughputModel
from repro.gpusim.device import SimulatedGPU as Dev
from repro.gpusim.isa import LoadKind


@pytest.fixture
def nv():
    return SimulatedGPU.from_preset("TestGPU-NV", seed=8)


class TestComputeThroughputModel:
    def test_datatypes_from_spec(self, nv):
        model = ComputeThroughputModel(nv.spec, nv.rng)
        assert set(model.datatypes) == {"fp64", "fp32", "tensor_fp16"}
        assert model.is_tensor("tensor_fp16") and not model.is_tensor("fp32")

    def test_achieved_near_peak_at_optimum(self, nv):
        model = ComputeThroughputModel(nv.spec, nv.rng)
        rate = model.achieved("fp32", noisy=False)
        assert rate == pytest.approx(1.0e12, rel=1e-6)

    def test_partial_occupancy_degrades(self, nv):
        model = ComputeThroughputModel(nv.spec, nv.rng)
        full = model.achieved("fp32", noisy=False)
        partial = model.achieved("fp32", blocks=1, threads_per_block=32, noisy=False)
        assert partial < full * 0.7

    def test_tensor_more_occupancy_sensitive(self, nv):
        model = ComputeThroughputModel(nv.spec, nv.rng)
        frac_vector = model.efficiency(2, 256, "fp32")
        frac_tensor = model.efficiency(2, 256, "tensor_fp16")
        assert frac_tensor < frac_vector

    def test_unknown_dtype_rejected(self, nv):
        model = ComputeThroughputModel(nv.spec, nv.rng)
        with pytest.raises(SimulationError):
            model.peak("fp4")

    def test_kernel_seconds_positive(self, nv):
        model = ComputeThroughputModel(nv.spec, nv.rng)
        assert model.kernel_seconds(10**9, "fp64") > 0
        with pytest.raises(SimulationError):
            model.kernel_seconds(0, "fp64")


class TestFlopsBenchmark:
    def test_measures_each_dtype(self, nv):
        ctx = BenchmarkContext(nv)
        results = measure_all_flops(ctx)
        assert set(results) == {"fp64", "fp32", "tensor_fp16"}
        for dtype, m in results.items():
            truth = nv.spec.compute_throughput[dtype]
            assert m.value == pytest.approx(truth, rel=0.1)
            assert m.confidence > 0.8

    def test_engine_tagging(self, nv):
        ctx = BenchmarkContext(nv)
        assert measure_flops(ctx, "tensor_fp16").detail["engine"] == "tensor"
        assert measure_flops(ctx, "fp32").detail["engine"] == "vector"

    def test_unsupported_dtype_no_result(self, nv):
        ctx = BenchmarkContext(nv)
        m = measure_flops(ctx, "fp8")
        assert m.value is None

    def test_device_without_figures(self):
        dev = SimulatedGPU.from_preset("TestGPU-AMD", seed=8)
        ctx = BenchmarkContext(dev)
        assert measure_all_flops(ctx) == {}


class TestToolIntegration:
    def test_flops_extension_fills_throughput(self):
        dev = SimulatedGPU.from_preset("TestGPU-NV", seed=8)
        report = MT4G(dev, targets={"SharedMem"}, extensions={"flops"}).discover()
        assert set(report.throughput) == {"fp64", "fp32", "tensor_fp16"}
        assert report.throughput["fp32"].unit == "OP/s"
        assert "throughput" in report.as_dict()

    def test_default_has_no_throughput(self, nv_report):
        assert nv_report.throughput == {}
        assert "throughput" not in nv_report.as_dict()

    def test_lowlevel_bandwidth_extension(self):
        dev = SimulatedGPU.from_preset("TestGPU-NV", seed=8)
        report = MT4G(
            dev,
            targets={"L1", "L2", "Texture", "Readonly", "SharedMem", "DeviceMemory"},
            extensions={"lowlevel_bandwidth"},
        ).discover()
        av = report.attribute("L1", "read_bandwidth")
        assert av.source is Source.BENCHMARK
        assert av.value == pytest.approx(
            dev.spec.cache("L1").read_bandwidth, rel=0.12
        )
        assert "extension" in av.note

    def test_lowlevel_bandwidth_honest_without_figures(self):
        # TestGPU-AMD's vL1 has no figure: the extension reports no result
        # instead of inventing one.
        dev = SimulatedGPU.from_preset("TestGPU-AMD", seed=8)
        report = MT4G(dev, extensions={"lowlevel_bandwidth"}).discover()
        av = report.attribute("vL1", "read_bandwidth")
        assert av.value is None

    def test_unknown_extension_rejected(self, nv):
        with pytest.raises(SpecError):
            MT4G(nv, extensions={"quantum"})

    def test_paper_presets_have_figures(self):
        from repro.gpuspec.presets import get_preset

        for name in ("H100-80", "A100", "V100", "MI210", "MI300X"):
            assert get_preset(name).compute_throughput, name
        # tensor beats vector fp16 on every device exposing both
        for name in ("H100-80", "MI300X"):
            tp = get_preset(name).compute_throughput
            assert tp["tensor_fp16"] > tp["fp16"]


class TestL2FetchGranularityLimit:
    """Paper IV-D: 'Newer NVIDIA GPU L2 caches have configurable fetch
    granularity (through the cudaDeviceSetLimit call)'."""

    def test_discovered_granularity_follows_limit(self):
        dev = Dev.from_preset("TestGPU-NV", seed=8)
        ctx = BenchmarkContext(dev)
        before = measure_fetch_granularity(ctx, LoadKind.LD_GLOBAL_CG, "L2")
        assert before.value == 32
        dev.set_limit("l2_fetch_granularity", 64)
        after = measure_fetch_granularity(ctx, LoadKind.LD_GLOBAL_CG, "L2")
        assert after.value == 64

    def test_limit_validation(self):
        dev = Dev.from_preset("TestGPU-NV", seed=8)
        with pytest.raises(SimulationError):
            dev.set_limit("l2_fetch_granularity", 48)  # must divide the line
        with pytest.raises(SimulationError):
            dev.set_limit("warp_size", 64)

    def test_amd_rejected(self):
        dev = Dev.from_preset("TestGPU-AMD", seed=8)
        with pytest.raises(SimulationError):
            dev.set_limit("l2_fetch_granularity", 64)

    def test_l1_unaffected(self):
        dev = Dev.from_preset("TestGPU-NV", seed=8)
        dev.set_limit("l2_fetch_granularity", 64)
        ctx = BenchmarkContext(dev)
        l1 = measure_fetch_granularity(ctx, LoadKind.LD_GLOBAL_CA, "L1")
        assert l1.value == 32
