"""Tests for the report model and the three output writers."""

import csv
import dataclasses
import io
import json

import pytest

from repro.core.benchmarks.base import MeasurementResult, Source
from repro.core.output.csv_out import _flatten_value, to_csv, write_csv
from repro.core.output.json_out import to_json, to_jsonable, write_json
from repro.core.output.markdown import to_markdown, write_markdown
from repro.core.report import ATTRIBUTES, AttributeValue, MemoryElementReport


class TestAttributeValue:
    def test_from_measurement(self):
        m = MeasurementResult("size", "L1", 4096, "B", 0.9)
        av = AttributeValue.from_measurement(m)
        assert av.value == 4096 and av.source is Source.BENCHMARK

    def test_rendered_size(self):
        assert AttributeValue(238 * 1024, "B", 1.0, Source.BENCHMARK).rendered() == "238 KiB"

    def test_rendered_api_tag(self):
        av = AttributeValue(1024, "B", 1.0, Source.API)
        assert "(API)" in av.rendered()

    def test_rendered_conf_zero(self):
        av = AttributeValue(65536, "B", 0.0, Source.BENCHMARK)
        assert "(conf 0)" in av.rendered()

    def test_rendered_na_and_missing(self):
        assert AttributeValue.not_applicable().rendered() == "n/a"
        assert AttributeValue.unavailable("B").rendered() == "—"

    def test_rendered_partners(self):
        av = AttributeValue(("Texture", "Readonly"), "elements", 1.0, Source.BENCHMARK)
        assert av.rendered() == "Texture,Readonly"
        assert AttributeValue((), "elements", 1.0, Source.BENCHMARK).rendered() == "no"

    def test_rendered_cu_map(self):
        av = AttributeValue({0: (1,), 1: (0,), 2: ()}, "cu-map", 1.0, Source.BENCHMARK)
        assert "2/3" in av.rendered()

    def test_as_dict_converts_tuples(self):
        av = AttributeValue(("a", "b"), "elements", 1.0, Source.BENCHMARK)
        assert av.as_dict()["value"] == ["a", "b"]


class TestMemoryElementReport:
    def test_unknown_attribute_rejected(self):
        el = MemoryElementReport("L1")
        with pytest.raises(KeyError):
            el.set("speed", AttributeValue.not_applicable())
        with pytest.raises(KeyError):
            el.get("speed")

    def test_missing_defaults_na(self):
        el = MemoryElementReport("L1")
        assert el.get("size").source is Source.NOT_APPLICABLE

    def test_constructor_validates(self):
        with pytest.raises(ValueError):
            MemoryElementReport("L1", {"bogus": AttributeValue.not_applicable()})


class TestTopologyReportModel:
    def test_element_lookup(self, nv_report):
        assert nv_report.element("L1").name == "L1"
        with pytest.raises(KeyError):
            nv_report.element("L9")

    def test_as_dict_schema(self, nv_report):
        d = nv_report.as_dict()
        assert d["schema"] == "mt4g-repro/1"
        assert set(d) >= {"general", "compute", "memory", "runtime", "seed"}
        for el in d["memory"].values():
            assert set(el["attributes"]) == set(ATTRIBUTES)


class TestJSONOutput:
    def test_valid_json(self, nv_report):
        parsed = json.loads(to_json(nv_report))
        assert parsed["general"]["vendor"] == "NVIDIA"

    def test_roundtrip_values(self, nv_report):
        parsed = json.loads(to_json(nv_report))
        l1 = parsed["memory"]["L1"]["attributes"]["size"]
        assert l1["value"] == nv_report.attribute("L1", "size").value
        assert l1["source"] == "benchmark"

    def test_write(self, nv_report, tmp_path):
        path = write_json(nv_report, tmp_path / "sub" / "r.json")
        assert path.exists()
        assert json.loads(path.read_text())["seed"] == nv_report.seed


class TestMarkdownOutput:
    def test_sections_present(self, nv_report):
        md = to_markdown(nv_report)
        for heading in ("## General Information", "## Compute Resources",
                        "## Memory Resources", "## Run Time"):
            assert heading in md

    def test_memory_table_rows(self, nv_report):
        md = to_markdown(nv_report)
        for element in nv_report.memory:
            assert f"| {element} |" in md

    def test_amd_renders_cu_ids(self, amd_report):
        md = to_markdown(amd_report)
        assert "SIMDs per CU: 4" in md
        assert "physical ids 0..9" in md

    def test_write(self, nv_report, tmp_path):
        path = write_markdown(nv_report, tmp_path / "r.md")
        assert path.read_text().startswith("# MT4G Topology Report")


class TestCSVOutput:
    def test_structure(self, nv_report):
        rows = list(csv.DictReader(io.StringIO(to_csv(nv_report))))
        assert len(rows) == len(nv_report.memory) * len(ATTRIBUTES)
        first = rows[0]
        assert set(first) == {"element", "attribute", "value", "unit",
                              "confidence", "source", "note"}

    def test_tuple_flattening(self, nv_report):
        rows = list(csv.DictReader(io.StringIO(to_csv(nv_report))))
        shared = [r for r in rows if r["element"] == "L1" and r["attribute"] == "shared_with"]
        assert shared[0]["value"] == "Readonly;Texture"

    def test_write(self, nv_report, tmp_path):
        path = write_csv(nv_report, tmp_path / "r.csv")
        assert path.exists() and path.read_text().startswith("element,")


class TestFlattenValue:
    """Regression tests for the CSV value flattener (dict handling)."""

    def test_dict_with_scalar_values_not_mangled(self):
        # the old code iterated the scalar character by character
        assert _flatten_value({"L2": "Shared"}) == "L2:Shared"

    def test_dict_with_non_iterable_values(self):
        # the old code raised TypeError on ints
        assert _flatten_value({0: 1, 1: 0}) == "0:1;1:0"

    def test_dict_with_sequence_values_pipe_joined(self):
        assert _flatten_value({0: (1, 2), 1: [3]}) == "0:1|2;1:3"

    def test_scalars_and_sequences(self):
        assert _flatten_value(None) == ""
        assert _flatten_value((1, 2)) == "1;2"
        assert _flatten_value([1, 2]) == "1;2"
        assert _flatten_value(0.1234567891) == "0.123457"
        assert _flatten_value("plain") == "plain"


class TestValidationRendering:
    """A validated report's validation section reaches all three writers."""

    @pytest.fixture(scope="class")
    def validated(self, nv_report, nv_device):
        from repro.gpuspec.presets import get_preset
        from repro.validate import validate_report

        # deep-copy the elements: recalibration mutates AttributeValue
        # confidences in place and must not touch the shared fixture
        report = dataclasses.replace(nv_report)
        report.memory = {
            name: MemoryElementReport(
                name,
                {a: dataclasses.replace(av) for a, av in el.attributes.items()},
            )
            for name, el in nv_report.memory.items()
        }
        validate_report(report, spec=get_preset("TestGPU-NV"))
        return report

    def test_fixture_report_untouched(self, nv_report, validated):
        assert nv_report.validation is None

    def test_json_contains_validation(self, validated):
        parsed = json.loads(to_json(validated))
        assert "verdict" in parsed["validation"]
        assert parsed["validation"]["checks"]

    def test_markdown_contains_validation(self, validated):
        md = to_markdown(validated)
        assert "## Validation" in md
        assert f"Verdict: **{validated.validation.verdict}**" in md

    def test_csv_appends_validation_rows(self, validated, nv_report):
        plain_rows = list(csv.DictReader(io.StringIO(to_csv(nv_report))))
        rows = list(csv.DictReader(io.StringIO(to_csv(validated))))
        extra = [r for r in rows if r["element"] == "__validation__"]
        # the legacy attribute rows keep their exact shape and count
        assert len(rows) - len(extra) == len(plain_rows)
        assert extra[0]["attribute"] == "verdict"
        assert all(r["source"] == "validation" for r in extra)


class TestToJsonable:
    def test_numpy_and_tuples(self):
        import numpy as np

        payload = {
            "arr": np.arange(3),
            "scalar": np.float64(1.5),
            "tup": (1, 2),
            5: "int key",
            "enum": Source.BENCHMARK,
        }
        out = to_jsonable(payload)
        json.dumps(out)
        assert out["arr"] == [0, 1, 2]
        assert out["scalar"] == 1.5
        assert out["tup"] == [1, 2]
        assert out["5"] == "int key"
        assert out["enum"] == "benchmark"
