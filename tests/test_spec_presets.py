"""Tests for the hardware spec model and the Table II presets."""

import dataclasses

import pytest

from repro.errors import SpecError, UnknownGPUError
from repro.gpuspec import (
    CacheScope,
    CacheSpec,
    ComputeSpec,
    NoiseSpec,
    Quirk,
    Vendor,
    available_presets,
    get_preset,
)
from repro.gpuspec.presets import PAPER_PRESETS
from repro.units import GiB, KiB, MiB


class TestCacheSpec:
    def test_geometry_properties(self):
        c = CacheSpec(
            name="X", size=4096, line_size=64, fetch_granularity=32, ways=2,
            load_latency=10.0,
        )
        assert c.num_sets == 32
        assert c.sectors_per_line == 2
        assert c.effective_physical_id == "X"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size=0),
            dict(line_size=48),
            dict(fetch_granularity=48),
            dict(ways=0),
            dict(size=1000),
            dict(load_latency=0),
            dict(segments=0),
        ],
    )
    def test_validation(self, kwargs):
        base = dict(
            name="X", size=4096, line_size=64, fetch_granularity=32, ways=2,
            load_latency=10.0,
        )
        base.update(kwargs)
        with pytest.raises(SpecError):
            CacheSpec(**base)


class TestComputeSpec:
    def test_warp_math(self):
        c = ComputeSpec(
            num_sms=4, cores_per_sm=128, warp_size=32, max_blocks_per_sm=8,
            max_threads_per_block=1024, max_threads_per_sm=2048,
            registers_per_block=65536, registers_per_sm=65536,
        )
        assert c.warps_per_sm == 4
        assert c.max_warps_per_sm == 64

    def test_cores_must_be_warp_multiple(self):
        with pytest.raises(SpecError):
            ComputeSpec(
                num_sms=1, cores_per_sm=100, warp_size=32, max_blocks_per_sm=1,
                max_threads_per_block=1, max_threads_per_sm=1,
                registers_per_block=1, registers_per_sm=1,
            )

    def test_physical_ids_length_checked(self):
        with pytest.raises(SpecError):
            ComputeSpec(
                num_sms=4, cores_per_sm=64, warp_size=64, max_blocks_per_sm=1,
                max_threads_per_block=1, max_threads_per_sm=64,
                registers_per_block=1, registers_per_sm=1,
                physical_cu_ids=(0, 1),
            )


class TestGPUSpecInvariants:
    def test_shared_physical_geometry_enforced(self):
        base = get_preset("TestGPU-NV")
        caches = list(base.caches)
        # Corrupt the Texture cache to differ from L1 while sharing l1tex.
        bad = dataclasses.replace(caches[1], size=caches[1].size * 2)
        with pytest.raises(SpecError):
            dataclasses.replace(base, caches=tuple([caches[0], bad] + caches[2:]))

    def test_duplicate_cache_names_rejected(self):
        base = get_preset("TestGPU-NV")
        with pytest.raises(SpecError):
            dataclasses.replace(base, caches=base.caches + (base.caches[0],))

    def test_cache_lookup(self):
        spec = get_preset("H100-80")
        assert spec.cache("L2").segments == 2
        with pytest.raises(SpecError):
            spec.cache("nonexistent")
        assert spec.has_cache("L1") and not spec.has_cache("L9")

    def test_sharing_groups(self):
        groups = get_preset("H100-80").sharing_groups()
        assert set(groups["l1tex"]) == {"L1", "Texture", "Readonly"}
        assert groups["ConstL1"] == ("ConstL1",)

    def test_carveout(self):
        spec = get_preset("H100-80")
        assert spec.effective_l1_size("PreferL1") == 238 * KiB
        assert spec.effective_l1_size("PreferShared") == 28 * KiB
        with pytest.raises(SpecError):
            spec.effective_l1_size("PreferNothing")

    def test_carveout_default_without_table(self):
        spec = get_preset("P6000")  # Pascal: fixed L1
        assert spec.effective_l1_size() == spec.cache("L1").size

    def test_noise_spec_validation(self):
        with pytest.raises(SpecError):
            NoiseSpec(outlier_probability=1.5)
        with pytest.raises(SpecError):
            NoiseSpec(measurement_overhead=-1)


class TestRegistry:
    def test_paper_presets_complete(self):
        # The ten validation machines of Table II.
        expected = {
            "P6000", "V100", "T1000", "RTX2080", "A100",
            "H100-80", "H100-96", "MI100", "MI210", "MI300X",
        }
        assert set(available_presets()) == expected

    def test_testing_presets_hidden_by_default(self):
        assert "TestGPU-NV" not in available_presets()
        assert "TestGPU-NV" in available_presets(include_testing=True)

    def test_unknown_raises(self):
        with pytest.raises(UnknownGPUError):
            get_preset("B100")

    @pytest.mark.parametrize("name", sorted(PAPER_PRESETS))
    def test_preset_internally_consistent(self, name):
        spec = get_preset(name)
        assert spec.name == name
        assert spec.compute.num_sms > 0
        # every cache validates at construction; sanity-check L2 presence
        assert spec.has_cache("L2")
        if spec.vendor is Vendor.AMD:
            assert spec.has_cache("vL1") and spec.has_cache("sL1d")
            assert spec.compute.warp_size == 64
            assert spec.compute.physical_cu_ids
        else:
            assert spec.has_cache("L1") and spec.has_cache("ConstL1")
            assert spec.compute.warp_size == 32


class TestPaperPresetFacts:
    """Ground-truth facts from the paper's Tables II/III."""

    def test_h100_l1(self):
        spec = get_preset("H100-80")
        l1 = spec.cache("L1")
        assert l1.size == 238 * KiB
        assert l1.line_size == 128 and l1.fetch_granularity == 32
        assert spec.cache("Texture").effective_physical_id == "l1tex"

    def test_h100_l2_segments(self):
        l2 = get_preset("H100-80").cache("L2")
        assert l2.size == 25 * MiB and l2.segments == 2  # API: 50 MB total

    def test_a100_l2_is_two_20mb_segments(self):
        l2 = get_preset("A100").cache("L2")
        assert l2.size == 20 * MiB and l2.segments == 2  # paper fn. 13

    def test_v100_two_sector_transaction(self):
        # Paper Section IV-D: V100 default transaction = 2 sectors = 64 B.
        assert get_preset("V100").cache("L1").fetch_granularity == 64

    def test_mi210_cu_topology(self):
        spec = get_preset("MI210")
        ids = spec.compute.physical_cu_ids
        assert len(ids) == 104
        assert max(ids) <= 127  # paper fn. 15: die has 128
        assert spec.cache("sL1d").cu_share_group == 2

    def test_mi100_sl1d_three_way(self):
        assert get_preset("MI100").cache("sL1d").cu_share_group == 3

    def test_mi300x_topology(self):
        spec = get_preset("MI300X")
        assert spec.compute.num_clusters == 8  # XCDs
        assert spec.cache("L2").segments == 8
        assert spec.has_cache("L3")
        assert Quirk.VIRTUALIZED in spec.quirks

    def test_p6000_quirks(self):
        spec = get_preset("P6000")
        assert Quirk.WARP_SCHEDULING_BUG in spec.quirks
        assert Quirk.FLAKY_L1_CONST_SHARING in spec.quirks
        assert spec.compute.warps_per_sm == 4  # warp 3 of 4 is the bug

    def test_a100_mig_profiles(self):
        spec = get_preset("A100")
        assert spec.mig_profiles["4g.20gb"] == (4, 4)
        assert spec.mig_profiles["1g.5gb"] == (1, 1)

    def test_memory_sizes(self):
        assert get_preset("H100-80").memory.size == 80 * GiB
        assert get_preset("MI210").memory.size == 64 * GiB
