"""Tests for the deterministic fault-injection plane (repro.faults).

The properties that make chaos testing trustworthy:

* off by default — no active plan means ``inject`` is a no-op and the
  hot path pays a single None check;
* deterministic — a (seed, plan) pair fires the identical fault sequence
  run after run: occurrence counters and hash-drawn probabilities, never
  global RNG;
* cross-process — activation mirrors the plan into ``$MT4G_FAULT_PLAN``
  so pool workers (fork or spawn) observe the parent's plan;
* typed — each fault kind maps onto the transient/permanent error
  taxonomy that drives retry decisions.
"""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.errors import (
    InjectedPermanentError,
    InjectedTransientError,
    ReproError,
    TransientError,
    WorkerCrashError,
    is_transient,
)
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.faults.retry import DEFAULT_FLEET_RETRY, DEFAULT_SERVE_RETRY


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no active plan (and no env)."""
    faults.deactivate()
    yield
    faults.deactivate()


def plan(*specs: FaultSpec, seed: int = 0) -> FaultPlan:
    return FaultPlan(specs, seed=seed)


# ---------------------------------------------------------------------- #
# inactive plane                                                          #
# ---------------------------------------------------------------------- #


class TestInactive:
    def test_inject_is_a_noop_without_a_plan(self):
        assert faults.active_plan() is None
        assert faults.inject("fleet.worker", "A100@0") is None
        assert faults.injected_counts() == {}
        assert faults.injected_total() == 0


# ---------------------------------------------------------------------- #
# spec matching + firing                                                  #
# ---------------------------------------------------------------------- #


class TestFiring:
    def test_crash_kind_raises_transient_worker_crash(self):
        with faults.injected(plan(FaultSpec("fleet.worker", "crash"))):
            with pytest.raises(WorkerCrashError):
                faults.inject("fleet.worker", "X@0")
        assert faults.active_plan() is None  # context restored

    def test_times_selects_exact_occurrences(self):
        spec = FaultSpec("s", "transient", times=(1,))
        with faults.injected(plan(spec)):
            assert faults.inject("s", "a") is None  # occurrence 0
            with pytest.raises(InjectedTransientError):
                faults.inject("s", "a")  # occurrence 1
            assert faults.inject("s", "a") is None  # occurrence 2

    def test_label_patterns_scope_the_fault(self):
        spec = FaultSpec("fleet.worker", "transient", label="A100@0")
        with faults.injected(plan(spec)):
            with pytest.raises(InjectedTransientError):
                faults.inject("fleet.worker", "A100@0")
            # the retry (attempt 1) does not match and sails through
            assert faults.inject("fleet.worker", "A100@1") is None
            assert faults.inject("fleet.worker", "H100@0") is None

    def test_site_globs(self):
        spec = FaultSpec("store.*", "io_error", times=None)
        with faults.injected(plan(spec)):
            with pytest.raises(OSError):
                faults.inject("store.get", "k")
            with pytest.raises(OSError):
                faults.inject("store.put", "k")
            assert faults.inject("fleet.worker", "k") is None

    def test_passive_corrupt_returns_the_spec(self):
        spec = FaultSpec("store.put", "corrupt")
        with faults.injected(plan(spec)):
            fired = faults.inject("store.put", "k")
        assert fired is not None and fired.kind == "corrupt"

    def test_slow_sleeps_then_returns(self):
        import time

        spec = FaultSpec("store.get", "slow", delay_seconds=0.02)
        with faults.injected(plan(spec)):
            t0 = time.perf_counter()
            fired = faults.inject("store.get", "k")
            assert time.perf_counter() - t0 >= 0.02
        assert fired is not None and fired.kind == "slow"

    def test_fired_counters_accumulate(self):
        spec = FaultSpec("s", "transient", times=None)
        with faults.injected(plan(spec)) as active:
            for _ in range(3):
                with pytest.raises(InjectedTransientError):
                    faults.inject("s", "x")
            assert active.fired == {"s": 3}
            assert faults.injected_counts() == {"s": 3}
            assert faults.injected_total() == 3

    def test_probability_gate_is_deterministic_and_roughly_calibrated(self):
        spec = FaultSpec("s", "transient", times=None, probability=0.3)

        def fire_pattern(seed: int) -> list[bool]:
            pattern = []
            with faults.injected(plan(spec, seed=seed)):
                for _ in range(200):
                    try:
                        faults.inject("s", "x")
                        pattern.append(False)
                    except InjectedTransientError:
                        pattern.append(True)
            return pattern

        first, replay = fire_pattern(7), fire_pattern(7)
        assert first == replay  # byte-for-byte replayable
        assert fire_pattern(8) != first  # the seed matters
        assert 30 <= sum(first) <= 90  # ~60 expected of 200

    def test_exit_kind_in_activating_process_raises_not_exits(self):
        # os._exit is reserved for *worker* processes; in the process
        # that activated the plan it must degrade to a crash exception.
        spec = FaultSpec("fleet.worker", "exit")
        with faults.injected(plan(spec)):
            with pytest.raises(WorkerCrashError):
                faults.inject("fleet.worker", "X@0")


# ---------------------------------------------------------------------- #
# (de)serialisation + env propagation                                     #
# ---------------------------------------------------------------------- #


class TestSerialisation:
    def test_round_trip(self):
        original = plan(
            FaultSpec("fleet.worker", "crash", label="A@0"),
            FaultSpec("store.*", "io_error", times=None, probability=0.5),
            seed=42,
        )
        clone = FaultPlan.from_env_value(original.to_json())
        assert clone.seed == 42
        assert [s.as_dict() for s in clone.specs] == [
            s.as_dict() for s in original.specs
        ]

    def test_from_env_value_reads_at_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(plan(FaultSpec("s", "transient")).to_json())
        clone = FaultPlan.from_env_value(f"@{path}")
        assert clone.specs[0].site == "s"

    def test_unknown_kind_and_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("s", "explode")
        with pytest.raises(ValueError, match="unknown fault spec field"):
            FaultSpec.from_dict({"site": "s", "kind": "crash", "blast_radius": 9})

    def test_activate_mirrors_into_env_and_deactivate_clears(self):
        faults.activate(plan(FaultSpec("s", "crash")))
        assert os.environ.get(faults.ENV_VAR)
        rehydrated = FaultPlan.from_env_value(os.environ[faults.ENV_VAR])
        assert rehydrated.specs[0].site == "s"
        faults.deactivate()
        assert faults.ENV_VAR not in os.environ

    def test_malformed_env_plan_is_ignored_not_fatal(self, capsys):
        from repro.faults import plan as plan_mod

        os.environ[faults.ENV_VAR] = "{definitely not json"
        try:
            plan_mod._bootstrap_from_env()
        finally:
            os.environ.pop(faults.ENV_VAR, None)
        assert faults.active_plan() is None
        assert "ignoring malformed" in capsys.readouterr().err


# ---------------------------------------------------------------------- #
# error taxonomy                                                          #
# ---------------------------------------------------------------------- #


class TestTaxonomy:
    def test_injected_faults_map_onto_the_retry_axis(self):
        assert is_transient(InjectedTransientError("x"))
        assert is_transient(WorkerCrashError("x"))
        assert not is_transient(InjectedPermanentError("x"))

    def test_repro_errors_are_permanent_unless_marked(self):
        assert not is_transient(ReproError("config mistake"))
        assert is_transient(TransientError("flaky"))

    def test_foreign_infrastructure_errors_are_transient(self):
        assert is_transient(OSError("disk hiccup"))
        assert is_transient(TimeoutError())
        assert is_transient(ConnectionError())
        assert not is_transient(ValueError("a bug"))


# ---------------------------------------------------------------------- #
# retry policy                                                            #
# ---------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_delay_is_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, seed=3)
        assert policy.delay("A", 0) == policy.delay("A", 0)
        assert policy.delay("A", 0) != policy.delay("B", 0)
        assert RetryPolicy(seed=4).delay("A", 0) != policy.delay("A", 0)

    def test_delay_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=100.0)
        for attempt in range(5):
            raw = 0.1 * 2**attempt
            d = policy.delay("k", attempt)
            assert 0.5 * raw <= d < raw

    def test_delay_caps_at_max(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=2.0)
        assert policy.delay("k", 10) <= 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_seconds=0)

    def test_with_deadline(self):
        policy = DEFAULT_FLEET_RETRY.with_deadline(5.0)
        assert policy.deadline_seconds == 5.0
        assert DEFAULT_FLEET_RETRY.deadline_seconds is None  # frozen
        assert DEFAULT_FLEET_RETRY.with_deadline(None) is DEFAULT_FLEET_RETRY

    def test_defaults_are_bounded(self):
        assert DEFAULT_FLEET_RETRY.attempts >= 2
        assert DEFAULT_SERVE_RETRY.attempts >= 2
        assert DEFAULT_FLEET_RETRY.max_delay <= 2.0


# ---------------------------------------------------------------------- #
# store injection points                                                  #
# ---------------------------------------------------------------------- #


class TestStoreInjection:
    def test_injected_read_failure_degrades_to_miss(self, tmp_path):
        from repro.cache.store import DiscoveryCache

        store = DiscoveryCache(tmp_path)
        key = "aa" * 32
        store.put(key, {"x": 1})
        with faults.injected(plan(FaultSpec("store.get", "io_error"))):
            assert store.get(key) is None  # degraded miss
        assert store.degradations["read_error"] == 1
        assert store.get(key) == {"x": 1}  # entry intact underneath

    def test_injected_write_failure_is_a_counted_noop(self, tmp_path):
        from repro.cache.store import DiscoveryCache

        store = DiscoveryCache(tmp_path)
        with faults.injected(plan(FaultSpec("store.put", "io_error"))):
            assert store.put("bb" * 32, {"x": 1}) is False
        assert store.degradations["write_error"] == 1
        assert store.get("bb" * 32) is None

    def test_corrupted_on_write_entry_heals_on_read(self, tmp_path):
        from repro.cache.store import DiscoveryCache

        store = DiscoveryCache(tmp_path)
        key = "cc" * 32
        with faults.injected(plan(FaultSpec("store.put", "corrupt"))):
            assert store.put(key, {"x": 1}) is True  # the torn write lands
        assert store.get(key) is None  # detected: miss, not garbage
        assert store.degradations["corrupt_entry"] == 1
        assert not store._entry_path(key).exists()  # healed (deleted)
        assert store.put(key, {"x": 1}) and store.get(key) == {"x": 1}

    def test_injected_stats_failure_never_sinks_record_wall(self, tmp_path):
        from repro.cache.store import DiscoveryCache

        store = DiscoveryCache(tmp_path)
        with faults.injected(plan(FaultSpec("store.stats", "io_error"))):
            store.record_wall("p", 1.0)  # swallowed (cache never sinks a run)
        assert store.recorded_walls() == {}
        store.record_wall("p", 1.0)
        assert store.recorded_walls() == {"p": pytest.approx(1.0)}
