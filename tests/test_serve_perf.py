"""Tests for the PR-9 serve hot path: keep-alive framing, the
hot-report render cache, the catalog TTL snapshot, and the persistent
pre-warmed worker pool.

The framing contracts that make connection reuse safe:

* pipelined requests arriving in one TCP segment are answered one by
  one, responses in request order;
* a request line or body split across reads is reassembled;
* an oversized Content-Length is a 413 with ``Connection: close`` (the
  body was never drained, so the stream cannot be reused);
* an idle keep-alive socket is reaped after the timeout — counted, not
  erred;
* a malformed second request on a reused connection gets a 400 and the
  connection closes.

And the optimisation contracts: hot-cache hits serve byte-identical
pre-rendered responses, store writes invalidate, the catalog snapshot
respects its TTL, and a broken warm pool respawns (and re-warms) once.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import BrokenExecutor, Future, ThreadPoolExecutor

import pytest

from repro import MT4G, DiscoveryCache, SimulatedGPU
from repro.core.output.json_out import to_json
from repro.serve import DeviceCatalog, HotReportCache, JobQueue, TopologyService
from repro.serve.jobs import _warm_worker

PRESET = "TestGPU-NV"


@pytest.fixture
def store(tmp_path) -> DiscoveryCache:
    return DiscoveryCache(tmp_path / "store")


@pytest.fixture
def executor():
    ex = ThreadPoolExecutor(max_workers=2)
    yield ex
    ex.shutdown(wait=True)


def warm(store, preset=PRESET, seed=0, validate=False):
    device = SimulatedGPU.from_preset(preset, seed=seed)
    return MT4G(device, cache=store).discover(validate=validate)


def make_service(store, executor, **kw) -> TopologyService:
    kw.setdefault("max_workers", 2)
    return TopologyService(store, executor=executor, **kw)


async def read_response(reader: asyncio.StreamReader) -> tuple[bytes, bytes]:
    """One framed (head, body) off a possibly-reused connection."""
    head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), 5.0)
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":")[1])
    body = await asyncio.wait_for(reader.readexactly(length), 5.0)
    return head, body


def request_bytes(path: str, close: bool = False, body: bytes = b"") -> bytes:
    head = f"GET {path} HTTP/1.1\r\nHost: x\r\n"
    if close:
        head += "Connection: close\r\n"
    if body:
        head = head.replace("GET", "POST", 1) + f"Content-Length: {len(body)}\r\n"
    return head.encode() + b"\r\n" + body


# ---------------------------------------------------------------------- #
# keep-alive framing                                                      #
# ---------------------------------------------------------------------- #


class TestKeepAliveFraming:
    def run_connected(self, service, scenario):
        """Start the service, run ``scenario(reader, writer)``, stop."""

        async def runner():
            host, port = await service.start(port=0)
            reader, writer = await asyncio.open_connection(host, port)
            try:
                return await scenario(reader, writer)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                await service.stop()

        return asyncio.run(runner())

    def test_connection_reuse_serves_many_requests(self, store, executor):
        warm(store)
        service = make_service(store, executor, read_only=True)

        async def scenario(reader, writer):
            bodies = []
            for _ in range(3):
                writer.write(request_bytes("/healthz"))
                await writer.drain()
                head, body = await read_response(reader)
                assert b"Connection: keep-alive" in head
                bodies.append(body)
            return bodies

        bodies = self.run_connected(service, scenario)
        assert all(json.loads(b)["status"] == "ok" for b in bodies)
        assert service.metrics.connections["accepted"] == 1
        assert service.metrics.connections["reused"] == 2

    def test_pipelined_requests_in_one_segment(self, store, executor):
        warm(store)
        service = make_service(store, executor, read_only=True)

        async def scenario(reader, writer):
            # Two complete requests in a single write: the reader
            # buffers the second while the first is handled.
            writer.write(
                request_bytes("/healthz")
                + request_bytes(f"/devices/{PRESET}/report?seed=0", close=True)
            )
            await writer.drain()
            first = await read_response(reader)
            second = await read_response(reader)
            return first, second

        (h1, b1), (h2, b2) = self.run_connected(service, scenario)
        assert h1.startswith(b"HTTP/1.1 200") and json.loads(b1)["status"] == "ok"
        assert h2.startswith(b"HTTP/1.1 200")
        cli = MT4G(SimulatedGPU.from_preset(PRESET, seed=0)).discover()
        assert b2 == (to_json(cli) + "\n").encode()
        assert b"Connection: close" in h2  # the client's close was honored
        assert service.metrics.connections["reused"] == 1

    def test_request_line_split_across_reads(self, store, executor):
        warm(store)
        service = make_service(store, executor, read_only=True)

        async def scenario(reader, writer):
            raw = request_bytes("/healthz", close=True)
            writer.write(raw[:7])  # mid-request-line
            await writer.drain()
            await asyncio.sleep(0.05)
            writer.write(raw[7:])
            await writer.drain()
            return await read_response(reader)

        head, body = self.run_connected(service, scenario)
        assert head.startswith(b"HTTP/1.1 200")
        assert json.loads(body)["status"] == "ok"

    def test_body_split_across_reads(self, store, executor):
        service = make_service(store, executor)

        async def scenario(reader, writer):
            payload = json.dumps({"preset": PRESET, "seed": 0}).encode()
            raw = request_bytes("/discover", close=True, body=payload)
            split = len(raw) - 6  # mid-body
            writer.write(raw[:split])
            await writer.drain()
            await asyncio.sleep(0.05)
            writer.write(raw[split:])
            await writer.drain()
            return await read_response(reader)

        head, body = self.run_connected(service, scenario)
        assert head.startswith(b"HTTP/1.1 202")
        assert json.loads(body)["preset"] == PRESET

    def test_oversized_body_is_413_and_closes(self, store, executor):
        from repro.serve import server as server_mod

        service = make_service(store, executor)

        async def scenario(reader, writer):
            writer.write(
                b"POST /discover HTTP/1.1\r\nHost: x\r\n"
                + f"Content-Length: {server_mod.MAX_BODY_BYTES + 1}\r\n\r\n".encode()
            )
            await writer.drain()
            head, body = await read_response(reader)
            eof = await asyncio.wait_for(reader.read(), 5.0)
            return head, body, eof

        head, body, eof = self.run_connected(service, scenario)
        assert head.startswith(b"HTTP/1.1 413")
        assert b"Connection: close" in head
        assert eof == b""  # the server really closed
        assert service.metrics.bad_requests == 1

    def test_idle_keep_alive_socket_is_reaped(self, store, executor):
        warm(store)
        service = make_service(
            store, executor, read_only=True, keep_alive_timeout=0.2
        )

        async def scenario(reader, writer):
            writer.write(request_bytes("/healthz"))
            await writer.drain()
            head, _ = await read_response(reader)
            assert b"Connection: keep-alive" in head
            # ...then go idle past the window: the server closes.
            eof = await asyncio.wait_for(reader.read(), 5.0)
            return eof

        eof = self.run_connected(service, scenario)
        assert eof == b""
        assert service.metrics.connections["idle_reaped"] == 1
        assert service.metrics.bad_requests == 0  # idleness is not an error

    def test_malformed_second_request_closes_with_400(self, store, executor):
        warm(store)
        service = make_service(store, executor, read_only=True)

        async def scenario(reader, writer):
            writer.write(request_bytes("/healthz"))
            await writer.drain()
            first, _ = await read_response(reader)
            writer.write(b"?????\r\n\r\n")
            await writer.drain()
            second, _ = await read_response(reader)
            eof = await asyncio.wait_for(reader.read(), 5.0)
            return first, second, eof

        first, second, eof = self.run_connected(service, scenario)
        assert first.startswith(b"HTTP/1.1 200")
        assert second.startswith(b"HTTP/1.1 400")
        assert b"Connection: close" in second
        assert eof == b""
        assert service.metrics.bad_requests == 1

    def test_request_cap_closes_the_connection(self, store, executor):
        warm(store)
        service = make_service(
            store, executor, read_only=True, max_requests_per_connection=2
        )

        async def scenario(reader, writer):
            writer.write(request_bytes("/healthz") + request_bytes("/healthz"))
            await writer.drain()
            h1, _ = await read_response(reader)
            h2, _ = await read_response(reader)
            eof = await asyncio.wait_for(reader.read(), 5.0)
            return h1, h2, eof

        h1, h2, eof = self.run_connected(service, scenario)
        assert b"Connection: keep-alive" in h1
        assert b"Connection: close" in h2  # the cap, announced honestly
        assert eof == b""

    def test_keep_alive_timeout_zero_restores_close_per_request(
        self, store, executor
    ):
        warm(store)
        service = make_service(
            store, executor, read_only=True, keep_alive_timeout=0
        )

        async def scenario(reader, writer):
            writer.write(request_bytes("/healthz"))
            await writer.drain()
            head, _ = await read_response(reader)
            eof = await asyncio.wait_for(reader.read(), 5.0)
            return head, eof

        head, eof = self.run_connected(service, scenario)
        assert b"Connection: close" in head
        assert eof == b""
        assert service.metrics.connections["reused"] == 0

    def test_http10_defaults_to_close(self, store, executor):
        warm(store)
        service = make_service(store, executor, read_only=True)

        async def scenario(reader, writer):
            writer.write(b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")
            await writer.drain()
            head, _ = await read_response(reader)
            eof = await asyncio.wait_for(reader.read(), 5.0)
            return head, eof

        head, eof = self.run_connected(service, scenario)
        assert b"Connection: close" in head
        assert eof == b""

    def test_write_error_is_counted(self, store, executor):
        from repro.serve.handlers import HTTPResponse

        service = make_service(store, executor)

        class VanishedClient:
            def write(self, data):
                raise ConnectionResetError("client went away")

            async def drain(self):  # pragma: no cover - write raises first
                pass

        async def scenario():
            ok = await service._write(
                VanishedClient(), HTTPResponse(body=b"x"), close=True
            )
            return ok

        assert asyncio.run(scenario()) is False
        assert service.metrics.connections["write_errors"] == 1


# ---------------------------------------------------------------------- #
# hot-report render cache                                                 #
# ---------------------------------------------------------------------- #


class TestHotReportCache:
    def test_byte_budget_evicts_lru(self):
        cache = HotReportCache(max_bytes=100)
        cache.put("k1", "report:json", b"a" * 60, "application/json")
        cache.put("k2", "report:json", b"b" * 30, "application/json")
        cache.get("k1", "report:json")  # k1 is now most recent
        cache.put("k3", "report:json", b"c" * 30, "application/json")
        assert cache.get("k2", "report:json") is None  # LRU victim
        assert cache.get("k1", "report:json") is not None
        assert cache.bytes_used <= 100
        assert cache.evictions == 1

    def test_oversized_body_is_refused(self):
        cache = HotReportCache(max_bytes=10)
        assert cache.put("k", "report:json", b"x" * 11, "t") is False
        assert len(cache) == 0

    def test_invalidate_drops_every_format_of_a_key(self):
        cache = HotReportCache(max_bytes=1 << 20)
        cache.put("k", "report:json", b"{}", "application/json")
        cache.put("k", "report:markdown", b"# x", "text/markdown")
        cache.put("other", "report:json", b"{}", "application/json")
        assert cache.invalidate("k") == 2
        assert cache.get("k", "report:json") is None
        assert cache.get("other", "report:json") is not None

    def test_warm_report_is_served_from_the_hot_cache(self, store, executor):
        warm(store)
        service = make_service(
            store, executor, read_only=True, hot_cache_bytes=1 << 20
        )

        async def scenario():
            from repro.serve.handlers import HTTPRequest

            first = await service.handle_request(
                HTTPRequest("GET", f"/devices/{PRESET}/report")
            )
            second = await service.handle_request(
                HTTPRequest("GET", f"/devices/{PRESET}/report")
            )
            return first, second

        first, second = asyncio.run(scenario())
        assert first.status == second.status == 200
        assert first.body == second.body
        cli = MT4G(SimulatedGPU.from_preset(PRESET, seed=0)).discover()
        assert second.body == (to_json(cli) + "\n").encode()
        assert service.hot_cache.hits == 1
        assert service.hot_cache.stores >= 1
        # the hit skipped the store entirely: exactly one store read
        assert store.hits == 1

    def test_formats_are_cached_independently(self, store, executor):
        warm(store)
        service = make_service(
            store, executor, read_only=True, hot_cache_bytes=1 << 20
        )

        async def scenario():
            from repro.serve.handlers import HTTPRequest

            js = await service.handle_request(
                HTTPRequest("GET", f"/devices/{PRESET}/report")
            )
            md = await service.handle_request(
                HTTPRequest(
                    "GET", f"/devices/{PRESET}/report", query={"format": "markdown"}
                )
            )
            graph = await service.handle_request(
                HTTPRequest("GET", f"/graph/{PRESET}")
            )
            return js, md, graph

        js, md, graph = asyncio.run(scenario())
        assert js.content_type == "application/json"
        assert md.content_type == "text/markdown"
        assert graph.status == 200
        assert len(service.hot_cache) == 3

    def test_landed_entry_invalidates(self, store, executor):
        service = make_service(store, executor, hot_cache_bytes=1 << 20)
        key = service.jobs.report_key(PRESET, 0, False)
        # A stray render for this key (a different format, so the cold
        # request below cannot short-circuit on it): when the discovery
        # lands its entry, _entry_landed must sweep every format.
        service.hot_cache.put(key, "report:markdown", b"# stray", "text/markdown")

        async def scenario():
            from repro.serve.handlers import HTTPRequest

            return await service.handle_request(
                HTTPRequest("GET", f"/devices/{PRESET}/report")
            )

        cold = asyncio.run(scenario())
        assert cold.status == 200
        assert service.hot_cache.invalidations == 1  # the stray, swept
        assert service.hot_cache.get(key, "report:markdown") is None
        # the fresh render was cached *after* the invalidation
        assert service.hot_cache.get(key, "report:json") == (
            cold.body,
            "application/json",
        )


# ---------------------------------------------------------------------- #
# catalog TTL snapshot                                                    #
# ---------------------------------------------------------------------- #


class TestCatalogSnapshot:
    def test_ttl_zero_walks_every_call(self, store):
        warm(store)
        catalog = DeviceCatalog(store, ttl=0.0)
        assert len(catalog.entries()) == 1
        warm(store, "TestGPU-AMD")
        assert len(catalog.entries()) == 2  # no caching at all

    def test_snapshot_is_reused_within_the_ttl(self, store):
        clock = [0.0]
        warm(store)
        catalog = DeviceCatalog(store, ttl=5.0, clock=lambda: clock[0])
        assert len(catalog.entries()) == 1
        warm(store, "TestGPU-AMD")  # lands outside the catalog's view
        assert len(catalog.entries()) == 1  # still the snapshot
        clock[0] = 6.0  # TTL lapsed
        assert len(catalog.entries()) == 2

    def test_invalidate_drops_the_snapshot_immediately(self, store):
        warm(store)
        catalog = DeviceCatalog(store, ttl=60.0)
        assert len(catalog.entries()) == 1
        warm(store, "TestGPU-AMD")
        catalog.invalidate()  # what _entry_landed calls
        assert len(catalog.entries()) == 2

    def test_filters_apply_to_the_snapshot_afresh(self, store):
        warm(store, "TestGPU-NV")
        warm(store, "TestGPU-AMD")
        catalog = DeviceCatalog(store, ttl=60.0)
        assert len(catalog.entries()) == 2
        assert len(catalog.entries(vendor="NVIDIA")) == 1
        assert len(catalog.entries(vendor="AMD")) == 1

    def test_entry_count_is_cached_and_invalidated(self, store):
        clock = [0.0]
        warm(store)
        catalog = DeviceCatalog(store, ttl=5.0, clock=lambda: clock[0])
        assert catalog.entry_count() == 1
        warm(store, "TestGPU-AMD")
        assert catalog.entry_count() == 1  # cached
        catalog.invalidate()
        assert catalog.entry_count() == 2


# ---------------------------------------------------------------------- #
# persistent pre-warmed pool                                              #
# ---------------------------------------------------------------------- #


class _BrokenPool:
    """An executor whose every future fails like a dead process pool."""

    def __init__(self):
        self.submissions = 0

    def submit(self, fn, *args, **kwargs):
        self.submissions += 1
        future: Future = Future()
        future.set_exception(BrokenExecutor("pool died"))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestWarmPool:
    def test_pool_mode_is_validated(self, store):
        with pytest.raises(ValueError, match="pool_mode"):
            JobQueue(store, pool_mode="tepid")

    def test_prewarm_runs_one_warmup_per_slot(self, store):
        queue = JobQueue(
            store,
            max_workers=2,
            pool_mode="warm",
            executor_factory=lambda: ThreadPoolExecutor(max_workers=2),
        )
        try:
            queue.prewarm()
            deadline = 50
            while queue.workers_warmed < 2 and deadline:
                import time

                time.sleep(0.02)
                deadline -= 1
            assert queue.workers_warmed == 2
        finally:
            queue.shutdown()

    def test_warm_worker_builds_the_tier_stack(self, store):
        import os

        assert _warm_worker(str(store.root)) == os.getpid()

    def test_broken_pool_respawns_once_and_rewarms(self, store, monkeypatch):
        pools = []

        def factory():
            pool = _BrokenPool() if not pools else ThreadPoolExecutor(max_workers=1)
            pools.append(pool)
            return pool

        async def scenario():
            # failure_ttl=0: the infrastructure failure must not gate
            # the retry behind the failure memo — this test is about the
            # pool respawning, not the memo window.
            queue = JobQueue(
                store,
                max_workers=1,
                pool_mode="warm",
                executor_factory=factory,
                failure_ttl=0.0,
            )
            broken = queue.submit(PRESET, seed=0)
            await asyncio.wait_for(queue.wait(broken), 5.0)
            assert broken.status == "error"
            assert broken.error_kind == "infrastructure"
            assert queue.executor_broken is True
            assert queue.pool_respawns == 1
            # next job builds the replacement pool, re-warms it, and runs
            retried = queue.submit(PRESET, seed=0)
            await asyncio.wait_for(queue.wait(retried), 30.0)
            assert retried.status == "done"
            assert queue.executor_broken is False
            assert queue.pool_respawns == 1  # one breakage, one respawn
            for _ in range(50):
                if queue.workers_warmed:
                    break
                await asyncio.sleep(0.02)
            assert queue.workers_warmed >= 1
            queue.shutdown()

        asyncio.run(scenario())
        assert len(pools) == 2
        for pool in pools[1:]:
            pool.shutdown(wait=True)

    def test_injected_executor_is_never_respawned(self, store, executor):
        queue = JobQueue(store, executor=executor, pool_mode="warm")
        queue._note_broken_pool()
        assert queue.executor_broken is True
        assert queue.pool_respawns == 0  # not ours to discard
        assert queue._executor is executor


# ---------------------------------------------------------------------- #
# report-key memo                                                         #
# ---------------------------------------------------------------------- #


class TestReportKeyMemo:
    def test_repeat_lookups_hit_the_memo(self, store, executor, monkeypatch):
        queue = JobQueue(store, executor=executor)
        derivations = []
        real = DiscoveryCache.report_key

        def counting(self, *args, **kwargs):
            derivations.append(1)
            return real(self, *args, **kwargs)

        monkeypatch.setattr(DiscoveryCache, "report_key", counting)
        first = queue.report_key(PRESET, 0, False)
        again = queue.report_key(PRESET, 0, False)
        other = queue.report_key(PRESET, 1, False)
        assert first == again and first != other
        assert len(derivations) == 2  # one per distinct identity

    def test_unknown_preset_is_never_memoised(self, store, executor):
        from repro.errors import UnknownGPUError

        queue = JobQueue(store, executor=executor)
        for _ in range(2):
            with pytest.raises(UnknownGPUError):
                queue.report_key("NoSuchGPU", 0, False)
        assert len(queue._key_memo) == 0

    def test_memo_is_bounded(self, store, executor):
        queue = JobQueue(store, executor=executor)
        queue.KEY_MEMO_MAX = 3
        for seed in range(6):
            queue.report_key(PRESET, seed, False)
        assert len(queue._key_memo) == 3


# ---------------------------------------------------------------------- #
# metrics exposure                                                        #
# ---------------------------------------------------------------------- #


class TestMetricsExposure:
    def test_snapshot_and_prometheus_carry_the_new_counters(
        self, store, executor
    ):
        from repro.serve.metrics import to_prometheus

        warm(store)
        service = make_service(
            store, executor, read_only=True, hot_cache_bytes=1 << 20
        )
        service.metrics.connections["accepted"] = 3
        service.metrics.connections["reused"] = 7
        service.metrics.connections["write_errors"] = 1

        async def scenario():
            from repro.serve.handlers import HTTPRequest

            await service.handle_request(
                HTTPRequest("GET", f"/devices/{PRESET}/report")
            )
            await service.handle_request(
                HTTPRequest("GET", f"/devices/{PRESET}/report")
            )
            return await service.handle_request(HTTPRequest("GET", "/metrics"))

        metrics = asyncio.run(scenario())
        payload = json.loads(metrics.body)
        connections = payload["http"]["connections"]
        assert connections["accepted"] == 3
        assert connections["reused"] == 7
        assert connections["write_errors"] == 1
        assert payload["hot_cache"]["hits"] == 1
        assert payload["jobs"]["pool_respawns"] == 0
        assert payload["jobs"]["workers_warmed"] == 0
        text = to_prometheus(payload)
        assert 'mt4g_http_connections_total{event="reused"} 7' in text
        assert "mt4g_http_connection_write_errors_total 1" in text
        assert "mt4g_hot_cache_hits_total 1" in text
        assert "mt4g_jobs_pool_respawns_total 0" in text
