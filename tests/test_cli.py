"""Tests for the mt4g command-line interface."""

import json

import pytest

from repro.core.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.gpu == "H100-80"
        assert args.seed == 0
        assert args.json is None

    def test_flag_with_default_filename(self):
        args = build_parser().parse_args(["-j"])
        assert args.json == ""

    def test_flag_with_explicit_filename(self):
        args = build_parser().parse_args(["-j", "out.json"])
        assert args.json == "out.json"

    def test_mem_repeatable(self):
        args = build_parser().parse_args(["--mem", "L1", "--mem", "L2"])
        assert args.mem == ["L1", "L2"]

    def test_cache_config_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--cache-config", "PreferChaos"])


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "H100-80" in out and "TestGPU-NV" in out

    def test_unknown_gpu_fails(self, capsys):
        assert main(["--gpu", "B200"]) == 1
        assert "error" in capsys.readouterr().err

    def test_quiet_json_run(self, capsys):
        rc = main(["--gpu", "TestGPU-AMD", "--mem", "LDS", "--mem",
                   "DeviceMemory", "-q", "--seed", "5"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["general"]["vendor"] == "AMD"
        assert set(report["memory"]) == {"LDS", "DeviceMemory"}

    def test_bad_mem_element(self, capsys):
        with pytest.raises(SystemExit):
            main(["--gpu", "TestGPU-NV", "--mem", "vL1", "-q"])

    def test_output_files(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main([
            "--gpu", "TestGPU-NV", "--mem", "SharedMem", "-q",
            "-j", "r.json", "-p", "r.md", "--csv", "r.csv", "-o", "r_raw.json",
        ])
        assert rc == 0
        assert (tmp_path / "r.json").exists()
        assert (tmp_path / "r.md").exists()
        assert (tmp_path / "r.csv").exists()
        raw = json.loads((tmp_path / "r_raw.json").read_text())
        assert raw["benchmarks_executed"] >= 1

    def test_default_filenames(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["--gpu", "TestGPU-NV", "--mem", "SharedMem", "-q", "-j"])
        assert rc == 0
        assert (tmp_path / "TestGPU-NV.json").exists()
