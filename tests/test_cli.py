"""Tests for the mt4g command-line interface."""

import csv
import json

import pytest

from repro.core.cli import (
    build_fleet_parser,
    build_graph_parser,
    build_parser,
    build_serve_parser,
    fleet_main,
    main,
)
from repro.core.report import ATTRIBUTES


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.gpu == "H100-80"
        assert args.seed == 0
        assert args.json is None

    def test_flag_with_default_filename(self):
        args = build_parser().parse_args(["-j"])
        assert args.json == ""

    def test_flag_with_explicit_filename(self):
        args = build_parser().parse_args(["-j", "out.json"])
        assert args.json == "out.json"

    def test_mem_repeatable(self):
        args = build_parser().parse_args(["--mem", "L1", "--mem", "L2"])
        assert args.mem == ["L1", "L2"]

    def test_cache_config_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--cache-config", "PreferChaos"])


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "H100-80" in out and "TestGPU-NV" in out

    def test_unknown_gpu_fails(self, capsys):
        assert main(["--gpu", "B200"]) == 1
        assert "error" in capsys.readouterr().err

    def test_quiet_json_run(self, capsys):
        rc = main(["--gpu", "TestGPU-AMD", "--mem", "LDS", "--mem",
                   "DeviceMemory", "-q", "--seed", "5"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["general"]["vendor"] == "AMD"
        assert set(report["memory"]) == {"LDS", "DeviceMemory"}

    def test_bad_mem_element(self, capsys):
        with pytest.raises(SystemExit):
            main(["--gpu", "TestGPU-NV", "--mem", "vL1", "-q"])

    def test_output_files(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main([
            "--gpu", "TestGPU-NV", "--mem", "SharedMem", "-q",
            "-j", "r.json", "-p", "r.md", "--csv", "r.csv", "-o", "r_raw.json",
        ])
        assert rc == 0
        assert (tmp_path / "r.json").exists()
        assert (tmp_path / "r.md").exists()
        assert (tmp_path / "r.csv").exists()
        raw = json.loads((tmp_path / "r_raw.json").read_text())
        assert raw["benchmarks_executed"] >= 1

    def test_default_filenames(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["--gpu", "TestGPU-NV", "--mem", "SharedMem", "-q", "-j"])
        assert rc == 0
        assert (tmp_path / "TestGPU-NV.json").exists()


class TestOutputRoundTrips:
    """main() artifacts parsed back: each writer's output is consistent."""

    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli_roundtrip")
        import contextlib
        import io
        import os

        stdout = io.StringIO()
        cwd = os.getcwd()
        os.chdir(tmp)
        try:
            with contextlib.redirect_stdout(stdout):
                rc = main([
                    "--gpu", "TestGPU-NV", "--mem", "L1", "--mem", "SharedMem",
                    "--seed", "7", "-q",
                    "-j", "r.json", "-p", "r.md", "--csv", "r.csv", "-o", "r_raw.json",
                ])
        finally:
            os.chdir(cwd)
        assert rc == 0
        return tmp, stdout.getvalue()

    def test_stdout_json_matches_file(self, artifacts):
        tmp, stdout = artifacts
        from_stdout = json.loads(stdout)
        from_file = json.loads((tmp / "r.json").read_text())
        assert from_stdout == from_file
        assert from_stdout["seed"] == 7

    def test_mem_filtering_round_trip(self, artifacts):
        tmp, _ = artifacts
        report = json.loads((tmp / "r.json").read_text())
        assert set(report["memory"]) == {"L1", "SharedMem"}

    def test_markdown_round_trip(self, artifacts):
        tmp, _ = artifacts
        md = (tmp / "r.md").read_text()
        assert md.startswith("# MT4G Topology Report")
        for element in ("| L1 |", "| SharedMem |"):
            assert element in md

    def test_csv_round_trip(self, artifacts):
        tmp, _ = artifacts
        all_rows = list(csv.DictReader((tmp / "r.csv").read_text().splitlines()))
        # The CLI runs with its (default) discovery cache, so the legacy
        # attribute rows are followed by one __meta__ provenance row.
        rows = [r for r in all_rows if r["element"] != "__meta__"]
        assert len(rows) == 2 * len(ATTRIBUTES)
        assert any(
            r["element"] == "__meta__" and r["attribute"] == "cache"
            for r in all_rows
        )
        report = json.loads((tmp / "r.json").read_text())
        l1_size_csv = next(
            r for r in rows if r["element"] == "L1" and r["attribute"] == "size"
        )
        assert int(l1_size_csv["value"]) == report["memory"]["L1"]["attributes"]["size"]["value"]

    def test_raw_contains_sweep_artifacts(self, artifacts):
        tmp, _ = artifacts
        raw = json.loads((tmp / "r_raw.json").read_text())
        assert raw["schema"] == "mt4g-repro-raw/1"
        assert raw["gpu"] == "TestGPU-NV" and raw["seed"] == 7
        assert raw["benchmarks_executed"] >= 1
        # the promised artefacts: the size benchmark's grid and reduced
        # latency vector, and the latency benchmark's per-run statistics
        size_raw = raw["sweeps"]["L1"]["size"]
        assert len(size_raw["sizes"]) == len(size_raw["reduced"]) > 0
        assert all(isinstance(s, int) for s in size_raw["sizes"])
        assert "stats" in raw["sweeps"]["L1"]["load_latency"]

    def test_quiet_emits_json_only(self, capsys):
        rc = main(["--gpu", "TestGPU-AMD", "--mem", "LDS", "-q"])
        assert rc == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # the whole stdout is one JSON document
        assert captured.err == ""

    def test_validate_flag_adds_section(self, capsys):
        rc = main(["--gpu", "TestGPU-AMD", "--validate", "-q"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["validation"]["verdict"] == "pass"

    def test_validate_failure_exits_2(self, capsys, monkeypatch):
        from repro.core import cli as cli_mod
        from repro.validate import ValidationReport

        real_discover = cli_mod.MT4G.discover

        def failing_discover(self, validate=False):
            report = real_discover(self)
            report.validation = ValidationReport(verdict="fail")
            return report

        monkeypatch.setattr(cli_mod.MT4G, "discover", failing_discover)
        rc = main(["--gpu", "TestGPU-AMD", "--mem", "LDS", "--validate", "-q"])
        assert rc == 2


class TestFleetCLI:
    def test_fleet_parser_defaults(self):
        args = build_fleet_parser().parse_args([])
        assert args.gpu is None and args.seed == 0 and args.jobs is None

    def test_fleet_quiet_json(self, capsys):
        rc = main([
            "fleet", "--gpu", "TestGPU-AMD", "--gpu", "TestGPU-AMD-L3",
            "--sequential", "-q",
        ])
        assert rc == 0
        fleet = json.loads(capsys.readouterr().out)
        assert fleet["schema"] == "mt4g-repro-fleet/1"
        assert [r["preset"] for r in fleet["matrix"]] == [
            "TestGPU-AMD", "TestGPU-AMD-L3",
        ]
        assert all(r["verdict"] == "pass" for r in fleet["matrix"])

    def test_fleet_concurrent_via_cli(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = fleet_main([
            "--gpu", "TestGPU-AMD", "--gpu", "TestGPU-AMD-L3",
            "--jobs", "2", "-j", "-p",
        ])
        assert rc == 0
        fleet = json.loads((tmp_path / "fleet.json").read_text())
        assert set(fleet["reports"]) == {"TestGPU-AMD", "TestGPU-AMD-L3"}
        md = (tmp_path / "fleet.md").read_text()
        assert "# MT4G Fleet Report" in md
        out = capsys.readouterr().out
        assert "| TestGPU-AMD |" in out

    def test_fleet_unknown_preset(self, capsys):
        rc = main(["fleet", "--gpu", "NoSuchGPU", "--sequential", "-q"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_fleet_json_includes_fleet_validation(self, capsys):
        rc = main([
            "fleet", "--gpu", "TestGPU-NV", "--gpu", "TestGPU-NV-2SEG",
            "--sequential", "-q",
        ])
        assert rc == 0
        fleet = json.loads(capsys.readouterr().out)
        assert fleet["fleet_validation"]["verdict"] == "pass"
        assert fleet["fleet_validation"]["groups"] == {
            "NVIDIA/Hopper": ["TestGPU-NV", "TestGPU-NV-2SEG"]
        }

    def test_fleet_exit_2_on_cross_device_disagreement(self, capsys, monkeypatch):
        import repro.validate.fleet as fleet_mod

        real = fleet_mod.discover_fleet

        def rigged(*args, **kwargs):
            result = real(*args, **kwargs)
            # forge a cross-device disagreement: one preset's measured
            # cache line dissents from the microarchitecture consensus
            entry = result.entry("TestGPU-NV-2SEG")
            entry.report.memory["L1"].get("cache_line_size").value = 128
            result.validate()
            return result

        monkeypatch.setattr(fleet_mod, "discover_fleet", rigged)
        rc = fleet_main([
            "--gpu", "TestGPU-NV", "--gpu", "TestGPU-NV-2SEG", "--sequential",
        ])
        assert rc == 2
        captured = capsys.readouterr()
        # every per-preset verdict still passes: the non-zero exit comes
        # from the fleet-level judge alone
        assert "fleet validation FAILED" in captured.err
        assert "NVIDIA/Hopper:L1.cache_line_size" in captured.err
        assert "Verdict: **fail**" in captured.out


class TestGraphCLI:
    def test_graph_parser_defaults(self):
        args = build_graph_parser().parse_args([])
        assert args.gpu == "H100-80" and args.format == "json"
        assert not args.host and args.output is None

    def test_graph_quiet_json(self, capsys):
        rc = main(["graph", "--gpu", "TestGPU-NV", "--no-cache", "-q"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "mt4g-repro-graph/1"
        assert payload["meta"]["preset"] == "TestGPU-NV"
        kinds = {n["kind"] for n in payload["nodes"]}
        assert {"gpu", "cluster", "sm", "cache", "scratchpad", "memory"} <= kinds

    def test_graph_bytes_stable_across_cache_hit(self, tmp_path, capsys):
        argv = ["graph", "--gpu", "TestGPU-NV", "-q",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        hit = capsys.readouterr().out
        assert main(["graph", "--gpu", "TestGPU-NV", "-q", "--no-cache"]) == 0
        uncached = capsys.readouterr().out
        assert cold == hit == uncached

    def test_graph_dot_output_file(self, tmp_path, capsys):
        out = tmp_path / "g.dot"
        rc = main(["graph", "--gpu", "TestGPU-NV", "--no-cache", "-q",
                   "--format", "dot", "-o", str(out)])
        assert rc == 0
        text = out.read_text()
        assert text.startswith("digraph mt4g {") and text.endswith("}\n")

    def test_graph_host_flag_never_fails(self, capsys):
        # Wherever this runs — bare metal, container, sandbox — host
        # collectors degrade silently; the command still exits 0 and
        # renders a valid graph with the degradation recorded.
        rc = main(["graph", "--gpu", "TestGPU-NV", "--no-cache", "-q", "--host"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload["meta"]["host_degraded"], dict)

    def test_graph_unknown_gpu_fails(self, capsys):
        assert main(["graph", "--gpu", "B200", "--no-cache"]) == 1
        assert "error" in capsys.readouterr().err


class TestServeCLI:
    """mt4g serve argument round-trips (mirrors the fleet parser tests)."""

    def test_serve_parser_defaults(self):
        import os

        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1" and args.port == 8734
        assert args.no_discover is False and args.jobs is None
        assert args.quiet is False and args.cache_config == "PreferL1"
        # the cache dir honours $MT4G_CACHE_DIR exactly like the
        # discover/fleet parsers (the conftest fixture sets it)
        assert args.cache_dir == os.environ["MT4G_CACHE_DIR"]

    def test_serve_parser_round_trip(self):
        args = build_serve_parser().parse_args([
            "--host", "0.0.0.0", "--port", "0", "--cache-dir", "/tmp/x",
            "--no-discover", "--jobs", "3", "-q",
            "--cache-config", "PreferShared",
        ])
        assert args.host == "0.0.0.0" and args.port == 0
        assert args.cache_dir == "/tmp/x"
        assert args.no_discover is True and args.jobs == 3
        assert args.quiet is True and args.cache_config == "PreferShared"

    def test_serve_cache_config_choices(self):
        with pytest.raises(SystemExit):
            build_serve_parser().parse_args(["--cache-config", "PreferChaos"])

    def test_serve_port_must_be_int(self):
        with pytest.raises(SystemExit):
            build_serve_parser().parse_args(["--port", "http"])

    def test_main_dispatches_serve_subcommand(self, monkeypatch):
        from repro.core import cli as cli_mod

        seen = {}

        def fake_serve_main(argv):
            seen["argv"] = argv
            return 0

        monkeypatch.setattr(cli_mod, "serve_main", fake_serve_main)
        assert main(["serve", "--port", "0", "-q"]) == 0
        assert seen["argv"] == ["--port", "0", "-q"]

    def test_serve_main_reports_bind_failure(self, capsys):
        from repro.core.cli import serve_main

        # An unresolvable bind address must become exit 1 + a readable
        # error, not a traceback (and must never start serving).
        rc = serve_main(["--host", "999.invalid.example.", "-q"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_serve_parser_tiering_flags(self):
        args = build_serve_parser().parse_args([
            "--peers", "http://a:1,http://b:2", "--peers", "http://c:3",
            "--advertise", "http://me:8734",
            "--memory-limit", "1048576", "--cache-limit", "2097152",
        ])
        # repeatable AND comma-separated (serve_main flattens the chunks)
        assert args.peers == ["http://a:1,http://b:2", "http://c:3"]
        assert args.advertise == "http://me:8734"
        assert args.memory_limit == 1048576 and args.cache_limit == 2097152
        defaults = build_serve_parser().parse_args([])
        assert defaults.peers is None and defaults.advertise is None
        assert defaults.memory_limit is None and defaults.cache_limit is None

    def test_serve_parser_hot_path_flags(self):
        args = build_serve_parser().parse_args([
            "--keep-alive-timeout", "0", "--hot-cache-bytes", "1048576",
            "--pool", "lazy", "--catalog-ttl", "0.5",
        ])
        assert args.keep_alive_timeout == 0.0
        assert args.hot_cache_bytes == 1048576
        assert args.pool == "lazy" and args.catalog_ttl == 0.5
        defaults = build_serve_parser().parse_args([])
        # the entry point defaults the whole hot path ON
        assert defaults.keep_alive_timeout == 60.0
        assert defaults.hot_cache_bytes is None  # None -> 64 MiB default
        assert defaults.pool == "warm" and defaults.catalog_ttl == 2.0
        with pytest.raises(SystemExit):
            build_serve_parser().parse_args(["--pool", "tepid"])

    def test_serve_main_rejects_unusable_peer_urls(self, capsys):
        from repro.core.cli import serve_main

        rc = serve_main(["--port", "0", "-q", "--peers", "http://"])
        assert rc == 1
        assert "--peers" in capsys.readouterr().err


class TestCacheLimitPrecedence:
    """--cache-limit > $MT4G_CACHE_LIMIT_BYTES > the 2 GiB default."""

    def _resolve(self, argv):
        from repro.core.cli import resolve_cache_limit

        return resolve_cache_limit(build_parser().parse_args(argv))

    def test_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("MT4G_CACHE_LIMIT_BYTES", "111")
        assert self._resolve(["--cache-limit", "222"]) == 222

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("MT4G_CACHE_LIMIT_BYTES", "333")
        assert self._resolve([]) == 333

    def test_default_is_two_gib(self, monkeypatch):
        from repro.cache.store import DEFAULT_PRUNE_BYTES

        monkeypatch.delenv("MT4G_CACHE_LIMIT_BYTES", raising=False)
        assert self._resolve([]) == DEFAULT_PRUNE_BYTES == 2 << 30

    def test_unparseable_env_falls_back_to_default(self, monkeypatch):
        from repro.cache.store import DEFAULT_PRUNE_BYTES

        monkeypatch.setenv("MT4G_CACHE_LIMIT_BYTES", "a lot")
        assert self._resolve([]) == DEFAULT_PRUNE_BYTES

    def test_all_parsers_carry_the_flag(self):
        for build in (build_parser, build_fleet_parser, build_serve_parser):
            args = build().parse_args(["--cache-limit", "444"])
            assert args.cache_limit == 444

    def test_prune_honours_the_flag(self, tmp_path, capsys):
        # Two single-device runs with different seeds under a 1-byte
        # budget: the post-run prune must leave at most one entry.
        from repro.cache.store import DiscoveryCache

        cache_dir = str(tmp_path / "cache")
        for seed in ("0", "1"):
            assert main([
                "--gpu", "TestGPU-NV", "--seed", seed, "-q",
                "--cache-dir", cache_dir, "--cache-limit", "1",
            ]) == 0
        capsys.readouterr()
        assert DiscoveryCache(tmp_path / "cache").entry_count() <= 1
