"""Tests for the two-sample Kolmogorov-Smirnov implementation (Eq. 1)."""

import math

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats.kstest import ks_2sample, ks_critical_value, ks_distance, ks_pvalue


class TestDistance:
    def test_identical_samples(self):
        x = np.array([1.0, 2.0, 3.0])
        assert ks_distance(x, x) == 0.0

    def test_disjoint_samples(self):
        assert ks_distance(np.array([1.0, 2.0]), np.array([10.0, 11.0])) == 1.0

    def test_half_overlap(self):
        d = ks_distance(np.array([1.0, 2.0, 3.0, 4.0]), np.array([3.0, 4.0, 5.0, 6.0]))
        assert d == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance(np.array([]), np.array([1.0]))

    @settings(max_examples=100, deadline=None)
    @given(
        arrays(np.float64, st.integers(3, 40), elements=st.floats(-1e6, 1e6)),
        arrays(np.float64, st.integers(3, 40), elements=st.floats(-1e6, 1e6)),
    )
    def test_matches_scipy(self, x, y):
        ours = ks_distance(x, y)
        scipys = scipy.stats.ks_2samp(x, y).statistic
        assert ours == pytest.approx(scipys, abs=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(
        arrays(np.float64, st.integers(3, 30), elements=st.floats(-1e3, 1e3)),
        arrays(np.float64, st.integers(3, 30), elements=st.floats(-1e3, 1e3)),
    )
    def test_symmetry_and_range(self, x, y):
        d = ks_distance(x, y)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(ks_distance(y, x))


class TestCriticalValue:
    def test_paper_formula(self):
        # d_alpha = sqrt(-1/2 * (n+m)/(n*m) * ln(alpha/2))
        n, m, alpha = 100, 150, 0.05
        expected = math.sqrt(-0.5 * (n + m) / (n * m) * math.log(alpha / 2))
        assert ks_critical_value(n, m, alpha) == pytest.approx(expected)

    def test_stricter_alpha_larger_threshold(self):
        assert ks_critical_value(50, 50, 0.001) > ks_critical_value(50, 50, 0.05)

    def test_more_samples_smaller_threshold(self):
        assert ks_critical_value(200, 200, 0.05) < ks_critical_value(20, 20, 0.05)

    @pytest.mark.parametrize("n,m,alpha", [(0, 5, 0.05), (5, 0, 0.05), (5, 5, 0.0), (5, 5, 1.0)])
    def test_invalid(self, n, m, alpha):
        with pytest.raises(ValueError):
            ks_critical_value(n, m, alpha)


class TestPValue:
    def test_inverse_of_critical_value(self):
        # p(d_alpha) == alpha by construction.
        n, m, alpha = 80, 120, 0.01
        d = ks_critical_value(n, m, alpha)
        assert ks_pvalue(d, n, m) == pytest.approx(alpha)

    def test_monotone_in_distance(self):
        assert ks_pvalue(0.8, 50, 50) < ks_pvalue(0.2, 50, 50)

    def test_clipped_to_unit_interval(self):
        assert ks_pvalue(0.0, 5, 5) == 1.0
        assert 0.0 <= ks_pvalue(1.0, 500, 500) <= 1.0


class TestTwoSample:
    def test_separated_distributions_reject(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 200)
        y = rng.normal(6, 1, 200)
        res = ks_2sample(x, y, alpha=0.01)
        assert res.reject_null
        assert res.confidence > 0.99

    def test_same_distribution_accepts(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 200)
        y = rng.normal(0, 1, 200)
        res = ks_2sample(x, y, alpha=0.01)
        assert not res.reject_null

    def test_result_fields(self):
        res = ks_2sample(np.arange(10.0), np.arange(10.0) + 100)
        assert res.n == 10 and res.m == 10
        assert res.distance == 1.0
        assert res.reject_null
