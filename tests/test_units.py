"""Unit tests for :mod:`repro.units`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.units import (
    GiB,
    KiB,
    MiB,
    format_bandwidth,
    format_latency_cycles,
    format_size,
    is_power_of_two,
    nearest_integer_fraction,
    parse_size,
    round_to_power_of_two,
)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("1 KiB", KiB),
            ("228KiB", 228 * KiB),
            ("50MB", 50 * MiB),  # vendor convention: MB == MiB for caches
            ("80 GB", 80 * GiB),
            ("2.5 MiB", int(2.5 * MiB)),
            ("16k", 16 * KiB),
            ("3g", 3 * GiB),
            ("0", 0),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    def test_numeric_passthrough(self):
        assert parse_size(4096) == 4096
        assert parse_size(10.0) == 10

    @pytest.mark.parametrize("bad", ["", "abc", "12 XB", "-5 KiB"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_negative_number(self):
        with pytest.raises(ValueError):
            parse_size(-1)


class TestFormatSize:
    def test_exact_kib(self):
        assert format_size(238 * KiB) == "238 KiB"

    def test_fractional(self):
        assert format_size(int(4.06 * KiB)) == "4.06 KiB"

    def test_bytes(self):
        assert format_size(512) == "512 B"

    def test_zero(self):
        assert format_size(0) == "0 B"

    def test_fractional_bytes_not_truncated(self):
        # the B fallback used to floor 512.5 down to "512 B"
        assert format_size(512.5) == "512.50 B"
        assert format_size(0.25) == "0.25 B"

    def test_near_integral_bytes_stay_integral(self):
        assert format_size(512.0) == "512 B"

    def test_gib(self):
        assert format_size(80 * GiB) == "80 GiB"

    def test_roundtrip(self):
        assert parse_size(format_size(64 * KiB)) == 64 * KiB


class TestFormatters:
    def test_bandwidth_tib(self):
        assert format_bandwidth(4.4 * 1024**4) == "4.40 TiB/s"

    def test_bandwidth_gib(self):
        assert format_bandwidth(100 * 1024**3) == "100.0 GiB/s"

    def test_bandwidth_mib(self):
        # used to render as a misleading "0.0 GiB/s"
        assert format_bandwidth(512 * 1024**2) == "512.0 MiB/s"

    def test_bandwidth_kib(self):
        assert format_bandwidth(8 * 1024) == "8.0 KiB/s"

    def test_bandwidth_bytes(self):
        assert format_bandwidth(42.0) == "42 B/s"
        assert format_bandwidth(0.0) == "0 B/s"

    def test_bandwidth_tier_boundaries(self):
        assert format_bandwidth(1024.0**3) == "1.0 GiB/s"
        assert format_bandwidth(1024.0**3 - 1) == "1024.0 MiB/s"
        assert format_bandwidth(1024.0**2 - 1) == "1024.0 KiB/s"

    def test_latency(self):
        assert format_latency_cycles(37.6) == "38 cyc"


def test_units_doctests():
    import doctest

    import repro.units

    failures, tested = doctest.testmod(repro.units)
    assert failures == 0 and tested > 0


class TestPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 64, 1024, 1 << 30])
    def test_true(self, n):
        assert is_power_of_two(n)

    @pytest.mark.parametrize("n", [0, -2, 3, 6, 127, 129])
    def test_false(self, n):
        assert not is_power_of_two(n)

    @pytest.mark.parametrize(
        "value,expected",
        [(1, 1), (3, 4), (5, 4), (6, 8), (96, 128), (64.6, 64), (144, 128), (120, 128)],
    )
    def test_round(self, value, expected):
        assert round_to_power_of_two(value) == expected

    def test_round_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            round_to_power_of_two(0)

    @given(st.integers(min_value=1, max_value=2**40))
    def test_round_is_power(self, n):
        assert is_power_of_two(round_to_power_of_two(n))

    @given(st.integers(min_value=1, max_value=2**30))
    def test_round_within_factor_two(self, n):
        p = round_to_power_of_two(n)
        assert p / 2 < n <= p * 2


class TestNearestIntegerFraction:
    def test_exact_half(self):
        # A100: API reports 40 MB, one segment measures ~20 MB.
        k, conf = nearest_integer_fraction(40 * MiB, 20 * MiB)
        assert k == 2
        assert conf > 0.99

    def test_slightly_off(self):
        k, conf = nearest_integer_fraction(50 * MiB, 24.7 * MiB)
        assert k == 2
        assert 0.5 < conf < 1.0

    def test_single_segment(self):
        k, conf = nearest_integer_fraction(8 * MiB, 7.9 * MiB)
        assert k == 1
        assert conf > 0.9

    def test_eight_segments(self):
        k, _ = nearest_integer_fraction(32 * MiB, 4 * MiB)
        assert k == 8

    def test_bad_input(self):
        with pytest.raises(ValueError):
            nearest_integer_fraction(0, 10)
        with pytest.raises(ValueError):
            nearest_integer_fraction(10, -1)

    @given(
        total=st.integers(min_value=1024, max_value=1 << 30),
        k=st.integers(min_value=1, max_value=8),
    )
    def test_recovers_exact_fractions(self, total, k):
        found, conf = nearest_integer_fraction(total, total / k)
        assert found == k
        assert conf > 0.95
