"""Tests for MIG partitioning math and the bandwidth model."""

import numpy as np
import pytest

from repro.errors import SimulationError, SpecError
from repro.gpusim.bandwidth import BandwidthModel
from repro.gpusim.mig import resolve_mig
from repro.gpuspec.presets import get_preset
from repro.units import GiB, MiB


class TestMIGResolution:
    def test_full_profile(self):
        spec = get_preset("A100")
        mig = resolve_mig(spec, None)
        assert mig.profile == "full"
        assert mig.visible_sms(spec) == spec.compute.num_sms
        assert mig.visible_dram_bytes(spec) == spec.memory.size

    def test_4g20gb(self):
        spec = get_preset("A100")
        mig = resolve_mig(spec, "4g.20gb")
        assert mig.visible_dram_bytes(spec) == 20 * GiB
        assert mig.visible_l2_total(spec) == 20 * MiB
        assert mig.visible_sms(spec) == (108 * 4) // 7

    def test_fig5_key_insight_full_equals_4g(self):
        # One SM reaches one 20 MB segment on the full GPU; 4g.20gb grants
        # exactly 20 MB -> identical per-SM L2 (paper Fig. 5 observation 2).
        spec = get_preset("A100")
        full = resolve_mig(spec, None)
        half = resolve_mig(spec, "4g.20gb")
        assert full.visible_l2_per_sm(spec) == half.visible_l2_per_sm(spec) == 20 * MiB

    def test_smaller_slices_shrink_per_sm_l2(self):
        spec = get_preset("A100")
        assert resolve_mig(spec, "1g.5gb").visible_l2_per_sm(spec) == 5 * MiB
        assert resolve_mig(spec, "2g.10gb").visible_l2_per_sm(spec) == 10 * MiB

    def test_bandwidth_scales_with_memory_slices(self):
        spec = get_preset("A100")
        full = resolve_mig(spec, None)
        one = resolve_mig(spec, "1g.5gb")
        ratio = one.visible_dram_read_bandwidth(spec) / full.visible_dram_read_bandwidth(spec)
        assert ratio == pytest.approx(1 / 8)

    def test_unknown_profile(self):
        with pytest.raises(SpecError):
            resolve_mig(get_preset("A100"), "9g.90gb")

    def test_non_mig_device(self):
        with pytest.raises(SpecError):
            resolve_mig(get_preset("MI210"), "1g.5gb")


class TestBandwidthModel:
    @pytest.fixture
    def model(self):
        spec = get_preset("H100-80")
        return BandwidthModel(spec, np.random.default_rng(0))

    def test_optimal_blocks_heuristic(self, model):
        # Paper IV-I: num_SMs * max_blocks_per_SM maximises throughput.
        c = model.spec.compute
        assert model.optimal_blocks == c.num_sms * c.max_blocks_per_sm

    def test_efficiency_saturates_at_optimum(self, model):
        c = model.spec.compute
        at_opt = model.efficiency(model.optimal_blocks, c.max_threads_per_block, 16)
        beyond = model.efficiency(model.optimal_blocks * 2, c.max_threads_per_block, 16)
        assert at_opt == pytest.approx(1.0)
        assert beyond == pytest.approx(1.0)

    def test_efficiency_monotone_in_blocks(self, model):
        c = model.spec.compute
        effs = [
            model.efficiency(b, c.max_threads_per_block, 16)
            for b in (1, 16, 256, model.optimal_blocks)
        ]
        assert effs == sorted(effs)

    def test_vector_loads_beat_scalar(self, model):
        c = model.spec.compute
        vec = model.efficiency(model.optimal_blocks, c.max_threads_per_block, 16)
        scalar = model.efficiency(model.optimal_blocks, c.max_threads_per_block, 4)
        assert vec > scalar

    def test_invalid_launch_rejected(self, model):
        with pytest.raises(SimulationError):
            model.efficiency(0, 1, 16)

    def test_achieved_hits_spec_at_optimum(self, model):
        bw = model.achieved("L2", "read", noisy=False)
        assert bw == pytest.approx(model.spec.cache("L2").read_bandwidth, rel=1e-6)

    def test_achieved_dram_with_mig(self):
        spec = get_preset("A100")
        model = BandwidthModel(spec, np.random.default_rng(0))
        mig = resolve_mig(spec, "1g.5gb")
        full = model.achieved("DeviceMemory", "read", noisy=False)
        sliced = model.achieved("DeviceMemory", "read", mig=mig, noisy=False)
        assert sliced == pytest.approx(full / 8, rel=1e-6)

    def test_unknown_level_rejected(self, model):
        with pytest.raises(Exception):
            model.achieved("L9", "read")

    def test_bad_op_rejected(self, model):
        with pytest.raises(SimulationError):
            model.achieved("L2", "sideways")

    def test_kernel_seconds_positive_and_scaling(self, model):
        t1 = model.kernel_seconds(1 << 30, "L2")
        t2 = model.kernel_seconds(1 << 31, "L2")
        assert 0 < t1 < t2


class TestStreamSweep:
    """The Fig. 5 experiment at the model level."""

    def test_cliff_at_visible_l2(self):
        spec = get_preset("A100")
        model = BandwidthModel(spec, np.random.default_rng(0))
        ws = np.array([1 * MiB, 10 * MiB, 19 * MiB, 40 * MiB, 120 * MiB])
        ns = model.stream_sweep_ns_per_byte(ws, noisy=False)
        # Flat inside the 20 MB segment, clearly slower far beyond it.
        assert ns[1] == pytest.approx(ns[0], rel=0.02)
        assert ns[4] > ns[2] * 1.5

    def test_full_and_4g_identical(self):
        spec = get_preset("A100")
        model = BandwidthModel(spec, np.random.default_rng(0))
        ws = np.geomspace(1 * MiB, 128 * MiB, 12)
        full = model.stream_sweep_ns_per_byte(ws, mig=None, noisy=False)
        m4g = model.stream_sweep_ns_per_byte(ws, mig=resolve_mig(spec, "4g.20gb"), noisy=False)
        assert np.allclose(full, m4g)

    def test_small_slice_cliffs_earlier(self):
        spec = get_preset("A100")
        model = BandwidthModel(spec, np.random.default_rng(0))
        ws = np.array([7 * MiB])
        full = model.stream_sweep_ns_per_byte(ws, noisy=False)[0]
        tiny = model.stream_sweep_ns_per_byte(
            ws, mig=resolve_mig(spec, "1g.5gb"), noisy=False
        )[0]
        assert tiny > full * 1.2  # 7 MiB no longer fits the 5 MB slice

    def test_rejects_nonpositive_sizes(self):
        spec = get_preset("A100")
        model = BandwidthModel(spec, np.random.default_rng(0))
        with pytest.raises(SimulationError):
            model.stream_sweep_ns_per_byte(np.array([0.0]))
