"""Unit tests for the sectored set-associative cache model."""

import numpy as np
import pytest

from repro.gpusim.cache import SimCache


def make_cache(size=1024, line=64, fg=32, ways=2) -> SimCache:
    return SimCache(size=size, line_size=line, fetch_granularity=fg, ways=ways)


class TestConstruction:
    def test_geometry(self):
        c = make_cache()
        assert c.num_sets == 1024 // (64 * 2)
        assert c.sectors_per_line == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size=0, line_size=64, fetch_granularity=32, ways=2),
            dict(size=1024, line_size=64, fetch_granularity=48, ways=2),
            dict(size=1000, line_size=64, fetch_granularity=32, ways=2),
            dict(size=1024, line_size=64, fetch_granularity=32, ways=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SimCache(**kwargs)


class TestBasicAccess:
    def test_first_access_misses(self):
        c = make_cache()
        assert c.access(0) is False
        assert c.line_misses == 1

    def test_second_access_same_sector_hits(self):
        c = make_cache()
        c.access(0)
        assert c.access(4) is True
        assert c.hits == 1

    def test_other_sector_is_sector_miss(self):
        c = make_cache()
        c.access(0)
        assert c.access(32) is False  # same line, second sector
        assert c.sector_misses == 1
        assert c.access(32) is True  # now fetched

    def test_sector_miss_does_not_evict(self):
        c = make_cache()
        c.access(0)
        c.access(32)
        assert c.resident_lines() == 1

    def test_fetch_granularity_fills_only_sector(self):
        c = make_cache()
        c.access(0)  # fetches sector 0 (bytes 0..31) only
        assert c.probe(16) is True
        assert c.probe(48) is False


class TestLRUEviction:
    def test_capacity_eviction(self):
        c = make_cache(size=256, line=64, fg=64, ways=2)  # 2 sets x 2 ways
        # Lines 0, 2, 4 all map to set 0 (line % 2 == 0).
        c.access(0 * 64)
        c.access(2 * 64)
        c.access(4 * 64)  # evicts line 0
        assert c.probe(0) is False
        assert c.probe(2 * 64) is True
        assert c.probe(4 * 64) is True
        assert c.evictions == 1

    def test_lru_promotion_on_hit(self):
        c = make_cache(size=256, line=64, fg=64, ways=2)
        c.access(0 * 64)
        c.access(2 * 64)
        c.access(0 * 64)  # promote line 0 to MRU
        c.access(4 * 64)  # should evict line 2, not line 0
        assert c.probe(0) is True
        assert c.probe(2 * 64) is False

    def test_cyclic_thrash_all_misses(self):
        # Classic LRU pathology: cycling over ways+1 lines of one set.
        c = make_cache(size=256, line=64, fg=64, ways=2)
        addrs = [0, 2 * 64, 4 * 64] * 3
        results = [c.access(a) for a in addrs]
        assert not any(results)


class TestProbe:
    def test_probe_does_not_mutate(self):
        c = make_cache()
        c.access(0)
        snap = c.snapshot()
        c.probe(0)
        c.probe(4096)
        assert c.snapshot() == snap

    def test_probe_cold(self):
        assert make_cache().probe(0) is False


class TestFlush:
    def test_flush_invalidates(self):
        c = make_cache()
        c.access(0)
        c.flush()
        assert c.probe(0) is False
        assert c.resident_lines() == 0

    def test_flush_is_reusable(self):
        c = make_cache()
        for _ in range(5):
            c.access(0)
            assert c.probe(0)
            c.flush()
            assert not c.probe(0)

    def test_access_after_flush_misses_then_hits(self):
        c = make_cache()
        c.access(0)
        c.flush()
        assert c.access(0) is False
        assert c.access(0) is True


class TestStats:
    def test_counters(self):
        c = make_cache()
        c.access(0)
        c.access(0)
        c.access(32)
        assert c.accesses == 3
        assert c.hits == 1
        assert c.misses == 2
        c.reset_stats()
        assert c.accesses == 0

    def test_access_many(self):
        c = make_cache()
        hits = c.access_many(np.array([0, 0, 64, 64]))
        assert hits.tolist() == [False, True, False, True]


class TestCapacityBehaviour:
    """The property the entire size benchmark rests on (Fig. 1)."""

    def test_array_fitting_hits_after_warm(self):
        c = make_cache(size=4096, line=64, fg=32, ways=4)
        addrs = np.arange(0, 4096, 32, dtype=np.int64)
        c.access_many(addrs)  # warm
        assert c.access_many(addrs).all()

    def test_array_exceeding_misses(self):
        c = make_cache(size=4096, line=64, fg=32, ways=4)
        addrs = np.arange(0, 8192, 32, dtype=np.int64)
        c.access_many(addrs)
        hits = c.access_many(addrs)
        assert not hits.any()

    def test_boundary_region_mixed(self):
        c = make_cache(size=4096, line=64, fg=32, ways=4)
        addrs = np.arange(0, 4096 + 4 * 64, 32, dtype=np.int64)  # 4 extra lines
        c.access_many(addrs)
        hits = c.access_many(addrs)
        assert hits.any() and not hits.all()
