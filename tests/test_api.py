"""Tests for the emulated vendor APIs — including their *gaps*."""

import pytest

from repro.api import (
    cuda_get_device_properties,
    hip_get_device_properties,
    hsa_cache_info,
    kfd_cache_line_sizes,
    nvml_mig_state,
)
from repro.errors import APIUnavailableError
from repro.gpusim.device import SimulatedGPU


@pytest.fixture
def h100():
    return SimulatedGPU.from_preset("H100-80", seed=0)


@pytest.fixture
def mi210():
    return SimulatedGPU.from_preset("MI210", seed=0)


class TestHip:
    def test_works_on_both_vendors(self, h100, mi210):
        for dev in (h100, mi210):
            props = hip_get_device_properties(dev)
            assert props.multiProcessorCount == dev.spec.compute.num_sms
            assert props.totalGlobalMem == dev.spec.memory.size

    def test_l2_reports_total_across_segments(self, h100):
        props = hip_get_device_properties(h100)
        l2 = h100.spec.cache("L2")
        assert props.l2CacheSize == l2.size * l2.segments  # 50 MB, fn. 13

    def test_compute_capability(self, h100, mi210):
        assert hip_get_device_properties(h100).compute_capability == "9.0"
        assert hip_get_device_properties(mi210).gcnArchName == "gfx90a"

    def test_clock_in_khz(self, h100):
        assert hip_get_device_properties(h100).clockRate == int(1.98e9 / 1000)

    def test_shared_mem(self, mi210):
        assert hip_get_device_properties(mi210).sharedMemPerBlock == 64 * 1024

    def test_mig_restricts_visible_sms(self):
        dev = SimulatedGPU.from_preset("A100", seed=0, mig_profile="1g.5gb")
        props = hip_get_device_properties(dev)
        assert props.multiProcessorCount == (108 * 1) // 7


class TestCuda:
    def test_mirrors_hip_on_nvidia(self, h100):
        c = cuda_get_device_properties(h100)
        h = hip_get_device_properties(h100)
        assert c.l2CacheSize == h.l2CacheSize
        assert c.multiProcessorCount == h.multiProcessorCount

    def test_unavailable_on_amd(self, mi210):
        with pytest.raises(APIUnavailableError):
            cuda_get_device_properties(mi210)


class TestHsa:
    def test_l2_info(self, mi210):
        info = hsa_cache_info(mi210)
        assert info["L2"] == {"size": 8 * 1024 * 1024, "instances": 1}

    def test_l3_on_cdna3(self):
        dev = SimulatedGPU.from_preset("MI300X", seed=0)
        info = hsa_cache_info(dev)
        assert info["L2"]["instances"] == 8  # one per XCD
        assert "L3" in info

    def test_no_l1_exposure(self, mi210):
        # Table I: vL1/sL1d sizes are benchmark territory.
        info = hsa_cache_info(mi210)
        assert "vL1" not in info and "sL1d" not in info

    def test_unavailable_on_nvidia(self, h100):
        with pytest.raises(APIUnavailableError):
            hsa_cache_info(h100)


class TestKfd:
    def test_line_sizes(self, mi210):
        lines = kfd_cache_line_sizes(mi210)
        assert lines["L2"] == 128
        assert "vL1" not in lines

    def test_unavailable_on_nvidia(self, h100):
        with pytest.raises(APIUnavailableError):
            kfd_cache_line_sizes(h100)


class TestNvml:
    def test_full_gpu(self, h100):
        state = nvml_mig_state(h100)
        assert state["mig_enabled"] is False
        assert state["visible_sms"] == 132

    def test_mig_instance(self):
        dev = SimulatedGPU.from_preset("A100", seed=0, mig_profile="4g.20gb")
        state = nvml_mig_state(dev)
        assert state["mig_enabled"] is True
        assert state["memory_fraction"] == pytest.approx(0.5)
        assert state["visible_dram_bytes"] == 20 * 1024**3

    def test_unavailable_on_amd(self, mi210):
        with pytest.raises(APIUnavailableError):
            nvml_mig_state(mi210)
