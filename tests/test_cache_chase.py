"""Property tests for the batch/analytic measurement engine.

The analytic primitives — :meth:`SimCache.chase_cyclic`,
:meth:`SimCache.pass_monotone`, :meth:`SimCache.probe_many`, the deferred
warm state (:meth:`warm_fixed_point` / :meth:`warm_cyclic_lazy`) and the
incremental suffix-extension warm — must be *access-for-access*
equivalent to the exact :meth:`SimCache.access` loop: same hit/miss
vector, same end state (snapshot), same statistics counters.  These
tests pin that equivalence over randomized cache geometries, strides,
ring sizes, sample counts (including multi-wrap chases), warm/cold
starts and post-flush generations, plus the automatic exact fallback on
non-monotone sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.cache import SimCache


def strided_ring(nbytes: int, stride: int, base: int = 0) -> np.ndarray:
    return base + np.arange(max(1, nbytes // stride), dtype=np.int64) * stride


def stats(cache: SimCache) -> tuple[int, int, int, int]:
    return (cache.hits, cache.sector_misses, cache.line_misses, cache.evictions)


def chase_reference(cache: SimCache, addrs: np.ndarray, n: int) -> np.ndarray:
    """The exact timed pass: per-load access over the cyclic walk."""
    ring = len(addrs)
    return np.fromiter(
        (cache.access(int(addrs[i % ring])) for i in range(n)), dtype=bool, count=n
    )


@st.composite
def geometry_and_ring(draw):
    line = draw(st.sampled_from([32, 64, 128]))
    fg = line // draw(st.sampled_from([1, 2, 4]))
    ways = draw(st.sampled_from([1, 2, 4, 8]))
    sets = draw(st.sampled_from([2, 4, 8, 16]))
    size = sets * line * ways
    stride = draw(
        st.sampled_from([max(4, fg // 2), fg, 2 * fg, 3 * fg, line, 2 * line])
    )
    nbytes = draw(st.integers(min_value=stride, max_value=5 * size))
    base = 4 * draw(st.integers(min_value=0, max_value=size))
    return size, line, fg, ways, stride, strided_ring(nbytes, stride, base)


class TestChaseCyclic:
    @settings(max_examples=150, deadline=None)
    @given(geometry_and_ring(), st.integers(min_value=1, max_value=900), st.booleans())
    def test_warmed_equivalence(self, params, n_samples, hint):
        """Warmed chase == exact loop: hits, end state and statistics."""
        size, line, fg, ways, stride, addrs = params
        analytic = SimCache(size, line, fg, ways)
        exact = SimCache(size, line, fg, ways)
        analytic.warm_cyclic(addrs, stride=stride)
        exact.warm_cyclic(addrs, stride=stride)
        analytic.reset_stats()
        exact.reset_stats()
        hits = analytic.chase_cyclic(
            addrs, n_samples, warmed=True, stride=stride if hint else None
        )
        ref = chase_reference(exact, addrs, n_samples)
        assert hits is not None
        assert (hits == ref).all()
        assert analytic.snapshot() == exact.snapshot()
        assert stats(analytic) == stats(exact)

    @settings(max_examples=100, deadline=None)
    @given(geometry_and_ring(), st.integers(min_value=1, max_value=900))
    def test_cold_equivalence(self, params, n_samples):
        """Cold (flushed) chase == exact loop, including the first wrap."""
        size, line, fg, ways, stride, addrs = params
        analytic = SimCache(size, line, fg, ways)
        exact = SimCache(size, line, fg, ways)
        hits = analytic.chase_cyclic(addrs, n_samples, warmed=False, stride=stride)
        ref = chase_reference(exact, addrs, n_samples)
        assert hits is not None
        assert (hits == ref).all()
        assert analytic.snapshot() == exact.snapshot()
        assert stats(analytic) == stats(exact)

    @settings(max_examples=60, deadline=None)
    @given(geometry_and_ring(), st.integers(min_value=1, max_value=400))
    def test_post_flush_generation(self, params, n_samples):
        """A flushed cache behaves like a fresh one (generation stamps)."""
        size, line, fg, ways, stride, addrs = params
        analytic = SimCache(size, line, fg, ways)
        exact = SimCache(size, line, fg, ways)
        # Dirty both caches with an unrelated footprint, then flush.
        junk = strided_ring(2 * size, line, base=8 * size + 4)
        analytic.warm_cyclic(junk)
        exact.warm_cyclic(junk)
        analytic.flush()
        exact.flush()
        analytic.warm_cyclic(addrs, stride=stride)
        exact.warm_cyclic(addrs, stride=stride)
        hits = analytic.chase_cyclic(addrs, n_samples, warmed=True, stride=stride)
        ref = chase_reference(exact, addrs, n_samples)
        assert hits is not None
        assert (hits == ref).all()
        assert analytic.snapshot() == exact.snapshot()

    def test_non_monotone_returns_none_without_mutating(self):
        addrs = np.array([256, 0, 128, 64], dtype=np.int64)
        cache = SimCache(1024, 64, 32, 2)
        before = cache.snapshot()
        assert cache.chase_cyclic(addrs, 10, warmed=False) is None
        assert cache.snapshot() == before

    def test_cold_mode_rejects_dirty_cache(self):
        cache = SimCache(1024, 64, 32, 2)
        cache.access(0)
        assert cache.chase_cyclic(strided_ring(512, 32), 8, warmed=False) is None

    def test_preserve_fixed_point(self):
        """update_state=False leaves the warm fixed point untouched."""
        cache = SimCache(2048, 64, 32, 2)
        addrs = strided_ring(4096, 32)
        cache.warm_cyclic(addrs, stride=32)
        before = cache.snapshot()
        cache.chase_cyclic(addrs, 100, warmed=True, stride=32, update_state=False)
        assert cache.snapshot() == before


class TestPassMonotone:
    @settings(max_examples=150, deadline=None)
    @given(geometry_and_ring(), st.integers(min_value=0, max_value=3))
    def test_arbitrary_state_equivalence(self, params, n_prior):
        """pass_monotone == access_many on states built from prior warms."""
        size, line, fg, ways, stride, addrs = params
        analytic = SimCache(size, line, fg, ways)
        exact = SimCache(size, line, fg, ways)
        rng = np.random.default_rng(len(addrs) * 31 + n_prior)
        for _ in range(n_prior):
            pr_stride = int(rng.choice([fg, line]))
            pr = strided_ring(
                int(rng.integers(pr_stride, 3 * size)),
                pr_stride,
                base=int(rng.integers(0, 4 * size)) // 4 * 4,
            )
            # Same state on both sides, built by the same (exact) machinery.
            analytic.access_many(pr)
            exact.access_many(pr)
        analytic.reset_stats()
        exact.reset_stats()
        hits = analytic.pass_monotone(addrs)
        ref = exact.access_many(addrs)
        assert hits is not None
        assert (hits == ref).all()
        assert analytic.snapshot() == exact.snapshot()
        assert stats(analytic) == stats(exact)

    def test_non_monotone_returns_none(self):
        cache = SimCache(1024, 64, 32, 2)
        assert cache.pass_monotone(np.array([64, 0], dtype=np.int64)) is None

    def test_partially_evicted_set_matches_exact(self):
        """Mixed sets (some probed lines resident, some not) stay exact."""
        cache = SimCache(512, 64, 64, 4)  # 2 sets, 4 ways
        exact = SimCache(512, 64, 64, 4)
        a = strided_ring(512, 64)  # fills both sets
        b = strided_ring(256, 64, base=1024)  # evicts part of A
        for c in (cache, exact):
            c.access_many(a)
            c.access_many(b)
        hits = cache.pass_monotone(a)
        ref = exact.access_many(a)
        assert (hits == ref).all()
        assert cache.snapshot() == exact.snapshot()


class TestProbeMany:
    @settings(max_examples=80, deadline=None)
    @given(geometry_and_ring())
    def test_matches_scalar_probe(self, params):
        size, line, fg, ways, stride, addrs = params
        cache = SimCache(size, line, fg, ways)
        cache.warm_cyclic(addrs[: max(1, len(addrs) // 2)])
        queries = np.sort(
            np.unique(np.concatenate([addrs, addrs + line, addrs[:1] + 8 * size]))
        )
        got = cache.probe_many(queries)
        ref = np.fromiter(
            (cache.probe(int(q)) for q in queries), dtype=bool, count=len(queries)
        )
        assert (got == ref).all()

    def test_does_not_mutate(self):
        cache = SimCache(1024, 64, 32, 2)
        cache.warm_cyclic(strided_ring(512, 32))
        before = cache.snapshot()
        cache.probe_many(strided_ring(2048, 32))
        assert cache.snapshot() == before


class TestOverlappingMerge:
    @settings(max_examples=120, deadline=None)
    @given(geometry_and_ring(), geometry_and_ring())
    def test_warm_equals_exact_on_any_state(self, params_a, params_b):
        """warm_cyclic == access_many on overlapping prior state.

        Lines shared between the resident content and the new pass may be
        evicted by the pass itself before being re-accessed; the merge
        must reproduce that (hit-promote-union vs. evict-refetch) exactly.
        """
        size, line, fg, ways, stride_a, addrs_a = params_a
        *_, stride_b, addrs_b = params_b
        analytic = SimCache(size, line, fg, ways)
        exact = SimCache(size, line, fg, ways)
        # Same prior state on both sides; the second (overlapping) pass
        # goes through warm_cyclic vs. the exact loop.
        analytic.access_many(addrs_a)
        exact.access_many(addrs_a)
        overlap = addrs_b % (2 * max(int(addrs_a[-1]), 1) + line)
        overlap = np.sort(overlap)
        analytic.warm_cyclic(overlap)
        exact.access_many(overlap)
        assert analytic.snapshot() == exact.snapshot()

    def test_evicted_before_reaccess_is_refetched(self):
        """Reviewer scenario: a thrashing pass must not resurrect old masks."""
        cache = SimCache(4 * 32 * 2, 32, 8, 2)  # 4 sets, 2 ways, 4 sectors
        exact = SimCache(4 * 32 * 2, 32, 8, 2)
        # Lines 5 and 9 (set 1) resident with full sector masks.
        for c in (cache, exact):
            for addr in range(5 * 32, 6 * 32, 8):
                c.access(addr)
            for addr in range(9 * 32, 10 * 32, 8):
                c.access(addr)
        # Monotone pass over lines 1, 5, 9 (k=3 > ways): line 1 evicts 5,
        # so 5 and 9 refetch with only the accessed sector.
        pass_addrs = np.array([1 * 32, 5 * 32, 9 * 32], dtype=np.int64)
        cache.warm_cyclic(pass_addrs)
        exact.access_many(pass_addrs)
        assert cache.snapshot() == exact.snapshot()


class TestIncrementalWarm:
    @settings(max_examples=120, deadline=None)
    @given(geometry_and_ring(), st.data())
    def test_suffix_extension_reaches_fixed_point(self, params, data):
        """warm(prefix) + warm(suffix) == warm(full ring) exactly."""
        size, line, fg, ways, stride, addrs = params
        if len(addrs) < 2:
            return
        cut = data.draw(st.integers(min_value=1, max_value=len(addrs) - 1))
        incremental = SimCache(size, line, fg, ways)
        full = SimCache(size, line, fg, ways)
        incremental.warm_cyclic(addrs[:cut], stride=stride)
        incremental.warm_cyclic(addrs[cut:], stride=stride)
        full.warm_cyclic(addrs, stride=stride)
        assert incremental.snapshot() == full.snapshot()

    @settings(max_examples=80, deadline=None)
    @given(geometry_and_ring(), st.data())
    def test_deferred_extension_matches_real_warms(self, params, data):
        """extend_fixed_point + materialization == real incremental warms."""
        size, line, fg, ways, stride, addrs = params
        if len(addrs) < 2:
            return
        cut = data.draw(st.integers(min_value=1, max_value=len(addrs) - 1))
        base = int(addrs[0])
        lazy = SimCache(size, line, fg, ways)
        real = SimCache(size, line, fg, ways)
        lazy.warm_fixed_point(base, cut * stride, stride)
        assert lazy.extend_fixed_point(base, len(addrs) * stride, stride)
        real.warm_cyclic(addrs, stride=stride)
        assert lazy.snapshot() == real.snapshot()  # snapshot materializes

    def test_extension_refused_on_mismatch(self):
        cache = SimCache(1024, 64, 32, 2)
        cache.warm_fixed_point(0, 512, 32)
        assert not cache.extend_fixed_point(64, 1024, 32)  # different base
        assert not cache.extend_fixed_point(0, 1024, 64)  # different stride
        cache.warm_fixed_point(0, 512, 32)
        assert not cache.extend_fixed_point(0, 256, 32)  # shrink
        assert cache.extend_fixed_point(0, 2048, 32)

    @settings(max_examples=120, deadline=None)
    @given(geometry_and_ring(), st.data())
    def test_truncation_matches_flush_plus_warm(self, params, data):
        """truncate_fixed_point == flush + warm of the prefix ring.

        The binary-descent invariant: a shrinking probe against a warmed
        superset ring must land on exactly the state a fresh flush + full
        warm of the smaller ring would install — hits, end state and the
        statistics of a subsequent timed pass included.
        """
        size, line, fg, ways, stride, addrs = params
        if len(addrs) < 2:
            return
        cut = data.draw(st.integers(min_value=1, max_value=len(addrs) - 1))
        n_samples = data.draw(st.integers(min_value=1, max_value=3 * cut))
        base = int(addrs[0])
        truncated = SimCache(size, line, fg, ways)
        fresh = SimCache(size, line, fg, ways)
        truncated.warm_fixed_point(base, len(addrs) * stride, stride)
        assert truncated.truncate_fixed_point(base, cut * stride, stride)
        fresh.warm_fixed_point(base, cut * stride, stride)
        prefix = addrs[:cut]
        hits_t = truncated.chase_cyclic(prefix, n_samples, warmed=True, stride=stride)
        hits_f = fresh.chase_cyclic(prefix, n_samples, warmed=True, stride=stride)
        assert hits_t is not None and hits_f is not None
        assert (hits_t == hits_f).all()
        assert truncated.snapshot() == fresh.snapshot()
        assert stats(truncated) == stats(fresh)

    def test_truncation_refused_without_proof(self):
        cache = SimCache(1024, 64, 32, 2)
        cache.warm_fixed_point(0, 1024, 32)
        assert not cache.truncate_fixed_point(64, 512, 32)  # different base
        assert not cache.truncate_fixed_point(0, 512, 64)  # different stride
        cache.warm_fixed_point(0, 512, 32)
        assert not cache.truncate_fixed_point(0, 1024, 32)  # grow, not shrink
        # Materialised rows offer no descriptor to truncate.
        cache.warm_fixed_point(0, 1024, 32)
        cache.resident_lines()  # forces materialisation
        assert not cache.truncate_fixed_point(0, 512, 32)

    def test_flush_discards_pending_warms(self):
        cache = SimCache(1024, 64, 32, 2)
        cache.warm_cyclic_lazy(0, 512, 32)
        cache.warm_cyclic_lazy(4096, 512, 32)
        cache.flush()
        assert cache.resident_lines() == 0


class TestLazyWarmList:
    @settings(max_examples=100, deadline=None)
    @given(geometry_and_ring(), st.integers(min_value=1, max_value=3))
    def test_replay_order_preserved(self, params, n_warms):
        """Deferred warms materialise in order, equal to eager warms."""
        size, line, fg, ways, stride, addrs = params
        lazy = SimCache(size, line, fg, ways)
        eager = SimCache(size, line, fg, ways)
        for i in range(n_warms):
            ring = addrs + i * 16 * size
            lazy.warm_cyclic_lazy(int(ring[0]), len(ring) * stride, stride)
            eager.warm_cyclic(ring, stride=stride)
        assert lazy.snapshot() == eager.snapshot()
        # ...and statistics catch up at materialisation time.
        assert lazy.line_misses == eager.line_misses


@pytest.mark.parametrize("stride", [16, 32, 64, 96, 128, 256])
def test_chase_multi_wrap_exactness(stride):
    """n_samples far beyond the ring length wraps with the steady pattern."""
    cache = SimCache(2048, 64, 32, 2)
    exact = SimCache(2048, 64, 32, 2)
    addrs = strided_ring(1600, stride)
    cache.warm_cyclic(addrs, stride=stride)
    exact.warm_cyclic(addrs, stride=stride)
    hits = cache.chase_cyclic(addrs, 7 * len(addrs) + 3, warmed=True, stride=stride)
    ref = chase_reference(exact, addrs, 7 * len(addrs) + 3)
    assert (hits == ref).all()
    assert cache.snapshot() == exact.snapshot()
