"""Tests for the fleet runner (repro.validate.fleet)."""

import json

import pytest

from repro.errors import ReproError
from repro.validate import discover_fleet
from repro.validate.fleet import FleetEntry, _discover_one

PRESETS = ("TestGPU-AMD", "TestGPU-AMD-L3")


@pytest.fixture(scope="module")
def sequential():
    return discover_fleet(PRESETS, seed=0, parallel=False)


@pytest.fixture(scope="module")
def concurrent():
    return discover_fleet(PRESETS, seed=0, jobs=2)


class TestDiscoverFleet:
    def test_entries_in_input_order(self, concurrent):
        assert [e.preset for e in concurrent.entries] == list(PRESETS)
        assert concurrent.jobs == 2

    def test_all_verdicts_pass(self, concurrent):
        assert concurrent.verdicts() == {p: "pass" for p in PRESETS}
        assert concurrent.all_passed

    def test_parallel_matches_sequential_byte_for_byte(self, sequential, concurrent):
        a = json.dumps(sequential.as_dict()["reports"], default=str, sort_keys=True)
        b = json.dumps(concurrent.as_dict()["reports"], default=str, sort_keys=True)
        assert a == b

    def test_unknown_preset_fails_fast(self):
        with pytest.raises(ReproError):
            discover_fleet(["NoSuchGPU"], parallel=False)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ReproError):
            discover_fleet([])

    def test_duplicate_presets_rejected(self):
        with pytest.raises(ReproError, match="duplicate"):
            discover_fleet(["TestGPU-AMD", "TestGPU-AMD"])

    def test_unvalidated_fleet(self):
        result = discover_fleet(["TestGPU-AMD"], seed=0, validate=False, parallel=False)
        assert result.verdicts() == {"TestGPU-AMD": "unvalidated"}
        assert not result.all_passed

    def test_worker_failure_becomes_error_entry(self, monkeypatch):
        import repro.validate.fleet as fleet_mod

        def boom(preset, seed, cache_config, engine, validate, cache_dir=None,
                 retry=None):
            raise RuntimeError(f"{preset} exploded")

        monkeypatch.setattr(fleet_mod, "_discover_one", boom)
        result = discover_fleet(PRESETS, seed=0, parallel=False)
        assert all(e.verdict == "error" for e in result.entries)
        assert "exploded" in result.entry("TestGPU-AMD").error
        assert result.entry("TestGPU-AMD").error_kind == "infrastructure"

    def test_worker_function_is_self_contained(self):
        outcome = _discover_one("TestGPU-AMD", 0, "PreferL1", "analytic", True)
        assert outcome.preset == "TestGPU-AMD"
        assert outcome.report.validation is not None
        assert outcome.wall_seconds > 0 and outcome.error == ""
        assert outcome.attempts == 1 and outcome.error_kind == ""

    def test_worker_returns_failure_as_data_with_real_wall(self):
        # unknown preset inside the worker: error carried as data, not an
        # exception, with the actual elapsed wall (same accounting as a
        # successful run, in both sequential and concurrent modes)
        outcome = _discover_one("NoSuchGPU", 0, "PreferL1", "analytic", True)
        assert outcome.preset == "NoSuchGPU" and outcome.report is None
        assert outcome.wall_seconds > 0 and "NoSuchGPU" in outcome.error
        # an unknown preset cannot be retried into existence
        assert outcome.error_kind == "permanent" and outcome.attempts == 1


class TestFleetResult:
    def test_comparison_matrix_fields(self, concurrent):
        rows = concurrent.comparison_matrix()
        assert len(rows) == len(PRESETS)
        first = rows[0]
        assert first["preset"] == "TestGPU-AMD"
        assert first["vendor"] == "AMD"
        assert first["first_level_size"] == 4096
        assert first["verdict"] == "pass"
        assert first["benchmarks_executed"] > 0

    def test_markdown_matrix(self, concurrent):
        md = concurrent.to_markdown()
        assert "# MT4G Fleet Report" in md
        for preset in PRESETS:
            assert f"| {preset} |" in md
        assert "| pass |" in md

    def test_as_dict_serialisable(self, concurrent):
        d = concurrent.as_dict()
        assert d["schema"] == "mt4g-repro-fleet/1"
        assert set(d["reports"]) == set(PRESETS)
        json.dumps(d, default=str)

    def test_error_entry_rendering(self):
        result = discover_fleet(["TestGPU-AMD"], seed=0, validate=False, parallel=False)
        result.entries.append(
            FleetEntry("BrokenGPU", 0, None, 0.1, error="sim crashed")
        )
        row = result.comparison_matrix()[-1]
        assert row["error"] == "sim crashed"
        assert "error: sim crashed" in result.to_markdown()
        with pytest.raises(KeyError):
            result.entry("NeverRan")

    def test_empty_error_entry_still_renders_text(self):
        # an entry built with an empty error string (ok is False either
        # way) must not print a blank "error: " cell
        result = discover_fleet(["TestGPU-AMD"], seed=0, validate=False, parallel=False)
        result.entries.append(FleetEntry("BrokenGPU", 0, None, 0.1, error=""))
        assert "error: unknown error" in result.to_markdown()

    def test_zero_values_render_as_values_not_missing(self):
        # a legitimately-zero attribute is a value, not a missing cell
        result = discover_fleet(["TestGPU-AMD"], seed=0, validate=False, parallel=False)
        report = result.entry("TestGPU-AMD").report
        report.memory["vL1"].get("size").value = 0
        report.memory["DeviceMemory"].get("load_latency").value = 0.0
        report.memory["DeviceMemory"].get("read_bandwidth").value = 0.0
        row = result.comparison_matrix()[0]
        assert row["first_level_size"] == 0
        assert row["dram_latency_cycles"] == 0.0
        md_row = next(
            line for line in result.to_markdown().splitlines()
            if line.startswith("| TestGPU-AMD |")
        )
        assert "| 0 B |" in md_row
        assert "| 0 cyc |" in md_row
        assert "| 0 B/s |" in md_row
        assert "| — |" not in md_row

    def test_fleet_validation_attached_when_validating(self, concurrent):
        assert concurrent.validation is not None
        assert concurrent.validation.verdict == "pass"
        assert "fleet_validation" in concurrent.as_dict()
        assert "## Fleet Validation" in concurrent.to_markdown()


class TestErrorFallback:
    def test_worker_empty_exception_message_falls_back_to_type(self, monkeypatch):
        import repro.validate.fleet as fleet_mod

        class ExplodingGPU:
            def __init__(self, *a, **k):
                raise ValueError()  # deliberately message-less

        monkeypatch.setattr(fleet_mod, "SimulatedGPU", ExplodingGPU)
        outcome = _discover_one("TestGPU-AMD", 0, "PreferL1", "analytic", False)
        assert outcome.report is None and outcome.error == "ValueError"

    def test_sequential_loop_empty_message_falls_back_to_type(self, monkeypatch):
        import repro.validate.fleet as fleet_mod

        def boom(preset, seed, cache_config, engine, validate, cache_dir=None,
                 retry=None):
            raise RuntimeError()  # deliberately message-less

        monkeypatch.setattr(fleet_mod, "_discover_one", boom)
        result = discover_fleet(["TestGPU-AMD"], seed=0, parallel=False)
        assert result.entry("TestGPU-AMD").error == "RuntimeError"
        assert "error[infrastructure]: RuntimeError" in result.to_markdown()

    def test_handbuilt_error_entry_renders_without_kind(self):
        from repro.validate.fleet import FleetResult

        entry = FleetEntry("X", 0, None, 0.0, error="boom")
        result = FleetResult(entries=[entry], jobs=1,
                             total_wall_seconds=0.0, seed=0)
        assert "error: boom" in result.to_markdown()
