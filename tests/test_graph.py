"""Tests for the canonical topology graph subsystem (repro.graph).

The contracts under test:

* the shared id grammar (``cache:L2[segment=1]``) is deterministic and
  rejects anything that would make two ids collide or un-parse;
* the model's structural invariants hold adversarially (property
  tests): unique node ids, no dangling edge endpoints, canonical
  ordering independent of insertion order;
* ``build_graph(report)`` renders byte-stable JSON across repeated
  builds, across the analytic and exact measurement engines, and across
  cold discovery vs cache hit — the invariant the serving layer's
  ``cmp``-level byte-identity contract extends;
* host collectors degrade per-collector and never fail a build.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MT4G, DiscoveryCache, SimulatedGPU
from repro.graph import (
    EDGE_KINDS,
    NODE_KINDS,
    GraphError,
    TopologyGraph,
    build_fleet_graph,
    build_graph,
    collect_host,
    element_kind,
    element_node_id,
    node_id,
    to_dot,
    to_graph_json,
)
from repro.serve.catalog import CatalogEntry


class TestIdGrammar:
    def test_plain_and_qualified_forms(self):
        assert node_id("cache", "L2") == "cache:L2"
        assert node_id("cache", "L2", segment=1) == "cache:L2[segment=1]"
        assert node_id("cache", "L1", sm=0) == "cache:L1[sm=0]"

    def test_qualifiers_sort_by_key(self):
        a = node_id("gpu", "A100", seed=0, preset="A100")
        b = node_id("gpu", "A100", preset="A100", seed=0)
        assert a == b == "gpu:A100[preset=A100,seed=0]"

    def test_element_kinds(self):
        assert element_node_id("L2") == "cache:L2"
        assert element_node_id("SharedMem", sm=2) == "scratchpad:SharedMem[sm=2]"
        assert element_node_id("LDS") == "scratchpad:LDS"
        assert element_node_id("DeviceMemory") == "memory:DeviceMemory"
        assert element_kind("SomeFutureCache") == "cache"

    def test_names_may_carry_colons_kinds_may_not(self):
        # PCI addresses are names with colons; the first colon splits.
        assert node_id("pci", "0000:00:02.0") == "pci:0000:00:02.0"
        with pytest.raises(ValueError):
            node_id("pc:i", "x")

    @pytest.mark.parametrize("bad", ["L2[0]", "a,b", "k=v"])
    def test_reserved_characters_rejected(self, bad):
        with pytest.raises(ValueError):
            node_id("cache", bad)
        with pytest.raises(ValueError):
            node_id("cache", "L2", q=bad)

    def test_empty_parts_rejected(self):
        with pytest.raises(ValueError):
            node_id("", "L2")
        with pytest.raises(ValueError):
            node_id("cache", "")


class TestModel:
    def test_identical_readd_is_noop_conflict_raises(self):
        g = TopologyGraph()
        g.add_node("cache:L2", "cache", "L2", size=1024)
        g.add_node("cache:L2", "cache", "L2", size=1024)  # idempotent
        assert len(g) == 1
        with pytest.raises(GraphError):
            g.add_node("cache:L2", "cache", "L2", size=2048)

    def test_unknown_kinds_raise(self):
        g = TopologyGraph()
        with pytest.raises(GraphError):
            g.add_node("x:y", "warp", "y")
        g.add_node("cache:L2", "cache", "L2")
        g.add_node("memory:DeviceMemory", "memory", "DeviceMemory")
        with pytest.raises(GraphError):
            g.add_edge("cache:L2", "memory:DeviceMemory", "points_at")

    def test_dangling_edges_raise(self):
        g = TopologyGraph()
        g.add_node("cache:L2", "cache", "L2")
        with pytest.raises(GraphError):
            g.add_edge("cache:L2", "memory:DeviceMemory", "reaches")

    def test_duplicate_edges_collapse(self):
        g = TopologyGraph()
        a = g.add_node("cache:L1", "cache", "L1")
        b = g.add_node("cache:L2", "cache", "L2")
        g.add_edge(a, b, "reaches")
        g.add_edge(a, b, "reaches")
        assert len(g.edges) == 1

    def test_children_and_kind_queries(self):
        g = TopologyGraph()
        gpu = g.add_node("gpu:X", "gpu", "X")
        l2 = g.add_node("cache:L2", "cache", "L2")
        dram = g.add_node("memory:DeviceMemory", "memory", "DeviceMemory")
        g.add_edge(gpu, dram, "contains")
        g.add_edge(gpu, l2, "contains")
        assert [n.id for n in g.children(gpu)] == [l2, dram]  # cache ranks first
        assert [n.id for n in g.nodes_of_kind("memory")] == [dram]

    def test_as_dict_shape_and_counts(self):
        g = TopologyGraph(meta={"kind": "device"})
        a = g.add_node("gpu:X", "gpu", "X")
        b = g.add_node("cache:L2", "cache", "L2")
        g.add_edge(a, b, "contains")
        payload = g.as_dict()
        assert payload["schema"] == "mt4g-repro-graph/1"
        assert payload["meta"] == {"kind": "device"}
        assert payload["node_count"] == 2 and payload["edge_count"] == 1
        assert [n["id"] for n in payload["nodes"]] == ["gpu:X", "cache:L2"]

    def test_dot_escapes_quotes(self):
        g = TopologyGraph()
        g.add_node('gpu:weird "name"', "gpu", 'weird "name"')
        dot = to_dot(g)
        assert '\\"name\\"' in dot
        assert dot.startswith("digraph mt4g {") and dot.endswith("}")


# --------------------------------------------------------------------- #
# property tests: invariants under arbitrary construction               #
# --------------------------------------------------------------------- #

_names = st.text(
    alphabet=st.characters(
        codec="ascii", categories=("L", "N"), include_characters="._- "
    ),
    min_size=1,
    max_size=12,
).filter(lambda s: s.strip() == s and s)

_node_specs = st.lists(
    st.tuples(st.sampled_from(NODE_KINDS), _names, st.integers(0, 3)),
    min_size=1,
    max_size=12,
    unique_by=lambda t: (t[0], t[1], t[2]),
)


def _assemble(specs, edge_picks, shuffle=None):
    """Build a graph from drawn specs (optionally permuted), with edges
    among the declared nodes chosen by ``edge_picks`` indexes."""
    order = list(range(len(specs)))
    if shuffle is not None:
        order = shuffle
    g = TopologyGraph()
    ids = {}
    for i in order:
        kind, name, qual = specs[i]
        ids[i] = g.add_node(node_id(kind, name, q=qual), kind, name, q=qual)
    for a, b, k in edge_picks:
        g.add_edge(ids[a % len(specs)], ids[b % len(specs)], EDGE_KINDS[k % 3])
    return g


@given(
    specs=_node_specs,
    edges=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30), st.integers(0, 2)),
        max_size=20,
    ),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_graph_invariants_hold_for_any_construction(specs, edges, data):
    g = _assemble(specs, edges)
    g.validate()
    nodes = g.sorted_nodes()
    # node ids unique
    assert len({n.id for n in nodes}) == len(nodes)
    # every edge endpoint exists
    ids = {n.id for n in nodes}
    for e in g.sorted_edges():
        assert e.src in ids and e.dst in ids
    # canonical ordering: serialisation is sorted by (kind rank, id)
    ranks = [(NODE_KINDS.index(n.kind), n.id) for n in nodes]
    assert ranks == sorted(ranks)
    # insertion order cannot leak into the bytes
    shuffled = data.draw(st.permutations(list(range(len(specs)))))
    assert to_graph_json(_assemble(specs, edges, shuffle=shuffled)) == to_graph_json(g)


@given(specs=_node_specs)
@settings(max_examples=40, deadline=None)
def test_json_roundtrip_counts(specs):
    g = _assemble(specs, [])
    payload = json.loads(to_graph_json(g))
    assert payload["node_count"] == len(payload["nodes"]) == len(specs)
    assert payload["edge_count"] == len(payload["edges"]) == 0


# --------------------------------------------------------------------- #
# building from real reports                                            #
# --------------------------------------------------------------------- #


class TestBuildFromReports:
    def test_nvidia_shape(self, nv_report):
        g = build_graph(nv_report)
        g.validate()
        assert g.meta["preset"] == "TestGPU-NV" and g.meta["kind"] == "device"
        gpu = g.nodes_of_kind("gpu")[0]
        assert gpu.attrs["vendor"] == "NVIDIA"
        cluster = g.nodes_of_kind("cluster")[0]
        assert cluster.name == "GPC"
        assert len(g.nodes_of_kind("sm")) == nv_report.compute.num_sms
        assert not g.nodes_of_kind("cu")
        # every element of the report is a node under the shared scheme
        for element in nv_report.memory:
            assert element_node_id(element) in g.nodes

    def test_amd_shape(self, amd_l3_report):
        g = build_graph(amd_l3_report)
        assert g.nodes_of_kind("cluster")[0].name == "SE"
        assert len(g.nodes_of_kind("cu")) == amd_l3_report.compute.num_sms
        # the data path threads L2 -> L3 -> DeviceMemory when L3 exists
        reaches = {(e.src, e.dst) for e in g.edges if e.kind == "reaches"}
        assert ("cache:L2", "cache:L3") in reaches
        assert ("cache:L3", "memory:DeviceMemory") in reaches
        assert ("cache:L2", "memory:DeviceMemory") not in reaches

    def test_l2_segments_become_nodes(self, nv2seg_report):
        g = build_graph(nv2seg_report)
        segments = [n for n in g.children(element_node_id("L2")) if "segment" in n.attrs]
        amount = nv2seg_report.memory["L2"].get("amount").value
        assert len(segments) == amount == 2
        total = nv2seg_report.memory["L2"].get("size").value
        assert all(n.attrs["size"] == total // amount for n in segments)

    def test_sm_level_reaches_edges(self, nv_report):
        g = build_graph(nv_report)
        reaches = {(e.src, e.dst) for e in g.edges if e.kind == "reaches"}
        for sm in g.nodes_of_kind("sm"):
            assert (sm.id, "cache:L1") in reaches
            assert (sm.id, "scratchpad:SharedMem") in reaches

    def test_shares_edges_mirror_shared_with(self, nv_report):
        g = build_graph(nv_report)
        shares = {(e.src, e.dst) for e in g.edges if e.kind == "shares"}
        for element in nv_report.memory:
            av = nv_report.memory[element].get("shared_with")
            if av.unit != "elements" or not isinstance(av.value, (tuple, list)):
                continue
            for partner in av.value:
                if partner in nv_report.memory:
                    a, b = sorted((element, partner))
                    assert (element_node_id(a), element_node_id(b)) in shares

    def test_mig_overlay(self, nv_report):
        g = build_graph(nv_report, mig_profile="1g.5gb", visible_sms=2,
                        visible_dram_bytes=5 * 2**30)
        assert g.meta["mig_profile"] == "1g.5gb"
        assert len(g.nodes_of_kind("sm")) == 2
        assert g.node("memory:DeviceMemory").attrs["visible_bytes"] == 5 * 2**30

    def test_meta_never_leaks_into_graph(self, nv_report):
        baseline = to_graph_json(build_graph(nv_report))
        nv_report.meta["cache"] = {"status": "hit", "key": "f" * 64, "store": "/x"}
        try:
            assert to_graph_json(build_graph(nv_report)) == baseline
        finally:
            nv_report.meta.pop("cache", None)


class TestByteStability:
    def test_repeated_builds_identical(self, nv_report):
        assert to_graph_json(build_graph(nv_report)) == to_graph_json(
            build_graph(nv_report)
        )
        assert to_dot(build_graph(nv_report)) == to_dot(build_graph(nv_report))

    def test_across_measurement_engines(self):
        from repro.pchase.config import PChaseConfig

        analytic = MT4G(SimulatedGPU.from_preset("TestGPU-NV", seed=3)).discover()
        exact = MT4G(
            SimulatedGPU.from_preset("TestGPU-NV", seed=3),
            config=PChaseConfig(engine="exact"),
        ).discover()
        assert to_graph_json(build_graph(analytic)) == to_graph_json(
            build_graph(exact)
        )

    def test_across_cache_hit_and_cold(self, tmp_path):
        store = DiscoveryCache(tmp_path / "store")
        cold = MT4G(
            SimulatedGPU.from_preset("TestGPU-NV", seed=7), cache=store
        ).discover()
        hit = MT4G(
            SimulatedGPU.from_preset("TestGPU-NV", seed=7), cache=store
        ).discover()
        assert hit.meta["cache"]["status"] == "hit"
        uncached = MT4G(SimulatedGPU.from_preset("TestGPU-NV", seed=7)).discover()
        rendered = {
            to_graph_json(build_graph(r)) for r in (cold, hit, uncached)
        }
        assert len(rendered) == 1


# --------------------------------------------------------------------- #
# host collectors                                                       #
# --------------------------------------------------------------------- #


def _fake_sysfs(tmp_path, with_gpu=True):
    proc = tmp_path / "proc"
    sys_root = tmp_path / "sys"
    proc.mkdir()
    (proc / "cpuinfo").write_text(
        "processor\t: 0\nmodel name\t: Fake CPU 9000\nprocessor\t: 1\n"
    )
    (proc / "meminfo").write_text("MemTotal:       16384 kB\n")
    node0 = sys_root / "devices" / "system" / "node" / "node0"
    node0.mkdir(parents=True)
    (node0 / "cpulist").write_text("0-1\n")
    (node0 / "meminfo").write_text("Node 0 MemTotal:       16384 kB\n")
    pci = sys_root / "bus" / "pci" / "devices" / "0000:00:02.0"
    pci.mkdir(parents=True)
    (pci / "class").write_text("0x030000\n" if with_gpu else "0x010000\n")
    (pci / "vendor").write_text("0x10de\n")
    (pci / "device").write_text("0x20b0\n")
    (pci / "numa_node").write_text("0\n")
    return proc, sys_root


class TestHostCollectors:
    def test_collects_from_fake_roots(self, tmp_path):
        proc, sys_root = _fake_sysfs(tmp_path)
        host = collect_host(proc_root=proc, sys_root=sys_root)
        assert host.cpu == {"model": "Fake CPU 9000", "logical_cpus": 2}
        assert host.memory_bytes == 16384 * 1024
        assert host.numa_nodes[0]["cpus"] == "0-1"
        assert host.pci_gpus[0]["address"] == "0000:00:02.0"
        assert host.pci_gpus[0]["numa_node"] == 0
        assert set(host.degraded) == set()

    def test_missing_roots_degrade_not_raise(self, tmp_path):
        host = collect_host(
            proc_root=tmp_path / "nope", sys_root=tmp_path / "nada"
        )
        # hostname still works (socket, not /proc); the file-backed
        # collectors all degrade with a reason
        for name in ("cpu", "memory", "numa", "pci"):
            assert name in host.degraded

    def test_wedged_collector_times_out(self, monkeypatch, tmp_path):
        import time

        import repro.graph.host as host_mod

        def wedged(proc, sys):
            time.sleep(10)

        collectors = tuple(
            (name, wedged if name == "memory" else fn)
            for name, fn in host_mod._COLLECTORS
        )
        monkeypatch.setattr(host_mod, "_COLLECTORS", collectors)
        proc, sys_root = _fake_sysfs(tmp_path)
        host = collect_host(proc_root=proc, sys_root=sys_root, timeout=0.05)
        assert host.degraded.get("memory", "").startswith("timeout")
        assert host.memory_bytes is None
        assert host.cpu is not None  # the others still landed

    def test_degraded_host_never_fails_a_build(self, nv_report, tmp_path):
        host = collect_host(proc_root=tmp_path / "x", sys_root=tmp_path / "y")
        g = build_graph(nv_report, host=host)
        g.validate()
        assert set(g.meta["host_degraded"]) >= {"cpu", "memory", "numa", "pci"}

    def test_host_attaches_pci_and_numa(self, nv_report, tmp_path):
        proc, sys_root = _fake_sysfs(tmp_path)
        host = collect_host(proc_root=proc, sys_root=sys_root)
        g = build_graph(nv_report, host=host)
        gpu = g.nodes_of_kind("gpu")[0]
        reaches = {(e.src, e.dst) for e in g.edges if e.kind == "reaches"}
        assert ("pci:0000:00:02.0", gpu.id) in reaches
        assert ("numa:0", "pci:0000:00:02.0") in reaches
        host_node = g.nodes_of_kind("host")[0]
        assert g.children(host_node.id)  # cpu/numa/pci under the host


# --------------------------------------------------------------------- #
# the fleet graph                                                       #
# --------------------------------------------------------------------- #


def _entry(preset, vendor, microarch, key):
    return CatalogEntry(
        key=key,
        preset=preset,
        vendor=vendor,
        microarchitecture=microarch,
        model=f"{vendor} {preset}",
        seed=0,
        schema_version="mt4g-repro/1",
        verdict="unvalidated",
        wall_seconds=1.23,
        benchmarks_executed=10,
        elements=("L1", "L2"),
    )


class TestFleetGraph:
    def test_groups_by_vendor(self):
        entries = [
            _entry("TestGPU-NV", "NVIDIA", "Test", "a" * 64),
            _entry("TestGPU-AMD", "AMD", "Test", "b" * 64),
            _entry("A100", "NVIDIA", "Ampere", "c" * 64),
        ]
        g = build_fleet_graph(entries, group="vendor")
        assert g.meta == {"kind": "fleet", "group_by": "vendor"}
        groups = {n.name: n.attrs["devices"] for n in g.nodes_of_kind("group")}
        assert groups == {"NVIDIA": 2, "AMD": 1}
        assert g.node("fleet:catalog").attrs["devices"] == 3
        assert len(g.nodes_of_kind("gpu")) == 3

    def test_groups_by_microarchitecture(self):
        entries = [
            _entry("TestGPU-NV", "NVIDIA", "Test", "a" * 64),
            _entry("A100", "NVIDIA", "Ampere", "c" * 64),
        ]
        g = build_fleet_graph(entries, group="microarchitecture")
        assert {n.name for n in g.nodes_of_kind("group")} == {"Test", "Ampere"}

    def test_unknown_grouping_raises(self):
        with pytest.raises(GraphError):
            build_fleet_graph([], group="bogus")

    def test_wall_seconds_stay_out_of_the_bytes(self):
        import dataclasses

        a = _entry("TestGPU-NV", "NVIDIA", "Test", "a" * 64)
        b = dataclasses.replace(a, wall_seconds=99.9)
        assert to_graph_json(build_fleet_graph([a])) == to_graph_json(
            build_fleet_graph([b])
        )

    def test_entry_order_cannot_leak(self):
        entries = [
            _entry("TestGPU-NV", "NVIDIA", "Test", "a" * 64),
            _entry("TestGPU-AMD", "AMD", "Test", "b" * 64),
        ]
        assert to_graph_json(build_fleet_graph(entries)) == to_graph_json(
            build_fleet_graph(list(reversed(entries)))
        )
