"""Tests for cross-instance replication (ring + peer tier + proxy jobs).

The contracts that make a serving *fleet* honest:

* a report pulled from a peer is byte-identical to the CLI's uncached
  output — replication moves wrapped blobs, never re-encodes;
* N concurrent cold requests across two instances coalesce into exactly
  one discovery, on the key's ring owner;
* a cold read on a replica with no peer to lean on is a *structured*
  404 (key + read_only) the fetching side can parse;
* a dead owner degrades to a local discovery (counted in
  ``peer_fallbacks``), never to an error response;
* ``GET /metrics`` negotiates Prometheus text exposition.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import MT4G, SimulatedGPU
from repro.cache.ring import HashRing
from repro.cache.tiers import build_worker_cache
from repro.core.output.json_out import to_json
from repro.faults.retry import RetryPolicy
from repro.serve import HTTPRequest, TopologyService

PRESET = "TestGPU-NV"

#: One fast attempt per peer: these tests point at dead ports on
#: purpose and must not sit out backoff sleeps.
FAST_RETRY = RetryPolicy(attempts=1, base_delay=0.001, max_delay=0.01)


@pytest.fixture
def executor():
    ex = ThreadPoolExecutor(max_workers=4)
    yield ex
    ex.shutdown(wait=True)


def tiered(tmp_path, name):
    return build_worker_cache(tmp_path / name)


def warm(store, preset=PRESET, seed=0):
    device = SimulatedGPU.from_preset(preset, seed=seed)
    return MT4G(device, cache=store).discover()


def cli_bytes(preset=PRESET, seed=0) -> bytes:
    report = MT4G(SimulatedGPU.from_preset(preset, seed=seed)).discover()
    return (to_json(report) + "\n").encode()


def get(service, path, query=None, headers=None):
    return service.handle_request(
        HTTPRequest("GET", path, query=query or {}, headers=headers or {})
    )


def seed_owned_by(ring: HashRing, service, node: str, preset=PRESET) -> int:
    """A seed whose report key the given ring member owns."""
    for seed in range(64):
        if ring.owner(service.jobs.report_key(preset, seed, False)) == node:
            return seed
    raise AssertionError(f"no seed in range owned by {node}")


# ---------------------------------------------------------------------- #
# two live instances                                                      #
# ---------------------------------------------------------------------- #


class TestTwoInstances:
    def test_replica_pulls_miss_from_peer_byte_identically(self, tmp_path, executor):
        store_a = tiered(tmp_path, "a")
        store_b = tiered(tmp_path, "b")

        async def scenario():
            a = TopologyService(store_a, executor=executor, max_workers=2)
            b = TopologyService(
                store_b, read_only=True, executor=executor, max_workers=2
            )
            host_a, port_a = await a.start(port=0)
            host_b, port_b = await b.start(port=0)
            url_a, url_b = f"http://{host_a}:{port_a}", f"http://{host_b}:{port_b}"
            a.attach_ring(HashRing(url_a, [url_b]))
            b.attach_ring(HashRing(url_b, [url_a]))
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, warm, store_a)
            try:
                first = await get(b, f"/devices/{PRESET}/report", {"seed": "0"})
                second = await get(b, f"/devices/{PRESET}/report", {"seed": "0"})
            finally:
                await a.stop()
                await b.stop()
            return b, first, second

        b, first, second = asyncio.run(scenario())
        assert first.status == second.status == 200
        # The replication invariant: bytes served through memory, disk
        # and the peer hop are the CLI's uncached bytes.
        assert first.body == second.body == cli_bytes()
        # No discovery happened anywhere near the replica...
        assert b.jobs.discoveries_started == 0
        assert b.jobs.peer_fetches == 0  # a tier fetch, not a proxy job
        # ...the peer tier pulled it, and promotion landed it locally.
        tiers = store_b.tier_stats()
        assert tiers["peer"]["hits"] == 1
        assert store_b.store.entry_count() == 1
        # The second read never left the instance (memory tier hit).
        assert tiers["memory"]["hits"] == 1
        assert tiers["peer"]["misses"] == 0

    def test_concurrent_cold_requests_coalesce_on_the_ring_owner(
        self, tmp_path, executor
    ):
        # The acceptance criterion: cold requests landing on *both*
        # instances produce exactly one discovery, on the key's owner.
        store_a = tiered(tmp_path, "a")
        store_b = tiered(tmp_path, "b")

        async def scenario():
            a = TopologyService(store_a, executor=executor, max_workers=2)
            b = TopologyService(store_b, executor=executor, max_workers=2)
            host_a, port_a = await a.start(port=0)
            host_b, port_b = await b.start(port=0)
            url_a, url_b = f"http://{host_a}:{port_a}", f"http://{host_b}:{port_b}"
            ring_a = HashRing(url_a, [url_b])
            a.attach_ring(ring_a, peer_timeout=30.0)
            b.attach_ring(HashRing(url_b, [url_a]), peer_timeout=30.0)
            seed = seed_owned_by(ring_a, a, url_a)
            query = {"seed": str(seed)}
            try:
                responses = await asyncio.gather(
                    *(
                        get(svc, f"/devices/{PRESET}/report", query)
                        for svc in (a, b, a, b, a, b)
                    )
                )
            finally:
                await a.stop()
                await b.stop()
            return a, b, seed, responses

        a, b, seed, responses = asyncio.run(scenario())
        assert [r.status for r in responses] == [200] * 6
        assert len({r.body for r in responses}) == 1
        assert responses[0].body == cli_bytes(seed=seed)
        # Exactly one discovery fleet-wide, on the owner.
        assert a.jobs.discoveries_started == 1
        assert b.jobs.discoveries_started == 0
        # The non-owner proxied (one coalesced job covering its three
        # requests) instead of discovering.
        assert b.jobs.peer_fetches == 1
        assert b.jobs.coalesced == 2
        assert b.jobs.peer_fallbacks == 0
        # Both stores hold the entry now (the proxy landed its fetch).
        assert store_a.store.entry_count() == 1
        assert store_b.store.entry_count() == 1


# ---------------------------------------------------------------------- #
# degraded fleets                                                         #
# ---------------------------------------------------------------------- #


class TestDegradedFleet:
    def test_dead_owner_falls_back_to_local_discovery(self, tmp_path, executor):
        # The ring says a dead instance owns the key; a writable
        # instance must degrade to discovering locally, not to a 503.
        store = tiered(tmp_path, "a")
        service = TopologyService(store, executor=executor, max_workers=2)
        ring = HashRing("http://127.0.0.1:9", ["http://127.0.0.1:1"])
        service.attach_ring(ring, peer_retry=FAST_RETRY, peer_timeout=0.3)
        seed = seed_owned_by(ring, service, "http://127.0.0.1:1")

        response = asyncio.run(
            get(service, f"/devices/{PRESET}/report", {"seed": str(seed)})
        )
        assert response.status == 200
        assert response.body == cli_bytes(seed=seed)
        assert service.jobs.peer_fetches == 1  # the proxy was attempted
        assert service.jobs.peer_fallbacks == 1  # ...and fell back
        assert service.jobs.discoveries_started == 1
        assert service.jobs.discoveries_failed == 0  # degradation, not failure

    def test_read_only_cold_miss_is_a_structured_404(self, tmp_path, executor):
        # No ring: a lone replica cannot proxy, so the 404 must carry
        # the machine-readable fields the peer tier parses.
        store = tiered(tmp_path, "a")
        service = TopologyService(
            store, read_only=True, executor=executor, max_workers=2
        )
        response = asyncio.run(get(service, f"/devices/{PRESET}/report"))
        assert response.status == 404
        body = json.loads(response.body)
        assert body["read_only"] is True
        assert body["preset"] == PRESET
        assert body["key"] == service.jobs.report_key(PRESET, 0, False)
        assert body["status"] == 404


# ---------------------------------------------------------------------- #
# the /store/{key} route                                                  #
# ---------------------------------------------------------------------- #


class TestStoreRoute:
    def test_serves_the_raw_wrapped_blob(self, tmp_path, executor):
        store = tiered(tmp_path, "a")
        warm(store)
        service = TopologyService(store, executor=executor, max_workers=2)
        key = service.jobs.report_key(PRESET, 0, False)

        response = asyncio.run(get(service, f"/store/{key}"))
        assert response.status == 200
        assert response.content_type == "application/octet-stream"
        assert response.body == store.get_blob(key)

    def test_malformed_and_absent_keys(self, tmp_path, executor):
        store = tiered(tmp_path, "a")
        service = TopologyService(store, executor=executor, max_workers=2)
        absent = "ab" * 32

        async def scenario():
            bad = await get(service, "/store/zz")
            missing = await get(service, f"/store/{absent}")
            return bad, missing

        bad, missing = asyncio.run(scenario())
        assert bad.status == 400
        assert missing.status == 404
        body = json.loads(missing.body)
        assert body["key"] == absent and body["read_only"] is False

    def test_discover_param_produces_the_entry_single_flight(
        self, tmp_path, executor
    ):
        store = tiered(tmp_path, "a")
        service = TopologyService(store, executor=executor, max_workers=2)
        key = service.jobs.report_key(PRESET, 3, False)

        async def scenario():
            mismatch = await get(
                service, f"/store/{key}", {"discover": "1", "preset": PRESET}
            )  # seed defaults to 0: wrong key for seed 3
            produced = await get(
                service,
                f"/store/{key}",
                {"discover": "1", "preset": PRESET, "seed": "3"},
            )
            return mismatch, produced

        mismatch, produced = asyncio.run(scenario())
        assert mismatch.status == 400
        assert produced.status == 200
        assert service.jobs.discoveries_started == 1
        assert store.get_blob(key) == produced.body

    def test_discover_rejected_read_only(self, tmp_path, executor):
        store = tiered(tmp_path, "a")
        service = TopologyService(
            store, read_only=True, executor=executor, max_workers=2
        )
        key = service.jobs.report_key(PRESET, 0, False)
        response = asyncio.run(
            get(service, f"/store/{key}", {"discover": "1", "preset": PRESET})
        )
        assert response.status == 404
        body = json.loads(response.body)
        assert body["key"] == key and body["read_only"] is True

    def test_lookup_is_local_only_never_a_peer_chain(self, tmp_path, executor):
        # /store is what peers call — it must answer from local tiers
        # only, or A -> B -> C fetch chains (and loops) become possible.
        store = tiered(tmp_path, "a")
        service = TopologyService(store, executor=executor, max_workers=2)
        service.attach_ring(
            HashRing("http://127.0.0.1:9", ["http://127.0.0.1:1"]),
            peer_retry=FAST_RETRY,
            peer_timeout=0.3,
        )
        response = asyncio.run(get(service, f"/store/{'ab' * 32}"))
        assert response.status == 404
        assert store.tier_stats()["peer"]["misses"] == 0  # never consulted


# ---------------------------------------------------------------------- #
# Prometheus exposition                                                   #
# ---------------------------------------------------------------------- #


class TestPrometheusMetrics:
    def _warmed_service(self, tmp_path, executor):
        store = tiered(tmp_path, "a")
        warm(store)
        return TopologyService(store, read_only=True, executor=executor)

    def test_format_param_renders_text_exposition(self, tmp_path, executor):
        service = self._warmed_service(tmp_path, executor)

        async def scenario():
            await get(service, f"/devices/{PRESET}/report")
            return await get(service, "/metrics", {"format": "prometheus"})

        response = asyncio.run(scenario())
        assert response.status == 200
        assert response.content_type.startswith("text/plain; version=0.0.4")
        text = response.body.decode()
        assert "# TYPE mt4g_http_requests_total counter" in text
        assert "# TYPE mt4g_uptime_seconds gauge" in text
        assert 'mt4g_http_route_requests_total{route="GET /devices/{preset}/report"} 1' in text
        # Per-tier counters from the tiered store are labelled families
        # (warm() landed the entry in memory too, so the read hit there).
        assert 'mt4g_store_tier_hits_total{tier="memory"} 1' in text
        assert 'mt4g_store_tier_stores_total{tier="disk"} 1' in text
        assert "mt4g_jobs_peer_fetches_total 0" in text
        # Every sample line its TYPE line promised parses as name{...} value.
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                name, _, value = line.rpartition(" ")
                assert name and float(value) >= 0

    def test_accept_header_negotiates_and_json_is_default(
        self, tmp_path, executor
    ):
        service = self._warmed_service(tmp_path, executor)

        async def scenario():
            via_accept = await get(
                service, "/metrics", headers={"accept": "text/plain"}
            )
            default = await get(service, "/metrics")
            return via_accept, default

        via_accept, default = asyncio.run(scenario())
        assert via_accept.content_type.startswith("text/plain")
        assert b"mt4g_uptime_seconds" in via_accept.body
        snapshot = json.loads(default.body)
        assert snapshot["schema"] == "mt4g-repro-metrics/1"
        assert "tiers" in snapshot["store"]
        assert snapshot["jobs"]["peer_fetches"] == 0
