"""Unit tests for the individual Section-IV benchmark families.

End-to-end pipeline assertions live in ``test_tool_*.py``; these tests
exercise each benchmark in isolation, including the honesty paths.
"""

import numpy as np
import pytest

from repro.core.benchmarks.amount import measure_amount, resolve_l2_segments
from repro.core.benchmarks.bandwidth import measure_bandwidth, vector_load_kind
from repro.core.benchmarks.base import BenchmarkContext, MeasurementResult, Source
from repro.core.benchmarks.cacheline import measure_cache_line_size
from repro.core.benchmarks.fetch_granularity import measure_fetch_granularity
from repro.core.benchmarks.latency import measure_load_latency
from repro.core.benchmarks.sharing import measure_sharing_nvidia, measure_sl1d_sharing
from repro.core.benchmarks.size import find_capacity_bounds, measure_cache_size
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.isa import LoadKind
from repro.gpuspec.spec import Quirk, Vendor
from repro.units import KiB
from tests.conftest import make_quirked_amd, make_quirked_nv


@pytest.fixture
def nv_ctx() -> BenchmarkContext:
    return BenchmarkContext(SimulatedGPU.from_preset("TestGPU-NV", seed=4))


@pytest.fixture
def nv2seg_ctx() -> BenchmarkContext:
    return BenchmarkContext(SimulatedGPU.from_preset("TestGPU-NV-2SEG", seed=4))


@pytest.fixture
def amd_ctx() -> BenchmarkContext:
    return BenchmarkContext(SimulatedGPU.from_preset("TestGPU-AMD", seed=4))


class TestMeasurementResult:
    def test_confidence_validated(self):
        with pytest.raises(ValueError):
            MeasurementResult("size", "L1", 1, "B", confidence=2.0)

    def test_no_result(self):
        m = MeasurementResult.no_result("amount", "L1", "count", "because")
        assert m.value is None and not m.conclusive and m.note == "because"

    def test_from_api(self):
        m = MeasurementResult.from_api("size", "L2", 100, "B")
        assert m.source is Source.API and m.conclusive


class TestSizeBenchmark:
    def test_l1_size(self, nv_ctx):
        m = measure_cache_size(nv_ctx, LoadKind.LD_GLOBAL_CA, "L1", 32,
                               lo=1024, hi_cap=1 << 20)
        assert m.conclusive
        assert abs(m.value - 4096) / 4096 < 0.12
        assert m.detail["change_point_index"] > 0

    def test_lower_bound_when_capped(self, nv_ctx):
        # Probing capped below the capacity -> honest lower bound, conf 0.
        m = measure_cache_size(nv_ctx, LoadKind.LD_GLOBAL_CA, "L1", 32,
                               lo=512, hi_cap=2048)
        assert m.confidence == 0.0
        assert m.value == 2048
        assert m.detail.get("lower_bound")

    def test_bounds_finder(self, nv_ctx):
        bounds = find_capacity_bounds(nv_ctx, LoadKind.LD_GLOBAL_CA, 32,
                                      lo=1024, hi_cap=1 << 20)
        assert bounds is not None
        a, b = bounds
        assert a <= 4096 <= b

    def test_bounds_none_when_never_exceeding(self, nv_ctx):
        bounds = find_capacity_bounds(nv_ctx, LoadKind.LD_GLOBAL_CA, 32,
                                      lo=512, hi_cap=3072)
        assert bounds is None

    def test_counts_execution(self, nv_ctx):
        before = nv_ctx.benchmarks_run
        measure_cache_size(nv_ctx, LoadKind.LD_GLOBAL_CA, "L1", 32,
                           lo=1024, hi_cap=1 << 20)
        assert nv_ctx.benchmarks_run == before + 1


class TestLatencyBenchmark:
    def test_l1_latency(self, nv_ctx):
        m = measure_load_latency(nv_ctx, LoadKind.LD_GLOBAL_CA, "L1", 32,
                                 array_bytes=2048)
        spec = nv_ctx.device.spec
        expected = spec.cache("L1").load_latency + spec.noise.measurement_overhead
        assert m.value == pytest.approx(expected, abs=3)
        assert m.confidence > 0.5

    def test_stats_attached(self, nv_ctx):
        m = measure_load_latency(nv_ctx, LoadKind.LD_SHARED, "SharedMem", 32,
                                 array_bytes=1024)
        stats = m.detail["stats"]
        assert stats["p50"] <= stats["p95"]
        assert stats["count"] == nv_ctx.config.n_samples

    def test_cold_dram(self, nv_ctx):
        m = measure_load_latency(nv_ctx, LoadKind.LD_GLOBAL_CG, "DeviceMemory",
                                 256, cold=True)
        spec = nv_ctx.device.spec
        expected = spec.memory.load_latency + spec.noise.measurement_overhead
        assert m.value == pytest.approx(expected, abs=6)


class TestFetchGranularity:
    def test_l1(self, nv_ctx):
        m = measure_fetch_granularity(nv_ctx, LoadKind.LD_GLOBAL_CA, "L1")
        assert m.value == 32
        assert m.detail["hits_per_stride"][4] > 0

    def test_amd_vl1(self, amd_ctx):
        m = measure_fetch_granularity(amd_ctx, LoadKind.FLAT_LOAD, "vL1")
        assert m.value == 64

    def test_cap_produces_no_result(self, nv_ctx):
        m = measure_fetch_granularity(nv_ctx, LoadKind.LD_GLOBAL_CA, "L1",
                                      max_stride=16)
        assert m.value is None

    def test_threshold_override(self, nv_ctx):
        # With an absolute threshold below every latency, nothing counts
        # as a hit and the smallest stride already looks all-miss.
        m = measure_fetch_granularity(nv_ctx, LoadKind.LD_GLOBAL_CA, "L1",
                                      hit_threshold=1.0)
        assert m.value == 4


class TestCacheLine:
    def test_l1_line(self, nv_ctx):
        m = measure_cache_line_size(nv_ctx, LoadKind.LD_GLOBAL_CA, "L1",
                                    cache_size=4096, fetch_granularity=32)
        assert m.value == 64

    def test_sl1d_line(self, amd_ctx):
        m = measure_cache_line_size(amd_ctx, LoadKind.S_LOAD, "sL1d",
                                    cache_size=2048, fetch_granularity=64)
        assert m.value == 64

    def test_tiny_cache_no_result(self, nv_ctx):
        m = measure_cache_line_size(nv_ctx, LoadKind.LD_GLOBAL_CA, "L1",
                                    cache_size=128, fetch_granularity=64)
        assert m.value is None or m.confidence == 0.0


class TestAmount:
    def test_single_segment(self, nv_ctx):
        m = measure_amount(nv_ctx, LoadKind.LD_GLOBAL_CA, "L1", 4096, 32)
        assert m.value == 1

    def test_two_segments(self, nv2seg_ctx):
        m = measure_amount(nv2seg_ctx, LoadKind.LD_GLOBAL_CA, "L1", 4096, 32)
        assert m.value == 2
        assert m.detail["first_isolated_core"] == 32

    def test_warp_bug_aborts_honestly(self):
        spec = make_quirked_nv(frozenset({Quirk.WARP_SCHEDULING_BUG}))
        ctx = BenchmarkContext(SimulatedGPU(spec, seed=4))
        m = measure_amount(ctx, LoadKind.LD_GLOBAL_CA, "L1", 4096, 32,
                           spans_all_warps=True)
        assert m.value is None
        assert "warp 3" in m.note

    def test_l2_segment_alignment(self, nv_ctx):
        m = resolve_l2_segments(nv_ctx, measured_segment_size=24_900_000,
                                api_total_size=50_000_000)
        assert m.value == 2
        assert m.confidence > 0.9
        assert m.detail["aligned_segment_size"] == 25_000_000

    def test_l2_alignment_validates(self, nv_ctx):
        with pytest.raises(ValueError):
            resolve_l2_segments(nv_ctx, 0, 100)


class TestSharingNvidia:
    def test_l1tex_family_detected(self, nv_ctx):
        targets = {
            "L1": (LoadKind.LD_GLOBAL_CA, 4096, 32),
            "Texture": (LoadKind.TEX1DFETCH, 4096, 32),
            "ConstL1": (LoadKind.LD_CONST, 1024, 32),
        }
        res = measure_sharing_nvidia(nv_ctx, targets)
        assert res["L1"].value == ("Texture",)
        assert res["Texture"].value == ("L1",)
        assert res["ConstL1"].value == ()
        assert res["L1"].confidence > 0.5

    def test_flaky_pascal_lowers_confidence(self):
        # Seed 3 is known to flip the quirk coin both ways within the
        # voting rounds (the flakiness is stochastic by design; a seed
        # where all coins land "clean" is a valid hardware outcome too).
        spec = make_quirked_nv(frozenset({Quirk.FLAKY_L1_CONST_SHARING}))
        ctx = BenchmarkContext(SimulatedGPU(spec, seed=3))
        targets = {
            "L1": (LoadKind.LD_GLOBAL_CA, 4096, 32),
            "ConstL1": (LoadKind.LD_CONST, 1024, 32),
        }
        res = measure_sharing_nvidia(ctx, targets)
        # The coin-flip cross-talk must surface: either disagreeing votes
        # (low confidence) or a spurious sharing verdict.
        flaky = res["L1"].confidence < 1.0 or "ConstL1" in res["L1"].value
        assert flaky


class TestSharingAMD:
    def test_cu_map_matches_physical_pairs(self, amd_ctx):
        m = measure_sl1d_sharing(amd_ctx, cache_size=2048, fetch_granularity=64)
        pairs = m.value
        # physical ids (0,1,2,4,5,6,8,9): logical pairs (0,1), (3,4), (6,7)
        assert pairs[0] == (1,)
        assert pairs[1] == (0,)
        assert pairs[3] == (4,)
        assert set(m.detail["exclusive_cus"]) == {2, 5}

    def test_virtualized_no_result(self):
        spec = make_quirked_amd(frozenset({Quirk.VIRTUALIZED}))
        ctx = BenchmarkContext(SimulatedGPU(spec, seed=4))
        m = measure_sl1d_sharing(ctx, cache_size=2048, fetch_granularity=64)
        assert m.value is None
        assert "pinned" in m.note


class TestBandwidth:
    def test_l2_read(self, nv_ctx):
        m = measure_bandwidth(nv_ctx, "L2", "read")
        assert m.value == pytest.approx(
            nv_ctx.device.spec.cache("L2").read_bandwidth, rel=0.12
        )
        assert m.confidence > 0.8

    def test_dram_write(self, nv_ctx):
        m = measure_bandwidth(nv_ctx, "DeviceMemory", "write")
        assert m.value == pytest.approx(
            nv_ctx.device.spec.memory.write_bandwidth, rel=0.12
        )

    def test_vector_kind_per_vendor(self):
        assert vector_load_kind(Vendor.NVIDIA) is LoadKind.LD_GLOBAL_V4
        assert vector_load_kind(Vendor.AMD) is LoadKind.FLAT_LOAD_X4

    def test_samples_recorded(self, nv_ctx):
        m = measure_bandwidth(nv_ctx, "L2", "read", repeats=4)
        assert len(m.detail["samples"]) == 4


class TestContextAccounting:
    def test_timeline(self, nv_ctx):
        measure_load_latency(nv_ctx, LoadKind.LD_SHARED, "SharedMem", 32,
                             array_bytes=512)
        measure_load_latency(nv_ctx, LoadKind.LD_SHARED, "SharedMem", 32,
                             array_bytes=512)
        per = nv_ctx.seconds_per_benchmark()
        assert "load_latency:SharedMem" in per
        assert nv_ctx.benchmarks_run == 2
