"""Tests for reduction (Eq. 2), change-point detection, outlier handling
and descriptive statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats.changepoint import detect_change_point
from repro.stats.descriptive import summarize
from repro.stats.outliers import (
    find_outliers,
    near_interval_edge,
    scrub_outliers,
    scrub_outliers_matrix,
)
from repro.stats.reduction import geometric_reduction, reduce_matrix_rows


class TestGeometricReduction:
    def test_paper_equation(self):
        # S_i = sqrt(sum_j (r_ij - min(r))^2) with the GLOBAL minimum.
        m = np.array([[1.0, 2.0], [3.0, 5.0]])
        out = geometric_reduction(m)
        assert out[0] == pytest.approx(np.sqrt(0 + 1))
        assert out[1] == pytest.approx(np.sqrt(4 + 16))

    def test_explicit_floor(self):
        m = np.array([[10.0, 10.0]])
        assert geometric_reduction(m, global_min=0.0)[0] == pytest.approx(
            np.sqrt(200.0)
        )

    def test_uniform_matrix_reduces_to_zero(self):
        m = np.full((4, 16), 42.0)
        assert np.allclose(geometric_reduction(m), 0.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            geometric_reduction(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            geometric_reduction(np.empty((0, 0)))

    @settings(max_examples=60, deadline=None)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 10), st.integers(2, 30)),
            elements=st.floats(0, 1e6),
        )
    )
    def test_nonnegative_and_monotone_in_misses(self, m):
        out = geometric_reduction(m)
        assert (out >= 0).all()
        # Adding a large value to one row strictly increases its score.
        bumped = m.copy()
        bumped[0, 0] += 1e7
        out2 = geometric_reduction(bumped, global_min=float(m.min()))
        assert out2[0] > out[0]

    def test_ragged_rows(self):
        rows = [np.array([1.0, 1.0, 1.0]), np.array([5.0, 5.0])]
        out = reduce_matrix_rows(rows)
        assert out[1] > out[0]

    def test_ragged_rejects_empty(self):
        with pytest.raises(ValueError):
            reduce_matrix_rows([])
        with pytest.raises(ValueError):
            reduce_matrix_rows([np.array([])])

    @settings(max_examples=60, deadline=None)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 8), st.integers(1, 20)),
            elements=st.floats(0, 1e6),
        )
    )
    def test_uniform_batched_path_matches_scalar_loop(self, m):
        """The vectorised uniform-length fast path == the per-row formula."""
        rows = list(m)
        out = reduce_matrix_rows(rows)
        floor = float(m.min())
        for i, row in enumerate(rows):
            d = row - floor
            expected = np.sqrt(float(d @ d) / row.size) * np.sqrt(m.shape[1])
            assert out[i] == pytest.approx(expected, rel=1e-12, abs=1e-12)


class TestChangePoint:
    def test_clean_step(self):
        series = np.concatenate([np.zeros(30), np.ones(30) * 10])
        cp = detect_change_point(series)
        assert cp is not None
        assert cp.index == 30
        assert cp.significant
        assert cp.confidence > 0.99

    def test_ramp_onset_detected(self):
        # Past a capacity boundary the reduction RAMPS concavely (energy
        # grows with the square root of the miss count); the change point
        # must land at the onset, not mid-ramp (size-benchmark accuracy).
        rng = np.random.default_rng(3)
        noise = rng.normal(0, 0.05, 40)
        ramp = 30.0 * np.sqrt(np.arange(1, 41) / 40.0)
        series = np.concatenate([noise, ramp + rng.normal(0, 0.05, 40)])
        cp = detect_change_point(series)
        assert cp is not None
        assert 38 <= cp.index <= 42
        assert cp.significant

    def test_pure_noise_not_significant(self):
        rng = np.random.default_rng(7)
        series = rng.normal(0, 1, 120)
        cp = detect_change_point(series, alpha=0.001)
        assert cp is None or not cp.significant

    def test_short_series_returns_none(self):
        assert detect_change_point(np.array([1.0, 2.0, 3.0])) is None

    def test_index_is_first_of_new_distribution(self):
        series = np.array([0.0] * 10 + [5.0] * 10)
        cp = detect_change_point(series)
        assert cp.index == 10
        assert series[cp.index] == 5.0

    @settings(max_examples=40, deadline=None)
    @given(
        split=st.integers(min_value=8, max_value=52),
        gap=st.floats(min_value=5.0, max_value=100.0),
    )
    def test_property_step_recovery(self, split, gap):
        rng = np.random.default_rng(split)
        series = np.concatenate(
            [rng.normal(0, 0.3, split), rng.normal(gap, 0.3, 60 - split)]
        )
        cp = detect_change_point(series)
        assert cp is not None and cp.significant
        assert abs(cp.index - split) <= 1


class TestOutliers:
    def test_isolated_spike_found(self):
        series = np.ones(50)
        series[20] = 100.0
        mask = find_outliers(series)
        assert mask[20]
        assert mask.sum() == 1

    def test_level_shift_not_flagged(self):
        # A genuine cliff is a contiguous run — not an isolated spike.
        series = np.concatenate([np.ones(25), np.ones(25) * 100])
        assert not find_outliers(series).any()

    def test_scrub_replaces_with_local_median(self):
        series = np.ones(30)
        series[10] = 500.0
        out = scrub_outliers(series)
        assert out[10] == pytest.approx(1.0)
        assert (out[:10] == 1.0).all()

    def test_scrub_returns_copy(self):
        series = np.ones(30)
        series[5] = 400.0
        scrub_outliers(series)
        assert series[5] == 400.0

    def test_short_series_no_outliers(self):
        assert not find_outliers(np.array([1.0, 99.0])).any()

    def test_series_shorter_than_five_never_flags(self):
        # below 5 points median/MAD is meaningless; even a blatant spike
        # must not be flagged (and scrubbing must be the identity)
        series = np.array([1.0, 1.0, 500.0, 1.0])
        assert not find_outliers(series).any()
        assert (scrub_outliers(series) == series).all()

    def test_adjacent_spikes_are_not_isolated(self):
        # two hot neighbours are a level feature (a cache cliff), not a
        # disturbance: neither may be flagged or scrubbed
        series = np.ones(50)
        series[20] = 100.0
        series[21] = 100.0
        assert not find_outliers(series).any()
        assert (scrub_outliers(series) == series).all()

    def test_adjacent_spike_pair_with_isolated_spike(self):
        # the isolated spike is flagged, the adjacent pair survives
        series = np.ones(60)
        series[10] = 100.0  # isolated
        series[30] = 100.0  # adjacent pair
        series[31] = 100.0
        mask = find_outliers(series)
        assert mask[10] and not mask[30] and not mask[31]
        assert mask.sum() == 1

    def test_constant_series(self):
        assert not find_outliers(np.full(20, 7.0)).any()

    @pytest.mark.parametrize(
        "index,length,expected",
        [(0, 100, True), (99, 100, True), (50, 100, False), (4, 100, True), (95, 100, True)],
    )
    def test_near_edge(self, index, length, expected):
        assert near_interval_edge(index, length) is expected

    def test_near_edge_validation(self):
        with pytest.raises(ValueError):
            near_interval_edge(5, 0)
        with pytest.raises(ValueError):
            near_interval_edge(100, 100)

    def test_short_sweep_is_all_edge(self):
        # the minimum 2-index margin covers a <=4 point sweep entirely:
        # every change point there means "widen the interval"
        for length in (1, 2, 3, 4):
            assert all(
                near_interval_edge(i, length) for i in range(length)
            ), f"length {length}"

    def test_five_point_sweep_has_one_interior_index(self):
        assert [near_interval_edge(i, 5) for i in range(5)] == [
            True, True, False, True, True,
        ]


class TestDescriptive:
    def test_summary_fields(self):
        lat = np.array([10.0, 20.0, 30.0, 40.0, 100.0])
        s = summarize(lat)
        assert s.mean == pytest.approx(40.0)
        assert s.p50 == pytest.approx(30.0)
        assert s.minimum == 10.0 and s.maximum == 100.0
        assert s.count == 5

    def test_p95_tracks_tail(self):
        lat = np.concatenate([np.full(95, 10.0), np.full(5, 1000.0)])
        assert summarize(lat).p95 >= 10.0

    def test_single_sample(self):
        s = summarize(np.array([42.0]))
        assert s.std == 0.0 and s.mean == 42.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(np.array([]))

    def test_as_dict_roundtrip(self):
        d = summarize(np.array([1.0, 2.0, 3.0])).as_dict()
        assert set(d) == {"mean", "p50", "p95", "std", "min", "max", "count"}


class TestScrubOutliersMatrix:
    """The batched row-wise scrub is exactly the per-row scrub."""

    @settings(max_examples=80, deadline=None)
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 10), st.integers(1, 40)),
            elements=st.floats(0, 1e4),
        ),
        st.data(),
    )
    def test_matches_per_row_scrub(self, m, data):
        # Plant a few spikes so the replacement path is exercised.
        n_rows, n_cols = m.shape
        for _ in range(data.draw(st.integers(0, 4))):
            r = data.draw(st.integers(0, n_rows - 1))
            c = data.draw(st.integers(0, n_cols - 1))
            m[r, c] += 1e9
        got = scrub_outliers_matrix(m)
        expected = np.stack([scrub_outliers(row) for row in m])
        assert np.array_equal(got, expected)

    def test_matches_per_row_scrub_at_size_benchmark_threshold(self):
        rng = np.random.default_rng(0)
        m = rng.normal(100.0, 1.5, size=(48, 192))
        spikes = rng.integers(0, m.size, size=30)
        m.ravel()[spikes] += 400.0
        got = scrub_outliers_matrix(m, z_threshold=8.0)
        expected = np.stack([scrub_outliers(row, z_threshold=8.0) for row in m])
        assert np.array_equal(got, expected)
        assert not np.array_equal(got, m)  # some spike was actually scrubbed

    def test_returns_copy_and_rejects_bad_shapes(self):
        m = np.ones((3, 30))
        m[1, 7] = 1e6
        out = scrub_outliers_matrix(m)
        assert m[1, 7] == 1e6 and out[1, 7] == 1.0
        with pytest.raises(ValueError):
            scrub_outliers_matrix(np.ones(5))

    def test_short_rows_are_identity(self):
        m = np.array([[1.0, 1.0, 500.0, 1.0]])
        assert np.array_equal(scrub_outliers_matrix(m), m)
