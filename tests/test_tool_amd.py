"""End-to-end discovery assertions on the synthetic AMD devices."""

import pytest

from repro.core.benchmarks.base import Source
from repro.gpuspec.presets import get_preset

SPEC = get_preset("TestGPU-AMD")


class TestGeneralAndCompute:
    def test_general(self, amd_report):
        g = amd_report.general
        assert g.vendor == "AMD"
        assert g.microarchitecture == "CDNA2"

    def test_compute(self, amd_report):
        c = amd_report.compute
        assert c.num_sms == 8
        assert c.warp_size == 64
        assert c.simds_per_sm == 4
        assert c.physical_cu_ids == (0, 1, 2, 4, 5, 6, 8, 9)


class TestElementCoverage:
    def test_elements(self, amd_report):
        assert set(amd_report.memory) == {"vL1", "sL1d", "L2", "LDS", "DeviceMemory"}

    def test_l3_only_when_present(self, amd_l3_report):
        assert "L3" in amd_l3_report.memory

    def test_api_sources_follow_table1(self, amd_report):
        # Table I AMD rows: L2 size/line/amount via API, vL1/sL1d benchmarked.
        assert amd_report.attribute("L2", "size").source is Source.API
        assert amd_report.attribute("L2", "cache_line_size").source is Source.API
        assert amd_report.attribute("L2", "amount").source is Source.API
        assert amd_report.attribute("vL1", "size").source is Source.BENCHMARK
        assert amd_report.attribute("sL1d", "cache_line_size").source is Source.BENCHMARK


class TestDiscoveredValues:
    def test_vl1_size(self, amd_report):
        assert amd_report.attribute("vL1", "size").value == pytest.approx(4096, rel=0.1)

    def test_sl1d_size(self, amd_report):
        assert amd_report.attribute("sL1d", "size").value == pytest.approx(2048, rel=0.1)

    @pytest.mark.parametrize(
        "element,expected", [("vL1", 64), ("sL1d", 64), ("L2", 64)]
    )
    def test_fetch_granularities(self, amd_report, element, expected):
        assert amd_report.attribute(element, "fetch_granularity").value == expected

    @pytest.mark.parametrize(
        "element,true_latency",
        [("vL1", 40.0), ("sL1d", 25.0), ("L2", 80.0), ("LDS", 12.0),
         ("DeviceMemory", 250.0)],
    )
    def test_latencies(self, amd_report, element, true_latency):
        measured = amd_report.attribute(element, "load_latency").value
        assert measured == pytest.approx(
            true_latency + SPEC.noise.measurement_overhead, abs=5
        )

    def test_l2_api_values(self, amd_report):
        assert amd_report.attribute("L2", "size").value == 32 * 1024
        assert amd_report.attribute("L2", "cache_line_size").value == 128
        assert amd_report.attribute("L2", "amount").value == 1

    def test_vl1_amount(self, amd_report):
        assert amd_report.attribute("vL1", "amount").value == 1


class TestSL1dSharing:
    def test_cu_map(self, amd_report):
        av = amd_report.attribute("sL1d", "shared_with")
        pairs = av.value
        assert pairs[0] == (1,) and pairs[1] == (0,)
        assert pairs[2] == ()  # physical partner fused off -> exclusive
        assert pairs[5] == ()

    def test_exclusive_note(self, amd_report):
        assert "exclusive" in amd_report.attribute("sL1d", "shared_with").note


class TestL3Honesty:
    """Paper Section III-C: the CDNA3 L3 gaps must be explicit."""

    def test_l3_size_via_api(self, amd_l3_report):
        av = amd_l3_report.attribute("L3", "size")
        assert av.source is Source.API
        assert av.value == 128 * 1024

    def test_l3_latency_unavailable(self, amd_l3_report):
        av = amd_l3_report.attribute("L3", "load_latency")
        assert av.source is Source.UNAVAILABLE
        assert av.value is None

    def test_l3_fg_unavailable(self, amd_l3_report):
        assert amd_l3_report.attribute("L3", "fetch_granularity").source is Source.UNAVAILABLE

    def test_l3_bandwidth_measured(self, amd_l3_report):
        # Table I: L3 R&W bandwidth IS measurable.
        av = amd_l3_report.attribute("L3", "read_bandwidth")
        assert av.source is Source.BENCHMARK
        assert av.value > 0

    def test_l2_segments_via_xcd_count(self, amd_l3_report):
        assert amd_l3_report.attribute("L2", "amount").value == 2


class TestRuntime:
    def test_fewer_benchmarks_than_nvidia(self, amd_report, nv_report):
        # Paper Section V-A: ~15 AMD vs ~35 NVIDIA benchmarks.
        assert amd_report.runtime.benchmarks_executed < nv_report.runtime.benchmarks_executed

    def test_amd_faster(self, amd_report, nv_report):
        assert (
            amd_report.runtime.modeled_total_seconds
            < nv_report.runtime.modeled_total_seconds
        )
