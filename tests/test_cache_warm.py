"""Equivalence of the analytic cyclic warm-up with exact simulation.

The analytic warm-up is the load-bearing performance trick of the
simulator (DESIGN.md Section 5); these tests — including property-based
ones — pin down that its end state is *identical* to step-by-step
simulation for the monotone strided rings the p-chase uses.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.cache import SimCache


def strided_ring(nbytes: int, stride: int, base: int = 0) -> np.ndarray:
    return base + np.arange(nbytes // stride, dtype=np.int64) * stride


def exact_copy(cache: SimCache) -> SimCache:
    return SimCache(
        size=cache.size,
        line_size=cache.line_size,
        fetch_granularity=cache.fetch_granularity,
        ways=cache.ways,
    )


@st.composite
def cache_and_ring(draw):
    line = draw(st.sampled_from([32, 64, 128]))
    fg_div = draw(st.sampled_from([1, 2, 4]))
    fg = line // fg_div
    ways = draw(st.sampled_from([1, 2, 4]))
    sets = draw(st.sampled_from([4, 8, 16]))
    size = sets * line * ways
    stride = draw(st.sampled_from([fg // 2, fg, 2 * fg, line, 2 * line]))
    stride = max(stride, 4)
    nbytes = draw(st.integers(min_value=stride, max_value=4 * size))
    base = draw(st.sampled_from([0, line, 7 * line, size]))
    return size, line, fg, ways, strided_ring(nbytes, stride, base)


class TestFreshEquivalence:
    @pytest.mark.parametrize("nbytes", [256, 1024, 4096, 5000, 16384])
    @pytest.mark.parametrize("stride", [32, 64, 96, 128])
    def test_matches_exact(self, nbytes, stride):
        if nbytes < stride:
            pytest.skip("array smaller than stride")
        addrs = strided_ring(nbytes, stride)
        analytic = SimCache(4096, 64, 32, 4)
        exact = exact_copy(analytic)
        analytic.warm_cyclic(addrs)
        exact.access_many(addrs)
        assert analytic.snapshot() == exact.snapshot()

    @settings(max_examples=120, deadline=None)
    @given(cache_and_ring())
    def test_property_fresh(self, params):
        size, line, fg, ways, addrs = params
        analytic = SimCache(size, line, fg, ways)
        exact = SimCache(size, line, fg, ways)
        analytic.warm_cyclic(addrs)
        exact.access_many(addrs)
        assert analytic.snapshot() == exact.snapshot()


class TestMergeEquivalence:
    """Second warm on a non-empty cache (protocol building block)."""

    @settings(max_examples=80, deadline=None)
    @given(cache_and_ring(), st.integers(min_value=0, max_value=1 << 16))
    def test_property_merge(self, params, base_b):
        size, line, fg, ways, addrs_a = params
        addrs_b = addrs_a + (base_b // fg) * fg + 8 * size
        analytic = SimCache(size, line, fg, ways)
        exact = SimCache(size, line, fg, ways)
        analytic.warm_cyclic(addrs_a)
        analytic.warm_cyclic(addrs_b)
        exact.access_many(addrs_a)
        exact.access_many(addrs_b)
        assert analytic.snapshot() == exact.snapshot()

    def test_merge_preserves_survivors(self):
        cache = SimCache(1024, 64, 64, 2)  # 8 sets
        # Fill set 0 with line 0.
        cache.access(0)
        # Warm a single new line in set 0 (line 8): both should coexist.
        cache.warm_cyclic(np.array([8 * 64]))
        assert cache.probe(0)
        assert cache.probe(8 * 64)

    def test_merge_thrash_replaces(self):
        cache = SimCache(1024, 64, 64, 2)
        cache.access(0)
        # Three new lines in set 0 -> old line evicted, last 2 survive.
        cache.warm_cyclic(np.array([8 * 64, 16 * 64, 24 * 64]))
        assert not cache.probe(0)
        assert not cache.probe(8 * 64)
        assert cache.probe(16 * 64)
        assert cache.probe(24 * 64)


class TestFixedPoint:
    """Repeated warm-up passes must not change the end state."""

    @settings(max_examples=60, deadline=None)
    @given(cache_and_ring())
    def test_idempotent(self, params):
        size, line, fg, ways, addrs = params
        cache = SimCache(size, line, fg, ways)
        cache.warm_cyclic(addrs)
        snap1 = cache.snapshot()
        cache.warm_cyclic(addrs)
        assert cache.snapshot() == snap1


class TestNonMonotoneFallback:
    def test_unsorted_addresses_fall_back_to_exact(self):
        addrs = np.array([128, 0, 64, 192, 0], dtype=np.int64)
        analytic = SimCache(512, 64, 32, 2)
        exact = SimCache(512, 64, 32, 2)
        analytic.warm_cyclic(addrs)
        exact.access_many(addrs)
        assert analytic.snapshot() == exact.snapshot()

    def test_empty_addresses_noop(self):
        cache = SimCache(512, 64, 32, 2)
        cache.warm_cyclic(np.array([], dtype=np.int64))
        assert cache.resident_lines() == 0


class TestWarmAfterFlush:
    def test_flush_then_warm_is_fresh(self):
        cache = SimCache(1024, 64, 32, 2)
        cache.warm_cyclic(strided_ring(2048, 32))
        cache.flush()
        addrs = strided_ring(512, 32)
        cache.warm_cyclic(addrs)
        exact = SimCache(1024, 64, 32, 2)
        exact.access_many(addrs)
        assert cache.snapshot() == exact.snapshot()
