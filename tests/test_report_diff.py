"""Tests for the structural report-diff engine (repro.serve.diff)."""

from __future__ import annotations

import pytest

from repro.core.benchmarks.base import Source
from repro.core.report import (
    AttributeValue,
    ComputeReport,
    GeneralReport,
    MemoryElementReport,
    RuntimeReport,
    TopologyReport,
)
from repro.serve.diff import diff_reports

KiB = 1024


def _attr(value, unit="B", confidence=0.9, source=Source.BENCHMARK):
    return AttributeValue(value, unit, confidence, source)


def _report(memory: dict[str, dict[str, AttributeValue]]) -> TopologyReport:
    elements = {}
    for name, attrs in memory.items():
        el = MemoryElementReport(name)
        for attr, av in attrs.items():
            el.set(attr, av)
        elements[name] = el
    return TopologyReport(
        general=GeneralReport(
            vendor="NVIDIA",
            model="synthetic",
            microarchitecture="Test",
            compute_capability="0.0",
            clock_rate_hz=1e9,
            memory_clock_rate_hz=1e9,
            memory_bus_width_bits=256,
        ),
        compute=ComputeReport(
            num_sms=1,
            cores_per_sm=64,
            warp_size=32,
            max_blocks_per_sm=1,
            max_threads_per_block=32,
            max_threads_per_sm=32,
            registers_per_block=1,
            registers_per_sm=1,
            warps_per_sm=2,
            simds_per_sm=0,
        ),
        memory=elements,
        runtime=RuntimeReport(0, 0.0, 0.0),
    )


def _delta(diff, element, attribute):
    matches = [
        d for d in diff.deltas if d.element == element and d.attribute == attribute
    ]
    assert len(matches) == 1, f"expected one delta for {element}.{attribute}"
    return matches[0]


class TestClassification:
    def test_identical_values(self):
        a = _report({"L1": {"size": _attr(128 * KiB)}})
        b = _report({"L1": {"size": _attr(128 * KiB)}})
        diff = diff_reports(a, b)
        assert diff.identical and diff.verdict == "identical"
        assert _delta(diff, "L1", "size").status == "identical"

    def test_jitter_inside_tolerance_is_not_drift(self):
        # size tolerance is 5 %: a 2 % delta is measurement jitter
        a = _report({"L1": {"size": _attr(100 * KiB)}})
        b = _report({"L1": {"size": _attr(102 * KiB)}})
        diff = diff_reports(a, b)
        d = _delta(diff, "L1", "size")
        assert d.status == "within_tolerance"
        assert d.rel_error == pytest.approx(2 / 102, rel=1e-3)
        assert d.tolerance == 0.05
        assert diff.identical  # jitter does not flip the verdict

    def test_numeric_drift_beyond_tolerance(self):
        a = _report({"L1": {"size": _attr(100 * KiB)}})
        b = _report({"L1": {"size": _attr(150 * KiB)}})
        diff = diff_reports(a, b)
        assert _delta(diff, "L1", "size").status == "drift"
        assert not diff.identical and diff.verdict == "drift"

    def test_exact_attributes_tolerate_nothing(self):
        # cache_line_size has tolerance 0: any numeric delta is drift
        a = _report({"L1": {"cache_line_size": _attr(128)}})
        b = _report({"L1": {"cache_line_size": _attr(129)}})
        assert _delta(diff_reports(a, b), "L1", "cache_line_size").status == "drift"

    def test_non_numeric_mismatch_is_changed(self):
        a = _report({"L1": {"shared_with": _attr(("Texture",), "elements")}})
        b = _report({"L1": {"shared_with": _attr(("Readonly",), "elements")}})
        d = _delta(diff_reports(a, b), "L1", "shared_with")
        assert d.status == "changed" and d.rel_error is None

    def test_one_sided_attribute(self):
        a = _report({"L1": {"size": _attr(128 * KiB), "load_latency": _attr(30, "cycles")}})
        b = _report({"L1": {"size": _attr(128 * KiB)}})
        diff = diff_reports(a, b)
        assert _delta(diff, "L1", "load_latency").status == "only_a"
        assert diff.verdict == "drift"

    def test_one_sided_element(self):
        a = _report({"L1": {"size": _attr(1 * KiB)}, "L2": {"size": _attr(4 * KiB)}})
        b = _report({"L1": {"size": _attr(1 * KiB)}})
        diff = diff_reports(a, b)
        d = _delta(diff, "L2", "*")
        assert d.status == "only_a"

    def test_honest_absences_produce_no_rows(self):
        # not-applicable / unavailable on both sides is not a delta
        a = _report({"L1": {"size": _attr(1 * KiB), "amount": AttributeValue.not_applicable("count")}})
        b = _report({"L1": {"size": _attr(1 * KiB), "amount": AttributeValue.unavailable("count")}})
        diff = diff_reports(a, b)
        assert [d.attribute for d in diff.deltas] == ["size"]

    def test_tolerance_override(self):
        a = _report({"L1": {"size": _attr(100 * KiB)}})
        b = _report({"L1": {"size": _attr(150 * KiB)}})
        diff = diff_reports(a, b, tolerances={"size": 1.0})
        assert _delta(diff, "L1", "size").status == "within_tolerance"


class TestRendering:
    def test_as_dict_shape(self):
        a = _report({"L1": {"size": _attr(100 * KiB)}})
        b = _report({"L1": {"size": _attr(150 * KiB)}})
        payload = diff_reports(a, b, a_label="x@0", b_label="y@0").as_dict()
        assert payload["schema"] == "mt4g-repro-diff/1"
        assert payload["a"] == "x@0" and payload["b"] == "y@0"
        assert payload["verdict"] == "drift"
        assert payload["summary"] == {"drift": 1}
        assert payload["deltas"][0]["element"] == "L1"

    def test_markdown_lists_only_divergence(self):
        a = _report(
            {"L1": {"size": _attr(100 * KiB), "load_latency": _attr(30, "cycles")}}
        )
        b = _report(
            {"L1": {"size": _attr(150 * KiB), "load_latency": _attr(30, "cycles")}}
        )
        md = diff_reports(a, b).to_markdown()
        assert md.startswith("# MT4G Report Diff")
        assert "| L1 | size |" in md
        assert "load_latency" not in md  # identical rows stay out

    def test_identical_markdown_has_no_table(self):
        a = _report({"L1": {"size": _attr(100 * KiB)}})
        md = diff_reports(a, a).to_markdown()
        assert "Verdict: **identical**" in md
        assert "| Element |" not in md


class TestMigSlicedVsFull:
    """``only_a``/``only_b`` fixtures: a full device against its MIG slice.

    A discovery run inside a small MIG instance can lack whole elements
    the full device exposes (no texture path schedulable from the
    slice), report less of what both sides share (a carved DeviceMemory)
    and measure things the full run skipped — those asymmetries must
    render as explicit one-sided rows in *both* the JSON and the
    Markdown views, never vanish into "no delta".
    """

    @pytest.fixture
    def full(self):
        return _report(
            {
                "L1": {"size": _attr(128 * KiB)},
                "Texture": {"size": _attr(24 * KiB)},
                "L2": {"size": _attr(4096 * KiB), "amount": _attr(2, "count")},
                "DeviceMemory": {"size": _attr(16 * 1024 * 1024 * KiB)},
            }
        )

    @pytest.fixture
    def sliced(self):
        return _report(
            {
                "L1": {"size": _attr(128 * KiB)},
                "L2": {"size": _attr(2048 * KiB), "amount": _attr(1, "count")},
                "DeviceMemory": {"size": _attr(2 * 1024 * 1024 * KiB)},
                # the sliced run additionally measured its scratchpad
                "SharedMem": {"size": _attr(100 * KiB)},
            }
        )

    def test_json_rendering_of_one_sided_elements(self, full, sliced):
        payload = diff_reports(full, sliced, a_label="full", b_label="1g.5gb").as_dict()
        rows = {(d["element"], d["attribute"]): d for d in payload["deltas"]}
        texture = rows[("Texture", "*")]
        assert texture["status"] == "only_a"
        assert texture["a_value"] == "present" and texture["b_value"] is None
        shared = rows[("SharedMem", "*")]
        assert shared["status"] == "only_b"
        assert shared["a_value"] is None and shared["b_value"] == "present"
        # the carved memory and halved L2 drift; the L1 stays identical
        assert rows[("DeviceMemory", "size")]["status"] == "drift"
        assert rows[("L2", "amount")]["status"] == "drift"
        assert rows[("L1", "size")]["status"] == "identical"
        assert payload["verdict"] == "drift"
        assert payload["summary"]["only_a"] == 1
        assert payload["summary"]["only_b"] == 1

    def test_markdown_rendering_of_one_sided_elements(self, full, sliced):
        md = diff_reports(full, sliced, a_label="full", b_label="1g.5gb").to_markdown()
        assert "# MT4G Report Diff — full vs 1g.5gb" in md
        assert "| Texture | * | present | None | — | only_a |" in md
        assert "| SharedMem | * | None | present | — | only_b |" in md
        assert "| DeviceMemory | size |" in md
        # identical attributes stay out of the divergence table
        assert "| L1 |" not in md

    def test_graph_view_keys_one_sided_elements_by_node_id(self, full, sliced):
        view = diff_reports(full, sliced).to_graph_view()
        assert view["schema"] == "mt4g-repro-graph-diff/1"
        nodes = {n["id"]: n for n in view["nodes"]}
        assert nodes["cache:Texture"]["status"] == "only_a"
        assert nodes["scratchpad:SharedMem"]["status"] == "only_b"
        # worst-of-attribute severity: L2 drifted on amount
        assert nodes["cache:L2"]["status"] == "drift"
        assert nodes["cache:L1"]["status"] == "identical"
        ids = [n["id"] for n in view["nodes"]]
        assert ids == sorted(ids)


class TestRealReports:
    def test_same_discovery_diffs_identical(self, nv_report):
        assert diff_reports(nv_report, nv_report).identical

    def test_sibling_presets_drift_on_segmentation(self, nv_report, nv2seg_report):
        diff = diff_reports(nv_report, nv2seg_report)
        assert diff.verdict == "drift"
        assert any(
            d.element == "L2" and d.attribute == "amount" and d.status == "drift"
            for d in diff.deltas
        )
        # identical structural attributes stay identical across siblings
        assert _delta(diff, "L1", "cache_line_size").status == "identical"
