"""Cross-module end-to-end flows.

These tests chain whole subsystems the way downstream users would:
discovery -> serialization -> external consumption (the GPUscout-GUI CSV
path of paper footnote 19), runtime cache-carveout reconfiguration, and
the markdown rendering of extension output.
"""

import csv
import io
import json

import pytest

from repro import MT4G, SimulatedGPU
from repro.core.output.csv_out import to_csv
from repro.core.output.json_out import to_json
from repro.core.output.markdown import to_markdown
from repro.units import KiB


class TestJsonRoundTrip:
    def test_full_report_survives_json(self, nv_report):
        parsed = json.loads(to_json(nv_report))
        for element, el_dict in parsed["memory"].items():
            for attr, av in el_dict["attributes"].items():
                ours = nv_report.attribute(element, attr)
                if isinstance(ours.value, tuple):
                    assert av["value"] == list(ours.value)
                elif isinstance(ours.value, dict):
                    assert set(av["value"]) == {str(k) for k in ours.value}
                else:
                    assert av["value"] == ours.value

    def test_extended_report_serialises(self):
        dev = SimulatedGPU.from_preset("TestGPU-NV", seed=31)
        report = MT4G(dev, targets={"SharedMem"}, extensions={"flops"}).discover()
        parsed = json.loads(to_json(report))
        assert parsed["throughput"]["fp32"]["unit"] == "OP/s"


class TestCSVToGPUscout:
    """Footnote 19: GPUscout-GUI parses the CSV output."""

    def test_csv_carries_everything_gpuscout_needs(self, nv_report):
        rows = list(csv.DictReader(io.StringIO(to_csv(nv_report))))
        table = {(r["element"], r["attribute"]): r for r in rows}
        l1_size = table[("L1", "size")]
        assert float(l1_size["value"]) == nv_report.attribute("L1", "size").value
        assert l1_size["source"] == "benchmark"
        assert float(l1_size["confidence"]) > 0.9
        # the no-result cells stay empty, not zero
        cl15_line = table[("ConstL1.5", "cache_line_size")]
        assert cl15_line["value"] == ""
        assert cl15_line["source"] == "unavailable"

    def test_rebuild_memory_graph_from_csv(self, nv_report):
        """A GPUscout-style consumer can reconstruct sizes from CSV alone."""
        rows = list(csv.DictReader(io.StringIO(to_csv(nv_report))))
        sizes = {
            r["element"]: float(r["value"])
            for r in rows
            if r["attribute"] == "size" and r["value"]
        }
        assert sizes["L2"] == 64 * KiB
        assert abs(sizes["L1"] - 4 * KiB) / (4 * KiB) < 0.12


class TestCacheConfigVariants:
    """Footnote 17: the L1/shared carveout is a runtime option; the MT4G
    CLI can measure any of them.  The discovered L1 size must track it."""

    @pytest.mark.parametrize(
        "config,expected",
        [("PreferL1", 4 * KiB), ("PreferEqual", 2 * KiB), ("PreferShared", 1 * KiB)],
    )
    def test_l1_size_follows_carveout(self, config, expected):
        import dataclasses

        from repro.gpuspec.presets import get_preset

        base = get_preset("TestGPU-NV")
        spec = dataclasses.replace(
            base,
            name=base.name,
            l1_carveout={
                "PreferL1": 4 * KiB,
                "PreferEqual": 2 * KiB,
                "PreferShared": 1 * KiB,
            },
        )
        device = SimulatedGPU(spec, seed=17, cache_config=config)
        report = MT4G(device, targets={"L1", "L2", "SharedMem", "DeviceMemory"}).discover()
        measured = report.attribute("L1", "size").value
        assert measured == pytest.approx(expected, rel=0.15)


class TestMarkdownExtensionRendering:
    def test_throughput_section_present_when_measured(self):
        dev = SimulatedGPU.from_preset("TestGPU-NV", seed=31)
        report = MT4G(dev, targets={"SharedMem"}, extensions={"flops"}).discover()
        md = to_markdown(report)
        assert "## Compute Throughput (extension)" in md
        assert "tensor_fp16" in md

    def test_throughput_section_absent_by_default(self, nv_report):
        assert "Compute Throughput" not in to_markdown(nv_report)


class TestDiscoverySubsetsCompose:
    """Partial discoveries must not poison each other's state."""

    def test_sequential_tools_on_one_device(self):
        device = SimulatedGPU.from_preset("TestGPU-AMD", seed=29)
        first = MT4G(device, targets={"vL1"}).discover()
        second = MT4G(device, targets={"LDS", "DeviceMemory"}).discover()
        assert first.attribute("vL1", "size").value == pytest.approx(4096, rel=0.1)
        assert second.attribute("LDS", "size").value == 4 * KiB
