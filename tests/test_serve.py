"""Tests for the topology serving subsystem (repro.serve).

The contracts that make serving honest:

* a served JSON report is byte-identical to the CLI's uncached output
  for the same (preset, config, seed) — serving changes *how* a report
  is obtained, never *what* it says;
* N concurrent cold requests for one identity coalesce into exactly one
  discovery (single-flight), and every response carries identical bytes;
* the catalog enumerates exactly the store's report entries and
  tolerates a concurrent prune;
* read-only mode serves only what the store holds — cold keys are 404s,
  discovery posts are rejected.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import MT4G, DiscoveryCache, SimulatedGPU
from repro.core.output.json_out import to_json
from repro.errors import UnknownGPUError
from repro.serve import (
    DeviceCatalog,
    HTTPRequest,
    JobQueue,
    TopologyService,
)

PRESET = "TestGPU-NV"


@pytest.fixture
def store(tmp_path) -> DiscoveryCache:
    return DiscoveryCache(tmp_path / "store")


@pytest.fixture
def executor():
    # Threads instead of processes: everything stays in-process so the
    # tests can count discoveries and monkeypatch the worker body.
    ex = ThreadPoolExecutor(max_workers=2)
    yield ex
    ex.shutdown(wait=True)


def warm(store, preset=PRESET, seed=0, validate=False):
    """Land one discovery in the store (what a worker would do)."""
    device = SimulatedGPU.from_preset(preset, seed=seed)
    return MT4G(device, cache=store).discover(validate=validate)


def make_service(store, executor, **kw) -> TopologyService:
    kw.setdefault("max_workers", 2)
    return TopologyService(store, executor=executor, **kw)


# ---------------------------------------------------------------------- #
# catalog                                                                 #
# ---------------------------------------------------------------------- #


class TestCatalog:
    def test_empty_store(self, store):
        assert DeviceCatalog(store).entries() == []

    def test_lists_cached_discoveries_with_metadata(self, store):
        warm(store, "TestGPU-NV", seed=0)
        warm(store, "TestGPU-AMD", seed=3, validate=True)
        store.record_wall("TestGPU-NV", 2.5)
        entries = DeviceCatalog(store).entries()
        assert [(e.preset, e.seed) for e in entries] == [
            ("TestGPU-AMD", 3),
            ("TestGPU-NV", 0),
        ]
        amd, nv = entries
        assert nv.vendor == "NVIDIA" and nv.microarchitecture == "Hopper"
        assert nv.verdict == "unvalidated"
        assert nv.wall_seconds == pytest.approx(2.5)
        assert nv.model == "NVIDIA TestGPU-NV"
        assert "L1" in nv.elements and nv.benchmarks_executed > 0
        assert amd.vendor == "AMD" and amd.verdict == "pass"
        assert amd.wall_seconds is None  # no cold wall recorded
        assert amd.schema_version == store.version

    def test_filters(self, store):
        warm(store, "TestGPU-NV", seed=0)
        warm(store, "TestGPU-NV", seed=7)
        warm(store, "TestGPU-AMD", seed=0)
        catalog = DeviceCatalog(store)
        assert len(catalog.entries()) == 3
        assert len(catalog.entries(vendor="NVIDIA")) == 2
        assert len(catalog.entries(vendor="NVIDIA", seed="7")) == 1
        assert catalog.entries(preset="TestGPU-AMD")[0].seed == 0
        assert catalog.entries(verdict="pass") == []

    def test_unknown_filter_raises(self, store):
        with pytest.raises(ValueError, match="unknown catalog filter"):
            DeviceCatalog(store).entries(colour="blue")

    def test_non_report_entries_are_not_devices(self, store):
        warm(store)
        store.put("aa" * 32, {"not": "a report"})
        store.put("bb" * 32, "escalation memo stand-in")
        entries = DeviceCatalog(store).entries()
        assert len(entries) == 1 and entries[0].preset == PRESET

    def test_enumeration_racing_prune(self, store):
        # One real report duplicated under many synthetic keys, pruned
        # from under the walking catalog: every walk must return a clean
        # subset, never raise.
        warm(store)
        payload = next(iter(store.entries()))[1]
        for i in range(24):
            store.put(f"{i:02x}" * 32, payload)
        catalog = DeviceCatalog(store)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                store.prune(0)
                for i in range(24):
                    store.put(f"{i:02x}" * 32, payload)

        t = threading.Thread(target=churn)
        t.start()
        try:
            for _ in range(10):
                for entry in catalog.entries():
                    assert entry.preset == PRESET
        finally:
            stop.set()
            t.join()


# ---------------------------------------------------------------------- #
# single-flight job queue                                                 #
# ---------------------------------------------------------------------- #


class TestJobQueue:
    def test_unknown_preset_fails_before_any_work(self, store, executor):
        queue = JobQueue(store, executor=executor)
        with pytest.raises(UnknownGPUError):
            queue.submit("NoSuchGPU")

    def test_inflight_submissions_coalesce(self, store, executor):
        async def scenario():
            queue = JobQueue(store, executor=executor, max_workers=1)
            a = queue.submit(PRESET, seed=0)
            b = queue.submit(PRESET, seed=0)
            c = queue.submit(PRESET, seed=1)  # different identity
            assert a is b and a is not c
            assert a.requests == 2 and queue.coalesced == 1
            await asyncio.gather(queue.wait(a), queue.wait(c))
            assert a.status == "done" and c.status == "done"
            assert queue.discoveries_started == 2

        asyncio.run(scenario())

    def test_finished_jobs_are_not_coalesced_onto(self, store, executor):
        async def scenario():
            queue = JobQueue(store, executor=executor)
            first = queue.submit(PRESET)
            await queue.wait(first)
            second = queue.submit(PRESET)
            assert second is not first  # the store, not the queue, dedups now
            await queue.wait(second)
            # the rerun was a cache hit, so no wall poisoning occurred
            assert second.status == "done"

        asyncio.run(scenario())

    def test_failed_job_is_retried_not_pinned(self, store, executor, monkeypatch):
        calls = []

        def flaky(preset, seed, cache_config, engine, validate, cache_dir,
                  retry=None):
            calls.append(preset)
            if len(calls) == 1:
                from repro.validate.fleet import WorkerOutcome

                return WorkerOutcome(preset, None, 0.01, error="injected failure")
            import repro.validate.fleet as fleet_mod

            return fleet_mod.discover_one(
                preset, seed, cache_config, engine, validate, cache_dir
            )

        monkeypatch.setattr("repro.serve.jobs.discover_one", flaky)

        async def scenario():
            # failure_ttl=0: this test is about the *queue* not pinning a
            # failure; the failure memo's fast-fail window is its own test
            queue = JobQueue(store, executor=executor, failure_ttl=0.0)
            failed = queue.submit(PRESET)
            await queue.wait(failed)
            assert failed.status == "error" and "injected" in failed.error
            retried = queue.submit(PRESET)
            assert retried is not failed
            await queue.wait(retried)
            assert retried.status == "done"
            assert queue.discoveries_failed == 1

        asyncio.run(scenario())

    def test_shutdown_releases_queued_waiters(self, store, monkeypatch):
        # A job still queued at shutdown never reaches _finish; its
        # waiters must be released with an error, not hung forever.
        def slow_worker(preset, seed, cache_config, engine, validate, cache_dir,
                        retry=None):
            import time as _time

            from repro.validate.fleet import WorkerOutcome

            _time.sleep(0.1)
            return WorkerOutcome(preset, None, 0.1, error="fake")

        monkeypatch.setattr("repro.serve.jobs.discover_one", slow_worker)
        one_slot = ThreadPoolExecutor(max_workers=1)
        try:

            async def scenario():
                queue = JobQueue(store, executor=one_slot, max_workers=1)
                running = queue.submit("TestGPU-NV")
                queued = queue.submit("TestGPU-AMD")
                queue.shutdown()
                await asyncio.wait_for(queue.wait(queued), timeout=2.0)
                assert queued.status == "error"
                assert "shut down" in queued.error
                await asyncio.wait_for(queue.wait(running), timeout=2.0)
                assert running.status == "error"  # the fake reports an error

            asyncio.run(scenario())
        finally:
            one_slot.shutdown(wait=True)

    def test_terminal_jobs_are_evicted_bounded(self, store, executor, monkeypatch):
        from repro.validate.fleet import WorkerOutcome

        monkeypatch.setattr(
            "repro.serve.jobs.discover_one",
            lambda preset, seed, cache_config, engine, validate, cache_dir,
            retry=None: WorkerOutcome(preset, None, 0.01, error="fake"),
        )

        async def scenario():
            queue = JobQueue(store, executor=executor)
            queue.MAX_TERMINAL_JOBS = 4
            first = queue.submit(PRESET, seed=0)
            for seed in range(8):
                await queue.wait(queue.submit(PRESET, seed=seed))
            assert len(queue._jobs) == 4
            assert queue.get(first.id) is None  # oldest evicted

        asyncio.run(scenario())

    def test_admission_is_longest_first(self, store, executor, monkeypatch):
        # One pool slot, three jobs: the first submission starts at
        # once; of the two left pending, the longer recorded wall must
        # be admitted first, regardless of submission order.
        store.record_wall("TestGPU-AMD", 1.0)
        store.record_wall("TestGPU-AMD-L3", 50.0)
        order = []

        def fake_worker(preset, seed, cache_config, engine, validate, cache_dir,
                        retry=None):
            from repro.validate.fleet import WorkerOutcome

            order.append(preset)
            return WorkerOutcome(preset, None, 0.01, error="fake (admission test)")

        monkeypatch.setattr("repro.serve.jobs.discover_one", fake_worker)

        async def scenario():
            queue = JobQueue(store, executor=executor, max_workers=1)
            jobs = [
                queue.submit("TestGPU-NV"),
                queue.submit("TestGPU-AMD"),  # short, submitted first...
                queue.submit("TestGPU-AMD-L3"),  # ...but this one is longer
            ]
            for job in jobs:
                await queue.wait(job)

        asyncio.run(scenario())
        assert order == ["TestGPU-NV", "TestGPU-AMD-L3", "TestGPU-AMD"]


# ---------------------------------------------------------------------- #
# HTTP endpoints (transport-independent)                                  #
# ---------------------------------------------------------------------- #


def get(service, path, query=None, headers=None):
    return service.handle_request(
        HTTPRequest("GET", path, query=query or {}, headers=headers or {})
    )


class TestServiceEndpoints:
    def test_eight_concurrent_cold_requests_one_discovery(self, store, executor):
        # The acceptance criterion: 8 concurrent cold requests for one
        # uncached preset trigger exactly one discovery, and every
        # response is byte-identical — to each other AND to the CLI's
        # uncached `mt4g -j` bytes for the same (preset, config, seed).
        service = make_service(store, executor)

        async def scenario():
            return await asyncio.gather(
                *(
                    get(service, f"/devices/{PRESET}/report", {"seed": "0"})
                    for _ in range(8)
                )
            )

        responses = asyncio.run(scenario())
        assert [r.status for r in responses] == [200] * 8
        assert len({r.body for r in responses}) == 1
        assert service.jobs.discoveries_started == 1
        assert service.jobs.coalesced == 7
        # the one discovery landed its entry (the worker counts its own
        # `stores`; the parent observes the shared on-disk state)
        assert store.entry_count() == 1
        cli_equivalent = MT4G(SimulatedGPU.from_preset(PRESET, seed=0)).discover()
        assert responses[0].body == (to_json(cli_equivalent) + "\n").encode()

    def test_warm_requests_are_store_hits(self, store, executor):
        warm(store)
        service = make_service(store, executor)
        response = asyncio.run(get(service, f"/devices/{PRESET}/report"))
        assert response.status == 200
        assert service.jobs.discoveries_started == 0
        assert store.hits == 1

    def test_format_negotiation(self, store, executor):
        warm(store)
        service = make_service(store, executor)

        async def scenario():
            md = await get(
                service, f"/devices/{PRESET}/report", {"format": "markdown"}
            )
            csv_resp = await get(
                service, f"/devices/{PRESET}/report", headers={"accept": "text/csv"}
            )
            bad = await get(service, f"/devices/{PRESET}/report", {"format": "xml"})
            unacceptable = await get(
                service,
                f"/devices/{PRESET}/report",
                headers={"accept": "application/xml"},
            )
            return md, csv_resp, bad, unacceptable

        md, csv_resp, bad, unacceptable = asyncio.run(scenario())
        assert md.status == 200 and md.content_type == "text/markdown"
        assert md.body.decode().startswith("# MT4G Topology Report")
        assert csv_resp.status == 200 and csv_resp.content_type == "text/csv"
        assert csv_resp.body.decode().splitlines()[0].startswith("element,attribute")
        assert bad.status == 406
        assert unacceptable.status == 406

    def test_devices_endpoint_filters(self, store, executor):
        warm(store, "TestGPU-NV")
        warm(store, "TestGPU-AMD")
        service = make_service(store, executor)

        async def scenario():
            all_devices = await get(service, "/devices")
            nvidia = await get(service, "/devices", {"vendor": "NVIDIA"})
            bad = await get(service, "/devices", {"nope": "x"})
            return all_devices, nvidia, bad

        all_devices, nvidia, bad = asyncio.run(scenario())
        assert json.loads(all_devices.body)["count"] == 2
        payload = json.loads(nvidia.body)
        assert payload["count"] == 1
        assert payload["devices"][0]["preset"] == "TestGPU-NV"
        assert bad.status == 400

    def test_read_only_mode(self, store, executor):
        warm(store)  # one warm preset to prove serving still works
        service = make_service(store, executor, read_only=True)

        async def scenario():
            served = await get(service, f"/devices/{PRESET}/report")
            cold = await get(service, "/devices/TestGPU-AMD/report")
            post = await service.handle_request(
                HTTPRequest("POST", "/discover", body=b'{"preset": "TestGPU-AMD"}')
            )
            return served, cold, post

        served, cold, post = asyncio.run(scenario())
        assert served.status == 200
        assert cold.status == 404
        assert "read-only" in json.loads(cold.body)["error"]
        assert post.status == 405
        assert service.jobs.discoveries_started == 0

    def test_compare_runs_matrix_and_fleet_judge(self, store, executor):
        warm(store, "TestGPU-NV")
        warm(store, "TestGPU-NV-2SEG")
        service = make_service(store, executor, read_only=True)

        async def scenario():
            resp = await get(
                service, "/compare", {"presets": "TestGPU-NV,TestGPU-NV-2SEG"}
            )
            md = await get(
                service,
                "/compare",
                {"presets": "TestGPU-NV,TestGPU-NV-2SEG", "format": "markdown"},
            )
            one = await get(service, "/compare", {"presets": "TestGPU-NV"})
            dup = await get(
                service, "/compare", {"presets": "TestGPU-NV,TestGPU-NV"}
            )
            return resp, md, one, dup

        resp, md, one, dup = asyncio.run(scenario())
        assert resp.status == 200
        payload = json.loads(resp.body)
        assert payload["schema"] == "mt4g-repro-compare/1"
        assert [row["preset"] for row in payload["matrix"]] == [
            "TestGPU-NV",
            "TestGPU-NV-2SEG",
        ]
        assert payload["fleet_validation"]["verdict"] == "pass"
        assert payload["fleet_validation"]["groups"] == {
            "NVIDIA/Hopper": ["TestGPU-NV", "TestGPU-NV-2SEG"]
        }
        assert md.status == 200 and b"# MT4G Fleet Report" in md.body
        assert one.status == 400 and dup.status == 400

    def test_diff_endpoint_classifies_drift(self, store, executor):
        warm(store, "TestGPU-NV")
        warm(store, "TestGPU-NV-2SEG")
        service = make_service(store, executor, read_only=True)

        async def scenario():
            differing = await get(service, "/diff/TestGPU-NV/TestGPU-NV-2SEG")
            same = await get(service, "/diff/TestGPU-NV/TestGPU-NV")
            md = await get(
                service,
                "/diff/TestGPU-NV/TestGPU-NV-2SEG",
                {"format": "markdown"},
            )
            return differing, same, md

        differing, same, md = asyncio.run(scenario())
        payload = json.loads(differing.body)
        assert payload["verdict"] == "drift"
        assert any(
            d["element"] == "L2" and d["attribute"] == "amount"
            and d["status"] in ("drift", "changed")
            for d in payload["deltas"]
        )
        assert json.loads(same.body)["verdict"] == "identical"
        assert md.body.decode().startswith("# MT4G Report Diff")

    def test_discover_and_job_endpoints(self, store, executor):
        service = make_service(store, executor)

        async def scenario():
            accepted = await service.handle_request(
                HTTPRequest(
                    "POST",
                    "/discover",
                    body=b'{"preset": "TestGPU-AMD", "seed": 2}',
                )
            )
            job_id = json.loads(accepted.body)["id"]
            await service.jobs.wait(service.jobs.get(job_id))
            done = await get(service, f"/jobs/{job_id}")
            missing = await get(service, "/jobs/job-999")
            bad_body = await service.handle_request(
                HTTPRequest("POST", "/discover", body=b"{not json")
            )
            bad_preset = await service.handle_request(
                HTTPRequest("POST", "/discover", body=b'{"preset": "Nope"}')
            )
            return accepted, done, missing, bad_body, bad_preset

        accepted, done, missing, bad_body, bad_preset = asyncio.run(scenario())
        assert accepted.status == 202
        payload = json.loads(done.body)
        assert payload["status"] == "done" and payload["seed"] == 2
        assert missing.status == 404
        assert bad_body.status == 400
        assert bad_preset.status == 404
        # the finished discovery is now catalogued
        entries = service.catalog.entries(preset="TestGPU-AMD")
        assert [e.seed for e in entries] == [2]

    def test_healthz_and_metrics(self, store, executor):
        warm(store)
        service = make_service(store, executor)

        async def scenario():
            health = await get(service, "/healthz")
            await get(service, f"/devices/{PRESET}/report")
            await get(service, "/devices")
            metrics = await get(service, "/metrics")
            return health, metrics

        health, metrics = asyncio.run(scenario())
        payload = json.loads(health.body)
        assert payload["status"] == "ok"
        assert payload["entries"] == 1 and payload["inflight"] == 0
        m = json.loads(metrics.body)
        assert m["schema"] == "mt4g-repro-metrics/1"
        # one hit from the served report; the single miss is warm()'s
        # own cold lookup before it landed the entry
        assert m["store"]["hits"] == 1 and m["store"]["misses"] == 1
        assert m["jobs"]["started"] == 0 and m["jobs"]["coalesced"] == 0
        route = m["http"]["routes"]["GET /devices/{preset}/report"]
        assert route["count"] == 1 and route["seconds_total"] > 0
        assert m["http"]["by_status"]["200"] >= 3

    def test_bad_seed_is_a_client_error_not_a_500(self, store, executor):
        service = make_service(store, executor, read_only=True)

        async def scenario():
            query_seed = await get(
                service, f"/devices/{PRESET}/report", {"seed": "-1"}
            )
            body_seed = await service.handle_request(
                HTTPRequest(
                    "POST", "/discover", body=b'{"preset": "TestGPU-NV", "seed": -1}'
                )
            )
            return query_seed, body_seed

        service.read_only = False  # so POST reaches the seed validation
        query_seed, body_seed = asyncio.run(scenario())
        assert query_seed.status == 400
        assert "non-negative" in json.loads(query_seed.body)["error"]
        assert body_seed.status == 400
        assert service.jobs.discoveries_started == 0

    def test_devices_format_param_negotiates(self, store, executor):
        # /devices renders JSON only; an explicit ?format=csv must 406,
        # not silently return the wrong media type.
        service = make_service(store, executor, read_only=True)

        async def scenario():
            ok = await get(service, "/devices", {"format": "json"})
            wrong = await get(service, "/devices", {"format": "csv"})
            return ok, wrong

        ok, wrong = asyncio.run(scenario())
        assert ok.status == 200 and wrong.status == 406

    def test_unknown_routes_and_methods(self, store, executor):
        service = make_service(store, executor)

        async def scenario():
            nowhere = await get(service, "/nowhere")
            put = await service.handle_request(HTTPRequest("PUT", "/devices"))
            unknown_preset = await get(service, "/devices/NoSuchGPU/report")
            return nowhere, put, unknown_preset

        nowhere, put, unknown_preset = asyncio.run(scenario())
        assert nowhere.status == 404
        assert put.status == 405
        assert unknown_preset.status == 404

    def test_handler_bug_becomes_500_not_a_crash(self, store, executor, monkeypatch):
        service = make_service(store, executor)
        monkeypatch.setattr(
            service.catalog,
            "entries",
            lambda **kw: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        response = asyncio.run(get(service, "/devices"))
        assert response.status == 500
        assert "boom" in json.loads(response.body)["error"]


class TestGraphEndpoints:
    def test_served_graph_matches_offline_bytes(self, store, executor):
        """GET /graph/{preset} == `mt4g graph` for the same identity —
        the byte-identity contract extended from reports to graphs."""
        from repro.graph import build_graph, to_graph_json

        report = warm(store)
        service = make_service(store, executor)
        response = asyncio.run(get(service, f"/graph/{PRESET}"))
        assert response.status == 200
        assert response.content_type == "application/json"
        assert response.body == (to_graph_json(build_graph(report)) + "\n").encode()
        assert service.jobs.discoveries_started == 0

    def test_cold_graph_request_discovers_and_matches_warm(self, store, executor):
        service = make_service(store, executor)
        cold = asyncio.run(get(service, f"/graph/{PRESET}"))
        assert cold.status == 200 and service.jobs.discoveries_started == 1
        hot = asyncio.run(get(service, f"/graph/{PRESET}"))
        assert hot.body == cold.body

    def test_dot_negotiation(self, store, executor):
        warm(store)
        service = make_service(store, executor)

        async def scenario():
            by_query = await get(service, f"/graph/{PRESET}", {"format": "dot"})
            by_accept = await get(
                service, f"/graph/{PRESET}", headers={"accept": "text/vnd.graphviz"}
            )
            bad = await get(service, f"/graph/{PRESET}", {"format": "csv"})
            return by_query, by_accept, bad

        by_query, by_accept, bad = asyncio.run(scenario())
        assert by_query.status == 200
        assert by_query.content_type.startswith("text/vnd.graphviz")
        assert by_query.body.startswith(b"digraph mt4g {")
        assert by_accept.body == by_query.body
        assert bad.status == 406

    def test_fleet_graph_groups_the_catalog(self, store, executor):
        warm(store)
        warm(store, preset="TestGPU-AMD")
        service = make_service(store, executor)

        async def scenario():
            default = await get(service, "/graph")
            by_arch = await get(service, "/graph", {"group": "microarchitecture"})
            bad = await get(service, "/graph", {"group": "bogus"})
            return default, by_arch, bad

        default, by_arch, bad = asyncio.run(scenario())
        payload = json.loads(default.body)
        assert payload["meta"]["group_by"] == "vendor"
        groups = {
            n["name"]: n["attrs"]["devices"]
            for n in payload["nodes"]
            if n["kind"] == "group"
        }
        assert groups == {"NVIDIA": 1, "AMD": 1}
        assert json.loads(by_arch.body)["meta"]["group_by"] == "microarchitecture"
        assert bad.status == 400

    def test_diff_graph_view(self, store, executor):
        warm(store)
        warm(store, preset="TestGPU-NV-2SEG")
        service = make_service(store, executor)

        async def scenario():
            view = await get(
                service, f"/diff/{PRESET}/TestGPU-NV-2SEG", {"view": "graph"}
            )
            md = await get(
                service,
                f"/diff/{PRESET}/TestGPU-NV-2SEG",
                {"view": "graph", "format": "markdown"},
            )
            bad = await get(
                service, f"/diff/{PRESET}/TestGPU-NV-2SEG", {"view": "sideways"}
            )
            return view, md, bad

        view, md, bad = asyncio.run(scenario())
        payload = json.loads(view.body)
        assert payload["schema"] == "mt4g-repro-graph-diff/1"
        assert payload["verdict"] == "drift"
        statuses = {n["id"]: n["status"] for n in payload["nodes"]}
        assert statuses["cache:L2"] == "drift"  # segmentation differs
        # the graph view is JSON-only; markdown against it is a 406
        assert md.status == 406
        assert bad.status == 400

    def test_graph_routes_have_metric_labels(self, store, executor):
        from repro.serve.handlers import route_label

        assert (
            route_label(HTTPRequest("GET", "/graph/TestGPU-NV"))
            == "GET /graph/{preset}"
        )
        assert route_label(HTTPRequest("GET", "/graph")) == "GET /graph"


# ---------------------------------------------------------------------- #
# socket transport                                                        #
# ---------------------------------------------------------------------- #


class TestHTTPTransport:
    async def _roundtrip(self, host, port, raw: bytes) -> bytes:
        # Each roundtrip sends Connection: close (reading to EOF under
        # the keep-alive default would wait out the idle window) — the
        # honor-the-client's-close path, exercised on every call.
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(raw)
        await writer.drain()
        data = await reader.read()
        writer.close()
        await writer.wait_closed()
        return data

    def test_end_to_end_over_a_real_socket(self, store, executor):
        warm(store)

        async def scenario():
            service = make_service(store, executor, read_only=True)
            host, port = await service.start(port=0)
            try:
                health = await self._roundtrip(
                    host,
                    port,
                    b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
                )
                report = await self._roundtrip(
                    host,
                    port,
                    f"GET /devices/{PRESET}/report?seed=0 HTTP/1.1\r\n"
                    "Host: x\r\nConnection: close\r\n\r\n".encode(),
                )
                malformed = await self._roundtrip(host, port, b"???\r\n\r\n")
            finally:
                await service.stop()
            return service, health, report, malformed

        service, health, report, malformed = asyncio.run(scenario())
        head, _, body = health.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Content-Type: application/json" in head
        assert json.loads(body)["status"] == "ok"
        # Content-Length is honest (clients read exactly the body)
        length = int(
            [l for l in head.split(b"\r\n") if l.lower().startswith(b"content-length")][
                0
            ].split(b":")[1]
        )
        assert length == len(body)
        report_body = report.partition(b"\r\n\r\n")[2]
        cli_equivalent = MT4G(SimulatedGPU.from_preset(PRESET, seed=0)).discover()
        assert report_body == (to_json(cli_equivalent) + "\n").encode()
        assert malformed.startswith(b"HTTP/1.1 400")
        assert service.metrics.bad_requests == 1

    def test_header_flood_is_rejected(self, store, executor):
        # A client streaming endless header lines must get a 400, not
        # pin the connection task and grow memory without bound.
        async def scenario():
            service = make_service(store, executor, read_only=True)
            host, port = await service.start(port=0)
            try:
                flood = (
                    b"GET /healthz HTTP/1.1\r\n"
                    + b"".join(b"X-%d: y\r\n" % i for i in range(200))
                    + b"\r\n"
                )
                return await self._roundtrip(host, port, flood)
            finally:
                await service.stop()

        response = asyncio.run(scenario())
        assert response.startswith(b"HTTP/1.1 400")
