"""Tests for the simulated device: path resolution, segments, pinning."""

import pytest

from repro.errors import AllocationError, SchedulingError, SimulationError, SpecError
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.isa import LoadKind, MemorySpace
from repro.gpuspec.spec import Quirk
from tests.conftest import make_quirked_amd, make_quirked_nv


@pytest.fixture
def nv() -> SimulatedGPU:
    return SimulatedGPU.from_preset("TestGPU-NV", seed=1)


@pytest.fixture
def nv2seg() -> SimulatedGPU:
    return SimulatedGPU.from_preset("TestGPU-NV-2SEG", seed=1)


@pytest.fixture
def amd() -> SimulatedGPU:
    return SimulatedGPU.from_preset("TestGPU-AMD", seed=1)


class TestPathResolutionNVIDIA:
    def test_global_ca_goes_l1_l2(self, nv):
        path = nv.resolve_path(LoadKind.LD_GLOBAL_CA)
        names = [c.name for c, _ in path.levels]
        assert "l1tex" in names[0] and "L2" in names[1]
        assert path.terminal_latency == nv.spec.memory.load_latency

    def test_global_cg_bypasses_l1(self, nv):
        path = nv.resolve_path(LoadKind.LD_GLOBAL_CG)
        assert len(path.levels) == 1
        assert "L2" in path.levels[0][0].name

    def test_texture_and_readonly_share_l1_silicon(self, nv):
        tex = nv.resolve_path(LoadKind.TEX1DFETCH)
        ro = nv.resolve_path(LoadKind.LDG)
        ca = nv.resolve_path(LoadKind.LD_GLOBAL_CA)
        assert tex.levels[0][0] is ro.levels[0][0] is ca.levels[0][0]
        # ... but with path-specific latencies (paper Table III).
        assert tex.levels[0][1] != ca.levels[0][1]

    def test_constant_path_stacks_cl1_cl15(self, nv):
        path = nv.resolve_path(LoadKind.LD_CONST)
        names = [c.name for c, _ in path.levels]
        assert any("ConstL1." in n or "ConstL1" in n for n in names[:1])
        assert len(path.levels) == 3  # CL1 -> CL1.5 -> L2

    def test_shared_memory_has_no_cache(self, nv):
        path = nv.resolve_path(LoadKind.LD_SHARED)
        assert path.levels == []
        assert path.terminal_latency == nv.spec.scratchpad.load_latency

    def test_amd_kind_rejected(self, nv):
        with pytest.raises(SimulationError):
            nv.resolve_path(LoadKind.FLAT_LOAD)


class TestPathResolutionAMD:
    def test_flat_load_goes_vl1_l2(self, amd):
        path = amd.resolve_path(LoadKind.FLAT_LOAD)
        assert len(path.levels) == 2

    def test_glc_bypasses_vl1(self, amd):
        path = amd.resolve_path(LoadKind.FLAT_LOAD_GLC)
        assert len(path.levels) == 1

    def test_scalar_path_uses_sl1d(self, amd):
        path = amd.resolve_path(LoadKind.S_LOAD)
        assert "sL1d" in path.levels[0][0].name

    def test_l3_in_path_when_present(self):
        dev = SimulatedGPU.from_preset("TestGPU-AMD-L3", seed=0)
        path = dev.resolve_path(LoadKind.FLAT_LOAD)
        assert len(path.levels) == 3  # vL1 -> L2 -> L3

    def test_nv_kind_rejected(self, amd):
        with pytest.raises(SimulationError):
            amd.resolve_path(LoadKind.LD_GLOBAL_CA)


class TestSegmentsAndGroups:
    def test_l2_segment_mapping(self, nv2seg):
        segs = {nv2seg.l2_segment_of_sm(sm) for sm in range(2)}
        assert segs == {0, 1}
        assert nv2seg.l2_cache_for_sm(0) is not nv2seg.l2_cache_for_sm(1)

    def test_l2_single_segment_shared(self, nv):
        assert nv.l2_cache_for_sm(0) is nv.l2_cache_for_sm(1)

    def test_l1_segments_by_core(self, nv2seg):
        sm = nv2seg.sm(0)
        spec = nv2seg.spec.cache("L1")
        low = sm.cache_for(spec, core=0)
        high = sm.cache_for(spec, core=spec.segments and sm.cores - 1)
        assert low is not high

    def test_sl1d_groups_follow_physical_ids(self, amd):
        # TestGPU-AMD physical ids: (0,1,2,4,5,6,8,9); pairs share //2.
        assert amd.sl1d_cache_for_cu(0) is amd.sl1d_cache_for_cu(1)  # phys 0,1
        assert amd.sl1d_cache_for_cu(2) is not amd.sl1d_cache_for_cu(3)  # 2 vs 4
        assert amd.sl1d_cache_for_cu(6) is not amd.sl1d_cache_for_cu(5)

    def test_exclusive_sl1d_for_fused_partner(self, amd):
        # Physical CU 2's partner (3) is fused off: group 1 has one member.
        group = amd.sl1d_group_of_cu(2)
        others = [cu for cu in range(8) if cu != 2 and amd.sl1d_group_of_cu(cu) == group]
        assert others == []


class TestPinningAndQuirks:
    def test_cu_pinning_returns_physical_id(self, amd):
        assert amd.pin_block_to_cu(3) == 4  # logical 3 -> physical 4

    def test_cu_pinning_nvidia_rejected(self, nv):
        with pytest.raises(SchedulingError):
            nv.pin_block_to_cu(0)

    def test_virtualized_pinning_refused(self):
        spec = make_quirked_amd(frozenset({Quirk.VIRTUALIZED}))
        dev = SimulatedGPU(spec, seed=0)
        with pytest.raises(SchedulingError):
            dev.pin_block_to_cu(0)

    def test_warp_bug_blocks_warp3(self):
        spec = make_quirked_nv(frozenset({Quirk.WARP_SCHEDULING_BUG}))
        dev = SimulatedGPU(spec, seed=0)
        sm = dev.sm(0)
        assert sm.check_warp_schedulable(0)
        assert sm.check_warp_schedulable(2)
        assert not sm.check_warp_schedulable(3)
        with pytest.raises(SchedulingError):
            sm.pin_core(3 * 32)

    def test_no_bug_all_warps_fine(self):
        spec = make_quirked_nv(frozenset())
        dev = SimulatedGPU(spec, seed=0)
        assert all(dev.sm(0).check_warp_schedulable(w) for w in range(4))

    def test_flaky_const_side_effect_sometimes(self):
        spec = make_quirked_nv(frozenset({Quirk.FLAKY_L1_CONST_SHARING}))
        dev = SimulatedGPU(spec, seed=3)
        outcomes = {bool(dev.resolve_path(LoadKind.LD_CONST).side_effects) for _ in range(40)}
        assert outcomes == {True, False}  # the coin flips both ways

    def test_clean_const_no_side_effect(self, nv):
        for _ in range(20):
            assert nv.resolve_path(LoadKind.LD_CONST).side_effects == []


class TestAllocationAndReset:
    def test_global_alloc_distinct(self, nv):
        a = nv.alloc(MemorySpace.GLOBAL, 4096)
        b = nv.alloc(MemorySpace.GLOBAL, 4096)
        assert b >= a + 4096

    def test_constant_limit(self, nv):
        with pytest.raises(AllocationError):
            nv.alloc(MemorySpace.CONSTANT, 128 * 1024)

    def test_shared_capacity_enforced(self, nv):
        with pytest.raises(AllocationError):
            nv.alloc(MemorySpace.SHARED, nv.spec.scratchpad.size + 1)

    def test_alloc_by_kind(self, nv):
        assert nv.alloc(LoadKind.LD_CONST, 1024) > 0

    def test_reset_releases_everything(self, nv):
        nv.alloc(MemorySpace.SHARED, nv.spec.scratchpad.size)
        nv.reset()
        nv.alloc(MemorySpace.SHARED, nv.spec.scratchpad.size)  # would raise if leaked

    def test_sm_out_of_range(self, nv):
        with pytest.raises(SimulationError):
            nv.sm(99)

    def test_accounting(self, nv):
        nv.account_loads(10, 500.0)
        assert nv.total_loads == 10
        assert nv.elapsed_seconds() == pytest.approx(500.0 / nv.spec.core_clock_hz)
        with pytest.raises(SimulationError):
            nv.account_loads(-1, 0.0)


class TestMIGOnDevice:
    def test_profile_restricts_sms(self):
        dev = SimulatedGPU.from_preset("TestGPU-NV", seed=0, mig_profile="1g")
        assert dev.visible_sms < dev.spec.compute.num_sms
        with pytest.raises(SimulationError):
            dev.sm(dev.visible_sms)

    def test_unknown_profile_rejected(self):
        with pytest.raises(SpecError):
            SimulatedGPU.from_preset("TestGPU-NV", seed=0, mig_profile="weird")

    def test_mig_on_amd_rejected(self):
        with pytest.raises(SpecError):
            SimulatedGPU.from_preset("TestGPU-AMD", seed=0, mig_profile="1g")
