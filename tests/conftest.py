"""Shared fixtures.

Full discoveries are session-scoped: the four synthetic test GPUs cover
the pipeline in about a second total on the analytic measurement engine,
and many test modules assert against the same reports.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import MT4G, SimulatedGPU
from repro.gpuspec.presets import get_preset
from repro.gpuspec.spec import ComputeSpec, GPUSpec, Quirk


@pytest.fixture(scope="session", autouse=True)
def _isolated_cli_cache(tmp_path_factory):
    """Point the CLI's default discovery cache at a per-session tmp dir.

    CLI tests exercising the default flags must not read (or pollute) the
    developer's ``~/.cache/mt4g`` — a stale entry from an older build
    could mask a behaviour change the test is meant to catch.
    """
    import os

    old = os.environ.get("MT4G_CACHE_DIR")
    os.environ["MT4G_CACHE_DIR"] = str(tmp_path_factory.mktemp("mt4g-cache"))
    yield
    if old is None:
        os.environ.pop("MT4G_CACHE_DIR", None)
    else:
        os.environ["MT4G_CACHE_DIR"] = old


@pytest.fixture(scope="session")
def nv_device() -> SimulatedGPU:
    return SimulatedGPU.from_preset("TestGPU-NV", seed=11)


@pytest.fixture(scope="session")
def nv_report(nv_device):
    return MT4G(nv_device).discover()

@pytest.fixture(scope="session")
def nv2seg_report():
    device = SimulatedGPU.from_preset("TestGPU-NV-2SEG", seed=11)
    return MT4G(device).discover()


@pytest.fixture(scope="session")
def amd_device() -> SimulatedGPU:
    return SimulatedGPU.from_preset("TestGPU-AMD", seed=11)


@pytest.fixture(scope="session")
def amd_report(amd_device):
    return MT4G(amd_device).discover()


@pytest.fixture(scope="session")
def amd_l3_report():
    device = SimulatedGPU.from_preset("TestGPU-AMD-L3", seed=11)
    return MT4G(device).discover()


def make_quirked_nv(quirks: frozenset[Quirk], cores_per_sm: int = 128) -> GPUSpec:
    """TestGPU-NV variant with quirks and enough warps to trigger them."""
    base = get_preset("TestGPU-NV")
    compute = dataclasses.replace(
        base.compute,
        cores_per_sm=cores_per_sm,
        max_threads_per_sm=max(base.compute.max_threads_per_sm, cores_per_sm * 4),
    )
    return dataclasses.replace(
        base, name=f"{base.name}-quirk", compute=compute, quirks=quirks
    )


def make_quirked_amd(quirks: frozenset[Quirk]) -> GPUSpec:
    base = get_preset("TestGPU-AMD")
    return dataclasses.replace(base, name=f"{base.name}-quirk", quirks=quirks)
