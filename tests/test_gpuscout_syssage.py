"""Tests for the GPUscout and sys-sage integrations (Sections VI-B/C)."""

import numpy as np
import pytest

from repro import MT4G, SimulatedGPU
from repro.errors import ReproError, SpecError
from repro.integrations.gpuscout import GPUscoutContext, NCUCounters
from repro.integrations.syssage import SysSageTopology
from repro.units import KiB, MiB


def make_counters(**overrides) -> NCUCounters:
    defaults = dict(
        kernel_name="saxpy",
        l1_hit_rate=0.9,
        l2_hit_rate=0.85,
        l1_bytes=10**8,
        l2_bytes=10**7,
        dram_bytes=10**6,
        registers_per_thread=32,
        threads_per_block=128,
        blocks_per_sm=2,
    )
    defaults.update(overrides)
    return NCUCounters(**defaults)


class TestNCUCounters:
    def test_validation(self):
        with pytest.raises(ReproError):
            make_counters(l1_hit_rate=1.5)
        with pytest.raises(ReproError):
            make_counters(dram_bytes=-1)
        with pytest.raises(ReproError):
            make_counters(threads_per_block=0)


class TestMemoryGraph:
    def test_structure(self, nv_report):
        g = GPUscoutContext(nv_report, make_counters()).memory_graph()
        assert set(g.nodes) == {"Kernel", "L1", "L2", "DeviceMemory", "SharedMem"}
        assert g.has_edge("Kernel", "L1") and g.has_edge("L2", "DeviceMemory")

    def test_mt4g_sizes_attached(self, nv_report):
        g = GPUscoutContext(nv_report, make_counters()).memory_graph()
        assert g.nodes["L1"]["size"] == nv_report.attribute("L1", "size").value
        assert g.nodes["L1"]["shared_with"] == nv_report.attribute("L1", "shared_with").value

    def test_traffic_on_edges(self, nv_report):
        c = make_counters()
        g = GPUscoutContext(nv_report, c).memory_graph()
        assert g.edges["Kernel", "L1"]["bytes"] == c.l1_bytes

    def test_amd_uses_vl1_and_lds(self, amd_report):
        g = GPUscoutContext(amd_report, make_counters()).memory_graph()
        assert "vL1" in g.nodes and "LDS" in g.nodes


class TestRecommendations:
    def test_healthy_kernel_no_findings(self, nv_report):
        recs = GPUscoutContext(nv_report, make_counters()).recommendations()
        assert [r.code for r in recs] == ["no-bottleneck"]

    def test_register_spilling(self, nv_report):
        c = make_counters(registers_per_thread=255, threads_per_block=256,
                          blocks_per_sm=4, local_spill_bytes=2048)
        codes = [r.code for r in GPUscoutContext(nv_report, c).recommendations()]
        assert "register-spilling" in codes

    def test_l1_working_set(self, nv_report):
        c = make_counters(l1_hit_rate=0.3, working_set_per_block=64 * KiB)
        recs = GPUscoutContext(nv_report, c).recommendations()
        by_code = {r.code: r for r in recs}
        assert "l1-working-set" in by_code
        # The message quantifies against the MT4G-measured L1 size.
        assert "L1" in by_code["l1-working-set"].message

    def test_l1_pattern_problem(self, nv_report):
        c = make_counters(l1_hit_rate=0.2, working_set_per_block=512)
        codes = [r.code for r in GPUscoutContext(nv_report, c).recommendations()]
        assert "l1-thrash-pattern" in codes

    def test_l2_capacity(self, nv_report):
        c = make_counters(l2_hit_rate=0.2, dram_bytes=10**7, l2_bytes=10**7)
        codes = [r.code for r in GPUscoutContext(nv_report, c).recommendations()]
        assert "l2-capacity" in codes

    def test_shared_oversubscription(self, nv_report):
        c = make_counters(shared_bytes_per_block=6 * KiB, blocks_per_sm=4)
        codes = [r.code for r in GPUscoutContext(nv_report, c).recommendations()]
        assert "shared-oversubscribed" in codes


class TestSysSage:
    @pytest.fixture(scope="class")
    def pair(self):
        device = SimulatedGPU.from_preset("TestGPU-NV", seed=21)
        report = MT4G(device, targets={"L1", "L2", "SharedMem", "DeviceMemory"}).discover()
        return report, device

    def test_mismatched_pair_rejected(self, pair, amd_device):
        report, _ = pair
        with pytest.raises(ReproError):
            SysSageTopology(report, amd_device)

    def test_effective_l2_full(self, pair):
        ss = SysSageTopology(*pair)
        assert ss.effective_l2_per_sm() == 64 * KiB

    def test_effective_l2_under_mig(self, pair):
        ss = SysSageTopology(*pair)
        ss.set_mig_profile("1g")
        assert ss.effective_l2_per_sm() == 8 * KiB
        ss.set_mig_profile(None)
        assert ss.effective_l2_per_sm() == 64 * KiB

    def test_refresh_reports_mig(self, pair):
        ss = SysSageTopology(*pair)
        ss.set_mig_profile("2g")
        state = ss.refresh()
        assert state["mig_enabled"] is True and state["profile"] == "2g"
        ss.set_mig_profile(None)

    def test_stream_experiment_cliff(self, pair):
        ss = SysSageTopology(*pair)
        ws = np.array([16 * KiB, 48 * KiB, 256 * KiB, 1 * MiB])
        ns = ss.stream_experiment(ws, noisy=False)
        assert ns[-1] > ns[0] * 1.5  # beyond-L2 streaming is slower
        assert ns[1] == pytest.approx(ns[0], rel=0.05)

    def test_tree_structure(self, pair):
        ss = SysSageTopology(*pair)
        tree = ss.tree(max_sms=1)
        kinds = {d["kind"] for _, d in tree.nodes(data=True)}
        assert {"Machine", "Chip", "MemoryRegion", "Cache", "SM", "Scratchpad"} <= kinds
        # exactly one L2 segment node per discovered segment
        l2_nodes = [n for n in tree.nodes if n.startswith("cache:L2")]
        assert len(l2_nodes) == ss.l2_segment_count()

    def test_mig_on_amd_rejected(self, amd_report, amd_device):
        ss = SysSageTopology(amd_report, amd_device)
        with pytest.raises(SpecError):
            ss.set_mig_profile("1g")


class TestFig5Property:
    """The headline sys-sage result on the real A100 preset (model level)."""

    def test_full_equals_4g20gb_but_not_1g5gb(self):
        device = SimulatedGPU.from_preset("A100", seed=5)
        ws = np.geomspace(1 * MiB, 128 * MiB, 24)
        full = device.bandwidth.stream_sweep_ns_per_byte(ws, mig=None, noisy=False)
        from repro.gpusim.mig import resolve_mig

        m4 = device.bandwidth.stream_sweep_ns_per_byte(
            ws, mig=resolve_mig(device.spec, "4g.20gb"), noisy=False
        )
        m1 = device.bandwidth.stream_sweep_ns_per_byte(
            ws, mig=resolve_mig(device.spec, "1g.5gb"), noisy=False
        )
        assert np.allclose(full, m4)
        assert (m1 >= full - 1e-12).all() and m1.max() > full.max() * 1.05
