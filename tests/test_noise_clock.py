"""Tests for the noise model and cycle clock."""

import numpy as np
import pytest

from repro.gpusim.clock import CycleClock, TimedEvent
from repro.gpusim.noise import NoiseModel
from repro.gpuspec.spec import NoiseSpec


def make_noise(seed=0, **kwargs) -> NoiseModel:
    spec = NoiseSpec(**kwargs) if kwargs else NoiseSpec()
    return NoiseModel(spec, np.random.default_rng(seed))


class TestNoiseModel:
    def test_constant_overhead_added(self):
        nm = make_noise(measurement_overhead=6.0, jitter_sigma=0.0, outlier_probability=0.0)
        out = nm.perturb(np.full(100, 30.0))
        assert np.allclose(out, 36.0)

    def test_overhead_constant_across_levels(self):
        # Paper footnote 7: constant overhead affects neither the K-S test
        # nor the tendencies — differences between levels are preserved.
        nm = make_noise(jitter_sigma=0.0, outlier_probability=0.0)
        fast = nm.perturb(np.full(10, 30.0))
        slow = nm.perturb(np.full(10, 200.0))
        assert np.allclose(slow - fast, 170.0)

    def test_jitter_spread(self):
        nm = make_noise(jitter_sigma=2.0, outlier_probability=0.0)
        out = nm.perturb(np.full(4000, 100.0))
        assert 1.5 < out.std() < 2.5

    def test_outliers_appear_at_rate(self):
        nm = make_noise(
            jitter_sigma=0.0, outlier_probability=0.01, outlier_magnitude=500.0
        )
        out = nm.perturb(np.full(20000, 50.0))
        spikes = (out > 200).sum()
        assert 100 < spikes < 400  # ~200 expected

    def test_latencies_never_below_one(self):
        nm = make_noise(jitter_sigma=50.0)
        out = nm.perturb(np.full(1000, 2.0))
        assert (out >= 1.0).all()

    def test_deterministic_per_seed(self):
        a = make_noise(seed=5).perturb(np.arange(100.0))
        b = make_noise(seed=5).perturb(np.arange(100.0))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_noise(seed=1).perturb(np.full(50, 100.0))
        b = make_noise(seed=2).perturb(np.full(50, 100.0))
        assert not np.array_equal(a, b)

    def test_contention_inflates(self):
        spec = NoiseSpec(jitter_sigma=0.0, outlier_probability=0.0)
        quiet = NoiseModel(spec, np.random.default_rng(3), contention_factor=0.0)
        busy = NoiseModel(spec, np.random.default_rng(3), contention_factor=2.0)
        base = np.full(5000, 100.0)
        assert busy.perturb(base).mean() > quiet.perturb(base).mean() * 1.02

    def test_contention_negative_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(NoiseSpec(), np.random.default_rng(0), contention_factor=-1.0)

    def test_scalar_helper(self):
        nm = make_noise(jitter_sigma=0.0, outlier_probability=0.0)
        assert nm.perturb_scalar(10.0) == pytest.approx(16.0)


class TestCycleClock:
    def test_advance_and_elapsed(self):
        clock = CycleClock(1e9)
        clock.advance(2e9)
        assert clock.elapsed_seconds() == pytest.approx(2.0)

    def test_advance_seconds(self):
        clock = CycleClock(2e9)
        clock.advance_seconds(1.5)
        assert clock.cycles == pytest.approx(3e9)

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            CycleClock(1e9).advance(-1)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            CycleClock(0)

    def test_event_timing(self):
        clock = CycleClock(1e9)
        event = clock.event()
        clock.advance(5e8)
        elapsed = clock.stop(event)
        assert elapsed == pytest.approx(0.5)

    def test_event_misuse(self):
        ev = TimedEvent(start_cycle=10.0, end_cycle=5.0)
        with pytest.raises(ValueError):
            ev.elapsed_cycles()
