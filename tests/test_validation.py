"""Tests for the validation subsystem (repro.validate + stats.compare)."""

import dataclasses
import json

import pytest

from repro import MT4G, SimulatedGPU, available_presets
from repro.core.benchmarks.base import MeasurementResult, Source
from repro.core.report import (
    AttributeValue,
    ComputeReport,
    GeneralReport,
    MemoryElementReport,
    RuntimeReport,
    TopologyReport,
)
from repro.gpuspec.presets import get_preset
from repro.pchase.config import PChaseConfig
from repro.stats.compare import (
    agreement_score,
    majority_index,
    median_index,
    recalibrated_confidence,
    relative_error,
    within_tolerance,
)
from repro.validate import (
    is_roundish_size,
    reference_for,
    run_structural_checks,
    validate_report,
)
from repro.validate.validator import run_cross_checks


# ---------------------------------------------------------------------- #
# helpers                                                                 #
# ---------------------------------------------------------------------- #


def _attr(value, unit="B", confidence=0.9, source=Source.BENCHMARK):
    return AttributeValue(value, unit, confidence, source)


def make_report(vendor="NVIDIA", memory=None) -> TopologyReport:
    """A minimal hand-built report for check unit tests."""
    elements = {}
    for name, attrs in (memory or {}).items():
        el = MemoryElementReport(name)
        for attr, av in attrs.items():
            el.set(attr, av)
        elements[name] = el
    return TopologyReport(
        general=GeneralReport(
            vendor=vendor,
            model="synthetic",
            microarchitecture="Test",
            compute_capability="0.0",
            clock_rate_hz=1e9,
            memory_clock_rate_hz=1e9,
            memory_bus_width_bits=256,
        ),
        compute=ComputeReport(
            num_sms=1,
            cores_per_sm=64,
            warp_size=32,
            max_blocks_per_sm=1,
            max_threads_per_block=32,
            max_threads_per_sm=32,
            registers_per_block=1,
            registers_per_sm=1,
            warps_per_sm=2,
            simds_per_sm=0,
        ),
        memory=elements,
        runtime=RuntimeReport(0, 0.0, 0.0),
    )


# ---------------------------------------------------------------------- #
# stats.compare                                                           #
# ---------------------------------------------------------------------- #


class TestCompare:
    def test_relative_error(self):
        assert relative_error(105.0, 100.0) == pytest.approx(0.05)
        assert relative_error(0.0, 0.0) == 0.0

    def test_within_tolerance(self):
        assert within_tolerance(105, 100, 0.05)
        assert not within_tolerance(106, 100, 0.05)

    def test_exact_tolerance(self):
        assert within_tolerance(64, 64, 0.0)
        assert not within_tolerance(64, 63.9, 0.0)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            within_tolerance(1, 1, -0.1)

    def test_agreement_score_bounds(self):
        assert agreement_score(100, 100, 0.1) == 1.0
        assert agreement_score(120, 100, 0.1) == 0.0
        assert 0.0 < agreement_score(105, 100, 0.1) < 1.0

    def test_recalibration_never_resurrects_zero(self):
        assert recalibrated_confidence(0.0, 1.0) == 0.0

    def test_recalibration_raises_on_agreement(self):
        assert recalibrated_confidence(0.6, 1.0) > 0.6

    def test_recalibration_lowers_on_disagreement(self):
        assert recalibrated_confidence(0.9, 0.0) < 0.9

    def test_median_index(self):
        assert median_index([3.0]) == 0
        assert median_index([9.0, 1.0, 5.0]) == 2
        with pytest.raises(ValueError):
            median_index([])

    def test_majority_index(self):
        assert majority_index(["a"]) == 0
        assert majority_index(["a", "b", "b"]) == 1
        # ties go to the earliest-seen key
        assert majority_index(["a", "b"]) == 0
        assert majority_index(["b", "a", "b", "a"]) == 0
        with pytest.raises(ValueError):
            majority_index([])


# ---------------------------------------------------------------------- #
# structural checks                                                       #
# ---------------------------------------------------------------------- #


class TestRoundishSize:
    @pytest.mark.parametrize(
        "value",
        [
            1024,
            4096,
            3 * 64 * 1024,  # 192 KiB: odd multiple of a power of two
            5 * 1024 * 1024,
            120 * 1024,  # V100 PreferL1 carveout: 15 * 8 KiB
            184 * 1024,  # A100 carveout: 23 * 8 KiB
            2112,  # one 64 B stride past 2 KiB (Table III's "2.1 KiB")
        ],
    )
    def test_accepts_real_capacities(self, value):
        assert is_roundish_size(value)

    @pytest.mark.parametrize("value", [0, -4096, 11111, 1088, 53000])
    def test_rejects_junk(self, value):
        assert not is_roundish_size(value)

    # The tightened carveout rule: with vendor context, an 8 KiB quantum
    # is only accepted when it is consistent with the generation's
    # unified SRAM block and claimed by an L1-silicon element.

    @pytest.mark.parametrize(
        "value,march",
        [
            (120 * 1024, "Volta"),  # V100 PreferL1: 15 * 8 KiB of 128 KiB
            (184 * 1024, "Ampere"),  # A100: 23 * 8 KiB of 192 KiB
            (238 * 1024, "Hopper"),  # H100: fits the 256 KiB block
        ],
    )
    def test_accepts_generation_consistent_carveouts(self, value, march):
        assert is_roundish_size(
            value, vendor="NVIDIA", microarchitecture=march, element="L1"
        )

    def test_rejects_quantum_exceeding_the_generation_block(self):
        # 27 * 8 KiB passed the old "any 8 KiB multiple within 2 %" rule,
        # but no Ampere SRAM block is 216 KiB — only the 256 KiB Hopper
        # block can host that carveout.
        value = 216 * 1024
        assert is_roundish_size(value)  # legacy, context-free call
        assert not is_roundish_size(
            value, vendor="NVIDIA", microarchitecture="Ampere", element="L1"
        )
        assert is_roundish_size(
            value, vendor="NVIDIA", microarchitecture="Hopper", element="L1"
        )

    def test_rejects_carveout_claims_from_non_l1_elements(self):
        value = 184 * 1024
        assert not is_roundish_size(
            value, vendor="NVIDIA", microarchitecture="Ampere", element="ConstL1"
        )
        assert is_roundish_size(
            value, vendor="NVIDIA", microarchitecture="Ampere", element="Texture"
        )

    def test_ampere_block_is_compute_capability_granular(self):
        # GA100 (cc 8.0) has a 192 KiB block; GA10x (cc 8.6) only
        # 128 KiB — the same 184 KiB claim is real on one and impossible
        # on the other.  An unknown CC falls back to the generation's
        # largest block (permissive, never rejects real hardware).
        value = 184 * 1024
        common = dict(vendor="NVIDIA", microarchitecture="Ampere", element="L1")
        assert is_roundish_size(value, compute_capability="8.0", **common)
        assert not is_roundish_size(value, compute_capability="8.6", **common)
        assert is_roundish_size(value, **common)

    def test_amd_has_no_carveout_branch(self):
        assert not is_roundish_size(
            120 * 1024, vendor="AMD", microarchitecture="CDNA2", element="vL1"
        )

    def test_unknown_generation_falls_back_to_quantum_rule(self):
        assert is_roundish_size(
            120 * 1024, vendor="NVIDIA", microarchitecture="FutureArch", element="L1"
        )

    # Element-scope-aware roundness (closes the ROADMAP round-size open
    # item): GPU-scope LLC capacities are whole-MiB slice counts, not
    # SM-SRAM carveouts, and must be judged by the slice rule.

    def test_accepts_whole_mib_llc_slices(self):
        # The latent H100-style case: a *benchmarked* 25 MiB L2 segment
        # (half the 50 MiB L2) is 25 x 1 MiB slices — round for an LLC,
        # impossible for any SM-level element of the same device.
        value = 25 * 1024 * 1024
        assert is_roundish_size(
            value,
            vendor="NVIDIA",
            microarchitecture="Hopper",
            element="L2",
            compute_capability="9.0",
        )
        assert not is_roundish_size(
            value,
            vendor="NVIDIA",
            microarchitecture="Hopper",
            element="L1",
            compute_capability="9.0",
        )

    def test_mib_slices_apply_to_amd_llcs_too(self):
        assert is_roundish_size(
            11 * 1024 * 1024, vendor="AMD", microarchitecture="CDNA3", element="L3"
        )
        assert not is_roundish_size(
            11 * 1024 * 1024, vendor="AMD", microarchitecture="CDNA3", element="vL1"
        )

    def test_mib_slice_slack_is_absolute_not_relative(self):
        # A sweep overshoots by at most one stride (a few KiB); at
        # 25 MiB a relative tolerance would span half a slice and wave
        # any value through.
        mib = 1024 * 1024
        kw = dict(vendor="NVIDIA", microarchitecture="Hopper", element="L2")
        assert is_roundish_size(25 * mib + 32 * 1024, **kw)
        assert not is_roundish_size(25 * mib + 512 * 1024, **kw)

    def test_small_llc_capacities_keep_the_odd_multiple_rule(self):
        kw = dict(vendor="NVIDIA", microarchitecture="Hopper", element="L2")
        assert is_roundish_size(768 * 1024, **kw)  # 3 * 256 KiB
        assert not is_roundish_size(53000, **kw)

    def test_context_free_calls_keep_legacy_behaviour(self):
        # Without element context the MiB-slice branch never engages;
        # the permissive legacy quantum rule still judges (25.5 MiB is
        # an exact 8 KiB multiple, so legacy passes it — the scoped L2
        # call is what correctly rejects it).
        value = 25 * 1024 * 1024 + 512 * 1024
        assert is_roundish_size(value)
        assert not is_roundish_size(
            value, vendor="NVIDIA", microarchitecture="Hopper", element="L2"
        )


class TestStructuralChecks:
    def test_monotonic_hierarchy_passes(self):
        report = make_report(
            memory={
                "L1": {"size": _attr(128 * 1024), "load_latency": _attr(34, "cycles")},
                "L2": {
                    "size": _attr(40 << 20, source=Source.API, confidence=1.0),
                    "load_latency": _attr(200, "cycles"),
                    "read_bandwidth": _attr(2e12, "B/s"),
                },
                "DeviceMemory": {
                    "size": _attr(80 << 30, source=Source.API, confidence=1.0),
                    "load_latency": _attr(600, "cycles"),
                    "read_bandwidth": _attr(1e12, "B/s"),
                },
            }
        )
        results = run_structural_checks(report)
        assert all(c.status != "fail" for c in results)
        assert any(
            c.check == "size_monotonicity:L1<=L2" and c.status == "pass"
            for c in results
        )

    def test_size_inversion_fails(self):
        report = make_report(
            memory={
                "L1": {"size": _attr(64 << 20)},
                "L2": {"size": _attr(1 << 20, source=Source.API, confidence=1.0)},
            }
        )
        failed = [c for c in run_structural_checks(report) if c.status == "fail"]
        assert any(c.check == "size_monotonicity:L1<=L2" for c in failed)
        # only the benchmarked side is implicated for escalation
        assert failed[0].implicated == (("L1", "size"),)

    def test_benchmarked_llc_mib_segment_passes_round_size(self):
        # The latent H100-style case end to end: a future GPU-scope
        # benchmark reporting a 25 MiB L2 segment must not be flagged
        # implausible under vendor context.
        report = make_report(memory={"L2": {"size": _attr(25 << 20)}})
        report.general.microarchitecture = "Hopper"
        report.general.compute_capability = "9.0"
        results = run_structural_checks(report)
        assert any(
            c.check == "round_size:L2" and c.status == "pass" for c in results
        )
        # ... while a half-slice misread of the same magnitude fails.
        report = make_report(memory={"L2": {"size": _attr((25 << 20) + (512 << 10))}})
        report.general.microarchitecture = "Hopper"
        report.general.compute_capability = "9.0"
        assert any(
            c.check == "round_size:L2" and c.status == "fail"
            for c in run_structural_checks(report)
        )

    def test_latency_inversion_fails(self):
        report = make_report(
            memory={
                "L1": {"load_latency": _attr(300, "cycles")},
                "L2": {"load_latency": _attr(100, "cycles")},
            }
        )
        assert any(
            c.check == "latency_monotonicity:L1<=L2" and c.status == "fail"
            for c in run_structural_checks(report)
        )

    def test_bandwidth_inversion_fails(self):
        report = make_report(
            memory={
                "L2": {"read_bandwidth": _attr(1e11, "B/s")},
                "DeviceMemory": {"read_bandwidth": _attr(2e12, "B/s")},
            }
        )
        results = run_structural_checks(report)
        assert any(
            c.check == "bandwidth_ordering.read_bandwidth:L2>=DeviceMemory"
            and c.status == "fail"
            for c in results
        )
        # the write direction (absent here) skips under its own id
        assert any(
            c.check == "bandwidth_ordering.write_bandwidth:L2>=DeviceMemory"
            and c.status == "skip"
            for c in results
        )

    def test_line_smaller_than_fetch_fails(self):
        report = make_report(
            memory={
                "L1": {
                    "cache_line_size": _attr(32),
                    "fetch_granularity": _attr(64),
                }
            }
        )
        assert any(
            c.check == "line_vs_fetch:L1" and c.status == "fail"
            for c in run_structural_checks(report)
        )

    def test_missing_inputs_skip(self):
        report = make_report(memory={"L1": {}})
        results = run_structural_checks(report)
        assert results and all(c.status == "skip" for c in results)

    def test_inconclusive_size_skips_round_check(self):
        report = make_report(
            memory={"ConstL1.5": {"size": _attr(65536, confidence=0.0)}}
        )
        round_checks = [
            c for c in run_structural_checks(report) if c.check.startswith("round_size")
        ]
        assert round_checks[0].status == "skip"

    def test_unround_benchmarked_size_fails(self):
        report = make_report(memory={"L1": {"size": _attr(53000)}})
        assert any(
            c.check == "round_size:L1" and c.status == "fail"
            for c in run_structural_checks(report)
        )


# ---------------------------------------------------------------------- #
# cross-checks                                                            #
# ---------------------------------------------------------------------- #


class TestCrossChecks:
    def test_reference_values(self):
        spec = get_preset("TestGPU-NV")
        size_ref = reference_for(spec, "L1", "size")
        assert size_ref is not None and size_ref[0] == 4096.0
        lat_ref = reference_for(spec, "ConstL1", "load_latency")
        assert lat_ref is not None
        assert lat_ref[0] == pytest.approx(20.0 + spec.noise.measurement_overhead)
        dram = reference_for(spec, "DeviceMemory", "read_bandwidth")
        assert dram is not None and dram[0] == spec.memory.read_bandwidth
        assert reference_for(spec, "NoSuchCache", "size") is None

    def test_l1_reference_respects_carveout(self):
        spec = get_preset("A100")
        ref = reference_for(spec, "L1", "size", cache_config="PreferShared")
        assert ref is not None and ref[0] == spec.l1_carveout["PreferShared"]

    def test_l1tex_siblings_follow_the_carveout(self):
        # Texture/Readonly share the l1tex silicon: their reference size
        # is the carveout, not the nominal spec capacity
        spec = get_preset("A100")
        for element in ("Texture", "Readonly"):
            ref = reference_for(spec, element, "size", cache_config="PreferShared")
            assert ref is not None and ref[0] == spec.l1_carveout["PreferShared"]

    def test_agreeing_value_passes_and_disagreeing_fails(self):
        spec = get_preset("TestGPU-NV")
        report = make_report(
            memory={
                "L1": {"size": _attr(4096)},
                "Texture": {"size": _attr(6000)},
            }
        )
        crosses = {
            (c.element, c.attribute): c for c in run_cross_checks(report, spec)
        }
        assert crosses[("L1", "size")].passed
        assert not crosses[("Texture", "size")].passed

    def test_api_and_inconclusive_values_not_cross_checked(self):
        spec = get_preset("TestGPU-NV")
        report = make_report(
            memory={
                "L2": {"size": _attr(1, source=Source.API, confidence=1.0)},
                "ConstL1.5": {"size": _attr(65536, confidence=0.0)},
            }
        )
        assert run_cross_checks(report, spec) == []

    def test_sharing_protocol_cross_check(self):
        # L1/Texture share the l1tex silicon, ConstL1 has its own cache:
        # the measured partner tuples are judged against the spec groups
        spec = get_preset("TestGPU-NV")
        report = make_report(
            memory={
                "L1": {"shared_with": _attr(("Texture",), "elements")},
                "Texture": {"shared_with": _attr(("L1",), "elements")},
                "ConstL1": {"shared_with": _attr(("L1",), "elements")},
            }
        )
        crosses = {
            (c.element, c.attribute): c for c in run_cross_checks(report, spec)
        }
        assert crosses[("L1", "shared_with")].passed
        assert crosses[("Texture", "shared_with")].passed
        bad = crosses[("ConstL1", "shared_with")]
        assert not bad.passed and bad.rel_error == 1.0
        assert bad.reference == ()  # ConstL1 shares with nobody
        assert bad.reference_source == "spec: physical sharing groups"

    def test_sharing_reference_restricted_to_participants(self):
        # Readonly never ran the protocol here, so it cannot be expected
        # as a partner even though the spec routes it through l1tex
        spec = get_preset("TestGPU-NV")
        report = make_report(
            memory={
                "L1": {"shared_with": _attr(("Texture",), "elements")},
                "Texture": {"shared_with": _attr(("L1",), "elements")},
                "Readonly": {"size": _attr(4096)},
            }
        )
        crosses = {
            (c.element, c.attribute): c for c in run_cross_checks(report, spec)
        }
        assert crosses[("L1", "shared_with")].passed

    def test_flaky_sharing_result_is_not_cross_checked(self):
        # confidence 0 (split repetition votes) is not a claim
        spec = get_preset("TestGPU-NV")
        report = make_report(
            memory={
                "L1": {"shared_with": _attr(("ConstL1",), "elements", confidence=0.0)},
            }
        )
        assert run_cross_checks(report, spec) == []


# ---------------------------------------------------------------------- #
# the full validation pass                                                #
# ---------------------------------------------------------------------- #


class TestValidatePass:
    def _corrupt_report(self):
        spec = get_preset("TestGPU-NV")
        return spec, make_report(
            memory={"L1": {"size": _attr(6000)}}  # ~46% off the 4 KiB truth
        )

    def test_failing_without_escalation(self):
        spec, report = self._corrupt_report()
        v = validate_report(report, spec=spec)
        assert not v.passed
        assert "L1.size" in v.failures()
        assert report.validation is v

    def test_escalation_repairs_and_repasses(self):
        spec, report = self._corrupt_report()
        calls = []

        def escalate(element, attribute):
            calls.append((element, attribute))
            return MeasurementResult("size", element, 4096, "B", 0.95)

        v = validate_report(report, spec=spec, escalate=escalate)
        assert calls == [("L1", "size")]
        assert v.passed
        assert v.escalations[0].resolved
        assert v.escalations[0].old_value == 6000
        assert v.escalations[0].new_value == 4096
        assert report.attribute("L1", "size").value == 4096

    def test_unresolvable_escalation_keeps_failure(self):
        spec, report = self._corrupt_report()
        v = validate_report(report, spec=spec, escalate=lambda e, a: None)
        assert not v.passed
        assert v.escalations and not v.escalations[0].resolved
        assert report.attribute("L1", "size").value == 6000

    def test_inconclusive_escalation_cannot_launder_verdict(self):
        # a confidence-0 re-measurement is a bound, not a claim: if it
        # replaced the conclusive value, the failing checks would merely
        # *skip* on the re-run and the verdict would flip to "pass"
        spec, report = self._corrupt_report()

        def escalate(element, attribute):
            return MeasurementResult(
                "size", element, 65536, "B", 0.0, note="lower bound"
            )

        v = validate_report(report, spec=spec, escalate=escalate)
        assert not v.passed
        assert not v.escalations[0].resolved
        assert report.attribute("L1", "size").value == 6000

    def test_raising_escalator_is_contained(self):
        spec, report = self._corrupt_report()

        def escalate(element, attribute):
            raise RuntimeError("worker died")

        v = validate_report(report, spec=spec, escalate=escalate)
        assert not v.passed and not v.escalations[0].resolved

    def test_recalibration_folds_agreement_into_confidence(self):
        spec = get_preset("TestGPU-NV")
        report = make_report(memory={"L1": {"size": _attr(4096, confidence=0.6)}})
        v = validate_report(report, spec=spec)
        assert report.attribute("L1", "size").confidence > 0.6
        assert v.recalibrations and v.recalibrations[0].before == 0.6

    def test_as_dict_shape(self):
        spec, report = self._corrupt_report()
        d = validate_report(report, spec=spec).as_dict()
        assert d["verdict"] == "fail"
        assert set(d) == {
            "verdict",
            "summary",
            "checks",
            "cross_checks",
            "escalations",
            "recalibrations",
        }
        json.dumps(d)  # must be serialisable as-is


# ---------------------------------------------------------------------- #
# protocol re-measurement escalation (amount, shared_with)                 #
# ---------------------------------------------------------------------- #


class TestProtocolEscalation:
    def _discovered(self, preset="TestGPU-NV"):
        tool = MT4G(SimulatedGPU.from_preset(preset, seed=0))
        return tool, tool.discover()

    def test_seeded_amount_failure_is_remeasured(self):
        tool, report = self._discovered()
        report.memory["L1"].set(
            "amount", AttributeValue(3, "count", 0.9, Source.BENCHMARK)
        )
        v = tool.validate(report)
        rec = next(
            e for e in v.escalations if (e.element, e.attribute) == ("L1", "amount")
        )
        assert rec.resolved and rec.old_value == 3 and rec.new_value == 1
        assert v.passed
        av = report.attribute("L1", "amount")
        assert av.value == 1
        assert "full eviction protocol" in av.note

    def test_seeded_sharing_failure_is_remeasured(self):
        tool, report = self._discovered()
        report.memory["L1"].set(
            "shared_with",
            AttributeValue(("ConstL1",), "elements", 0.9, Source.BENCHMARK),
        )
        v = tool.validate(report)
        rec = next(
            e
            for e in v.escalations
            if (e.element, e.attribute) == ("L1", "shared_with")
        )
        assert rec.resolved
        assert rec.old_value == ("ConstL1",)
        assert rec.new_value == ("Readonly", "Texture")
        assert v.passed
        assert "majority" in report.attribute("L1", "shared_with").note
        assert "protocol check disagrees" in rec.reason

    def test_l2_segment_miscount_is_remeasured(self):
        # TestGPU-NV-2SEG has two L2 segments; a seeded miscount must be
        # repaired by replaying the segment sweep + API alignment
        tool, report = self._discovered("TestGPU-NV-2SEG")
        old = report.attribute("L2", "amount")
        assert old.value == 2
        report.memory["L2"].set(
            "amount", AttributeValue(5, "count", 0.9, Source.BENCHMARK)
        )
        v = tool.validate(report)
        rec = next(
            e for e in v.escalations if (e.element, e.attribute) == ("L2", "amount")
        )
        assert rec.resolved and rec.new_value == 2
        assert v.passed

    def test_sharing_matrix_reused_across_escalated_elements(self, monkeypatch):
        # the pairwise protocol measures the whole matrix at once: two
        # escalated elements must share one matrix per seed, not re-run it
        import repro.core.tool as tool_mod

        tool, report = self._discovered()
        for el in ("L1", "Texture"):
            report.memory[el].set(
                "shared_with",
                AttributeValue(("ConstL1",), "elements", 0.9, Source.BENCHMARK),
            )
        calls = []
        real = tool_mod.measure_sharing_nvidia

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(tool_mod, "measure_sharing_nvidia", counting)
        v = tool.validate(report)
        resolved = [e for e in v.escalations if e.attribute == "shared_with"]
        assert len(resolved) == 2 and all(e.resolved for e in resolved)
        assert v.passed
        # 3 escalation seeds x 2 elements, but only 3 matrix runs
        assert len(calls) == 3

    def test_amd_sl1d_sharing_has_remeasurement_path(self):
        device = SimulatedGPU.from_preset("TestGPU-AMD", seed=0)
        tool = MT4G(device)
        tool.discover()
        ctx = tool._escalation_context(1009)
        m = tool._remeasure_sharing(ctx, "sL1d")
        assert m is not None and m.unit == "cu-map" and m.conclusive

    def test_protocol_paths_refuse_unmeasurable_elements(self):
        device = SimulatedGPU.from_preset("TestGPU-NV", seed=0)
        tool = MT4G(device)
        tool.discover()
        ctx = tool._escalation_context(1009)
        # the constant bank caps eviction probing (paper Section III-C)
        assert tool._remeasure_amount(ctx, "ConstL1.5") is None
        assert tool._remeasure_sharing(ctx, "L2") is None

    def test_amd_l2_amount_is_api_and_not_remeasured(self):
        device = SimulatedGPU.from_preset("TestGPU-AMD", seed=0)
        tool = MT4G(device)
        tool.discover()
        ctx = tool._escalation_context(1009)
        assert tool._remeasure_amount(ctx, "L2") is None


# ---------------------------------------------------------------------- #
# end-to-end: every preset validates clean at seed 0                      #
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("preset", available_presets(include_testing=True))
def test_all_presets_validate_clean_at_seed_0(preset):
    tool = MT4G(SimulatedGPU.from_preset(preset, seed=0))
    report = tool.discover(validate=True)
    v = report.validation
    assert v is not None and v.passed, (
        f"{preset}: validation failed: {v.failures()}"
    )
    # the section serialises into the JSON report
    d = report.as_dict()
    assert d["validation"]["verdict"] == "pass"
    json.dumps(d, default=str)


def test_non_default_carveout_validates_clean():
    """The carveout config flows into the cross-check references."""
    device = SimulatedGPU.from_preset("A100", seed=0, cache_config="PreferShared")
    report = MT4G(device).discover(validate=True)
    assert report.validation.passed, report.validation.failures()
    assert report.attribute("L1", "size").value < 64 * 1024


def test_validated_reports_identical_across_engines():
    """The PR-1 invariant extends through validation and escalation."""
    reports = {}
    for engine in ("analytic", "exact"):
        device = SimulatedGPU.from_preset("TestGPU-NV", seed=0)
        tool = MT4G(device, config=PChaseConfig(engine=engine))
        reports[engine] = tool.discover(validate=True).as_dict()
    a = json.dumps(reports["analytic"], default=str, sort_keys=True)
    b = json.dumps(reports["exact"], default=str, sort_keys=True)
    assert a == b


def test_validation_is_opt_in():
    """Plain discover() must stay byte-identical to the seed behaviour."""
    report = MT4G(SimulatedGPU.from_preset("TestGPU-AMD", seed=3)).discover()
    assert report.validation is None
    assert "validation" not in report.as_dict()


def test_escalation_seeds_do_not_touch_primary_device():
    device = SimulatedGPU.from_preset("TestGPU-NV", seed=0)
    tool = MT4G(device)
    report = tool.discover()
    elapsed_before = device.elapsed_seconds()
    tool.validate(report)
    # escalation re-measures on *fresh* devices; the Section V-A run-time
    # accounting of the primary device must not change
    assert device.elapsed_seconds() == elapsed_before
