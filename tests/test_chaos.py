"""End-to-end chaos tests: injected faults never change results.

The contract under test, across all four fault-tolerance layers:

* a fleet discovery that *succeeds* under an injected fault plan — via
  in-worker retries or the in-process recovery pass — is byte-identical
  to its fault-free report (faults cost retries and wall-clock, never
  correctness);
* failures that cannot be recovered degrade to *typed* error entries
  (transient / permanent / deadline / infrastructure) instead of sinking
  the fleet;
* the serving queue contains repeated failures (failure memo, circuit
  breaker), answers broken keys with 503 + ``Retry-After``, falls back
  to marked-stale last-known-good reports, and reports ``degraded``
  health with reasons;
* ``mt4g fleet`` exits 3 for worker/infrastructure failure and 2 for
  validation disagreement.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.validate.fleet import discover_fleet

PRESETS = ("TestGPU-AMD", "TestGPU-AMD-L3")


def content(report) -> str:
    return json.dumps(report.content_dict(), default=str, sort_keys=True)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


@pytest.fixture(scope="module")
def baseline():
    """The fault-free fleet every chaos run must reproduce byte-for-byte."""
    result = discover_fleet(PRESETS, seed=0, parallel=False)
    assert all(e.ok for e in result.entries)
    return {e.preset: content(e.report) for e in result.entries}


def plan(*specs: FaultSpec, seed: int = 0) -> FaultPlan:
    return FaultPlan(specs, seed=seed)


# ---------------------------------------------------------------------- #
# fleet: retries recover, byte-identically                                #
# ---------------------------------------------------------------------- #


class TestFleetChaos:
    def test_crash_on_first_attempt_is_retried_byte_identically(self, baseline):
        # Attempt 0 of one preset crashes; the in-worker retry must
        # succeed and produce the exact fault-free bytes.
        with faults.injected(
            plan(FaultSpec("fleet.worker", "crash", label="TestGPU-AMD@0"))
        ):
            result = discover_fleet(PRESETS, seed=0, parallel=False)
        hit = result.entry("TestGPU-AMD")
        assert hit.ok and hit.attempts == 2
        assert result.entry("TestGPU-AMD-L3").attempts == 1
        assert result.retries_total == 1
        assert not result.infrastructure_failed
        for e in result.entries:
            assert content(e.report) == baseline[e.preset]

    def test_transient_io_fault_recovers_in_parallel_pool(self, baseline):
        with faults.injected(
            plan(FaultSpec("fleet.worker", "io_error", label="TestGPU-AMD@0"))
        ):
            result = discover_fleet(PRESETS, seed=0, jobs=2)
        assert all(e.ok for e in result.entries)
        assert result.entry("TestGPU-AMD").attempts == 2
        for e in result.entries:
            assert content(e.report) == baseline[e.preset]

    def test_permanent_fault_is_not_retried(self):
        with faults.injected(
            plan(FaultSpec("fleet.worker", "permanent", label="TestGPU-AMD@*",
                           times=None))
        ):
            result = discover_fleet(PRESETS, seed=0, parallel=False)
        failed = result.entry("TestGPU-AMD")
        assert not failed.ok and failed.error_kind == "permanent"
        assert failed.attempts == 1  # retrying cannot help, so we did not
        assert result.entry("TestGPU-AMD-L3").ok  # never sinks the fleet
        assert result.infrastructure_failed
        assert result.error_kinds() == {"TestGPU-AMD": "permanent"}

    def test_exhausted_retry_budget_is_typed_transient(self):
        with faults.injected(
            plan(FaultSpec("fleet.worker", "crash", label="TestGPU-AMD@*",
                           times=None))
        ):
            result = discover_fleet(
                PRESETS,
                seed=0,
                parallel=False,
                retry=RetryPolicy(attempts=2, base_delay=0.001, max_delay=0.01),
            )
        failed = result.entry("TestGPU-AMD")
        assert not failed.ok and failed.error_kind == "transient"
        assert failed.attempts == 2  # the whole budget was spent

    def test_dead_worker_process_degrades_and_recovers_in_process(self, baseline):
        # The hardest infrastructure failure: a pool worker hard-exits,
        # which breaks the whole ProcessPoolExecutor.  The fleet must
        # degrade to typed rows and then recover inline in the parent.
        with faults.injected(
            plan(FaultSpec("fleet.worker", "exit", label="TestGPU-AMD@0"))
        ):
            result = discover_fleet(PRESETS, seed=0, jobs=2)
        assert all(e.ok for e in result.entries)
        assert result.recovered_in_process >= 1
        assert not result.infrastructure_failed
        for e in result.entries:
            assert content(e.report) == baseline[e.preset]

    def test_dead_worker_without_recovery_is_typed_infrastructure(self):
        with faults.injected(
            plan(FaultSpec("fleet.worker", "exit", label="TestGPU-AMD@*",
                           times=None))
        ):
            result = discover_fleet(
                PRESETS, seed=0, jobs=2, recover_in_process=False
            )
        assert result.infrastructure_failed
        assert "infrastructure" in result.error_kinds().values()

    def test_worker_deadline_bounds_the_backoff_loop(self):
        # Every attempt crashes and the backoff would exceed the budget:
        # the worker must give up with a "deadline" kind, quickly.
        with faults.injected(
            plan(FaultSpec("fleet.worker", "crash", label="TestGPU-AMD@*",
                           times=None))
        ):
            result = discover_fleet(
                ["TestGPU-AMD"],
                seed=0,
                parallel=False,
                retry=RetryPolicy(attempts=50, base_delay=10.0, max_delay=10.0),
                deadline_seconds=0.2,
            )
        failed = result.entry("TestGPU-AMD")
        assert not failed.ok and failed.error_kind == "deadline"
        assert failed.wall_seconds < 5.0  # gave up, did not sleep 10 s

    def test_matrix_and_json_carry_fault_accounting(self):
        with faults.injected(
            plan(FaultSpec("fleet.worker", "crash", label="TestGPU-AMD@0"))
        ):
            result = discover_fleet(PRESETS, seed=0, parallel=False)
        row = next(
            r for r in result.comparison_matrix() if r["preset"] == "TestGPU-AMD"
        )
        assert row["attempts"] == 2 and row["recovered"] is False
        payload = result.as_dict()["fault_tolerance"]
        assert payload["retries_total"] == 1
        assert payload["error_kinds"] == {}

    def test_no_faults_means_no_fault_accounting_noise(self, baseline):
        # With the plane inactive the new machinery must be invisible:
        # single attempts, zero retries, byte-identical reports.
        result = discover_fleet(PRESETS, seed=0, parallel=False)
        assert all(e.attempts == 1 and not e.recovered for e in result.entries)
        assert result.retries_total == 0
        assert all("attempts" not in r for r in result.comparison_matrix())
        for e in result.entries:
            assert content(e.report) == baseline[e.preset]


# ---------------------------------------------------------------------- #
# serving: memo, breaker, 503/Retry-After, stale fallback, health         #
# ---------------------------------------------------------------------- #


PRESET = "TestGPU-AMD"


@pytest.fixture()
def executor():
    pool = ThreadPoolExecutor(max_workers=2)
    yield pool
    pool.shutdown(wait=True)


@pytest.fixture()
def store(tmp_path):
    from repro.cache.store import DiscoveryCache

    return DiscoveryCache(tmp_path / "cache")


def make_service(store, executor, **kw):
    from repro.serve.server import TopologyService

    return TopologyService(store, executor=executor, **kw)


async def get(service, path: str, query: dict | None = None):
    from repro.serve.handlers import HTTPRequest

    return await service.handle_request(
        HTTPRequest(method="GET", path=path, query=query or {})
    )


ALWAYS_CRASH = FaultSpec("fleet.worker", "crash", label=f"{PRESET}@*", times=None)


class TestServeChaos:
    def test_failed_key_fast_fails_within_ttl_and_opens_breaker(
        self, store, executor
    ):
        from repro.serve.jobs import JobQueue

        async def scenario():
            queue = JobQueue(
                store,
                executor=executor,
                retry=RetryPolicy(attempts=1),
                failure_ttl=30.0,
                breaker_threshold=2,
                breaker_cooldown=60.0,
            )
            first = await queue.wait(queue.submit(PRESET))
            assert first.status == "error" and first.error_kind == "transient"
            # within the TTL: the memo answers, no second discovery runs
            second = queue.submit(PRESET)
            assert second.status == "error"
            assert second.error_kind == "unavailable"
            assert second.retry_after is not None and second.retry_after > 0
            assert queue.discoveries_started == 1
            assert queue.fast_failures == 1
            # a failure memo is not a breaker yet
            assert queue.open_breakers() == {}
            # force the memo window shut and fail once more: breaker opens
            queue._key_health[first.key]["blocked_until"] = 0.0
            third = await queue.wait(queue.submit(PRESET))
            assert third.status == "error"
            assert queue.breaker_opens == 1
            assert len(queue.open_breakers()) == 1
            fourth = queue.submit(PRESET)
            assert fourth.error_kind == "breaker"

        with faults.injected(plan(ALWAYS_CRASH)):
            asyncio.run(scenario())

    def test_success_heals_the_failure_memo(self, store, executor):
        from repro.serve.jobs import JobQueue

        crash_once = FaultSpec("fleet.worker", "crash", label=f"{PRESET}@*")

        async def scenario():
            queue = JobQueue(
                store,
                executor=executor,
                retry=RetryPolicy(attempts=1),
                failure_ttl=30.0,
            )
            failed = await queue.wait(queue.submit(PRESET))
            assert failed.status == "error"
            queue._key_health[failed.key]["blocked_until"] = 0.0  # lapse TTL
            probe = await queue.wait(queue.submit(PRESET))  # half-open probe
            assert probe.status == "done"
            assert queue._key_health == {}  # healed entirely
            assert queue.open_breakers() == {}

        with faults.injected(plan(crash_once)):
            asyncio.run(scenario())

    def test_admission_fault_fails_the_job_before_the_pool(self, store, executor):
        from repro.serve.jobs import JobQueue

        admission = FaultSpec("serve.job", "transient")

        async def scenario():
            queue = JobQueue(store, executor=executor, failure_ttl=30.0)
            job = await queue.wait(queue.submit(PRESET))
            assert job.status == "error" and job.error_kind == "transient"
            assert queue.discoveries_started == 0  # never reached the pool
            # admission faults feed the same failure memo as worker faults
            second = queue.submit(PRESET)
            assert second.error_kind == "unavailable"
            assert second.retry_after is not None

        with faults.injected(plan(admission)):
            asyncio.run(scenario())

    def test_job_deadline_expires_on_the_loop(self, store, executor):
        from repro.serve.jobs import JobQueue

        hang = FaultSpec(
            "fleet.worker", "hang", label=f"{PRESET}@*", times=None,
            delay_seconds=0.5,
        )

        async def scenario():
            queue = JobQueue(
                store,
                executor=executor,
                retry=RetryPolicy(attempts=1),
                deadline_seconds=0.05,
            )
            job = await queue.wait(queue.submit(PRESET))
            assert job.status == "error" and job.error_kind == "deadline"
            assert queue.deadlines_expired == 1
            # let the hung worker drain so the executor fixture can close
            await asyncio.sleep(0.6)

        with faults.injected(plan(hang)):
            asyncio.run(scenario())

    def test_cold_request_for_broken_key_is_503_with_retry_after(
        self, store, executor
    ):
        async def scenario():
            service = make_service(
                store, executor, retry=RetryPolicy(attempts=1), failure_ttl=15.0
            )
            response = await get(service, f"/devices/{PRESET}/report")
            assert response.status == 503
            assert "Retry-After" in response.headers
            assert int(response.headers["Retry-After"]) >= 1
            body = json.loads(response.body)
            assert "discovery failed" in body["error"]
            # the encoded head carries the header onto the wire
            head = response.encode().split(b"\r\n\r\n", 1)[0]
            assert b"Retry-After:" in head

        with faults.injected(plan(ALWAYS_CRASH)):
            asyncio.run(scenario())

    def test_stale_last_known_good_is_served_and_marked(self, store, executor):
        async def scenario():
            service = make_service(
                store, executor, retry=RetryPolicy(attempts=1), failure_ttl=15.0
            )
            fresh = await get(service, f"/devices/{PRESET}/report")
            assert fresh.status == 200 and "X-MT4G-Stale" not in fresh.headers
            # the store loses the entry AND discovery starts failing
            store.prune(0)
            with faults.injected(plan(ALWAYS_CRASH)):
                stale = await get(service, f"/devices/{PRESET}/report")
            assert stale.status == 200
            assert stale.headers.get("X-MT4G-Stale") == "true"
            assert stale.body == fresh.body  # the last-good bytes, exactly
            assert service.metrics.stale_served == 1
            metrics = json.loads((await get(service, "/metrics")).body)
            assert metrics["resilience"]["stale_served"] == 1

        asyncio.run(scenario())

    def test_healthz_degrades_with_reasons_when_breaker_opens(
        self, store, executor
    ):
        async def scenario():
            service = make_service(
                store,
                executor,
                retry=RetryPolicy(attempts=1),
                breaker_threshold=1,
                breaker_cooldown=60.0,
            )
            healthy = json.loads((await get(service, "/healthz")).body)
            assert healthy["status"] == "ok"
            assert "degraded_reasons" not in healthy
            job = service.jobs.submit(PRESET)
            await service.jobs.wait(job)
            degraded = json.loads((await get(service, "/healthz")).body)
            assert degraded["status"] == "degraded"
            assert any("breaker" in r for r in degraded["degraded_reasons"])
            metrics = json.loads((await get(service, "/metrics")).body)
            assert metrics["jobs"]["breaker_opens"] == 1
            assert metrics["jobs"]["open_breakers"] == 1
            assert metrics["resilience"]["faults_injected"]["fleet.worker"] >= 1

        with faults.injected(plan(ALWAYS_CRASH)):
            asyncio.run(scenario())

    def test_served_report_after_retry_matches_fault_free_bytes(
        self, store, executor, baseline
    ):
        # One crash, then success: the served JSON must be byte-identical
        # to a fault-free service's answer for the same key.
        crash_first = FaultSpec("fleet.worker", "crash", label=f"{PRESET}@0")

        async def chaotic():
            service = make_service(store, executor)
            response = await get(service, f"/devices/{PRESET}/report")
            assert response.status == 200
            assert service.jobs.retries_total == 1
            return response.body

        with faults.injected(plan(crash_first)):
            chaotic_body = asyncio.run(chaotic())

        async def calm():
            from repro.cache.store import DiscoveryCache

            calm_store = DiscoveryCache(store.root.parent / "calm")
            service = make_service(calm_store, executor)
            response = await get(service, f"/devices/{PRESET}/report")
            assert response.status == 200
            return response.body

        assert asyncio.run(calm()) == chaotic_body


# ---------------------------------------------------------------------- #
# CLI exit codes                                                          #
# ---------------------------------------------------------------------- #


class TestFleetExitCodes:
    def test_recovered_fault_still_exits_zero(self, capsys):
        from repro.core.cli import fleet_main

        with faults.injected(
            plan(FaultSpec("fleet.worker", "crash", label=f"{PRESET}@0"))
        ):
            code = fleet_main(
                ["--gpu", PRESET, "--sequential", "--no-cache", "-q"]
            )
        capsys.readouterr()
        assert code == 0

    def test_infrastructure_failure_exits_three(self, capsys):
        from repro.core.cli import fleet_main

        with faults.injected(plan(ALWAYS_CRASH)):
            code = fleet_main(
                ["--gpu", PRESET, "--sequential", "--no-cache", "--retries", "2"]
            )
        out = capsys.readouterr()
        assert code == 3
        assert "infrastructure FAILURE" in out.err
        assert "transient" in out.err

    def test_help_documents_the_exit_codes(self, capsys):
        from repro.core.cli import build_fleet_parser

        build_fleet_parser().print_help()
        help_text = capsys.readouterr().out
        assert "exit codes" in help_text
        assert "3 worker/infrastructure failure" in help_text
