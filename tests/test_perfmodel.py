"""Tests for the Hong & Kim CWP/MWP performance model (Section VI-A)."""

import pytest

from repro.errors import ReproError
from repro.integrations.perfmodel import (
    ApplicationParams,
    GPUParams,
    HongKimModel,
)


def make_gpu(**overrides) -> GPUParams:
    defaults = dict(
        mem_latency=400.0,
        mem_bandwidth=1.5e12,
        clock_hz=1.4e9,
        num_sms=100,
        max_warps_per_sm=64,
        departure_delay=4.0,
    )
    defaults.update(overrides)
    return GPUParams(**defaults)


def make_app(**overrides) -> ApplicationParams:
    defaults = dict(
        comp_insts_per_warp=100.0,
        mem_insts_per_warp=10.0,
        active_warps_per_sm=32,
    )
    defaults.update(overrides)
    return ApplicationParams(**defaults)


class TestFormulas:
    def test_cwp_equation(self):
        # CWP' = (mem_cycles + comp_cycles) / comp_cycles  (paper Eq. 3)
        model = HongKimModel(make_app(), make_gpu())
        mem = 400.0 * 10
        comp = 4.0 * 100
        assert model.cwp_raw == pytest.approx((mem + comp) / comp)

    def test_cwp_capped_by_active_warps(self):
        model = HongKimModel(make_app(active_warps_per_sm=4), make_gpu())
        assert model.cwp == 4.0

    def test_mwp_latency_bound(self):
        # MWP' = mem_latency / departure_delay  (paper Eq. 4)
        model = HongKimModel(make_app(), make_gpu())
        assert model.mwp_latency_bound == pytest.approx(100.0)

    def test_mwp_bandwidth_bound(self):
        gpu = make_gpu()
        model = HongKimModel(make_app(), gpu)
        bw_per_warp = gpu.clock_hz * 128.0 / gpu.mem_latency
        expected = gpu.mem_bandwidth / (bw_per_warp * gpu.num_sms)
        assert model.mwp_bandwidth_bound == pytest.approx(expected)

    def test_mwp_is_min_of_three(self):
        model = HongKimModel(make_app(active_warps_per_sm=2), make_gpu())
        assert model.mwp == 2.0


class TestClassification:
    def test_memory_bound_app(self):
        # Few compute instructions per memory access -> CWP explodes.
        app = make_app(comp_insts_per_warp=5.0, mem_insts_per_warp=20.0,
                       active_warps_per_sm=64)
        gpu = make_gpu(mem_bandwidth=2e11)  # narrow memory
        result = HongKimModel(app, gpu).evaluate()
        assert result.memory_bound
        assert result.bottleneck == "memory"

    def test_compute_bound_app(self):
        app = make_app(comp_insts_per_warp=5000.0, mem_insts_per_warp=1.0)
        result = HongKimModel(app, make_gpu()).evaluate()
        assert not result.memory_bound
        assert result.bottleneck == "compute"

    def test_memory_bound_costs_more_cycles_when_bw_shrinks(self):
        app = make_app(mem_insts_per_warp=50.0, active_warps_per_sm=64)
        wide = HongKimModel(app, make_gpu(mem_bandwidth=3e12)).execution_cycles()
        narrow = HongKimModel(app, make_gpu(mem_bandwidth=2e11)).execution_cycles()
        assert narrow > wide


class TestExecutionCycles:
    def test_positive(self):
        assert HongKimModel(make_app(), make_gpu()).execution_cycles() > 0

    def test_repetitions_scale(self):
        app_small = make_app(total_warps=32 * 100)  # exactly one round
        app_big = make_app(total_warps=32 * 100 * 4)  # four rounds
        small = HongKimModel(app_small, make_gpu()).execution_cycles()
        big = HongKimModel(app_big, make_gpu()).execution_cycles()
        assert big == pytest.approx(small * 4)

    def test_more_parallelism_amortises_latency(self):
        lat_heavy = make_gpu(mem_latency=2000.0, mem_bandwidth=1e14)
        few = HongKimModel(make_app(active_warps_per_sm=1), lat_heavy)
        many = HongKimModel(make_app(active_warps_per_sm=64), lat_heavy)
        per_warp_few = few.execution_cycles() / 1
        per_warp_many = many.execution_cycles() / 64
        assert per_warp_many < per_warp_few


class TestFromReport:
    def test_dram_level(self, nv_report):
        gpu = GPUParams.from_report(nv_report, "DeviceMemory")
        assert gpu.mem_latency == pytest.approx(
            nv_report.attribute("DeviceMemory", "load_latency").value
        )
        assert gpu.num_sms == nv_report.compute.num_sms

    def test_l2_level(self, nv_report):
        gpu = GPUParams.from_report(nv_report, "L2")
        assert gpu.mem_latency < GPUParams.from_report(nv_report, "DeviceMemory").mem_latency

    def test_l1_falls_back_to_dram_bandwidth(self, nv_report):
        # L1 has no bandwidth figure (Table I dagger).
        gpu = GPUParams.from_report(nv_report, "L1")
        assert gpu.mem_bandwidth == pytest.approx(
            nv_report.attribute("DeviceMemory", "read_bandwidth").value
        )

    def test_missing_latency_rejected(self, amd_l3_report):
        with pytest.raises(ReproError):
            GPUParams.from_report(amd_l3_report, "L3")  # latency unavailable

    def test_cross_level_classification_shifts(self, nv_report):
        # The same app can be memory-bound against DRAM but compute-bound
        # against the (faster) L2 — the reason the paper extends the model
        # across the hierarchy.
        app = make_app(comp_insts_per_warp=60.0, mem_insts_per_warp=12.0,
                       active_warps_per_sm=16)
        dram = HongKimModel(app, GPUParams.from_report(nv_report, "DeviceMemory"))
        l2 = HongKimModel(app, GPUParams.from_report(nv_report, "L2"))
        assert dram.cwp_raw > l2.cwp_raw


class TestValidation:
    def test_bad_app(self):
        with pytest.raises(ReproError):
            make_app(mem_insts_per_warp=0.0)
        with pytest.raises(ReproError):
            make_app(active_warps_per_sm=0)

    def test_bad_gpu(self):
        with pytest.raises(ReproError):
            make_gpu(mem_latency=0.0)
        with pytest.raises(ReproError):
            make_gpu(departure_delay=0.0)
