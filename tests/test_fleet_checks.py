"""Tests for the fleet-level cross-device judge (repro.validate.fleet_checks)."""

import json

import pytest

from repro.core.benchmarks.base import Source
from repro.core.report import (
    AttributeValue,
    ComputeReport,
    GeneralReport,
    MemoryElementReport,
    RuntimeReport,
    TopologyReport,
)
from repro.validate import discover_fleet, run_fleet_checks
from repro.validate.fleet import FleetEntry, FleetResult
from repro.validate.fleet_checks import (
    FLEET_TOLERANCES,
    FleetValidation,
    INVARIANT_ATTRIBUTES,
)

#: Both synthetic NVIDIA presets report microarchitecture "Hopper", so a
#: fleet of the two forms one judged group.
HOPPER_PAIR = ("TestGPU-NV", "TestGPU-NV-2SEG")


def make_entry(
    preset: str,
    memory: dict[str, dict[str, AttributeValue]],
    vendor: str = "NVIDIA",
    microarchitecture: str = "Test",
    warp_size: int = 32,
) -> FleetEntry:
    """A hand-built successful fleet entry for unit tests."""
    elements = {}
    for name, attrs in memory.items():
        el = MemoryElementReport(name)
        for attr, av in attrs.items():
            el.set(attr, av)
        elements[name] = el
    report = TopologyReport(
        general=GeneralReport(
            vendor=vendor,
            model=preset,
            microarchitecture=microarchitecture,
            compute_capability="0.0",
            clock_rate_hz=1e9,
            memory_clock_rate_hz=1e9,
            memory_bus_width_bits=256,
        ),
        compute=ComputeReport(
            num_sms=1,
            cores_per_sm=64,
            warp_size=warp_size,
            max_blocks_per_sm=1,
            max_threads_per_block=32,
            max_threads_per_sm=32,
            registers_per_block=1,
            registers_per_sm=1,
            warps_per_sm=2,
            simds_per_sm=0,
        ),
        memory=elements,
        runtime=RuntimeReport(0, 0.0, 0.0),
    )
    return FleetEntry(preset, 0, report, 0.0)


def make_fleet(entries: list[FleetEntry]) -> FleetResult:
    return FleetResult(entries=entries, jobs=1, total_wall_seconds=0.0, seed=0)


def _attr(value, unit="B", confidence=1.0, source=Source.BENCHMARK):
    return AttributeValue(value, unit, confidence, source)


# ---------------------------------------------------------------------- #
# real fleets                                                             #
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def hopper_fleet():
    return discover_fleet(HOPPER_PAIR, seed=0, parallel=False)


class TestJudgedFleet:
    def test_same_microarch_pair_judges_clean(self, hopper_fleet):
        v = hopper_fleet.validation
        assert isinstance(v, FleetValidation)
        assert v.verdict == "pass" and v.passed
        assert hopper_fleet.all_passed

    def test_grouping_by_vendor_and_microarchitecture(self, hopper_fleet):
        assert hopper_fleet.validation.groups == {
            "NVIDIA/Hopper": HOPPER_PAIR,
        }

    def test_invariant_consensus_without_dissent(self, hopper_fleet):
        consensus = hopper_fleet.validation.consensus
        assert consensus, "invariant attributes must be compared"
        assert {c.attribute for c in consensus} <= set(INVARIANT_ATTRIBUTES)
        for c in consensus:
            assert c.status == "pass"
            assert set(c.agreeing) == set(HOPPER_PAIR)
            assert c.dissenting == ()

    def test_warp_and_ordering_checks_pass(self, hopper_fleet):
        checks = {c.check: c for c in hopper_fleet.validation.checks}
        assert checks["warp_size:NVIDIA/Hopper"].status == "pass"
        assert checks["ordering.size:NVIDIA/Hopper"].status == "pass"
        assert checks["ordering.load_latency:NVIDIA/Hopper"].status == "pass"

    def test_rendered_and_serialised(self, hopper_fleet):
        md = hopper_fleet.to_markdown()
        assert "## Fleet Validation" in md
        assert "Verdict: **pass**" in md
        d = hopper_fleet.as_dict()
        assert d["fleet_validation"]["verdict"] == "pass"
        assert d["fleet_validation"]["summary"]["dissents"] == 0
        json.dumps(d, default=str)

    def test_singleton_groups_skip(self):
        result = discover_fleet(
            ("TestGPU-NV", "TestGPU-AMD"), seed=0, parallel=False
        )
        v = result.validation
        # different vendors: two singleton groups, nothing to compare
        assert set(v.groups) == {"NVIDIA/Hopper", "AMD/CDNA2"}
        assert all(c.status == "skip" for c in v.checks)
        assert v.consensus == []
        assert v.verdict == "pass"

    def test_same_microarch_amd_pair_judges_clean(self):
        # both synthetic AMD presets resolve to CDNA2 through the tool's
        # gfx lookup table, so they form one judged group
        result = discover_fleet(
            ("TestGPU-AMD", "TestGPU-AMD-L3"), seed=0, parallel=False
        )
        v = result.validation
        assert v.groups == {"AMD/CDNA2": ("TestGPU-AMD", "TestGPU-AMD-L3")}
        assert v.verdict == "pass"

    def test_unvalidated_fleet_has_no_judgement(self):
        result = discover_fleet(
            ("TestGPU-NV",), seed=0, validate=False, parallel=False
        )
        assert result.validation is None
        assert "fleet_validation" not in result.as_dict()


# ---------------------------------------------------------------------- #
# hand-built disagreements                                                #
# ---------------------------------------------------------------------- #


class TestDissent:
    def _pair(self, line_b="64", conf_b=0.8):
        a = make_entry(
            "gpu-a", {"L1": {"cache_line_size": _attr(64, confidence=1.0)}}
        )
        b = make_entry(
            "gpu-b",
            {"L1": {"cache_line_size": _attr(int(line_b), confidence=conf_b)}},
        )
        return a, b

    def test_dissent_fails_and_recalibrates(self):
        a, b = self._pair(line_b="128")
        result = make_fleet([a, b])
        v = run_fleet_checks(result)
        assert v.verdict == "fail"
        assert result.validation is v
        assert not result.all_passed
        (c,) = [c for c in v.consensus if c.attribute == "cache_line_size"]
        # confidence-weighted majority: 1.0 behind 64 beats 0.8 behind 128
        assert c.consensus == 64.0
        assert c.agreeing == ("gpu-a",) and c.dissenting == ("gpu-b",)
        assert "NVIDIA/Test:L1.cache_line_size" in v.failures()
        (r,) = v.recalibrations
        assert r.preset == "gpu-b" and r.before == 0.8 and r.after < 0.8
        # the recalibration lands on the dissenting report itself
        assert b.report.attribute("L1", "cache_line_size").confidence == r.after

    def test_rejudging_is_idempotent(self):
        # a second validate() must not compound the dissenter's demotion
        a, b = self._pair(line_b="128")
        result = make_fleet([a, b])
        v1 = run_fleet_checks(result)
        (r1,) = v1.recalibrations
        v2 = result.validate()
        (r2,) = v2.recalibrations
        assert (r2.before, r2.after) == (r1.before, r1.after)
        assert b.report.attribute("L1", "cache_line_size").confidence == r1.after
        assert v2.verdict == "fail"

    def test_agreement_passes(self):
        v = run_fleet_checks(make_fleet(list(self._pair())))
        assert v.verdict == "pass"
        (c,) = [c for c in v.consensus if c.attribute == "cache_line_size"]
        assert c.dissenting == () and c.weight == pytest.approx(1.8)

    def test_api_dissenter_is_never_recalibrated(self):
        a, _ = self._pair()
        b = make_entry(
            "gpu-b",
            {
                "L1": {
                    "cache_line_size": _attr(
                        128, confidence=1.0, source=Source.API
                    )
                }
            },
        )
        # equal weights 1.0 behind 64 and 128: tie goes to the smaller
        # value, so the API value dissents — but stays untouched.
        v = run_fleet_checks(make_fleet([a, b]))
        assert v.verdict == "fail"
        assert v.recalibrations == []
        assert b.report.attribute("L1", "cache_line_size").confidence == 1.0

    def test_warp_size_mismatch_fails(self):
        a = make_entry("gpu-a", {}, warp_size=32)
        b = make_entry("gpu-b", {}, warp_size=64)
        v = run_fleet_checks(make_fleet([a, b]))
        assert "warp_size:NVIDIA/Test" in v.failures()

    def test_warp_size_tolerance_override_is_honoured(self):
        a = make_entry("gpu-a", {}, warp_size=32)
        b = make_entry("gpu-b", {}, warp_size=64)
        v = run_fleet_checks(make_fleet([a, b]), tolerances={"warp_size": 1.0})
        assert v.verdict == "pass"

    def test_ordering_conflict_fails(self):
        # gpu-a: L1 clearly faster than L2; gpu-b: clearly slower
        a = make_entry(
            "gpu-a",
            {
                "L1": {"load_latency": _attr(30, "cycles")},
                "L2": {"load_latency": _attr(200, "cycles")},
            },
        )
        b = make_entry(
            "gpu-b",
            {
                "L1": {"load_latency": _attr(210, "cycles")},
                "L2": {"load_latency": _attr(100, "cycles")},
            },
        )
        v = run_fleet_checks(make_fleet([a, b]))
        failed = [c for c in v.checks if c.status == "fail"]
        assert any(
            c.check == "ordering.load_latency:NVIDIA/Test:L1-vs-L2" for c in failed
        )
        assert v.verdict == "fail"

    def test_near_tie_never_conflicts(self):
        # within the 15 % latency tolerance on one device: a tie is
        # compatible with either ordering on the other
        a = make_entry(
            "gpu-a",
            {
                "L1": {"load_latency": _attr(100, "cycles")},
                "L2": {"load_latency": _attr(110, "cycles")},
            },
        )
        b = make_entry(
            "gpu-b",
            {
                "L1": {"load_latency": _attr(110, "cycles")},
                "L2": {"load_latency": _attr(100, "cycles")},
            },
        )
        v = run_fleet_checks(make_fleet([a, b]))
        assert v.verdict == "pass"

    def test_inconclusive_values_cannot_vote(self):
        a, _ = self._pair()
        b = make_entry(
            "gpu-b", {"L1": {"cache_line_size": _attr(128, confidence=0.0)}}
        )
        v = run_fleet_checks(make_fleet([a, b]))
        # only one conclusive vote: no consensus entry, nothing to judge
        assert v.consensus == []
        assert v.verdict == "pass"

    def test_error_entries_do_not_participate(self):
        a, b = self._pair()
        broken = FleetEntry("gpu-c", 0, None, 0.0, error="boom")
        v = run_fleet_checks(make_fleet([a, b, broken]))
        assert v.verdict == "pass"
        assert all("gpu-c" not in c.presets for c in v.checks)

    def test_tolerance_override(self):
        # a 5 % size delta passes by default but a zero tolerance rejects it
        a = make_entry("gpu-a", {"L1": {"fetch_granularity": _attr(32)}})
        b = make_entry("gpu-b", {"L1": {"fetch_granularity": _attr(32)}})
        assert FLEET_TOLERANCES["fetch_granularity"] == 0.0
        v = run_fleet_checks(make_fleet([a, b]), tolerances={"fetch_granularity": 0.0})
        assert v.verdict == "pass"

    def test_failure_renders_in_markdown(self):
        a, b = self._pair(line_b="128")
        result = make_fleet([a, b])
        run_fleet_checks(result)
        md = result.to_markdown()
        assert "Verdict: **fail**" in md
        assert "Dissenting confidences recalibrated:" in md
        assert json.dumps(result.validation.as_dict())  # JSON-clean as-is
