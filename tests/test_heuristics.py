"""Tests for the cache-line-size heuristics (paper Section IV-E)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.heuristics import (
    amplify_scores,
    estimate_cache_line_size,
    similarity_scores,
)


def synthetic_apparent(strides: np.ndarray, cap: int, line: int) -> np.ndarray:
    """Model apparent capacities: C * s/L off-aliasing, C on even multiples.

    Mirrors the set-coverage physics derived in the heuristics module:
    a stride at ``2^k * L`` covers ``1/2^k`` of the (power-of-two many)
    sets, aliasing the boundary back to ``C``.
    """
    out = np.empty(strides.size, dtype=np.float64)
    for i, s in enumerate(strides):
        if s <= line:
            out[i] = cap
        else:
            ratio = s / line
            k = 0
            while ratio % 2 == 0:
                ratio /= 2
                k += 1
            covered = 1 / (2**k)
            out[i] = cap * (s / line) * covered
    return out


class TestEstimator:
    @pytest.mark.parametrize("line", [32, 64, 128, 256])
    def test_recovers_line_size(self, line):
        fg = 32
        strides = np.arange(fg, 4 * line + 1, fg)
        apparent = synthetic_apparent(strides, 64 * 1024, line)
        est, conf = estimate_cache_line_size(strides, apparent, fg)
        assert est == line
        assert conf > 0.3

    def test_aliased_strides_do_not_vote(self):
        line, fg = 64, 32
        strides = np.array([32, 64, 96, 128, 160, 192])
        apparent = synthetic_apparent(strides, 4096, line)
        # The 128 B stride aliases (ratio 1); votes come from 96/160/192.
        est, _ = estimate_cache_line_size(strides, apparent, fg)
        assert est == 64

    def test_no_shift_returns_none(self):
        strides = np.array([32, 64, 96])
        apparent = np.array([4096.0, 4096.0, 4100.0])
        est, conf = estimate_cache_line_size(strides, apparent, 32)
        assert est is None and conf == 0.0

    def test_partial_alias_votes_filtered_by_cluster(self):
        # A stride at 6x line covers half the sets -> votes 2*line; the
        # smallest supported cluster must still win.
        line, fg = 64, 64
        strides = np.array([64, 192, 320, 384, 448])
        apparent = synthetic_apparent(strides, 8192, line)
        est, _ = estimate_cache_line_size(strides, apparent, fg)
        assert est == line

    def test_line_never_below_fetch_granularity(self):
        strides = np.array([64, 96, 128])
        apparent = np.array([1000.0, 3000.0, 1000.0])  # noisy nonsense
        est, _ = estimate_cache_line_size(strides, apparent, 64)
        assert est is None or est >= 64

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_cache_line_size(np.array([32]), np.array([1.0]), 32)
        with pytest.raises(ValueError):
            estimate_cache_line_size(np.array([32, 64]), np.array([1.0, -1.0]), 32)

    @settings(max_examples=40, deadline=None)
    @given(
        line_exp=st.integers(min_value=5, max_value=8),
        cap_exp=st.integers(min_value=12, max_value=22),
        noise=st.floats(min_value=0.0, max_value=0.04),
    )
    def test_property_noise_tolerant(self, line_exp, cap_exp, noise):
        line = 1 << line_exp
        cap = 1 << cap_exp
        fg = 32
        strides = np.arange(fg, 4 * line + 1, fg)
        rng = np.random.default_rng(line_exp * 100 + cap_exp)
        apparent = synthetic_apparent(strides, cap, line)
        apparent = apparent * (1 + rng.normal(0, noise, apparent.size))
        est, _ = estimate_cache_line_size(strides, apparent, fg)
        assert est == line


class TestPaperFormulation:
    """The pivot/MAX similarity machinery of the paper's wording."""

    def test_similarity_endpoints(self):
        profiles = np.array(
            [
                [0.0, 0.0, 0.0],  # pivot
                [0.0, 0.0, 0.0],  # identical to pivot
                [1.0, 1.0, 1.0],  # identical to MAX
                [1.0, 1.0, 1.0],  # MAX
            ]
        )
        scores = similarity_scores(profiles)
        assert scores[1] == pytest.approx(0.0)
        assert scores[2] == pytest.approx(1.0)

    def test_weights_favor_large_arrays(self):
        # A profile deviating only at the largest size scores higher than
        # one deviating only at the smallest.
        pivot = np.zeros(4)
        maxp = np.ones(4) * 10
        dev_small = np.array([10.0, 0, 0, 0])
        dev_large = np.array([0.0, 0, 0, 10.0])
        scores = similarity_scores(np.vstack([pivot, dev_small, dev_large, maxp]))
        assert scores[2] > scores[1]

    def test_needs_three_profiles(self):
        with pytest.raises(ValueError):
            similarity_scores(np.zeros((2, 4)))

    def test_amplify_monotone_after_crossing(self):
        scores = np.array([0.1, 0.2, 0.9, 0.3, 0.6, 0.4])
        out = amplify_scores(scores)
        crossing = 2
        assert (np.diff(out[crossing:]) >= 0).all()
        assert out[3] == pytest.approx(0.9)

    def test_amplify_untouched_below_crossing(self):
        scores = np.array([0.1, 0.4, 0.2, 0.9, 0.5])
        out = amplify_scores(scores)
        assert out[0] == 0.1 and out[1] == 0.4 and out[2] == 0.2
