"""Tests for the kernel engine and the host-side p-chase runner."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.isa import LoadKind, MemorySpace, space_for_kind
from repro.gpusim.kernel import (
    KernelLaunch,
    pchase_addresses,
    probe_hits,
    run_pchase,
    run_stream_kernel,
    warm,
)
from repro.pchase import PChaseConfig, PChaseRunner, exponential_sizes, linear_sizes


@pytest.fixture
def nv() -> SimulatedGPU:
    return SimulatedGPU.from_preset("TestGPU-NV", seed=2)


class TestAddressGeneration:
    def test_strided(self):
        addrs = pchase_addresses(1000, 256, 64)
        assert addrs.tolist() == [1000, 1064, 1128, 1192]

    def test_too_small(self):
        with pytest.raises(SimulationError):
            pchase_addresses(0, 32, 64)

    def test_bad_stride(self):
        with pytest.raises(SimulationError):
            pchase_addresses(0, 256, 0)


class TestRunPchase:
    def test_in_cache_latencies_near_l1(self, nv):
        base = nv.alloc(LoadKind.LD_GLOBAL_CA, 1 << 16)
        lat = run_pchase(nv, LoadKind.LD_GLOBAL_CA, base, 2048, 32, flush=True)
        expected = nv.spec.cache("L1").load_latency + nv.spec.noise.measurement_overhead
        assert abs(lat.mean() - expected) < 4

    def test_over_capacity_latencies_near_l2(self, nv):
        base = nv.alloc(LoadKind.LD_GLOBAL_CA, 1 << 16)
        lat = run_pchase(nv, LoadKind.LD_GLOBAL_CA, base, 16384, 32, flush=True)
        expected = nv.spec.cache("L2").load_latency + nv.spec.noise.measurement_overhead
        assert abs(lat.mean() - expected) < 6

    def test_no_warmup_cold_misses(self, nv):
        base = nv.alloc(LoadKind.LD_GLOBAL_CG, 1 << 20)
        lat = run_pchase(
            nv, LoadKind.LD_GLOBAL_CG, base, 384 * 64, 64,
            warmup_passes=0, flush=True,
        )
        expected = nv.spec.memory.load_latency + nv.spec.noise.measurement_overhead
        assert abs(lat.mean() - expected) < 8

    def test_scratchpad_constant_latency(self, nv):
        lat = run_pchase(nv, LoadKind.LD_SHARED, 1 << 28, 2048, 32)
        expected = nv.spec.scratchpad.load_latency + nv.spec.noise.measurement_overhead
        assert abs(lat.mean() - expected) < 3

    def test_sample_count(self, nv):
        base = nv.alloc(LoadKind.LD_GLOBAL_CA, 1 << 16)
        lat = run_pchase(nv, LoadKind.LD_GLOBAL_CA, base, 2048, 32, n_samples=100)
        assert lat.shape == (100,)

    def test_accounts_time(self, nv):
        before = nv.elapsed_seconds()
        base = nv.alloc(LoadKind.LD_GLOBAL_CA, 1 << 16)
        run_pchase(nv, LoadKind.LD_GLOBAL_CA, base, 2048, 32)
        assert nv.elapsed_seconds() > before

    def test_warm_and_probe(self, nv):
        base = nv.alloc(LoadKind.LD_GLOBAL_CA, 1 << 16)
        addrs = pchase_addresses(base, 2048, 32)
        nv.flush_caches()
        warm(nv, LoadKind.LD_GLOBAL_CA, addrs)
        hits, lat = probe_hits(nv, LoadKind.LD_GLOBAL_CA, addrs)
        assert hits.all()
        assert lat.shape == addrs.shape


class TestStreamKernel:
    def test_l2_read_near_spec(self, nv):
        bw = run_stream_kernel(nv, "L2", "read")
        assert bw == pytest.approx(nv.spec.cache("L2").read_bandwidth, rel=0.1)

    def test_write_slower_than_read(self, nv):
        read = run_stream_kernel(nv, "L2", "read")
        write = run_stream_kernel(nv, "L2", "write")
        assert write < read

    def test_small_launch_underperforms(self, nv):
        tiny = run_stream_kernel(
            nv, "DeviceMemory", "read", launch=KernelLaunch(blocks=1, threads_per_block=32)
        )
        full = run_stream_kernel(nv, "DeviceMemory", "read")
        assert tiny < full * 0.5

    def test_launch_validation(self):
        with pytest.raises(SimulationError):
            KernelLaunch(blocks=0, threads_per_block=1)


class TestSizeGrids:
    def test_exponential(self):
        sizes = exponential_sizes(1024, 5000)
        assert sizes.tolist() == [1024, 2048, 4096, 8192]

    def test_exponential_validation(self):
        with pytest.raises(ValueError):
            exponential_sizes(0, 100)

    def test_linear_natural_step(self):
        sizes = linear_sizes(100, 200, 25, 100)
        assert sizes.tolist() == [100, 125, 150, 175, 200]

    def test_linear_coarsens_to_budget(self):
        sizes = linear_sizes(0x1000, 0x9000, 32, 9)
        assert sizes.size <= 10
        assert sizes[0] == 0x1000 and sizes[-1] == 0x9000

    def test_linear_validation(self):
        with pytest.raises(ValueError):
            linear_sizes(100, 100, 10, 10)
        with pytest.raises(ValueError):
            linear_sizes(100, 200, 0, 10)


class TestRunnerBuffers:
    def test_slots_are_disjoint(self, nv):
        runner = PChaseRunner(nv)
        a = runner.buffer(LoadKind.LD_GLOBAL_CA, 4096, slot=0)
        b = runner.buffer(LoadKind.LD_GLOBAL_CA, 4096, slot=1)
        assert abs(a - b) >= 4096

    def test_buffer_reused_until_growth(self, nv):
        runner = PChaseRunner(nv)
        a = runner.buffer(LoadKind.LD_GLOBAL_CA, 4096)
        assert runner.buffer(LoadKind.LD_GLOBAL_CA, 2048) == a
        big = runner.buffer(LoadKind.LD_GLOBAL_CA, 1 << 20)
        assert big != a

    def test_constant_two_slots_within_bank(self, nv):
        runner = PChaseRunner(nv)
        a = runner.buffer(LoadKind.LD_CONST, 1024, slot=0)
        b = runner.buffer(LoadKind.LD_CONST, 1024, slot=1)
        assert b == a + 32 * 1024
        with pytest.raises(SimulationError):
            runner.buffer(LoadKind.LD_CONST, 40 * 1024, slot=1)

    def test_shared_validated(self, nv):
        runner = PChaseRunner(nv)
        with pytest.raises(SimulationError):
            runner.buffer(LoadKind.LD_SHARED, 1 << 20)

    def test_kind_space_mapping(self):
        assert space_for_kind(LoadKind.LD_CONST) is MemorySpace.CONSTANT
        assert space_for_kind(LoadKind.TEX1DFETCH) is MemorySpace.TEXTURE
        assert space_for_kind(LoadKind.S_LOAD) is MemorySpace.GLOBAL
        assert space_for_kind(LoadKind.DS_READ) is MemorySpace.SHARED


class TestRunnerMeasurements:
    def test_sweep_shape(self, nv):
        runner = PChaseRunner(nv, PChaseConfig(n_samples=64))
        sizes = np.array([1024, 2048, 4096])
        matrix = runner.sweep(LoadKind.LD_GLOBAL_CA, sizes, 32)
        assert matrix.shape == (3, 64)

    def test_sweep_shows_cliff(self, nv):
        runner = PChaseRunner(nv, PChaseConfig(n_samples=128))
        matrix = runner.sweep(
            LoadKind.LD_GLOBAL_CA, np.array([2048, 16384]), 32
        )
        assert matrix[1].mean() > matrix[0].mean() + 30

    def test_empty_sweep_rejected(self, nv):
        runner = PChaseRunner(nv)
        with pytest.raises(SimulationError):
            runner.sweep(LoadKind.LD_GLOBAL_CA, np.array([]), 32)

    def test_probe_without_warm_misses(self, nv):
        runner = PChaseRunner(nv)
        nv.flush_caches()
        hits, _ = runner.probe(LoadKind.LD_GLOBAL_CA, 4096, 64)
        assert not hits.any()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PChaseConfig(n_samples=0)
        with pytest.raises(ValueError):
            PChaseConfig(ks_alpha=2.0)
        with pytest.raises(ValueError):
            PChaseConfig(search_lo=100, search_hi=50)


class TestDescentWarmReuse:
    """Binary-descent probes reuse warm state instead of flushing.

    The runner serves a shrinking probe against a warmed superset ring by
    truncating the analytic fixed point — measurements must stay
    byte-identical to flush + full warm (and to the exact engine), while
    the device-flush accounting proves no flush + full re-warm ran.
    """

    SIZES = [2048, 4096, 8192, 6144, 3072, 16384, 5120]

    def _run(self, engine: str, allow_reuse: bool) -> tuple[list, dict, int]:
        device = SimulatedGPU.from_preset("TestGPU-NV", seed=5)
        runner = PChaseRunner(device, PChaseConfig(engine=engine))
        if not allow_reuse:
            runner._incremental_from = lambda key, nbytes: None
        lats = [
            runner.latencies(LoadKind.LD_GLOBAL_CA, s, 32) for s in self.SIZES
        ]
        return lats, dict(runner.stats), device.flush_count

    def test_latencies_identical_with_and_without_reuse(self):
        with_reuse, _, _ = self._run("analytic", True)
        without, _, _ = self._run("analytic", False)
        exact, _, _ = self._run("exact", False)
        for a, b, c in zip(with_reuse, without, exact):
            assert np.array_equal(a, b)
            assert np.array_equal(a, c)

    def test_shrinking_probes_do_not_flush(self):
        _, stats, flushes = self._run("analytic", True)
        # Only the very first probe of the chain executes a real flush;
        # every later probe extends (grow) or truncates (shrink) the
        # warmed fixed point.
        assert stats["fresh_runs"] == len(self.SIZES)
        assert stats["full_warms"] == 1
        assert flushes == 1
        assert stats["shrink_warms"] >= 2
        assert stats["suffix_warms"] >= 2
        assert (
            stats["full_warms"] + stats["suffix_warms"] + stats["shrink_warms"]
            == stats["fresh_runs"]
        )

    def test_find_capacity_bounds_descent_never_full_warms(self):
        from repro.core.benchmarks.base import BenchmarkContext
        from repro.core.benchmarks.size import find_capacity_bounds

        device = SimulatedGPU.from_preset("TestGPU-NV", seed=3)
        ctx = BenchmarkContext(device, PChaseConfig())
        # A tight budget forces a deep binary descent after the ascent.
        bounds = find_capacity_bounds(
            ctx, LoadKind.LD_GLOBAL_CA, 32, 1024, 1 << 20, budget=256
        )
        assert bounds is not None
        stats = ctx.runner.stats
        # Baseline probe aside, the whole ascent + binary descent runs on
        # reused warm state: zero additional flush + full warms.
        assert stats["full_warms"] == 1
        assert stats["shrink_warms"] >= 1
        assert device.flush_count == 1

    def test_op_serial_still_guards_interleaved_operations(self):
        device = SimulatedGPU.from_preset("TestGPU-NV", seed=5)
        runner = PChaseRunner(device, PChaseConfig())
        runner.latencies(LoadKind.LD_GLOBAL_CA, 8192, 32)
        # An interleaved protocol operation invalidates the token: the
        # next (shrinking) probe must fall back to a real flush.
        runner.warm(LoadKind.LD_GLOBAL_CA, 4096, 32, slot=1)
        before = device.flush_count
        runner.latencies(LoadKind.LD_GLOBAL_CA, 4096, 32)
        assert device.flush_count == before + 1
        assert runner.stats["shrink_warms"] == 0
