"""End-to-end discovery assertions on the synthetic NVIDIA devices.

Every assertion compares the *discovered* report against the spec ground
truth the tool never saw directly — the core claim of the paper.
"""

import pytest

from repro import MT4G, SimulatedGPU
from repro.core.benchmarks.base import Source
from repro.core.tool import NVIDIA_ELEMENTS
from repro.errors import SpecError
from repro.gpuspec.presets import get_preset


SPEC = get_preset("TestGPU-NV")


class TestGeneralAndCompute:
    def test_general(self, nv_report):
        g = nv_report.general
        assert g.vendor == "NVIDIA"
        assert g.microarchitecture == "Hopper"
        assert g.compute_capability == "9.0"
        assert g.clock_rate_hz == pytest.approx(SPEC.core_clock_hz, rel=1e-3)

    def test_compute_from_api(self, nv_report):
        c = nv_report.compute
        assert c.num_sms == SPEC.compute.num_sms
        assert c.warp_size == 32
        assert c.max_threads_per_block == SPEC.compute.max_threads_per_block
        assert c.registers_per_sm == SPEC.compute.registers_per_sm

    def test_cores_from_lookup_table(self, nv_report):
        # Hopper lookup: 128 cores/SM (Section III-B's internal table);
        # the synthetic device actually has 64 — the tool reports the
        # lookup value, as the real tool would.
        assert nv_report.compute.cores_per_sm == 128
        assert nv_report.compute.cores_per_sm_source is Source.LOOKUP


class TestElementCoverage:
    def test_all_elements_reported(self, nv_report):
        assert set(nv_report.memory) == set(NVIDIA_ELEMENTS)

    def test_api_attributes_marked(self, nv_report):
        assert nv_report.attribute("L2", "size").source is Source.API
        assert nv_report.attribute("SharedMem", "size").source is Source.API
        assert nv_report.attribute("DeviceMemory", "size").source is Source.API

    def test_benchmarked_attributes_marked(self, nv_report):
        assert nv_report.attribute("L1", "size").source is Source.BENCHMARK
        assert nv_report.attribute("L1", "fetch_granularity").source is Source.BENCHMARK


class TestDiscoveredValues:
    @pytest.mark.parametrize("element", ["L1", "Texture", "Readonly"])
    def test_l1_family_size(self, nv_report, element):
        measured = nv_report.attribute(element, "size").value
        assert abs(measured - 4096) / 4096 < 0.12

    def test_const_sizes(self, nv_report):
        assert nv_report.attribute("ConstL1", "size").value == pytest.approx(1024, rel=0.1)
        assert nv_report.attribute("ConstL1.5", "size").value == pytest.approx(8192, rel=0.1)

    @pytest.mark.parametrize(
        "element,expected",
        [("L1", 32), ("Texture", 32), ("Readonly", 32), ("ConstL1", 32),
         ("ConstL1.5", 64), ("L2", 32)],
    )
    def test_fetch_granularities(self, nv_report, element, expected):
        assert nv_report.attribute(element, "fetch_granularity").value == expected

    @pytest.mark.parametrize(
        "element,expected",
        [("L1", 64), ("Texture", 64), ("Readonly", 64), ("ConstL1", 32), ("L2", 64)],
    )
    def test_cache_lines(self, nv_report, element, expected):
        assert nv_report.attribute(element, "cache_line_size").value == expected

    @pytest.mark.parametrize(
        "element,true_latency",
        [("L1", 30.0), ("Texture", 32.0), ("Readonly", 31.0), ("ConstL1", 20.0),
         ("ConstL1.5", 60.0), ("L2", 100.0), ("SharedMem", 15.0),
         ("DeviceMemory", 300.0)],
    )
    def test_latencies_track_truth_plus_overhead(self, nv_report, element, true_latency):
        measured = nv_report.attribute(element, "load_latency").value
        overhead = SPEC.noise.measurement_overhead
        assert measured == pytest.approx(true_latency + overhead, abs=5)

    def test_bandwidths(self, nv_report):
        l2 = nv_report.attribute("L2", "read_bandwidth").value
        assert l2 == pytest.approx(SPEC.cache("L2").read_bandwidth, rel=0.12)
        dram_w = nv_report.attribute("DeviceMemory", "write_bandwidth").value
        assert dram_w == pytest.approx(SPEC.memory.write_bandwidth, rel=0.12)

    def test_low_level_bandwidth_not_measured(self, nv_report):
        # Table I dagger: only higher levels get bandwidth numbers.
        assert nv_report.attribute("L1", "read_bandwidth").source is Source.NOT_APPLICABLE

    def test_sharing_matrix(self, nv_report):
        assert set(nv_report.attribute("L1", "shared_with").value) == {"Readonly", "Texture"}
        assert nv_report.attribute("ConstL1", "shared_with").value == ()

    def test_amounts(self, nv_report):
        assert nv_report.attribute("L1", "amount").value == 1
        assert nv_report.attribute("L2", "amount").value == 1

    def test_cl15_amount_unavailable(self, nv_report):
        av = nv_report.attribute("ConstL1.5", "amount")
        assert av.source is Source.UNAVAILABLE
        assert "64 KiB" in av.note

    def test_cl15_line_unavailable(self, nv_report):
        assert nv_report.attribute("ConstL1.5", "cache_line_size").source is Source.UNAVAILABLE


class TestTwoSegmentVariant:
    def test_l1_amount_two(self, nv2seg_report):
        assert nv2seg_report.attribute("L1", "amount").value == 2

    def test_l2_segments_from_alignment(self, nv2seg_report):
        av = nv2seg_report.attribute("L2", "amount")
        assert av.value == 2
        assert av.confidence > 0.8

    def test_l2_size_reports_api_total(self, nv2seg_report):
        # API reports segments * size = 64 KiB even though one segment is 32.
        assert nv2seg_report.attribute("L2", "size").value == 64 * 1024


class TestRuntimeAccounting:
    def test_benchmark_count_in_paper_range(self, nv_report):
        # Paper Section V-A: ~35 benchmarks on NVIDIA.
        assert 30 <= nv_report.runtime.benchmarks_executed <= 45

    def test_time_positive(self, nv_report):
        assert nv_report.runtime.simulated_gpu_seconds > 0
        assert nv_report.runtime.modeled_total_seconds > nv_report.runtime.simulated_gpu_seconds


class TestTargetFiltering:
    def test_subset_discovery(self):
        device = SimulatedGPU.from_preset("TestGPU-NV", seed=9)
        report = MT4G(device, targets={"SharedMem", "DeviceMemory"}).discover()
        assert set(report.memory) == {"SharedMem", "DeviceMemory"}

    def test_unknown_target_rejected(self):
        device = SimulatedGPU.from_preset("TestGPU-NV", seed=9)
        with pytest.raises(SpecError):
            MT4G(device, targets={"vL1"})


class TestDeterminism:
    def test_same_seed_same_sizes(self):
        r1 = MT4G(SimulatedGPU.from_preset("TestGPU-NV", seed=77),
                  targets={"SharedMem"}).discover()
        r2 = MT4G(SimulatedGPU.from_preset("TestGPU-NV", seed=77),
                  targets={"SharedMem"}).discover()
        a = r1.attribute("SharedMem", "load_latency").value
        b = r2.attribute("SharedMem", "load_latency").value
        assert a == b
