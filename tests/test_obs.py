"""Tests for the observability plane (PR 10).

The contracts that make telemetry trustworthy:

* W3C ``traceparent`` is accepted and emitted; malformed headers start a
  fresh trace instead of failing the request;
* the span ring is bounded (traces evicted oldest-first, spans per trace
  dropped and counted) and safe under concurrent recording;
* a cold request is one trace end-to-end: handler root, job span, worker
  spans (via ``WorkerOutcome.spans``), store tier reads — across *two
  instances* when the discovery is proxied over the ring;
* with tracing off the hot path allocates nothing in ``repro.obs``;
* the metrics counters are exact under thread contention, the latency
  histograms render in both JSON and Prometheus exposition, and label
  escaping round-trips arbitrary text;
* profiles and traces never alter served report bytes.
"""

from __future__ import annotations

import asyncio
import io
import json
import re
import threading
import tracemalloc
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MT4G, SimulatedGPU
from repro.cache.ring import HashRing
from repro.cache.tiers import build_worker_cache
from repro.core.output.json_out import to_json
from repro.obs.accesslog import AccessLog
from repro.obs.profile import DiscoveryProfile, profiled
from repro.obs.trace import (
    CURRENT,
    SpanContext,
    Tracer,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    worker_trace,
)
from repro.serve import HTTPRequest, TopologyService
from repro.serve.metrics import ServiceMetrics, _escape_label, to_prometheus

PRESET = "TestGPU-NV"

TRACE_ID = "ab" * 16
PARENT_ID = "cd" * 8
TRACEPARENT = f"00-{TRACE_ID}-{PARENT_ID}-01"


@pytest.fixture
def executor():
    ex = ThreadPoolExecutor(max_workers=4)
    yield ex
    ex.shutdown(wait=True)


def get(service, path, query=None, headers=None):
    return service.handle_request(
        HTTPRequest("GET", path, query=query or {}, headers=headers or {})
    )


def cli_bytes(preset=PRESET, seed=0) -> bytes:
    report = MT4G(SimulatedGPU.from_preset(preset, seed=seed)).discover()
    return (to_json(report) + "\n").encode()


# ---------------------------------------------------------------------- #
# traceparent                                                             #
# ---------------------------------------------------------------------- #


class TestTraceparent:
    def test_roundtrip(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        assert parse_traceparent(format_traceparent(trace_id, span_id)) == (
            trace_id,
            span_id,
        )

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-zz" + "0" * 30 + "-" + "1" * 16 + "-01",
            f"00-{'0' * 32}-{PARENT_ID}-01",  # all-zero trace id
            f"00-{TRACE_ID}-{'0' * 16}-01",  # all-zero span id
            f"00-{TRACE_ID}-{PARENT_ID}",  # missing flags
        ],
    )
    def test_malformed_is_absent(self, header):
        assert parse_traceparent(header) is None

    def test_case_and_whitespace_tolerated(self):
        assert parse_traceparent(f"  00-{TRACE_ID.upper()}-{PARENT_ID}-01 ") == (
            TRACE_ID,
            PARENT_ID,
        )


# ---------------------------------------------------------------------- #
# the tracer ring                                                         #
# ---------------------------------------------------------------------- #


class TestTracer:
    def test_begin_continues_or_starts(self):
        tracer = Tracer()
        cont = tracer.begin(TRACEPARENT)
        assert cont.trace_id == TRACE_ID
        assert cont.parent_id == PARENT_ID
        fresh = tracer.begin("not a traceparent")
        assert fresh.parent_id is None
        assert fresh.trace_id != TRACE_ID

    def test_trace_ring_evicts_oldest(self):
        tracer = Tracer(max_traces=3)
        for i in range(5):
            ctx = tracer.begin()
            tracer.record(ctx, f"span-{i}", 0.0)
        stats = tracer.stats()
        assert stats["traces_held"] == 3
        assert stats["traces_evicted"] == 2

    def test_spans_per_trace_bounded(self):
        tracer = Tracer(max_spans_per_trace=4)
        ctx = tracer.begin()
        for _ in range(10):
            tracer.record(ctx, "leaf", 0.0)
        assert len(tracer.spans(ctx.trace_id)) == 4
        assert tracer.stats()["spans_dropped"] == 6

    def test_ingest_adopts_worker_spans(self):
        tracer = Tracer()
        foreign = [
            {"trace_id": TRACE_ID, "span_id": "aa" * 8, "name": "w", "start_ms": 0,
             "duration_ms": 1.0, "parent_id": None},
            {"not-a-span": True},
            "garbage",
        ]
        tracer.ingest(foreign)
        assert len(tracer.spans(TRACE_ID)) == 1

    def test_concurrent_recording_is_exact(self):
        tracer = Tracer(max_traces=64, max_spans_per_trace=10_000)
        ctx = tracer.begin(TRACEPARENT)

        def hammer():
            for _ in range(500):
                tracer.record(ctx, "leaf", 0.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.stats()["spans_recorded"] == 4000
        assert len(tracer.spans(TRACE_ID)) == 4000

    def test_slow_trace_logged_as_structured_json(self):
        stream = io.StringIO()
        tracer = Tracer(slow_ms=0.0, log_stream=stream)
        ctx = tracer.begin(TRACEPARENT)
        tracer.record(ctx, "hotcache.lookup", 0.0)
        tracer.finish_request(ctx, "GET /devices/{preset}/report", 0.0, 200)
        line = stream.getvalue().strip()
        payload = json.loads(line)  # exactly one JSON object per line
        assert payload["event"] == "slow_trace"
        assert payload["trace_id"] == TRACE_ID
        assert payload["route"] == "GET /devices/{preset}/report"
        assert payload["status"] == 200
        assert {s["name"] for s in payload["spans"]} >= {"hotcache.lookup"}
        assert tracer.stats()["slow_traces"] == 1

    def test_fast_trace_not_logged(self):
        stream = io.StringIO()
        tracer = Tracer(slow_ms=10_000.0, log_stream=stream)
        ctx = tracer.begin()
        from time import perf_counter

        tracer.finish_request(ctx, "GET /healthz", perf_counter(), 200)
        assert stream.getvalue() == ""
        assert tracer.stats()["slow_traces"] == 0

    def test_worker_trace_parents_to_job_span(self):
        with worker_trace(TRACEPARENT) as ctx:
            assert CURRENT.get() is ctx
            assert ctx.trace_id == TRACE_ID
            assert ctx.parent_id == PARENT_ID
            import os

            from repro.obs.trace import ENV_VAR

            assert os.environ[ENV_VAR] == TRACEPARENT
            ctx.tracer.record(ctx, "worker.attempt", 0.0)
            spans = ctx.tracer.drain()
        assert CURRENT.get() is None
        assert spans[0]["parent_id"] == ctx.span_id
        with worker_trace(None) as none_ctx:
            assert none_ctx is None


# ---------------------------------------------------------------------- #
# access log                                                              #
# ---------------------------------------------------------------------- #


class TestAccessLog:
    def test_json_request_line(self):
        stream = io.StringIO()
        log = AccessLog("json", stream=stream, clock=lambda: 1754600000.5)
        log.request(
            method="GET",
            path="/devices/TestGPU-NV/report",
            route="GET /devices/{preset}/report",
            status=200,
            duration_ms=1.2345,
            trace_id=TRACE_ID,
            reused=True,
        )
        payload = json.loads(stream.getvalue())
        assert payload["event"] == "request"
        assert payload["method"] == "GET"
        assert payload["route"] == "GET /devices/{preset}/report"
        assert payload["status"] == 200
        assert payload["duration_ms"] == 1.234
        assert payload["trace_id"] == TRACE_ID
        assert payload["reused"] is True
        assert payload["ts"].endswith("Z")

    def test_text_format(self):
        stream = io.StringIO()
        log = AccessLog("text", stream=stream)
        log.request(
            method="GET", path="/healthz", route="GET /healthz",
            status=200, duration_ms=0.5,
        )
        line = stream.getvalue()
        assert "GET /healthz 200" in line
        assert "\n" == line[-1]

    def test_event_lines(self):
        stream = io.StringIO()
        log = AccessLog("json", stream=stream)
        log.event("bad_request", "malformed HTTP request", status=400)
        log.event("write_error", "Broken pipe", status=200)
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert lines[0]["event"] == "bad_request"
        assert lines[0]["reason"] == "malformed HTTP request"
        assert lines[1]["event"] == "write_error"
        assert lines[1]["status"] == 200

    def test_emission_never_raises(self):
        stream = io.StringIO()
        stream.close()
        log = AccessLog("json", stream=stream)
        log.request(
            method="GET", path="/", route="GET /", status=200, duration_ms=0.1
        )  # closed stream: swallowed

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            AccessLog("xml")


# ---------------------------------------------------------------------- #
# metrics: locking, histograms, exposition                                #
# ---------------------------------------------------------------------- #


class TestMetrics:
    def test_concurrent_observe_is_exact(self):
        metrics = ServiceMetrics()

        def hammer():
            for _ in range(1000):
                metrics.observe("GET /x", 200, 0.003)
                metrics.count_connection("reused")
                metrics.count_bad_request()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = metrics.snapshot()
        assert snap["http"]["requests_total"] == 8000
        assert snap["http"]["routes"]["GET /x"]["count"] == 8000
        assert snap["http"]["connections"]["reused"] == 8000
        assert snap["http"]["bad_requests"] == 8000

    def test_histogram_buckets_are_cumulative(self):
        metrics = ServiceMetrics()
        metrics.observe("GET /x", 200, 0.0005)  # le 0.001
        metrics.observe("GET /x", 200, 0.004)  # le 0.005
        metrics.observe("GET /x", 200, 0.004)
        metrics.observe("GET /x", 200, 99.0)  # +Inf only
        hist = metrics.snapshot()["http"]["routes"]["GET /x"]["histogram"]
        assert hist["0.001"] == 1
        assert hist["0.0025"] == 1
        assert hist["0.005"] == 3
        assert hist["10"] == 3
        assert hist["+Inf"] == 4
        # cumulative: monotonically non-decreasing
        values = list(hist.values())
        assert values == sorted(values)

    def test_boundary_value_lands_in_its_le_bucket(self):
        # Prometheus `le` is inclusive: exactly 0.001s belongs in the
        # 0.001 bucket, not the next one up.
        metrics = ServiceMetrics()
        metrics.observe("GET /x", 200, 0.001)
        hist = metrics.snapshot()["http"]["routes"]["GET /x"]["histogram"]
        assert hist["0.001"] == 1

    def test_prometheus_histogram_exposition(self):
        metrics = ServiceMetrics()
        metrics.observe("GET /x", 200, 0.004)
        text = to_prometheus(metrics.snapshot())
        assert "# TYPE mt4g_http_request_duration_seconds histogram" in text
        assert (
            'mt4g_http_request_duration_seconds_bucket{route="GET /x",le="0.005"} 1'
            in text
        )
        assert (
            'mt4g_http_request_duration_seconds_bucket{route="GET /x",le="+Inf"} 1'
            in text
        )
        assert 'mt4g_http_request_duration_seconds_count{route="GET /x"} 1' in text
        assert re.search(
            r'mt4g_http_request_duration_seconds_sum\{route="GET /x"\} 0\.004', text
        )

    def test_trace_stats_rendered_when_present(self):
        metrics = ServiceMetrics()
        tracer = Tracer()
        ctx = tracer.begin()
        tracer.record(ctx, "x", 0.0)
        snap = metrics.snapshot(tracer=tracer)
        assert snap["trace"]["spans_recorded"] == 1
        text = to_prometheus(snap)
        assert "mt4g_traces_held 1" in text
        assert "mt4g_trace_spans_recorded_total 1" in text
        # absent tracer: no trace families at all
        assert "mt4g_traces_held" not in to_prometheus(metrics.snapshot())


def _unescape_label(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == '"':
                out.append('"')
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


class TestPrometheusLabelEscaping:
    @given(st.text())
    @settings(max_examples=300, deadline=None)
    def test_escape_round_trips(self, value):
        escaped = _escape_label(value)
        assert "\n" not in escaped  # a raw newline would break exposition
        assert _unescape_label(escaped) == value

    @given(st.text(alphabet='ab"\\\n', max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_hostile_route_labels_survive_exposition(self, route):
        metrics = ServiceMetrics()
        metrics.observe(route, 200, 0.002)
        text = to_prometheus(metrics.snapshot())
        lines = [
            l for l in text.splitlines()
            if l.startswith("mt4g_http_route_requests_total{")
        ]
        assert len(lines) == 1  # no label ever injects an extra line
        match = re.fullmatch(
            r'mt4g_http_route_requests_total\{route="(.*)"\} 1', lines[0]
        )
        assert match is not None
        assert _unescape_label(match.group(1)) == route


# ---------------------------------------------------------------------- #
# the discovery profiler                                                  #
# ---------------------------------------------------------------------- #


class TestProfiler:
    def test_nested_phases_attribute_to_innermost(self):
        ticks = iter(range(100))
        prof = DiscoveryProfile(clock=lambda: float(next(ticks)))
        with prof.phase("L1", "measure"):
            with prof.phase("L1", "size_sweep"):
                prof.record_run(0.5, "full_warms")
        data = prof.as_dict()
        by_key = {(p["element"], p["phase"]): p for p in data["phases"]}
        inner = by_key[("L1", "size_sweep")]
        assert inner["pchase_runs"] == 1
        assert inner["warms"]["full_warms"] == 1
        assert by_key[("L1", "measure")]["pchase_runs"] == 0
        assert data["pchase_runs"] == 1
        assert data["schema"] == "mt4g-repro-profile/1"

    def test_discover_under_profile_counts_phases_and_runs(self):
        with profiled() as prof:
            report = MT4G(SimulatedGPU.from_preset(PRESET, seed=0)).discover()
        data = prof.as_dict()
        assert data["pchase_runs"] > 0
        elements = {p["element"] for p in data["phases"]}
        assert "L1" in elements
        # every p-chase run was attributed to some phase
        assert sum(p["pchase_runs"] for p in data["phases"]) == data["pchase_runs"]
        # the profile rode along on meta; dropping it (as the CLI does
        # before printing) leaves bytes identical to an unprofiled run
        assert "profile" in report.meta
        report.meta.pop("profile")
        bare = MT4G(SimulatedGPU.from_preset(PRESET, seed=0)).discover()
        assert to_json(report) == to_json(bare)

    def test_profile_never_lands_in_stored_entry(self, tmp_path):
        from repro.cache.store import DiscoveryCache

        store = DiscoveryCache(tmp_path / "cache")
        with profiled():
            device = SimulatedGPU.from_preset(PRESET, seed=0)
            report = MT4G(device, cache=store).discover()
        assert "profile" in report.meta
        key = report.meta["cache"]["key"]
        stored = store.get(key)["report"]
        assert "profile" not in stored.meta
        # ...and a cache *hit* under profiling gets a fresh profile
        # attached without mutating the stored bytes either.
        with profiled():
            device = SimulatedGPU.from_preset(PRESET, seed=0)
            hit = MT4G(device, cache=store).discover()
        assert hit.meta["cache"]["status"] == "hit"
        assert "profile" in hit.meta
        assert "profile" not in store.get(key)["report"].meta

    def test_render_is_a_table(self):
        prof = DiscoveryProfile()
        with prof.phase("L1", "size_sweep"):
            prof.record_run(0.01, "full_warms")
        text = prof.render()
        assert "discovery profile:" in text
        assert "L1" in text and "size_sweep" in text

    def test_cli_profile_flag_keeps_stdout_identical(self, capsys):
        from repro.core.cli import main

        assert main(["--gpu", PRESET, "--no-cache", "-j"]) == 0
        plain = capsys.readouterr()
        assert main(["--gpu", PRESET, "--no-cache", "-j", "--profile"]) == 0
        profiled_run = capsys.readouterr()
        assert profiled_run.out == plain.out  # report bytes unchanged
        assert "discovery profile:" in profiled_run.err


# ---------------------------------------------------------------------- #
# service-level tracing                                                   #
# ---------------------------------------------------------------------- #


def make_service(store, executor, **kw):
    kw.setdefault("max_workers", 2)
    return TopologyService(store, executor=executor, **kw)


class TestServiceTracing:
    def test_request_id_and_traceparent_on_every_response(
        self, tmp_path, executor
    ):
        store = build_worker_cache(tmp_path / "a")
        service = make_service(store, executor, trace=True)
        response = asyncio.run(
            get(service, "/healthz", headers={"traceparent": TRACEPARENT})
        )
        assert response.headers["X-MT4G-Request-Id"] == TRACE_ID
        emitted = parse_traceparent(response.headers["traceparent"])
        assert emitted is not None and emitted[0] == TRACE_ID
        # no incoming header: a fresh trace id is minted per request
        fresh = asyncio.run(get(service, "/healthz"))
        assert re.fullmatch(r"[0-9a-f]{32}", fresh.headers["X-MT4G-Request-Id"])
        assert fresh.headers["X-MT4G-Request-Id"] != TRACE_ID

    def test_tracing_disabled_means_no_headers_and_404(self, tmp_path, executor):
        store = build_worker_cache(tmp_path / "a")
        service = make_service(store, executor)  # trace off (default)
        response = asyncio.run(
            get(service, "/healthz", headers={"traceparent": TRACEPARENT})
        )
        assert "X-MT4G-Request-Id" not in response.headers
        assert "traceparent" not in response.headers
        listing = asyncio.run(get(service, "/traces"))
        assert listing.status == 404
        single = asyncio.run(get(service, f"/traces/{TRACE_ID}"))
        assert single.status == 404

    def test_cold_discovery_is_one_trace_with_job_and_worker_spans(
        self, tmp_path, executor
    ):
        store = build_worker_cache(tmp_path / "a")
        service = make_service(store, executor, trace=True)

        async def scenario():
            first = await get(
                service,
                f"/devices/{PRESET}/report",
                {"seed": "0"},
                {"traceparent": TRACEPARENT},
            )
            detail = await get(service, f"/traces/{TRACE_ID}")
            return first, detail

        first, detail = asyncio.run(scenario())
        assert first.status == 200
        assert first.body == cli_bytes()
        payload = json.loads(detail.body)
        names = {s["name"] for s in payload["spans"]}
        assert {"GET /devices/{preset}/report", "job.run",
                "worker.discover", "worker.attempt", "tier.read"} <= names
        by_name = {s["name"]: s for s in payload["spans"]}
        # parentage: request root <- job.run <- worker.discover
        root = by_name["GET /devices/{preset}/report"]
        job = by_name["job.run"]
        worker = by_name["worker.discover"]
        assert root["parent_id"] == PARENT_ID
        assert job["parent_id"] == root["span_id"]
        assert worker["parent_id"] == job["span_id"]
        assert by_name["worker.attempt"]["parent_id"] == worker["span_id"]
        # the job span carries the worker's phase profile, never the body
        assert job["attrs"]["profile"]["pchase_runs"] > 0
        assert job["attrs"]["outcome"] == "done"
        assert b"profile" not in first.body

    def test_coalesced_requests_record_their_own_span(self, tmp_path, executor):
        store = build_worker_cache(tmp_path / "a")
        service = make_service(store, executor, trace=True)

        async def scenario():
            return await asyncio.gather(
                *(
                    get(service, f"/devices/{PRESET}/report", {"seed": "0"},
                        {"traceparent": TRACEPARENT})
                    for _ in range(4)
                )
            )

        responses = asyncio.run(scenario())
        assert [r.status for r in responses] == [200] * 4
        assert service.jobs.coalesced == 3
        spans = service.tracer.spans(TRACE_ID)
        assert sum(1 for s in spans if s["name"] == "job.coalesced") == 3

    def test_traces_listing(self, tmp_path, executor):
        store = build_worker_cache(tmp_path / "a")
        service = make_service(store, executor, trace=True)

        async def scenario():
            await get(service, "/healthz", headers={"traceparent": TRACEPARENT})
            return await get(service, "/traces")

        listing = asyncio.run(scenario())
        payload = json.loads(listing.body)
        assert payload["schema"] == "mt4g-repro-traces/1"
        assert payload["count"] >= 1
        assert payload["traces"][0]["trace_id"]
        assert payload["stats"]["spans_recorded"] >= 1

    def test_bad_trace_id_is_400(self, tmp_path, executor):
        store = build_worker_cache(tmp_path / "a")
        service = make_service(store, executor, trace=True)
        response = asyncio.run(get(service, "/traces/nope"))
        assert response.status == 400

    def test_unknown_trace_id_is_404(self, tmp_path, executor):
        store = build_worker_cache(tmp_path / "a")
        service = make_service(store, executor, trace=True)
        response = asyncio.run(get(service, f"/traces/{'9' * 32}"))
        assert response.status == 404

    def test_served_bytes_identical_with_all_obs_enabled(
        self, tmp_path, executor
    ):
        stream = io.StringIO()
        store = build_worker_cache(tmp_path / "a")
        service = make_service(
            store,
            executor,
            trace=True,
            trace_slow_ms=0.0,  # log every trace as slow
            log_format="json",
            log_stream=stream,
            hot_cache_bytes=1 << 20,
        )

        async def scenario():
            first = await get(
                service, f"/devices/{PRESET}/report", {"seed": "0"},
                {"traceparent": TRACEPARENT},
            )
            warm = await get(service, f"/devices/{PRESET}/report", {"seed": "0"})
            return first, warm

        first, warm = asyncio.run(scenario())
        assert first.body == warm.body == cli_bytes()

    def test_hot_cache_lookup_span(self, tmp_path, executor):
        store = build_worker_cache(tmp_path / "a")
        service = make_service(
            store, executor, trace=True, hot_cache_bytes=1 << 20
        )

        async def scenario():
            await get(service, f"/devices/{PRESET}/report", {"seed": "0"},
                      {"traceparent": TRACEPARENT})
            await get(service, f"/devices/{PRESET}/report", {"seed": "0"},
                      {"traceparent": TRACEPARENT})

        asyncio.run(scenario())
        spans = [
            s for s in service.tracer.spans(TRACE_ID)
            if s["name"] == "hotcache.lookup"
        ]
        outcomes = [s["attrs"]["outcome"] for s in spans]
        assert "miss" in outcomes and "hit" in outcomes


# ---------------------------------------------------------------------- #
# zero cost when off                                                      #
# ---------------------------------------------------------------------- #


class TestDisabledPathAllocations:
    def _obs_allocations(self, op) -> list:
        tracemalloc.start()
        try:
            op()
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        return snapshot.filter_traces(
            [tracemalloc.Filter(True, "*/repro/obs/*")]
        ).statistics("filename")

    def test_hot_cache_get_allocates_nothing_in_obs(self):
        from repro.serve.hotcache import HotReportCache

        cache = HotReportCache(max_bytes=1 << 20)
        cache.put("k" * 64, "report:json", b"{}", "application/json")
        assert CURRENT.get() is None  # tracing off

        def op():
            for _ in range(200):
                cache.get("k" * 64, "report:json")
                cache.get("m" * 64, "report:json")

        assert self._obs_allocations(op) == []

    def test_store_read_allocates_nothing_in_obs(self, tmp_path):
        from repro.cache.store import DiscoveryCache

        store = DiscoveryCache(tmp_path / "cache")
        MT4G(SimulatedGPU.from_preset(PRESET, seed=0), cache=store).discover()
        keys = [key for key, _payload in store.entries()]

        def op():
            for _ in range(20):
                store.get(keys[0])

        assert self._obs_allocations(op) == []

    def test_untraced_submit_allocates_nothing_in_obs(self, tmp_path, executor):
        store = build_worker_cache(tmp_path / "a")
        service = make_service(store, executor)  # trace off

        async def scenario():
            await get(service, f"/devices/{PRESET}/report", {"seed": "0"})
            tracemalloc.start()
            try:
                await get(service, f"/devices/{PRESET}/report", {"seed": "0"})
                snapshot = tracemalloc.take_snapshot()
            finally:
                tracemalloc.stop()
            return snapshot

        snapshot = asyncio.run(scenario())
        stats = snapshot.filter_traces(
            [tracemalloc.Filter(True, "*/repro/obs/*")]
        ).statistics("filename")
        assert stats == []


# ---------------------------------------------------------------------- #
# cross-instance trace propagation                                        #
# ---------------------------------------------------------------------- #


class TestCrossInstanceTracing:
    def test_proxied_cold_discovery_is_one_trace_across_the_ring(
        self, tmp_path, executor
    ):
        # The acceptance criterion: a cold request on a non-owner
        # instance proxies the discovery to the ring owner, and the
        # *entry* instance's GET /traces/{id} shows one trace id
        # spanning both instances — the replica's request and proxy
        # spans plus the owner's /store/{key}?discover=1 handler span.
        store_a = build_worker_cache(tmp_path / "a")
        store_b = build_worker_cache(tmp_path / "b")

        async def scenario():
            a = TopologyService(store_a, executor=executor, max_workers=2, trace=True)
            b = TopologyService(store_b, executor=executor, max_workers=2, trace=True)
            host_a, port_a = await a.start(port=0)
            host_b, port_b = await b.start(port=0)
            url_a, url_b = f"http://{host_a}:{port_a}", f"http://{host_b}:{port_b}"
            ring_a = HashRing(url_a, [url_b])
            a.attach_ring(ring_a, peer_timeout=30.0)
            b.attach_ring(HashRing(url_b, [url_a]), peer_timeout=30.0)
            # a seed whose key instance A owns, requested via instance B
            from tests.test_replication import seed_owned_by

            seed = seed_owned_by(ring_a, a, url_a)
            try:
                response = await get(
                    b,
                    f"/devices/{PRESET}/report",
                    {"seed": str(seed)},
                    {"traceparent": TRACEPARENT},
                )
                merged = await get(b, f"/traces/{TRACE_ID}")
                local_only = await get(b, f"/traces/{TRACE_ID}", {"local": "1"})
            finally:
                await a.stop()
                await b.stop()
            return a, b, seed, response, merged, local_only

        a, b, seed, response, merged, local_only = asyncio.run(scenario())
        assert response.status == 200
        assert b.jobs.peer_fetches == 1
        assert a.jobs.discoveries_started == 1

        payload = json.loads(merged.body)
        assert payload["trace_id"] == TRACE_ID
        names = {s["name"] for s in payload["spans"]}
        # the replica's side of the trace...
        assert {"GET /devices/{preset}/report", "job.run",
                "worker.proxy_fetch", "proxy.attempt"} <= names
        # ...and the owner's side, continued through the HTTP hop: its
        # /store/{key}?discover=1 handler root plus its own discovery.
        assert "GET /store/{key}" in names
        assert "worker.discover" in names
        # every span shares the one trace id
        assert {s["trace_id"] for s in payload["spans"]} == {TRACE_ID}
        # the owner recorded its spans in its *own* ring under the same id
        assert any(
            s["name"] == "GET /store/{key}" for s in a.tracer.spans(TRACE_ID)
        )
        # ?local=1 suppresses the peer merge: strictly fewer spans
        local_payload = json.loads(local_only.body)
        assert local_payload["span_count"] < payload["span_count"]
        assert "GET /store/{key}" not in {
            s["name"] for s in local_payload["spans"]
        }
