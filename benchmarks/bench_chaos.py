"""Chaos harness: discovery under injected faults (the resilience record).

Runs the paper-preset fleet against recorded, deterministic fault plans
(:mod:`repro.faults`) and records the recovery behaviour to
``BENCH_chaos.json`` at the repository root:

    PYTHONPATH=src python -m pytest benchmarks/bench_chaos.py -q -s

Scenarios, each against the same fault-free baseline:

* ``crash_retry`` — every preset's first worker attempt crashes; the
  in-worker retry must recover;
* ``pool_break`` — one worker process hard-exits, breaking the whole
  pool; the in-process recovery pass must re-run the casualties;
* ``store_faults`` — first cache read raises I/O errors and the first
  cache write lands torn; the store must degrade to miss + re-measure.

Asserted invariants (the acceptance bar of the fault-tolerance work):

* every discovery that succeeds under faults is **byte-identical** to
  its fault-free report — faults cost retries and wall-clock, never
  correctness;
* recovery happens within the retry budget (attempts <= policy);
* every injected degradation is visible in a counter — nothing recovers
  silently.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import pytest

from repro import faults
from repro.cache.store import DiscoveryCache
from repro.faults import FaultPlan, FaultSpec
from repro.faults.retry import DEFAULT_FLEET_RETRY
from repro.validate.fleet import discover_fleet

SEED = 42
PRESETS = ("A100", "H100-80", "MI210")
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"


def _content(report) -> str:
    return json.dumps(report.content_dict(), default=str, sort_keys=True)


def _run_fleet(**kw):
    start = time.perf_counter()
    result = discover_fleet(PRESETS, seed=SEED, **kw)
    return result, time.perf_counter() - start


def _summarise(result, baseline, wall):
    return {
        "wall_seconds": round(wall, 3),
        "all_recovered": all(e.ok for e in result.entries),
        "byte_identical": all(
            e.ok and _content(e.report) == baseline[e.preset]
            for e in result.entries
        ),
        "attempts": {e.preset: e.attempts for e in result.entries},
        "retries_total": result.retries_total,
        "recovered_in_process": result.recovered_in_process,
        "error_kinds": result.error_kinds(),
        "within_retry_budget": all(
            e.attempts <= DEFAULT_FLEET_RETRY.attempts for e in result.entries
        ),
    }


@pytest.fixture(scope="module")
def results():
    faults.deactivate()  # never inherit a stray plan
    out: dict[str, dict] = {}

    baseline_result, baseline_wall = _run_fleet(parallel=False)
    assert all(e.ok for e in baseline_result.entries)
    baseline = {e.preset: _content(e.report) for e in baseline_result.entries}
    out["baseline"] = {
        "presets": list(PRESETS),
        "seed": SEED,
        "wall_seconds": round(baseline_wall, 3),
        "retry_policy": {
            "attempts": DEFAULT_FLEET_RETRY.attempts,
            "base_delay": DEFAULT_FLEET_RETRY.base_delay,
            "max_delay": DEFAULT_FLEET_RETRY.max_delay,
        },
    }

    # 1. every preset's first attempt crashes; in-worker retries recover
    crash_all_first = FaultPlan(
        [FaultSpec("fleet.worker", "crash", label="*@0", times=None)], seed=SEED
    )
    with faults.injected(crash_all_first):
        result, wall = _run_fleet(parallel=False)
        out["crash_retry"] = _summarise(result, baseline, wall)
        out["crash_retry"]["faults_fired"] = faults.injected_counts()

    # 2. one worker process hard-exits -> broken pool -> in-process recovery
    pool_break = FaultPlan(
        [FaultSpec("fleet.worker", "exit", label=f"{PRESETS[0]}@0")], seed=SEED
    )
    with faults.injected(pool_break):
        result, wall = _run_fleet(jobs=len(PRESETS))
        out["pool_break"] = _summarise(result, baseline, wall)

    # 3. flaky cache I/O: first read errors, first write lands torn
    store_faults = FaultPlan(
        [
            FaultSpec("store.get", "io_error", label="*", times=(0,)),
            FaultSpec("store.put", "corrupt", label="*", times=(0,)),
        ],
        seed=SEED,
    )
    with tempfile.TemporaryDirectory() as tmp:
        store_root = Path(tmp) / "chaos-store"
        with faults.injected(store_faults) as active:
            result, wall = _run_fleet(parallel=False, cache_dir=store_root)
            summary = _summarise(result, baseline, wall)
            # the workers' own store instances took the degradation hits;
            # the plan's firing counters prove the faults actually landed
            summary["faults_fired"] = dict(active.fired)
        # a rerun against the damaged store must replay/heal, not break
        rerun, rerun_wall = _run_fleet(parallel=False, cache_dir=store_root)
        summary["rerun_byte_identical"] = all(
            e.ok and _content(e.report) == baseline[e.preset]
            for e in rerun.entries
        )
        summary["rerun_wall_seconds"] = round(rerun_wall, 3)
        out["store_faults"] = summary

    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    return out


def test_recovered_discoveries_are_byte_identical(results):
    for scenario in ("crash_retry", "pool_break", "store_faults"):
        r = results[scenario]
        assert r["all_recovered"], f"{scenario}: not all presets recovered"
        assert r["byte_identical"], f"{scenario}: recovery changed report bytes"
        assert r["error_kinds"] == {}, f"{scenario}: leftover error entries"


def test_recovery_stays_within_the_retry_budget(results):
    for scenario in ("crash_retry", "pool_break", "store_faults"):
        assert results[scenario]["within_retry_budget"], scenario


def test_crash_retry_accounting_is_visible(results):
    r = results["crash_retry"]
    # one crash per preset, each recovered on the second attempt
    assert r["retries_total"] == len(PRESETS)
    assert all(a == 2 for a in r["attempts"].values())
    assert r["faults_fired"].get("fleet.worker") == len(PRESETS)


def test_pool_break_recovered_in_process(results):
    assert results["pool_break"]["recovered_in_process"] >= 1


def test_store_faults_fired_and_rerun_heals(results):
    fired = results["store_faults"]["faults_fired"]
    assert fired.get("store.get", 0) >= 1  # the I/O faults really landed
    assert fired.get("store.put", 0) >= 1
    assert results["store_faults"]["rerun_byte_identical"]


def test_chaos_walls_are_bounded(results):
    print(f"\n=== discovery under injected faults (seed {SEED}) -> {OUT_PATH.name} ===")
    base = results["baseline"]["wall_seconds"]
    print(f"baseline: {base:6.2f}s ({', '.join(PRESETS)})")
    for scenario in ("crash_retry", "pool_break", "store_faults"):
        r = results[scenario]
        print(
            f"{scenario:>12}: {r['wall_seconds']:6.2f}s"
            f"  retries {r['retries_total']}"
            f"  recovered-in-process {r['recovered_in_process']}"
            f"  byte-identical {r['byte_identical']}"
        )
        # resilience must cost wall-clock, not multiples of it: a
        # generous 20x bound catches pathological retry storms only.
        assert r["wall_seconds"] < max(20.0 * base, 30.0), scenario
