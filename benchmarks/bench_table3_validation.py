"""Paper Table III — MT4G output vs reference for the H100-80 and MI210.

Regenerates the paper's central validation table: every attribute of
every memory element on one recent GPU per vendor, compared against the
reference values (which here are the simulator specs — the stand-ins for
the official documentation the paper compares against).

Reproduction criteria (paper Section V):

* *discrete* attributes (cache line, fetch granularity, amount, sharing)
  must match exactly — "any error results in a wrong result";
* *continuous* attributes (size, latency, bandwidth) must land close —
  "minor errors are an inevitable measurement artifact";
* the known inconclusive cases must be flagged, not fabricated
  (Constant L1.5 ">64KiB" with confidence 0).

``test_known_limitations`` covers the paper's three no-result anomalies
(P6000 L1 amount, P6000 L1/CL1 sharing flakiness, MI300X CU pinning).
"""

from __future__ import annotations

import pytest

from repro import MT4G, SimulatedGPU
from repro.core.report import ATTRIBUTES
from repro.units import KiB, MiB, format_size

TiBps = 1024.0**4


def _print_table(report) -> None:
    print(f"\n=== Table III — {report.general.model} ===")
    header = f"{'element':13s}" + "".join(f"{a[:14]:>16s}" for a in ATTRIBUTES)
    print(header)
    for name, el in report.memory.items():
        cells = "".join(f"{el.get(a).rendered()[:15]:>16s}" for a in ATTRIBUTES)
        print(f"{name:13s}{cells}")


class TestH100:
    """NVIDIA half of Table III."""

    def test_generate_table(self, benchmark, h100):
        report, _ = h100
        benchmark(lambda: [report.attribute(e, a) for e in report.memory for a in ATTRIBUTES])
        _print_table(report)

    # --- discrete attributes: exact (paper: "always match") ------------
    @pytest.mark.parametrize(
        "element,attribute,expected",
        [
            ("L1", "cache_line_size", 128),
            ("L1", "fetch_granularity", 32),
            ("L1", "amount", 1),
            ("Texture", "cache_line_size", 128),
            ("Readonly", "fetch_granularity", 32),
            ("ConstL1", "cache_line_size", 64),
            ("ConstL1", "fetch_granularity", 64),
            ("ConstL1.5", "fetch_granularity", 256),
            ("L2", "cache_line_size", 128),
            ("L2", "fetch_granularity", 32),
            ("L2", "amount", 2),
        ],
    )
    def test_discrete(self, h100, element, attribute, expected):
        report, _ = h100
        assert report.attribute(element, attribute).value == expected

    def test_sharing_l1tex_family(self, h100):
        report, _ = h100
        assert set(report.attribute("L1", "shared_with").value) == {"Readonly", "Texture"}
        assert report.attribute("ConstL1", "shared_with").value == ()

    # --- continuous attributes: close (tolerances per paper) -----------
    @pytest.mark.parametrize(
        "element,expected,rel",
        [
            ("L1", 238 * KiB, 0.03),
            ("Texture", 238 * KiB, 0.03),
            ("Readonly", 238 * KiB, 0.03),
            ("ConstL1", 2 * KiB, 0.10),
        ],
    )
    def test_sizes(self, h100, element, expected, rel):
        report, _ = h100
        assert report.attribute(element, "size").value == pytest.approx(expected, rel=rel)

    def test_l2_size_via_api(self, h100):
        report, _ = h100
        av = report.attribute("L2", "size")
        assert av.value == 50 * MiB and av.source.value == "api"

    @pytest.mark.parametrize(
        "element,true_latency",
        [("L1", 38), ("Texture", 39), ("Readonly", 35), ("ConstL1", 21),
         ("ConstL1.5", 105), ("L2", 220), ("SharedMem", 30), ("DeviceMemory", 843)],
    )
    def test_latencies(self, h100, element, true_latency):
        report, device = h100
        overhead = device.spec.noise.measurement_overhead
        measured = report.attribute(element, "load_latency").value
        assert measured == pytest.approx(true_latency + overhead, rel=0.08)

    @pytest.mark.parametrize(
        "element,op,expected",
        [
            ("L2", "read_bandwidth", 4.40 * TiBps),
            ("L2", "write_bandwidth", 3.40 * TiBps),
            ("DeviceMemory", "read_bandwidth", 2.50 * TiBps),
            ("DeviceMemory", "write_bandwidth", 2.70 * TiBps),
        ],
    )
    def test_bandwidths(self, h100, element, op, expected):
        report, _ = h100
        assert report.attribute(element, op).value == pytest.approx(expected, rel=0.10)

    # --- the honest inconclusive case -----------------------------------
    def test_cl15_lower_bound_conf_zero(self, h100):
        report, _ = h100
        av = report.attribute("ConstL1.5", "size")
        assert av.value == 64 * KiB  # reported as ">64KiB"
        assert av.confidence == 0.0
        assert "lower bound" in av.note
        assert report.attribute("ConstL1.5", "cache_line_size").value is None
        assert report.attribute("ConstL1.5", "amount").value is None


class TestMI210:
    """AMD half of Table III."""

    def test_generate_table(self, benchmark, mi210):
        report, _ = mi210
        benchmark(lambda: [report.attribute(e, a) for e in report.memory for a in ATTRIBUTES])
        _print_table(report)

    @pytest.mark.parametrize(
        "element,attribute,expected",
        [
            ("vL1", "cache_line_size", 64),
            ("vL1", "fetch_granularity", 64),
            ("vL1", "amount", 1),
            ("sL1d", "cache_line_size", 64),
            ("sL1d", "fetch_granularity", 64),
            ("L2", "cache_line_size", 128),  # via KFD
            ("L2", "fetch_granularity", 64),  # measured
            ("L2", "amount", 1),  # one XCD
        ],
    )
    def test_discrete(self, mi210, element, attribute, expected):
        report, _ = mi210
        assert report.attribute(element, attribute).value == expected

    @pytest.mark.parametrize(
        "element,expected,rel",
        [("vL1", 16 * KiB, 0.05), ("sL1d", 16 * KiB, 0.06)],
    )
    def test_sizes(self, mi210, element, expected, rel):
        report, _ = mi210
        assert report.attribute(element, "size").value == pytest.approx(expected, rel=rel)

    @pytest.mark.parametrize(
        "element,true_latency",
        [("vL1", 125), ("sL1d", 50), ("L2", 310), ("LDS", 55), ("DeviceMemory", 748)],
    )
    def test_latencies(self, mi210, element, true_latency):
        report, device = mi210
        overhead = device.spec.noise.measurement_overhead
        measured = report.attribute(element, "load_latency").value
        assert measured == pytest.approx(true_latency + overhead, rel=0.10)

    @pytest.mark.parametrize(
        "element,op,expected",
        [
            ("L2", "read_bandwidth", 4.19 * TiBps),
            ("L2", "write_bandwidth", 2.40 * TiBps),
            ("DeviceMemory", "read_bandwidth", 1.00 * TiBps),
            ("DeviceMemory", "write_bandwidth", 0.90 * TiBps),
        ],
    )
    def test_bandwidths(self, mi210, element, op, expected):
        report, _ = mi210
        assert report.attribute(element, op).value == pytest.approx(expected, rel=0.10)

    def test_sl1d_cu_map_reveals_exclusive_cus(self, mi210):
        report, _ = mi210
        av = report.attribute("sL1d", "shared_with")
        cu_map = av.value
        assert len(cu_map) == 104
        shared = sum(1 for partners in cu_map.values() if partners)
        exclusive = sum(1 for partners in cu_map.values() if not partners)
        print(f"\nMI210 sL1d: {shared} CUs share, {exclusive} exclusive")
        # 8 groups of 16 each fuse ids 13..15: CU with physical id 12
        # loses its partner -> one exclusive CU per group.
        assert exclusive == 8

    def test_no_l3_on_cdna2(self, mi210):
        report, _ = mi210
        assert "L3" not in report.memory


class TestKnownLimitations:
    """Section V: three benchmarks that return no result — honestly."""

    @pytest.fixture(scope="class")
    def p6000(self):
        device = SimulatedGPU.from_preset("P6000", seed=42)
        return MT4G(device).discover()

    def test_p6000_l1_amount_no_result(self, benchmark, p6000):
        av = benchmark(lambda: p6000.attribute("L1", "amount"))
        assert av.value is None
        assert "warp 3" in av.note

    def test_p6000_other_amounts_fine(self, p6000):
        # "The benchmark works on other Pascal caches" (paper Section V).
        assert p6000.attribute("ConstL1", "amount").value == 1
        assert p6000.attribute("Texture", "amount").value == 1

    def test_p6000_const_sharing_flaky(self, p6000):
        # Flakiness must be visible: spurious sharing or reduced confidence.
        l1 = p6000.attribute("L1", "shared_with")
        cl1 = p6000.attribute("ConstL1", "shared_with")
        flaky = (
            l1.confidence < 1.0
            or cl1.confidence < 1.0
            or "ConstL1" in (l1.value or ())
        )
        assert flaky

    def test_mi300x_cu_sharing_no_result(self):
        device = SimulatedGPU.from_preset("MI300X", seed=42)
        report = MT4G(device).discover()
        av = report.attribute("sL1d", "shared_with")
        assert av.value is None
        assert "virtualized" in av.note.lower() or "pinned" in av.note
        # ... while the CDNA3 L3 gaps of Section III-C hold too:
        assert report.attribute("L3", "load_latency").value is None
        assert report.attribute("L3", "fetch_granularity").value is None
        assert report.attribute("L3", "read_bandwidth").value > 0
