"""Session-scoped discovery fixtures shared by the benchmark modules.

Full discoveries on the paper presets run on the analytic measurement
engine (~1-3 s each; see benchmarks/bench_discovery_speed.py for the
before/after record); the benches time the experiment-specific work and
share these reports for the comparison/validation parts.
"""

from __future__ import annotations

import pytest

from repro import MT4G, SimulatedGPU

SEED = 42


def _discover(preset: str):
    device = SimulatedGPU.from_preset(preset, seed=SEED)
    return MT4G(device).discover(), device


@pytest.fixture(scope="session")
def h100():
    return _discover("H100-80")


@pytest.fixture(scope="session")
def mi210():
    return _discover("MI210")


@pytest.fixture(scope="session")
def a100():
    return _discover("A100")
