"""Paper Fig. 1 — pointer-chase hits/misses around the capacity boundary.

The figure walks a simplified 2-way cache with p-chase arrays of 8, 9 and
10 lines: an array that fits produces only hits after warm-up, an array
past the boundary produces a hit/miss mixture, and a clearly larger array
misses everywhere.  This bench reproduces the experiment on an explicit
2-way SimCache and prints the per-step traces like the figure's panels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.cache import SimCache

LINE = 64
WAYS = 2
SETS = 4  # capacity: 8 lines, like the figure's toy cache


def run_boundary_experiment() -> dict[int, np.ndarray]:
    """warm + timed pass per array size (in lines); returns hit vectors."""
    traces: dict[int, np.ndarray] = {}
    for n_lines in (8, 9, 10):
        cache = SimCache(
            size=SETS * LINE * WAYS,
            line_size=LINE,
            fetch_granularity=LINE,
            ways=WAYS,
        )
        addrs = np.arange(n_lines, dtype=np.int64) * LINE
        cache.warm_cyclic(addrs)  # the figure's warm-up rows
        traces[n_lines] = cache.access_many(addrs)  # the timed p-chase row
    return traces


def test_fig1_boundary_traces(benchmark):
    traces = benchmark(run_boundary_experiment)

    print("\n=== Fig. 1 — p-chase across the capacity boundary (8-line cache) ===")
    for n_lines, hits in traces.items():
        row = " ".join("H" if h else "M" for h in hits)
        print(f"array = {n_lines:2d} lines: {row}")

    # array size == capacity: all hits after the warm-up.
    assert traces[8].all()
    # one line past capacity: hits AND misses (the figure's middle panel):
    # only the overfull set thrashes.
    assert traces[9].any() and not traces[9].all()
    # further past capacity: more misses than at the boundary.
    assert (~traces[10]).sum() > (~traces[9]).sum()


def test_fig1_miss_localisation():
    """The misses of the 9-line case hit exactly the oversubscribed set."""
    cache = SimCache(SETS * LINE * WAYS, LINE, LINE, WAYS)
    addrs = np.arange(9, dtype=np.int64) * LINE
    cache.warm_cyclic(addrs)
    hits = cache.access_many(addrs)
    missed_sets = {int(a // LINE % SETS) for a in addrs[~hits]}
    assert missed_sets == {0}  # lines 0, 4, 8 collide in set 0


def test_fig1_warmup_necessity():
    """Without the warm-up pass even a fitting array measures misses —
    the reason Section IV-A mandates the untimed first pass."""
    cache = SimCache(SETS * LINE * WAYS, LINE, LINE, WAYS)
    addrs = np.arange(8, dtype=np.int64) * LINE
    cold_hits = cache.access_many(addrs)
    assert not cold_hits.any()
