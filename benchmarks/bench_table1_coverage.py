"""Paper Table I — coverage of provided information per memory element.

Regenerates the availability matrix (benchmarked / via API / not
available / not applicable) for one NVIDIA and one AMD device and checks
it cell-by-cell against the paper's table.

Legend mapping:  "!" -> benchmark, "!(API)" -> api, "#" -> unavailable,
"n/a" -> n/a, "+" (dagger) -> bandwidth only on higher levels (n/a here).
"""

from __future__ import annotations

import pytest

from repro.core.report import ATTRIBUTES, TopologyReport

# (element, attribute) -> expected source class, per paper Table I.
_B, _API, _NO, _NA = "benchmark", "api", "unavailable", "n/a"

NVIDIA_EXPECTED = {
    "L1":          {"size": _B, "load_latency": _B, "read_bandwidth": _NA, "cache_line_size": _B, "fetch_granularity": _B, "amount": _B, "shared_with": _B},
    "L2":          {"size": _API, "load_latency": _B, "read_bandwidth": _B, "cache_line_size": _B, "fetch_granularity": _B, "amount": _B, "shared_with": _NA},
    "Texture":     {"size": _B, "load_latency": _B, "read_bandwidth": _NA, "cache_line_size": _B, "fetch_granularity": _B, "amount": _B, "shared_with": _B},
    "Readonly":    {"size": _B, "load_latency": _B, "read_bandwidth": _NA, "cache_line_size": _B, "fetch_granularity": _B, "amount": _B, "shared_with": _B},
    "ConstL1":     {"size": _B, "load_latency": _B, "read_bandwidth": _NA, "cache_line_size": _B, "fetch_granularity": _B, "amount": _B, "shared_with": _B},
    "ConstL1.5":   {"size": _B, "load_latency": _B, "read_bandwidth": _NA, "cache_line_size": _NO, "fetch_granularity": _B, "amount": _NO, "shared_with": _NA},
    "SharedMem":   {"size": _API, "load_latency": _B, "read_bandwidth": _NA, "cache_line_size": _NA, "fetch_granularity": _NA, "amount": _NA, "shared_with": _NA},
    "DeviceMemory": {"size": _API, "load_latency": _B, "read_bandwidth": _B, "cache_line_size": _NA, "fetch_granularity": _NA, "amount": _NA, "shared_with": _NA},
}

AMD_EXPECTED = {
    "vL1":         {"size": _B, "load_latency": _B, "read_bandwidth": _NA, "cache_line_size": _B, "fetch_granularity": _B, "amount": _B, "shared_with": _NA},
    "sL1d":        {"size": _B, "load_latency": _B, "read_bandwidth": _NA, "cache_line_size": _B, "fetch_granularity": _B, "amount": _NA, "shared_with": _B},
    "L2":          {"size": _API, "load_latency": _B, "read_bandwidth": _B, "cache_line_size": _API, "fetch_granularity": _B, "amount": _API, "shared_with": _NA},
    "LDS":         {"size": _API, "load_latency": _B, "read_bandwidth": _NA, "cache_line_size": _NA, "fetch_granularity": _NA, "amount": _NA, "shared_with": _NA},
    "DeviceMemory": {"size": _API, "load_latency": _B, "read_bandwidth": _B, "cache_line_size": _NA, "fetch_granularity": _NA, "amount": _NA, "shared_with": _NA},
}


def coverage_matrix(report: TopologyReport) -> dict[str, dict[str, str]]:
    """Classify every (element, attribute) cell like Table I's legend."""
    matrix: dict[str, dict[str, str]] = {}
    for name, element in report.memory.items():
        row = {}
        for attr in ATTRIBUTES:
            av = element.get(attr)
            if av.source.value == "n/a":
                row[attr] = _NA
            elif av.source.value == "api":
                row[attr] = _API
            elif av.source.value == "unavailable":
                row[attr] = _NO
            else:
                row[attr] = _B
        matrix[name] = row
    return matrix


def _print_matrix(title: str, matrix: dict[str, dict[str, str]]) -> None:
    cols = ["size", "load_latency", "read_bandwidth", "cache_line_size",
            "fetch_granularity", "amount", "shared_with"]
    print(f"\n=== Table I coverage — {title} ===")
    print(f"{'element':14s} " + " ".join(f"{c[:10]:>11s}" for c in cols))
    for element, row in matrix.items():
        print(f"{element:14s} " + " ".join(f"{row[c]:>11s}" for c in cols))


@pytest.mark.parametrize("side", ["nvidia", "amd"])
def test_table1_coverage(benchmark, side, h100, mi210):
    report, _ = h100 if side == "nvidia" else mi210
    expected = NVIDIA_EXPECTED if side == "nvidia" else AMD_EXPECTED

    matrix = benchmark(coverage_matrix, report)
    _print_matrix(report.general.model, matrix)

    mismatches = []
    for element, row in expected.items():
        for attr, want in row.items():
            got = matrix[element][attr]
            if got != want:
                mismatches.append(f"{element}.{attr}: want {want}, got {got}")
    assert not mismatches, "\n".join(mismatches)
