"""Observability overhead bench: tracing-on vs tracing-off warm RPS.

Reuses the serve-path SUT harness (``bench_serve``): the service on a
background event loop, real keep-alive HTTP/1.1 over real sockets.

Two server configurations, identical except for the telemetry plane:

* ``tracing-off`` — the PR-9 optimized server, observability disabled
  (the default: a single ``None`` check on every hot-path probe);
* ``tracing-on`` — the same server with ``--trace`` active, so every
  request mints a root span, records its hot-cache lookup, and stamps
  ``X-MT4G-Request-Id`` / ``traceparent`` response headers.

The quantity under test is a few microseconds of per-request cost on a
path that takes ~100µs end to end, so the measurement design matters
more than the load volume:

* **Both servers run at once** and the load alternates between them
  **request by request**, so each paired sample executes within a few
  hundred microseconds of its partner — machine-level drift (VM steal,
  frequency scaling, cron) moves on multi-second scales and cancels
  out of the pair entirely.  Which server goes first alternates every
  pair, so ordering effects cancel too.
* The overhead estimate is the **ratio of 20%-trimmed sums** of the
  per-request times (a trimmed-throughput ratio), then the **median
  across independent reps** — a descheduled request (or a polluted
  rep) cannot drag the estimate.
* The clients are plain in-process threads.  Benchmark runners here are
  single-CPU, so forked load processes just hand the µs-scale signal to
  the kernel scheduler; in-process clients alternate deterministically
  under the GIL and tax both servers identically.

Asserted invariants (the acceptance bar of PR-10):

* warm report-json RPS with tracing on regresses **< 10%** against
  tracing off (recorded in ``BENCH_obs.json`` at the repo root);
* bytes served with tracing on are identical to ``mt4g --no-cache -j``.

    PYTHONPATH=src python -m pytest benchmarks/bench_obs.py -q -s

``MT4G_BENCH_SERVE_SCALE=smoke`` shrinks the sweep for CI; the
committed artifact is a full-scale recording.
"""

from __future__ import annotations

import json
import statistics
import tempfile
from pathlib import Path
from time import perf_counter

import pytest
from bench_serve import REPORT_PATH, SCALE, KeepAliveClient, ServeHarness

from repro import MT4G, SimulatedGPU
from repro.cache.tiers import build_worker_cache
from repro.core.output.json_out import to_json

PRESET = "TestGPU-NV"
SEED = 0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: The acceptance ceiling: tracing-on may cost at most this fraction of
#: tracing-off warm report-json throughput.
MAX_REGRESSION = 0.10

#: Paired requests per rep.  Each pair is one request to each server,
#: timed individually, back to back.
PAIRS = 600 if SCALE == "smoke" else 3000
REPS = 3 if SCALE == "smoke" else 5
WARMUP = 300

OPTIMIZED = {
    "keep_alive_timeout": 60.0,
    "hot_cache_bytes": 64 << 20,
    "catalog_ttl": 2.0,
}


def run_paired(
    harness_off: ServeHarness, harness_on: ServeHarness
) -> tuple[list[float], list[float]]:
    """Request-interleaved load over both servers; per-request times."""
    client_off = KeepAliveClient(harness_off.host, harness_off.port)
    client_on = KeepAliveClient(harness_on.host, harness_on.port)
    try:
        for _ in range(WARMUP):
            client_off.request(REPORT_PATH)
            client_on.request(REPORT_PATH)
        times_off: list[float] = []
        times_on: list[float] = []
        for pair in range(PAIRS):
            order = [(times_off, client_off), (times_on, client_on)]
            if pair % 2:  # alternate which server goes first
                order.reverse()
            for acc, client in order:
                start = perf_counter()
                status, _ = client.request(REPORT_PATH)
                acc.append(perf_counter() - start)
                if status != 200:
                    raise RuntimeError(f"HTTP {status} under load")
        return times_off, times_on
    finally:
        client_off.close()
        client_on.close()


def trimmed_overhead(times_off: list[float], times_on: list[float]) -> float:
    """Ratio of 20%-trimmed sums of per-request times, as a pct.

    Trimming each side independently drops scheduler-preempted
    outliers (a tick landing on a ~150µs request inflates it 10–30x);
    the ratio of the surviving mass is a robust throughput ratio.
    """

    def trimmed_sum(times: list[float]) -> float:
        ordered = sorted(times)
        k = len(ordered) // 5
        return sum(ordered[k : len(ordered) - k] if k else ordered)

    return (trimmed_sum(times_on) / trimmed_sum(times_off) - 1.0) * 100.0


@pytest.fixture(scope="module")
def results():
    out: dict = {
        "schema": "mt4g-bench-obs/3",
        "preset": PRESET,
        "seed": SEED,
        "scale": SCALE,
        "method": "request-interleaved pairs, trimmed-sum ratio, median of reps",
        "pairs": PAIRS,
        "reps": REPS,
        "rep_overhead_pct": [],
        "warm_rps": {},
        "tracing_overhead_pct": None,
    }
    cli_bytes = (
        to_json(MT4G(SimulatedGPU.from_preset(PRESET, seed=SEED)).discover()) + "\n"
    ).encode()
    requests_per_side = PAIRS
    best_rps = {"tracing-off": 0.0, "tracing-on": 0.0}
    spans_recorded = 0
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        warm_store = build_worker_cache(store_dir)
        MT4G(
            SimulatedGPU.from_preset(PRESET, seed=SEED), cache=warm_store
        ).discover()
        for _rep in range(REPS):
            harness_off = ServeHarness(build_worker_cache(store_dir), **OPTIMIZED)
            harness_on = ServeHarness(
                build_worker_cache(store_dir), trace=True, **OPTIMIZED
            )
            with harness_off, harness_on:
                for harness in (harness_off, harness_on):
                    probe = KeepAliveClient(harness.host, harness.port)
                    status, body = probe.request(REPORT_PATH)
                    probe.close()
                    assert status == 200 and body == cli_bytes
                times_off, times_on = run_paired(harness_off, harness_on)
                spans_recorded += harness_on.service.tracer.stats()[
                    "spans_recorded"
                ]
            out["rep_overhead_pct"].append(
                round(trimmed_overhead(times_off, times_on), 2)
            )
            best_rps["tracing-off"] = max(
                best_rps["tracing-off"],
                round(requests_per_side / sum(times_off), 1),
            )
            best_rps["tracing-on"] = max(
                best_rps["tracing-on"],
                round(requests_per_side / sum(times_on), 1),
            )
    out["warm_rps"] = best_rps
    out["tracing_overhead_pct"] = round(
        statistics.median(out["rep_overhead_pct"]), 2
    )
    out["spans_recorded"] = spans_recorded
    out["traced_bytes_identical"] = True  # asserted per rep above
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    return out


def test_tracing_overhead_under_ceiling(results):
    overhead = results["tracing_overhead_pct"]
    assert overhead < MAX_REGRESSION * 100.0, (
        f"tracing-on warm report-json throughput regresses {overhead}% "
        f"(ceiling {MAX_REGRESSION:.0%}; reps {results['rep_overhead_pct']})"
    )


def test_traced_server_actually_traced(results):
    # The comparison is honest only if the traced server really
    # recorded spans under load.
    assert results["spans_recorded"] > 0
    assert results["traced_bytes_identical"] is True
