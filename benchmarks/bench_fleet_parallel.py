"""Fleet runner wall time: concurrent vs. sequential discovery.

Runs the same >= 4-preset fleet twice — once sequentially in-process,
once through the process pool — verifies the reports are byte-identical
(parallelism must never change results), and records the walls to
``BENCH_fleet.json`` at the repository root:

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_parallel.py -q -s

Discovery is CPU-bound numpy work, so the achievable speedup is
``min(jobs, physical cores)``; the JSON records the host's CPU count
alongside the walls so the number is interpretable.  The speedup floor
is only asserted where parallelism is physically possible (>= 2 cores —
on a single-core host the pool can only add overhead, and the record
documents that honestly).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.validate.fleet import discover_fleet

SEED = 0
#: >= 4 presets, mixing both vendors and both report shapes.
PRESETS = ("TestGPU-NV", "TestGPU-NV-2SEG", "TestGPU-AMD", "TestGPU-AMD-L3")
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: With >= 2 cores the pool must recover at least this fraction of the
#: sequential wall (conservative: worker startup and pickling cost real
#: time on the small testing presets).
MIN_SPEEDUP_MULTICORE = 1.2


def _reports_digest(result) -> str:
    return json.dumps(result.as_dict()["reports"], default=str, sort_keys=True)


@pytest.fixture(scope="module")
def results():
    t0 = time.perf_counter()
    sequential = discover_fleet(PRESETS, seed=SEED, validate=True, parallel=False)
    sequential_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    concurrent = discover_fleet(PRESETS, seed=SEED, validate=True, jobs=len(PRESETS))
    concurrent_wall = time.perf_counter() - t0

    out = {
        "seed": SEED,
        "presets": list(PRESETS),
        "jobs": concurrent.jobs,
        "cpu_count": os.cpu_count(),
        "sequential_wall_seconds": round(sequential_wall, 4),
        "concurrent_wall_seconds": round(concurrent_wall, 4),
        "speedup": round(sequential_wall / concurrent_wall, 2),
        "reports_identical": _reports_digest(sequential) == _reports_digest(concurrent),
        "verdicts": concurrent.verdicts(),
    }
    if (os.cpu_count() or 1) < 2:
        out["note"] = (
            "recorded on a single-core host: the speedup column measures "
            "process-pool overhead only, not the min(jobs, cores) scaling; "
            "re-record on a multi-core host for a meaningful figure"
        )
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    return out


def test_parallelism_never_changes_results(results):
    assert results["reports_identical"], "concurrent fleet diverged from sequential"


def test_all_verdicts_clean(results):
    assert all(v == "pass" for v in results["verdicts"].values()), results["verdicts"]


def test_wall_clock_recorded_and_speedup_where_possible(results):
    print(
        f"\n=== fleet wall time ({len(PRESETS)} presets, "
        f"{results['jobs']} workers, {results['cpu_count']} cores) "
        f"-> {OUT_PATH.name} ==="
    )
    print(
        f"sequential {results['sequential_wall_seconds']:6.2f}s  "
        f"concurrent {results['concurrent_wall_seconds']:6.2f}s  "
        f"speedup {results['speedup']:5.2f}x"
    )
    assert results["sequential_wall_seconds"] > 0
    assert results["concurrent_wall_seconds"] > 0
    if (os.cpu_count() or 1) >= 2:
        assert results["speedup"] >= MIN_SPEEDUP_MULTICORE, (
            f"fleet pool only {results['speedup']}x faster on a "
            f"{os.cpu_count()}-core host (floor {MIN_SPEEDUP_MULTICORE}x)"
        )
