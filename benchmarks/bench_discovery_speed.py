"""End-to-end discovery wall time: analytic vs. exact engine.

Times a full ``MT4G(...).discover()`` on the paper's machines (Table II)
with both measurement engines, asserts the analytic engine reproduces
the exact engine's :class:`TopologyReport` byte for byte, and records
the results to ``BENCH_discovery.json`` at the repository root:

    PYTHONPATH=src python -m pytest benchmarks/bench_discovery_speed.py -q -s

The JSON carries, per preset: wall seconds for both engines, the
speedup, the simulated GPU seconds of the Section V-A run-time model,
the equivalence verdict — the before/after record the ROADMAP's
performance section points at — and the warm-reuse accounting of the
fresh p-chase probes: how many executed a real flush + full warm versus
extending (growing probe) or truncating (binary-descent probe) the
previous fixed point, with and without the descent (shrink) reuse path.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro import MT4G, SimulatedGPU
from repro.pchase.config import PChaseConfig
from repro.pchase.runner import PChaseRunner

SEED = 42
PRESETS = ("A100", "H100-80", "MI210")
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_discovery.json"

#: The analytic engine must beat the exact engine by at least this factor
#: end-to-end.  Note the exact engine itself already benefits from the
#: vectorised warm-up rewrite; against the pre-engine baseline (see
#: SEED_BASELINE_WALL) the analytic engine lands at ~9-14x.
MIN_SPEEDUP = 3.0

#: Wall seconds of the pre-engine implementation (commit ee4beb4, same
#: host class) — the "before" of the before/after record.  Informational:
#: asserted speedups are measured against the in-repo exact engine, which
#: is reproducible on any host.
SEED_BASELINE_WALL = {"A100": 10.95, "H100-80": 11.93, "MI210": 26.42}


def _timed_discovery(preset: str, engine: str) -> tuple[dict, float, float, dict]:
    device = SimulatedGPU.from_preset(preset, seed=SEED)
    tool = MT4G(device, config=PChaseConfig(engine=engine))
    start = time.perf_counter()
    report = tool.discover()
    wall = time.perf_counter() - start
    return report.as_dict(), wall, device.elapsed_seconds(), dict(tool.ctx.runner.stats)


def _descent_stats_without_shrink_reuse(preset: str) -> dict:
    """Warm-reuse accounting with the descent path disabled (the
    pre-truncation behaviour: a shrinking probe falls back to flush +
    full warm) — the "before" half of the before/after record."""
    original = PChaseRunner._incremental_from

    def legacy(self, key, nbytes):
        warmed = original(self, key, nbytes)
        if warmed is not None and warmed > nbytes:
            return None
        return warmed

    PChaseRunner._incremental_from = legacy
    try:
        *_, stats = _timed_discovery(preset, "analytic")
    finally:
        PChaseRunner._incremental_from = original
    return stats


@pytest.fixture(scope="module")
def results():
    out: dict[str, dict] = {}
    for preset in PRESETS:
        exact_report, exact_wall, exact_sim, _ = _timed_discovery(preset, "exact")
        analytic_report, analytic_wall, analytic_sim, probe_stats = _timed_discovery(
            preset, "analytic"
        )
        identical = json.dumps(analytic_report, default=str, sort_keys=True) == (
            json.dumps(exact_report, default=str, sort_keys=True)
        )
        out[preset] = {
            "seed": SEED,
            "analytic_wall_seconds": round(analytic_wall, 4),
            "exact_wall_seconds": round(exact_wall, 4),
            "speedup": round(exact_wall / analytic_wall, 2),
            "baseline_wall_seconds": SEED_BASELINE_WALL.get(preset),
            "speedup_vs_pre_engine_baseline": round(
                SEED_BASELINE_WALL[preset] / analytic_wall, 2
            )
            if preset in SEED_BASELINE_WALL
            else None,
            "simulated_gpu_seconds": analytic_sim,
            "reports_identical": identical,
            "probe_warms": probe_stats,
            "probe_warms_without_shrink_reuse": _descent_stats_without_shrink_reuse(
                preset
            ),
        }
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    return out


def test_engines_produce_identical_reports(results):
    for preset, r in results.items():
        assert r["reports_identical"], f"{preset}: analytic != exact report"


def test_analytic_engine_is_faster(results):
    print(f"\n=== discovery wall time (seed {SEED}) -> {OUT_PATH.name} ===")
    for preset, r in results.items():
        print(
            f"{preset:>8}: analytic {r['analytic_wall_seconds']:6.2f}s"
            f"  exact {r['exact_wall_seconds']:6.2f}s"
            f"  speedup {r['speedup']:5.1f}x"
        )
    for preset, r in results.items():
        assert r["speedup"] >= MIN_SPEEDUP, (
            f"{preset}: analytic engine only {r['speedup']}x faster "
            f"(floor {MIN_SPEEDUP}x)"
        )


def test_simulated_runtime_model_recorded(results):
    """The Section V-A run-time model numbers land in the JSON record.

    Engine independence of the model itself is covered by the
    byte-identical report assertion (the report embeds
    ``simulated_gpu_seconds``).
    """
    for preset, r in results.items():
        assert r["simulated_gpu_seconds"] > 0


def test_descent_probes_reuse_warm_state(results):
    """Binary-descent probes no longer trigger flush + full warm.

    With the shrink path on, descending probes truncate the warmed fixed
    point; with it off (the pre-truncation behaviour) every one of those
    probes pays a flush + full re-warm instead.
    """
    print("\n=== fresh-probe warm accounting (full/suffix/shrink) ===")
    for preset, r in results.items():
        now, before = r["probe_warms"], r["probe_warms_without_shrink_reuse"]
        print(
            f"{preset:>8}: with reuse {now['full_warms']}/{now['suffix_warms']}"
            f"/{now['shrink_warms']}"
            f"   without shrink reuse {before['full_warms']}"
            f"/{before['suffix_warms']}/{before['shrink_warms']}"
        )
    for preset, r in results.items():
        now, before = r["probe_warms"], r["probe_warms_without_shrink_reuse"]
        assert now["shrink_warms"] > 0, f"{preset}: descent never reused warm state"
        assert before["shrink_warms"] == 0
        assert now["full_warms"] < before["full_warms"], (
            f"{preset}: shrink reuse did not reduce flush + full warms "
            f"({now['full_warms']} vs {before['full_warms']})"
        )
        # Identical probe population either way — reuse only changes how
        # the warm state is reached, never how many probes run.
        assert now["fresh_runs"] == before["fresh_runs"]
