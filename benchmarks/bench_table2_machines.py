"""Paper Table II + Section V-A — the ten validation machines and their
discovery run times.

Runs the complete discovery on every preset of Table II (this *is* the
paper's validation campaign, so the bench times each machine's full
pipeline), then reproduces the Section V-A observations:

* NVIDIA runs execute roughly 35 benchmarks, AMD roughly 15;
* NVIDIA discoveries are substantially more expensive than AMD ones
  (paper: 6-14 min vs ~1-2 min on real hardware; the simulated/modeled
  times only need to preserve the ratio's direction);
* the L2 benchmarks dominate the NVIDIA run time (paper: 4.5 of
  12.25 min on the A100).
"""

from __future__ import annotations

import pytest

from repro import MT4G, SimulatedGPU
from repro.gpuspec.presets import PAPER_PRESETS
from repro.gpuspec.spec import Vendor

_RESULTS: dict[str, object] = {}


def _discover(name: str):
    device = SimulatedGPU.from_preset(name, seed=42)
    report = MT4G(device).discover()
    _RESULTS[name] = report
    return report


@pytest.mark.parametrize("name", list(PAPER_PRESETS))
def test_table2_machine(benchmark, name):
    report = benchmark.pedantic(_discover, args=(name,), rounds=1, iterations=1)
    r = report.runtime
    print(
        f"\n{name:10s} vendor={report.general.vendor:6s} "
        f"uarch={report.general.microarchitecture:8s} "
        f"benchmarks={r.benchmarks_executed:3d} "
        f"modeled={r.modeled_total_seconds:7.1f}s "
        f"(gpu {r.simulated_gpu_seconds:6.1f}s)"
    )
    assert set(report.memory)  # every machine produces a report
    expected = 30 if report.general.vendor == "NVIDIA" else 12
    assert r.benchmarks_executed >= expected


def test_section5a_runtime_observations():
    """NVIDIA >> AMD run time; ~35 vs ~15 benchmarks; L2 dominates."""
    assert len(_RESULTS) == len(PAPER_PRESETS), "machine benches must run first"
    nvidia = {n: r for n, r in _RESULTS.items()
              if r.general.vendor == "NVIDIA"}
    amd = {n: r for n, r in _RESULTS.items() if r.general.vendor == "AMD"}

    nv_counts = [r.runtime.benchmarks_executed for r in nvidia.values()]
    amd_counts = [r.runtime.benchmarks_executed for r in amd.values()]
    print(f"\nbenchmark counts: NVIDIA {nv_counts} vs AMD {amd_counts}")
    assert min(nv_counts) > max(amd_counts)

    nv_time = sum(r.runtime.modeled_total_seconds for r in nvidia.values()) / len(nvidia)
    amd_time = sum(r.runtime.modeled_total_seconds for r in amd.values()) / len(amd)
    print(f"mean modeled time: NVIDIA {nv_time:.1f}s vs AMD {amd_time:.1f}s")
    assert nv_time > amd_time

    # L2 dominance on a big-L2 NVIDIA machine (paper: A100).
    a100 = _RESULTS["A100"]
    per = a100.runtime.per_benchmark_seconds
    l2_share = sum(v for k, v in per.items() if k.endswith(":L2"))
    total = a100.runtime.simulated_gpu_seconds
    print(f"A100 L2 share of simulated GPU time: {l2_share / total:.0%}")
    assert l2_share / total > 0.30
