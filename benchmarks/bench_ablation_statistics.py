"""Ablations of the paper's statistical design choices (contribution C3).

The paper argues for a specific evaluation stack: the Eq. 2 geometric
reduction (over per-size means or maxima), a non-parametric K-S
change-point detector (over threshold rules), outlier scrubbing with
interval widening, and a mandatory warm-up pass.  Each ablation below
removes one ingredient and measures the damage on controlled synthetic
or simulated data — quantifying *why* the design is what it is.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benchmarks.base import BenchmarkContext
from repro.core.benchmarks.size import measure_cache_size
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.isa import LoadKind
from repro.gpusim.kernel import run_pchase
from repro.stats.changepoint import detect_change_point
from repro.stats.outliers import scrub_outliers
from repro.stats.reduction import geometric_reduction

RNG_SEEDS = range(12)
N_SIZES, N_SAMPLES, BOUNDARY = 96, 128, 48
HIT, MISS, SPIKE = 30.0, 110.0, 420.0


def synthetic_sweep(seed: int, spike_rate: float) -> np.ndarray:
    """A latency matrix with a capacity ramp at BOUNDARY plus spiky noise."""
    rng = np.random.default_rng(seed)
    matrix = np.empty((N_SIZES, N_SAMPLES))
    for i in range(N_SIZES):
        if i < BOUNDARY:
            base = np.full(N_SAMPLES, HIT)
        else:
            # concave miss ramp: more thrashed sets as the array grows
            frac = min(1.0, (i - BOUNDARY + 1) / 12)
            n_miss = max(2, int(N_SAMPLES * frac))
            base = np.full(N_SAMPLES, HIT)
            base[:n_miss] = MISS
        base = base + rng.normal(0, 1.5, N_SAMPLES)
        spikes = rng.random(N_SAMPLES) < spike_rate
        base[spikes] += SPIKE
        matrix[i] = base
    return matrix


def cp_error(series: np.ndarray) -> int:
    cp = detect_change_point(series)
    if cp is None or not cp.significant:
        return N_SIZES
    return abs(cp.index - BOUNDARY)


class TestReductionAblation:
    """Eq. 2 reduction vs per-size mean vs per-size maximum."""

    def test_reduction_function_choice(self, benchmark):
        # Compare full pipelines (scrub + CPD), holding everything but the
        # reduction function fixed — exactly the tool's configuration.
        # Spike rates bracket the simulator's noise model (0.2 %/load).
        def run():
            errors = {"eq2_reduction": [], "mean": [], "maximum": []}
            for rate in (0.002, 0.004, 0.01):
                for seed in RNG_SEEDS:
                    matrix = synthetic_sweep(seed, spike_rate=rate)
                    series = {
                        "eq2_reduction": geometric_reduction(matrix),
                        "mean": matrix.mean(axis=1),
                        "maximum": matrix.max(axis=1),
                    }
                    for name, s in series.items():
                        errors[name].append(cp_error(scrub_outliers(s)))
            return {k: float(np.mean(v)) for k, v in errors.items()}

        mean_errors = benchmark(run)
        print("\n=== ablation: reduction function (mean CP error, steps) ===")
        for name, err in mean_errors.items():
            print(f"  {name:14s}: {err:6.2f}")
        # The Fig. 2 caption's claim: the per-size maximum is prone to
        # outliers — it must localise far worse than the Eq. 2 reduction;
        # the mean and the reduction are comparable on this signal.
        assert mean_errors["eq2_reduction"] < mean_errors["maximum"] / 2
        assert mean_errors["eq2_reduction"] <= mean_errors["mean"] + 3.0


class TestScrubbingAblation:
    """Outlier scrubbing before CPD (workflow step 3)."""

    @pytest.mark.parametrize("spike_rate", [0.0, 0.02, 0.08])
    def test_scrubbing_helps_under_noise(self, spike_rate):
        with_scrub, without_scrub = [], []
        for seed in RNG_SEEDS:
            matrix = synthetic_sweep(seed, spike_rate)
            reduced = geometric_reduction(matrix)
            with_scrub.append(cp_error(scrub_outliers(reduced)))
            without_scrub.append(cp_error(reduced))
        print(f"\nspike rate {spike_rate:.2f}: CP error "
              f"scrubbed {np.mean(with_scrub):.2f} vs raw {np.mean(without_scrub):.2f}")
        # Scrubbing never hurts, and a clean signal stays clean.
        assert np.mean(with_scrub) <= np.mean(without_scrub) + 0.25
        if spike_rate == 0.0:
            assert np.mean(with_scrub) < 1.5


class TestWarmupAblation:
    """Section IV-A: the warm-up pass is what makes in-cache runs quiet."""

    def test_warmup_separates_fit_from_overflow(self, benchmark):
        def run():
            device = SimulatedGPU.from_preset("TestGPU-NV", seed=5)
            base = device.alloc(LoadKind.LD_GLOBAL_CA, 1 << 16)
            fits = {}
            for warmup in (1, 0):
                device.flush_caches()
                lat = run_pchase(
                    device, LoadKind.LD_GLOBAL_CA, base, 2048, 32,
                    warmup_passes=warmup, flush=True,
                )
                fits[warmup] = float(lat.mean())
            return fits

        means = benchmark(run)
        print(f"\nwarm-up ablation: warmed {means[1]:.1f} cyc vs cold {means[0]:.1f} cyc")
        # Without warm-up even a fitting array looks slow — the size
        # benchmark would see a cliff at every size.
        assert means[0] > means[1] + 30


class TestSamplingAblation:
    """First-N capture: how few samples can the pipeline survive?"""

    @pytest.mark.parametrize("n_samples", [384, 96, 24])
    def test_size_benchmark_vs_sample_count(self, n_samples):
        from repro.pchase.config import PChaseConfig

        ctx = BenchmarkContext(
            SimulatedGPU.from_preset("TestGPU-NV", seed=9),
            PChaseConfig(n_samples=n_samples),
        )
        m = measure_cache_size(ctx, LoadKind.LD_GLOBAL_CA, "L1", 32,
                               lo=1024, hi_cap=1 << 20)
        print(f"\nn_samples={n_samples}: measured {m.value} (truth 4096), "
              f"confidence {m.confidence:.3f}")
        assert m.conclusive
        assert abs(m.value - 4096) / 4096 < 0.15


class TestWideningAblation:
    """Interval widening rescues a boundary near the sweep edge."""

    def test_widening_rescues_tight_interval(self):
        # Start the search at a lower bound very close to the capacity:
        # the first sweep window hugs the boundary and the change point
        # lands near the edge, forcing at least one widening round.
        ctx = BenchmarkContext(SimulatedGPU.from_preset("TestGPU-NV", seed=13))
        m = measure_cache_size(ctx, LoadKind.LD_GLOBAL_CA, "L1", 32,
                               lo=4000, hi_cap=1 << 20)
        assert m.conclusive
        assert abs(m.value - 4096) / 4096 < 0.15
