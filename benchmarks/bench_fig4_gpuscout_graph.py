"""Paper Fig. 4 — the GPUscout-GUI Memory Graph component.

The figure shows the GUI's memory-graph visualisation: kernel, caches and
device memory as nodes, annotated with the MT4G-provided sizes next to
the NCU-provided hit rates and traffic.  This bench regenerates that
graph for a synthetic kernel profile on the H100 report and checks that
every annotation the paper calls out is present and correctly sourced
(sizes from MT4G, dynamics from the profiler).
"""

from __future__ import annotations

import pytest

from repro.integrations.gpuscout import GPUscoutContext, NCUCounters
from repro.units import KiB, MiB, format_size

COUNTERS = NCUCounters(
    kernel_name="stencil_3d",
    l1_hit_rate=0.62,
    l2_hit_rate=0.48,
    l1_bytes=3_200 * MiB,
    l2_bytes=1_220 * MiB,
    dram_bytes=640 * MiB,
    registers_per_thread=96,
    threads_per_block=256,
    blocks_per_sm=4,
    shared_bytes_per_block=48 * KiB,
    local_spill_bytes=0,
    working_set_per_block=96 * KiB,
)


def build_context(report):
    ctx = GPUscoutContext(report, COUNTERS)
    return ctx.memory_graph(), ctx.recommendations()


def test_fig4_memory_graph(benchmark, h100):
    report, _ = h100
    graph, recommendations = benchmark(build_context, report)

    print("\n=== Fig. 4 — GPUscout memory graph (H100-80) ===")
    for node, data in graph.nodes(data=True):
        size = data.get("size")
        hit = data.get("hit_rate")
        bits = [f"kind={data['kind']}"]
        if size:
            bits.append(f"size={format_size(size)} [MT4G]")
        if hit is not None:
            bits.append(f"hit rate={hit:.0%} [NCU]")
        print(f"  {node:14s} " + "  ".join(bits))
    for u, v, data in graph.edges(data=True):
        print(f"  {u:>14s} -> {v:14s} traffic={format_size(data['bytes'])}")
    print("recommendations:")
    for r in recommendations:
        print(f"  [{r.severity}] {r.code}: {r.message[:90]}")

    # MT4G context attached to the graph (the integration's whole point).
    assert graph.nodes["L1"]["size"] == report.attribute("L1", "size").value
    assert graph.nodes["L2"]["size"] == 50 * MiB
    assert graph.nodes["L1"]["shared_with"] == report.attribute("L1", "shared_with").value
    # NCU dynamics attached too.
    assert graph.nodes["L1"]["hit_rate"] == COUNTERS.l1_hit_rate
    assert graph.edges["L2", "DeviceMemory"]["bytes"] == COUNTERS.dram_bytes


def test_fig4_recommendations_use_mt4g_numbers(h100):
    report, _ = h100
    _, recommendations = build_context(report)
    codes = {r.code for r in recommendations}
    # 4 blocks x 96 KiB working set = 384 KiB > 238 KiB L1 at 62% hit rate.
    assert "l1-working-set" in codes
    message = next(r for r in recommendations if r.code == "l1-working-set").message
    # the MT4G-measured L1 size appears verbatim (~238 KiB)
    measured_l1 = report.attribute("L1", "size").value
    from repro.units import format_size as _fs
    assert _fs(measured_l1) in message

    # 96 regs x 256 threads x 4 blocks = 98304 > 65536 registers per SM.
    assert "register-spilling" in codes


def test_fig4_healthy_profile_is_quiet(h100):
    report, _ = h100
    quiet = NCUCounters(
        kernel_name="axpy",
        l1_hit_rate=0.97,
        l2_hit_rate=0.92,
        l1_bytes=10 * MiB,
        l2_bytes=1 * MiB,
        dram_bytes=64 * KiB,
        registers_per_thread=32,
        threads_per_block=128,
        blocks_per_sm=2,
        working_set_per_block=16 * KiB,
    )
    recs = GPUscoutContext(report, quiet).recommendations()
    assert [r.code for r in recs] == ["no-bottleneck"]
