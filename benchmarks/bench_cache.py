"""Cold vs. warm-cache discovery walls (the cache subsystem's record).

Runs a full discovery per paper preset against a fresh content-addressed
store (cold: measure + store), repeats it (warm: served from the store),
and records both walls to ``BENCH_cache.json`` at the repository root:

    PYTHONPATH=src python -m pytest benchmarks/bench_cache.py -q -s

Asserted invariants (the acceptance bar of the caching work):

* warm-cache rediscovery is at least 10x faster than cold on every
  preset (in practice it is a hash lookup + unpickle, thousands of x);
* the cached, cold, analytic and exact reports are byte-identical
  (provenance meta aside — a hit legitimately knows it was a hit).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import pytest

from repro import MT4G, DiscoveryCache, SimulatedGPU
from repro.pchase.config import PChaseConfig

SEED = 42
PRESETS = ("A100", "H100-80", "MI210")
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cache.json"

#: Warm-cache rediscovery must beat cold discovery at least this much.
MIN_WARM_SPEEDUP = 10.0


def _content(report) -> str:
    return json.dumps(report.content_dict(), default=str, sort_keys=True)


def _discover(preset: str, engine: str, store: DiscoveryCache | None):
    device = SimulatedGPU.from_preset(preset, seed=SEED)
    tool = MT4G(device, config=PChaseConfig(engine=engine), cache=store)
    start = time.perf_counter()
    report = tool.discover()
    return report, time.perf_counter() - start


@pytest.fixture(scope="module")
def results():
    out: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for preset in PRESETS:
            store = DiscoveryCache(Path(tmp) / preset)
            cold_report, cold_wall = _discover(preset, "analytic", store)
            warm_report, warm_wall = _discover(preset, "analytic", store)
            plain_report, _ = _discover(preset, "analytic", None)
            exact_report, _ = _discover(preset, "exact", None)
            reference = _content(plain_report)
            out[preset] = {
                "seed": SEED,
                "cold_wall_seconds": round(cold_wall, 4),
                "warm_wall_seconds": round(warm_wall, 6),
                "warm_speedup": round(cold_wall / warm_wall, 1),
                "cold_cache_status": cold_report.meta["cache"]["status"],
                "warm_cache_status": warm_report.meta["cache"]["status"],
                "reports_identical": (
                    _content(cold_report) == reference
                    and _content(warm_report) == reference
                    and _content(exact_report) == reference
                ),
            }
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    return out


def test_cached_cold_analytic_exact_reports_identical(results):
    for preset, r in results.items():
        assert r["reports_identical"], f"{preset}: cached/cold/analytic/exact differ"
        assert r["cold_cache_status"] == "miss"
        assert r["warm_cache_status"] == "hit"


def test_warm_cache_rediscovery_speedup(results):
    print(f"\n=== cold vs warm-cache discovery (seed {SEED}) -> {OUT_PATH.name} ===")
    for preset, r in results.items():
        print(
            f"{preset:>8}: cold {r['cold_wall_seconds']:6.2f}s"
            f"  warm {r['warm_wall_seconds']:8.4f}s"
            f"  speedup {r['warm_speedup']:8.1f}x"
        )
    for preset, r in results.items():
        assert r["warm_speedup"] >= MIN_WARM_SPEEDUP, (
            f"{preset}: warm cache only {r['warm_speedup']}x faster "
            f"(floor {MIN_WARM_SPEEDUP}x)"
        )
