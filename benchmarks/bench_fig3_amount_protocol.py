"""Paper Fig. 3 — the Amount benchmark's cooperative-eviction protocol.

The figure shows the two scenarios: on a single-segment cache, core B's
warm-up always evicts core A's content (step 3 misses, bottom panels); on
a two-segment cache, a core B behind the other segment leaves core A's
data alone (step 3 hits, top-right panel), revealing the second segment.

This bench replays the protocol step by step on the one- and two-segment
synthetic devices, prints the scenario matrix, and asserts the derived
amounts — including the ``cores / coreB_index`` formula of Section IV-F.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benchmarks.amount import measure_amount
from repro.core.benchmarks.base import BenchmarkContext
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.isa import LoadKind
from repro.pchase.runner import PChaseRunner

CACHE_SIZE = 4096
STRIDE = 32


def protocol_trace(preset: str) -> list[tuple[int, float]]:
    """(core B index, step-3 hit fraction) for every doubling of B."""
    device = SimulatedGPU.from_preset(preset, seed=42)
    runner = PChaseRunner(device)
    nbytes = int(CACHE_SIZE * 0.85) // STRIDE * STRIDE
    trace = []
    core_b = 1
    while core_b < device.sm(0).cores:
        device.flush_caches()
        runner.warm(LoadKind.LD_GLOBAL_CA, nbytes, STRIDE, core=0, slot=0)
        runner.warm(LoadKind.LD_GLOBAL_CA, nbytes, STRIDE, core=core_b, slot=1)
        hits, _ = runner.probe(LoadKind.LD_GLOBAL_CA, nbytes, STRIDE, core=0, slot=0)
        trace.append((core_b, float(np.mean(hits))))
        core_b *= 2
    return trace


@pytest.mark.parametrize(
    "preset,expected_amount",
    [("TestGPU-NV", 1), ("TestGPU-NV-2SEG", 2)],
)
def test_fig3_protocol(benchmark, preset, expected_amount):
    trace = benchmark.pedantic(protocol_trace, args=(preset,), rounds=1, iterations=1)

    print(f"\n=== Fig. 3 — Amount protocol on {preset} ===")
    for core_b, hit_rate in trace:
        verdict = "HIT (isolated segment!)" if hit_rate > 0.5 else "miss (same segment)"
        print(f"core A=0, core B={core_b:3d}: step-3 {verdict} ({hit_rate:.0%})")

    cores = 64
    isolated = [b for b, rate in trace if rate > 0.5]
    if expected_amount == 1:
        assert not isolated  # bottom panel: B always evicts A
    else:
        first = min(isolated)
        # Section IV-F: amount = NumCoresPerSM / CoreBIndex.
        assert cores // first == expected_amount
        assert first == 32  # cores 0..31 -> segment 0, 32..63 -> segment 1


@pytest.mark.parametrize(
    "preset,expected",
    [("TestGPU-NV", 1), ("TestGPU-NV-2SEG", 2)],
)
def test_fig3_full_benchmark_agrees(preset, expected):
    ctx = BenchmarkContext(SimulatedGPU.from_preset(preset, seed=42))
    m = measure_amount(ctx, LoadKind.LD_GLOBAL_CA, "L1", CACHE_SIZE, STRIDE)
    assert m.value == expected
