"""Paper Fig. 5 — streaming read throughput vs array size under MIG.

The figure plots ns/B of a one-core streaming read over growing arrays on
an A100, for the full GPU and several MIG instances, with vertical lines
at the L2 size that sys-sage reports (static MT4G topology + dynamic nvml
MIG state).  Two observations must reproduce:

1. a steep performance drop beyond the *reported* L2 size validates the
   sys-sage value (the measured cliff coincides with the line);
2. the full GPU and the ``4g.20gb`` instance behave identically, because
   one SM can only ever reach one of the two 20 MB L2 segments — this is
   exactly the MT4G "Amount" information at work; without it the full-GPU
   line would sit at 40 MB and miss the cliff.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.integrations.syssage import SysSageTopology
from repro.units import MiB, format_size

PROFILES = ["full", "4g.20gb", "2g.10gb", "1g.5gb"]
WORKING_SETS = np.geomspace(1 * MiB, 128 * MiB, 48)


def run_sweeps(report, device):
    ss = SysSageTopology(report, device)
    curves = {}
    lines = {}
    for profile in PROFILES:
        ss.set_mig_profile(None if profile == "full" else profile)
        ss.refresh()
        curves[profile] = ss.stream_experiment(WORKING_SETS, noisy=False)
        lines[profile] = ss.effective_l2_per_sm()
    ss.set_mig_profile(None)
    return curves, lines


def detect_cliff(ws: np.ndarray, ns_per_byte: np.ndarray) -> float:
    """Array size where throughput first degrades by >20% over the floor."""
    floor = ns_per_byte[0]
    idx = np.argmax(ns_per_byte > floor * 1.2)
    return float(ws[idx])


def test_fig5_stream_sweep(benchmark, a100):
    report, device = a100
    curves, lines = benchmark(run_sweeps, report, device)

    print("\n=== Fig. 5 — A100 streaming read (ns/B) under MIG ===")
    header = f"{'array':>10s}" + "".join(f"{p:>11s}" for p in PROFILES)
    print(header)
    for i in range(0, WORKING_SETS.size, 6):
        row = f"{format_size(WORKING_SETS[i]):>10s}"
        row += "".join(f"{curves[p][i]:11.4f}" for p in PROFILES)
        print(row)
    for p in PROFILES:
        print(f"sys-sage reported L2 for {p:9s}: {format_size(lines[p])} "
              f"(cliff at {format_size(detect_cliff(WORKING_SETS, curves[p]))})")

    # Observation 1: the cliff coincides with the sys-sage-reported size.
    for profile in PROFILES:
        cliff = detect_cliff(WORKING_SETS, curves[profile])
        assert cliff == pytest.approx(lines[profile], rel=0.35), profile

    # Observation 2: full == 4g.20gb, both at 20 MB (one segment).
    assert lines["full"] == lines["4g.20gb"] == 20 * MiB
    assert np.allclose(curves["full"], curves["4g.20gb"], rtol=1e-9)

    # Smaller instances cliff earlier.
    assert lines["2g.10gb"] == 10 * MiB and lines["1g.5gb"] == 5 * MiB
    assert detect_cliff(WORKING_SETS, curves["1g.5gb"]) < detect_cliff(
        WORKING_SETS, curves["2g.10gb"]
    )


def test_fig5_amount_information_is_load_bearing(a100):
    """Without MT4G's L2 Amount the full-GPU line would be at 40 MB —
    and the measured cliff would NOT match it (the paper's warning)."""
    report, device = a100
    ss = SysSageTopology(report, device)
    ss.set_mig_profile(None)

    naive_line = ss.l2_total_size()  # 40 MB: API size without Amount
    correct_line = ss.effective_l2_per_sm()  # 20 MB: with Amount
    cliff = detect_cliff(WORKING_SETS, ss.stream_experiment(WORKING_SETS, noisy=False))

    assert correct_line == 20 * MiB and naive_line == 40 * MiB
    assert cliff == pytest.approx(correct_line, rel=0.35)
    assert abs(cliff - naive_line) > abs(cliff - correct_line)
