"""Paper Fig. 2 — raw latency series vs geometric reduction at the
change point, for V100 Constant L1, MI300X vL1 and MI210 sL1d.

The figure plots, per array size, the raw min/avg/max latencies and the
Eq. 2 reduction, with the detected change point as a vertical line; its
caption notes the reduction "presents the change point most clearly
(maximum is prone to outliers)".  This bench reruns those three size
benchmarks, prints the series, and asserts both the detection quality
and the caption's robustness claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benchmarks.base import BenchmarkContext
from repro.core.benchmarks.size import measure_cache_size
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.isa import LoadKind
from repro.stats.changepoint import detect_change_point
from repro.units import KiB, format_size

CASES = {
    "V100 ConstL1": ("V100", LoadKind.LD_CONST, 64, 256, 64 * KiB, 2 * KiB),
    "MI300X vL1": ("MI300X", LoadKind.FLAT_LOAD, 64, 1 * KiB, 1024 * KiB, 32 * KiB),
    "MI210 sL1d": ("MI210", LoadKind.S_LOAD, 64, 1 * KiB, 1024 * KiB, 16 * KiB),
}


def run_case(name):
    preset, kind, fg, lo, hi, _true = CASES[name]
    ctx = BenchmarkContext(SimulatedGPU.from_preset(preset, seed=42))
    return measure_cache_size(ctx, kind, name, fg, lo=lo, hi_cap=hi)


@pytest.mark.parametrize("name", list(CASES))
def test_fig2_series(benchmark, name):
    result = benchmark.pedantic(run_case, args=(name,), rounds=1, iterations=1)
    true_size = CASES[name][5]

    assert result.conclusive, result.note
    detail = result.detail
    sizes = np.array(detail["sizes"])
    reduced = np.array(detail["reduced"])
    cp = detail["change_point_index"]

    print(f"\n=== Fig. 2 — {name} ===")
    print(f"measured size: {format_size(result.value)} "
          f"(truth {format_size(true_size)}), confidence {result.confidence:.3f}")
    stride = max(1, sizes.size // 12)
    print(f"{'size':>12s} {'raw min':>9s} {'raw avg':>9s} {'raw max':>9s} {'reduction':>10s}")
    for i in range(0, sizes.size, stride):
        marker = "  <-- change point" if abs(i - cp) < stride // 2 + 1 else ""
        print(
            f"{format_size(sizes[i]):>12s} {detail['raw_min'][i]:9.1f} "
            f"{detail['raw_mean'][i]:9.1f} {detail['raw_max'][i]:9.1f} "
            f"{reduced[i]:10.1f}{marker}"
        )

    # The measured boundary lands on the true capacity.
    assert result.value == pytest.approx(true_size, rel=0.06)
    # The reduction exposes the cliff: clearly elevated past the CP.
    assert reduced[cp:].mean() > reduced[:cp].mean() * 3


def test_fig2_reduction_beats_maximum():
    """Caption claim: the per-size maximum is outlier-prone, the Eq. 2
    reduction is not.  With spiky noise, CPD on the max series misses the
    boundary more than CPD on the reduction."""
    rng = np.random.default_rng(7)
    n_sizes, n_samples, boundary = 80, 96, 40
    hit, miss, spike = 30.0, 110.0, 400.0
    reductions = np.empty(n_sizes)
    maxima = np.empty(n_sizes)
    from repro.stats.reduction import geometric_reduction

    matrix = np.empty((n_sizes, n_samples))
    for i in range(n_sizes):
        base = np.full(n_samples, hit if i < boundary else miss)
        base += rng.normal(0, 1.5, n_samples)
        spikes = rng.random(n_samples) < 0.02  # a noisy machine
        base[spikes] += spike
        matrix[i] = base
        maxima[i] = base.max()
    reductions = geometric_reduction(matrix)

    cp_reduction = detect_change_point(reductions)
    cp_maximum = detect_change_point(maxima)

    err_reduction = abs(cp_reduction.index - boundary)
    err_maximum = (
        abs(cp_maximum.index - boundary) if cp_maximum is not None else n_sizes
    )
    print(f"\nCP error: reduction {err_reduction} steps, maximum {err_maximum} steps")
    assert err_reduction <= 1
    assert err_reduction <= err_maximum
