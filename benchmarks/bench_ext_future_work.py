"""Section VII future-work extensions, exercised end to end.

Not a paper table — the paper *plans* these: FLOPS for INT/FP datatypes,
tensor-engine characterisation, low-level-cache bandwidth, and the
configurable L2 fetch granularity of Section IV-D.  The bench runs each
extension on the flagship presets and prints the extended report
sections.
"""

from __future__ import annotations

import pytest

from repro import MT4G, SimulatedGPU
from repro.core.benchmarks.base import BenchmarkContext
from repro.core.benchmarks.fetch_granularity import measure_fetch_granularity
from repro.gpusim.isa import LoadKind
from repro.units import format_bandwidth


def run_extended_discovery(preset: str):
    device = SimulatedGPU.from_preset(preset, seed=42)
    tool = MT4G(
        device,
        targets=(
            {"L1", "L2", "SharedMem", "DeviceMemory"}
            if device.vendor.value == "NVIDIA"
            else {"vL1", "L2", "LDS", "DeviceMemory"}
        ),
        extensions={"flops", "lowlevel_bandwidth"},
    )
    return tool.discover()


@pytest.mark.parametrize("preset", ["H100-80", "MI210"])
def test_flops_and_tensor_engines(benchmark, preset):
    report = benchmark.pedantic(
        run_extended_discovery, args=(preset,), rounds=1, iterations=1
    )
    print(f"\n=== {preset} compute throughput (Section VII extension) ===")
    for dtype, av in sorted(report.throughput.items()):
        print(f"  {dtype:12s}: {av.value / 1e12:8.1f} T{'FLOP' if 'fp' in dtype else 'OP'}/s"
              f"  (confidence {av.confidence:.2f})")

    assert report.throughput, "extension produced no throughput data"
    # Tensor engines out-run the vector pipelines of the same precision.
    tensor = [d for d in report.throughput if d.startswith("tensor_fp16")]
    if tensor and "fp16" in report.throughput:
        assert report.throughput[tensor[0]].value > report.throughput["fp16"].value
    # fp64 never beats fp32.
    if {"fp64", "fp32"} <= set(report.throughput):
        assert report.throughput["fp64"].value <= report.throughput["fp32"].value * 1.01

    # Low-level bandwidth filled the L1/vL1 row.
    l1 = "L1" if report.general.vendor == "NVIDIA" else "vL1"
    av = report.attribute(l1, "read_bandwidth")
    print(f"  {l1} bandwidth: {format_bandwidth(av.value)} (extension)")
    assert av.value and av.value > report.attribute("L2", "read_bandwidth").value


def test_l2_fetch_granularity_reconfiguration(benchmark):
    """Section IV-D: cudaDeviceSetLimit changes the L2 transaction size,
    and a re-run of the FG benchmark must observe the new value."""

    def run():
        device = SimulatedGPU.from_preset("H100-80", seed=42)
        ctx = BenchmarkContext(device)
        before = measure_fetch_granularity(ctx, LoadKind.LD_GLOBAL_CG, "L2")
        device.set_limit("l2_fetch_granularity", 64)
        after = measure_fetch_granularity(ctx, LoadKind.LD_GLOBAL_CG, "L2")
        return before.value, after.value

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nL2 fetch granularity: default {before} B -> reconfigured {after} B")
    assert before == 32 and after == 64
