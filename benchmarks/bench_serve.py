"""Serve-path load harness: keep-alive + hot-cache RPS vs the baseline.

Scenario/trial/driver structure (the hpc-benchmark-toolkit shape): a
**scenario** is one server configuration x endpoint mix x concurrency
level; each scenario runs as one **trial** (fixed requests per worker,
after a warmup) under a thread-per-connection **driver** whose clients
speak real keep-alive HTTP/1.1 over real sockets — reconnecting when
the server closes, exactly like a well-behaved client.  Every trial
records p50/p99 latency and RPS to ``BENCH_serve.json`` at the repo
root:

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q -s

Two server configurations bound the tentpole claim:

* ``baseline`` — PR-5 behaviour: ``Connection: close`` per request, no
  hot-report cache, catalog re-walked per request;
* ``optimized`` — the PR-9 hot path: keep-alive connections, the
  pre-rendered hot-report cache, the short-TTL catalog snapshot.

Asserted invariants (the acceptance bar of this PR):

* warm-path RPS on the report-json mix improves >= 5x over the
  baseline (both sides recorded in the same artifact);
* a report fetched over a reused keep-alive connection — served from
  the hot cache — is byte-identical to ``mt4g --no-cache -j`` for the
  same (preset, config, seed).

``MT4G_BENCH_SERVE_SCALE=smoke`` shrinks the sweep for CI; the
committed artifact is a full-scale recording.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro import MT4G, SimulatedGPU
from repro.cache.tiers import build_worker_cache
from repro.core.output.json_out import to_json
from repro.serve import TopologyService

PRESET = "TestGPU-NV"
SEED = 0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: The acceptance floor: optimized RPS / baseline RPS on the warm
#: report-json path, best concurrency level.
MIN_WARM_SPEEDUP = 5.0

SCALE = os.environ.get("MT4G_BENCH_SERVE_SCALE", "full")
CONCURRENCY = (1, 4) if SCALE == "smoke" else (1, 4, 16)
REQUESTS_PER_WORKER = 40 if SCALE == "smoke" else 150
WARMUP_REQUESTS = 10 if SCALE == "smoke" else 25

REPORT_PATH = f"/devices/{PRESET}/report?seed={SEED}"
MIXES = {
    # The tentpole's hot path: one endpoint, hammered.
    "report-json": (REPORT_PATH,),
    # A realistic request blend: every render format, the graph, the
    # catalog, and the liveness probe.
    "mixed": (
        REPORT_PATH,
        f"{REPORT_PATH}&format=markdown",
        f"{REPORT_PATH}&format=csv",
        f"/graph/{PRESET}?seed={SEED}",
        "/devices",
        "/healthz",
    ),
}

SERVERS = {
    "baseline": {"keep_alive_timeout": 0.0, "hot_cache_bytes": 0, "catalog_ttl": 0.0},
    "optimized": {
        "keep_alive_timeout": 60.0,
        "hot_cache_bytes": 64 << 20,
        "catalog_ttl": 2.0,
    },
}


# ---------------------------------------------------------------------- #
# SUT: the service on a background event loop                             #
# ---------------------------------------------------------------------- #


class ServeHarness:
    """One TopologyService instance, driven from plain threads."""

    def __init__(self, store, **service_kw) -> None:
        service_kw.setdefault("read_only", True)  # warm-path bench: no pool
        self.service = TopologyService(store, **service_kw)
        self.loop: asyncio.AbstractEventLoop | None = None
        self.host = ""
        self.port = 0

    def __enter__(self) -> "ServeHarness":
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.host, self.port = self.loop.run_until_complete(
                self.service.start(port=0)
            )
            started.set()
            self.loop.run_forever()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        if not started.wait(10):
            raise RuntimeError("service failed to start")
        return self

    def __exit__(self, *exc) -> None:
        asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()


# ---------------------------------------------------------------------- #
# driver: a keep-alive HTTP/1.1 client per worker thread                  #
# ---------------------------------------------------------------------- #


class KeepAliveClient:
    """Minimal blocking HTTP/1.1 client that reuses its connection.

    Against the baseline server every response says ``Connection:
    close`` and the client transparently reconnects — so one client
    implementation measures both worlds, connection cost included.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host, self.port = host, port
        self._sock: socket.socket | None = None
        self._buf = b""

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._buf = b""

    def _connect(self) -> None:
        self._sock = socket.create_connection((self.host, self.port), timeout=10)
        self._buf = b""

    def _read_until(self, marker: bytes) -> bytes:
        while marker not in self._buf:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-response")
            self._buf += chunk
        data, self._buf = self._buf.split(marker, 1)
        return data

    def _read_exactly(self, n: int) -> bytes:
        while len(self._buf) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-body")
            self._buf += chunk
        data, self._buf = self._buf[:n], self._buf[n:]
        return data

    def request(self, path: str) -> tuple[int, bytes]:
        """GET ``path``; returns (status, body).  Reconnects as needed."""
        for attempt in (1, 2):
            if self._sock is None:
                self._connect()
            try:
                self._sock.sendall(
                    f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode()
                )
                head = self._read_until(b"\r\n\r\n")
            except (ConnectionError, OSError):
                # A keep-alive socket the server already closed (idle
                # reap, request cap): reconnect once and retry.
                self.close()
                if attempt == 2:
                    raise
                continue
            status = int(head.split(b" ", 2)[1])
            length = 0
            close = False
            for line in head.split(b"\r\n")[1:]:
                name, _, value = line.partition(b":")
                name = name.strip().lower()
                if name == b"content-length":
                    length = int(value)
                elif name == b"connection" and value.strip().lower() == b"close":
                    close = True
            body = self._read_exactly(length)
            if close:
                self.close()
            return status, body
        raise RuntimeError("unreachable")


@dataclass
class TrialResult:
    server: str
    mix: str
    concurrency: int
    requests: int
    p50_ms: float
    p99_ms: float
    rps: float

    def as_dict(self) -> dict:
        return {
            "server": self.server,
            "mix": self.mix,
            "concurrency": self.concurrency,
            "requests": self.requests,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "rps": self.rps,
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def run_trial(
    harness: ServeHarness, server: str, mix: str, concurrency: int
) -> TrialResult:
    """One scenario: ``concurrency`` workers, fixed requests each."""
    paths = MIXES[mix]
    latencies_per_worker: list[list[float]] = [[] for _ in range(concurrency)]
    errors: list[Exception] = []
    barrier = threading.Barrier(concurrency + 1)

    def worker(slot: int) -> None:
        client = KeepAliveClient(harness.host, harness.port)
        try:
            barrier.wait(timeout=30)
            for i in range(REQUESTS_PER_WORKER):
                start = time.perf_counter()
                status, _ = client.request(paths[i % len(paths)])
                latencies_per_worker[slot].append(time.perf_counter() - start)
                if status != 200:
                    raise RuntimeError(f"{paths[i % len(paths)]} -> HTTP {status}")
        except Exception as exc:  # surfaced after join
            errors.append(exc)
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=30)
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    if errors:
        raise errors[0]
    latencies = sorted(lat for per in latencies_per_worker for lat in per)
    total = len(latencies)
    return TrialResult(
        server=server,
        mix=mix,
        concurrency=concurrency,
        requests=total,
        p50_ms=round(_percentile(latencies, 0.50) * 1e3, 4),
        p99_ms=round(_percentile(latencies, 0.99) * 1e3, 4),
        rps=round(total / wall, 1),
    )


# ---------------------------------------------------------------------- #
# the sweep                                                               #
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def results():
    out: dict = {
        "schema": "mt4g-bench-serve/1",
        "preset": PRESET,
        "seed": SEED,
        "scale": SCALE,
        "requests_per_worker": REQUESTS_PER_WORKER,
        "scenarios": [],
        "cold_first_request_ms": {},
        "warm_speedup": {},
    }
    cli_bytes = (
        to_json(MT4G(SimulatedGPU.from_preset(PRESET, seed=SEED)).discover()) + "\n"
    ).encode()
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        # Warm the store once, outside any trial: this bench measures
        # the serve path, not discovery.
        warm_store = build_worker_cache(store_dir)
        MT4G(
            SimulatedGPU.from_preset(PRESET, seed=SEED), cache=warm_store
        ).discover()
        for server, config in SERVERS.items():
            store = build_worker_cache(store_dir)
            with ServeHarness(store, **config) as harness:
                probe = KeepAliveClient(harness.host, harness.port)
                start = time.perf_counter()
                status, body = probe.request(REPORT_PATH)
                out["cold_first_request_ms"][server] = round(
                    (time.perf_counter() - start) * 1e3, 3
                )
                assert status == 200 and body == cli_bytes
                for _ in range(WARMUP_REQUESTS):
                    for path in MIXES["mixed"]:
                        probe.request(path)
                probe.close()
                for mix in MIXES:
                    for concurrency in CONCURRENCY:
                        trial = run_trial(harness, server, mix, concurrency)
                        out["scenarios"].append(trial.as_dict())
                if server == "optimized":
                    # Byte-identity over a *reused* connection, straight
                    # from the hot cache (the warmup populated it).
                    client = KeepAliveClient(harness.host, harness.port)
                    _, first = client.request(REPORT_PATH)
                    _, second = client.request(REPORT_PATH)
                    client.close()
                    out["keep_alive_bytes_identical"] = (
                        first == cli_bytes and second == cli_bytes
                    )
                    out["hot_cache_hits"] = harness.service.hot_cache.hits
                    out["connections_reused"] = harness.service.metrics.connections[
                        "reused"
                    ]
    by_key = {
        (s["server"], s["mix"], s["concurrency"]): s["rps"]
        for s in out["scenarios"]
    }
    for mix in MIXES:
        for concurrency in CONCURRENCY:
            baseline = by_key[("baseline", mix, concurrency)]
            optimized = by_key[("optimized", mix, concurrency)]
            out["warm_speedup"][f"{mix}@{concurrency}"] = round(
                optimized / baseline, 2
            )
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    return out


def test_warm_path_rps_floor(results):
    speedups = [
        speedup
        for scenario, speedup in results["warm_speedup"].items()
        if scenario.startswith("report-json@")
    ]
    best = max(speedups)
    assert best >= MIN_WARM_SPEEDUP, (
        f"optimized/baseline RPS on report-json is {best:.2f}x, "
        f"below the {MIN_WARM_SPEEDUP}x floor ({results['warm_speedup']})"
    )


def test_keep_alive_bytes_are_cli_identical(results):
    assert results["keep_alive_bytes_identical"] is True
    assert results["hot_cache_hits"] > 0  # the fast path actually served
    assert results["connections_reused"] > 0  # over a reused connection


def test_every_scenario_recorded_latency_and_rps(results):
    expected = len(SERVERS) * len(MIXES) * len(CONCURRENCY)
    assert len(results["scenarios"]) == expected
    for scenario in results["scenarios"]:
        assert scenario["p50_ms"] > 0
        assert scenario["p99_ms"] >= scenario["p50_ms"]
        assert scenario["rps"] > 0
