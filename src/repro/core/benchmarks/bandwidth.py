"""Bandwidth benchmarks (paper Section IV-I).

Unlike the p-chase family these run massively parallel: 128-bit vector
loads (``ld.global.v4.u32`` / ``flat_load_dwordx4``) from
``num_SMs * max_blocks_per_SM`` blocks of ``max_threads_per_block``
threads (the paper's heuristic optimum), coalesced so transactions are
minimal, timed with device-synchronised event records.  Read and write
are measured separately; the paper only measures higher-level caches and
device memory (Table I dagger).
"""

from __future__ import annotations

from repro.core.benchmarks.base import BenchmarkContext, MeasurementResult
from repro.gpusim.isa import LoadKind, VECTOR_LOAD_BYTES
from repro.gpusim.kernel import KernelLaunch, run_stream_kernel
from repro.gpuspec.spec import Vendor

__all__ = ["measure_bandwidth", "vector_load_kind"]


def vector_load_kind(vendor: Vendor) -> LoadKind:
    """The 128-bit stream instruction per vendor."""
    return (
        LoadKind.LD_GLOBAL_V4 if vendor is Vendor.NVIDIA else LoadKind.FLAT_LOAD_X4
    )


def measure_bandwidth(
    ctx: BenchmarkContext,
    target: str,
    op: str,
    launch: KernelLaunch | None = None,
    repeats: int = 3,
) -> MeasurementResult:
    """Measure achieved read or write bandwidth of one level, in bytes/s.

    ``target`` is a cache name (with a bandwidth figure) or
    ``"DeviceMemory"``.  The best of ``repeats`` runs is reported, as
    stream-style benchmarks conventionally do.
    """
    device = ctx.device
    best = 0.0
    samples = []
    for _ in range(max(1, repeats)):
        bw = run_stream_kernel(
            device,
            level=target,
            op=op,
            launch=launch,
            vector_bytes=VECTOR_LOAD_BYTES,
        )
        samples.append(bw)
        best = max(best, bw)
    ctx.count(f"bandwidth_{op}", target)
    spread = (max(samples) - min(samples)) / max(best, 1e-9)
    return MeasurementResult(
        benchmark=f"bandwidth_{op}",
        target=target,
        value=best,
        unit="B/s",
        confidence=float(max(0.0, min(1.0, 1.0 - spread))),
        detail={
            "samples": samples,
            "instruction": vector_load_kind(device.vendor).value,
            "blocks": (launch.blocks if launch else device.bandwidth.optimal_blocks),
        },
    )
