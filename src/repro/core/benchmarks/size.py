"""Cache-size benchmarks (paper Section IV-B).

Implements the four-step workflow:

1. **bound finding** — start from a wide search space and exponentially
   double the p-chase array until the reduced latency signature jumps
   (the array no longer fits), then binary-search the interval down so
   the final sweep stays fine-grained;
2. **sweep** — fresh p-chase runs for every size in the interval, step =
   fetch granularity (coarsened only if the interval would exceed the
   configured point budget); the ascending grid lets the analytic engine
   reuse warm state between runs (each size extends the previous ring —
   provably the same LRU fixed point as flush + full re-warm), as does
   the doubling ascent of step 1, so the hot path costs O(delta) per run
   instead of O(array size);
3. **outlier handling** — isolated spikes are scrubbed; a change point
   detected at the sweep edge or an insignificant test widens the
   interval and repeats (up to ``max_widen_rounds``);
4. **K-S change-point detection** — the geometric reduction (Eq. 2) of
   the latency matrix is scanned for its strongest distribution split;
   the boundary is the last size on the low side, and the test's
   significance is reported as the confidence metric.

The Constant L1.5 path demonstrates the honesty policy: probing beyond
the 64 KiB constant bank is impossible, so when no change point exists
below the cap the benchmark reports a *lower bound* with confidence 0
(paper Table III: ">64KiB").
"""

from __future__ import annotations

import numpy as np

from repro.core.benchmarks.base import BenchmarkContext, MeasurementResult
from repro.pchase.arrays import linear_sizes
from repro.stats.changepoint import detect_change_point
from repro.stats.outliers import near_interval_edge, scrub_outliers, scrub_outliers_matrix
from repro.stats.reduction import geometric_reduction
from repro.gpusim.isa import LoadKind

__all__ = ["measure_cache_size", "find_capacity_bounds", "SizeSweepData"]


class SizeSweepData(dict):
    """Raw sweep artefacts kept for plots (Fig. 2) and debugging."""


def _reduced_values(matrix: np.ndarray, floor: float) -> np.ndarray:
    """Per-run reduction of a whole latency matrix — one batched call.

    ``floor`` is the hit-level latency floor of the baseline run — the
    paper's Eq. 2 anchors the reduction at the *global* minimum, so a
    fully-thrashed run (internally uniform, but far above the floor)
    still reduces to a large value.  Isolated noise spikes are scrubbed
    first so a single disturbed load cannot fake a capacity jump; genuine
    misses are immune to the scrub because a thrashed cache line produces
    a *contiguous* group of slow loads (one per sector), which the
    isolation test preserves.  Scrub and reduction both operate on the
    full matrix at once (:func:`scrub_outliers_matrix` +
    :func:`geometric_reduction`): the bound-finding predicate routes
    single runs through it, and the sweep computes its per-run
    ``reduced_per_run`` artefact in one batched call.
    """
    cleaned = scrub_outliers_matrix(matrix, z_threshold=8.0)
    return geometric_reduction(cleaned, global_min=floor)


def _reduced_value(latencies: np.ndarray, floor: float) -> float:
    """Single-run reduction used by the bound-finding predicate."""
    return float(_reduced_values(latencies[np.newaxis, :], floor)[0])


def _exceeds(
    ctx: BenchmarkContext,
    kind: LoadKind,
    size: int,
    stride: int,
    baseline: float,
    floor: float,
    sm: int,
) -> bool:
    """Does an array of ``size`` bytes overflow the target element?

    The reduction of an in-cache run is pure noise energy; a single
    thrashing set already multiplies it (Section IV-B's "latency rises
    significantly"), so a 3x-baseline threshold is conservative.
    """
    lat = ctx.runner.latencies(kind, size, stride, sm=sm)
    return _reduced_value(lat, floor) > 3.0 * baseline + 1e-9


def find_capacity_bounds(
    ctx: BenchmarkContext,
    kind: LoadKind,
    stride: int,
    lo: int,
    hi_cap: int,
    sm: int = 0,
    budget: int | None = None,
) -> tuple[int, int] | None:
    """Workflow step 1: doubling ascent, then binary-search descent.

    Returns the (fits, overflows) interval, or ``None`` when the element
    never overflows below ``hi_cap`` (the CL1.5 situation).  ``budget``
    bounds the final interval width (defaults to the sweep budget); the
    cache-line benchmark reuses this routine to localise *apparent*
    capacities under line-skipping strides (Section IV-E).

    The doubling ascent issues monotonically growing probes against one
    buffer, which the runner serves incrementally (suffix warms on the
    previous fixed point); the binary descent's shrinking probes are
    served by *truncating* the deferred fixed point in place (the same
    provable-fixed-point argument, O(1) per probe) — neither direction
    triggers a flush + full re-warm.
    """
    baseline_lat = ctx.runner.latencies(kind, lo, stride, sm=sm)
    floor = float(np.min(baseline_lat))
    baseline = max(_reduced_value(baseline_lat, floor), 1e-9)
    size = lo
    prev = lo
    while not _exceeds(ctx, kind, size, stride, baseline, floor, sm):
        prev = size
        if size >= hi_cap:
            return None
        size = min(size * 2, hi_cap)
        if size == prev:
            return None
    a, b = prev, size
    # Binary descent until the interval fits the sweep budget at natural
    # stride resolution; keep a margin so the boundary stays inside.
    if budget is None:
        budget = ctx.config.max_sweep_points * stride
    while (b - a) > budget and (b - a) > 4 * stride:
        mid = (a + b) // 2
        mid -= mid % stride
        if mid <= a or mid >= b:
            break
        if _exceeds(ctx, kind, mid, stride, baseline, floor, sm):
            b = mid
        else:
            a = mid
    return a, b


def _refine_onset(reduced: np.ndarray, cp_index: int) -> int:
    """Walk the change point back to the first elevated index.

    The K-S split may land a step or two inside the miss ramp (the margin
    tie-break prefers wide separations); the true boundary is the first
    index whose reduction clearly exceeds the noise level of the left
    segment.
    """
    left = reduced[:cp_index]
    noise_med = float(np.median(left))
    noise_mad = float(np.median(np.abs(left - noise_med)))
    spread = float(reduced.max() - noise_med)
    threshold = noise_med + max(6.0 * 1.4826 * noise_mad, 0.05 * spread)
    onset = cp_index
    while onset - 1 > 0 and reduced[onset - 1] > threshold:
        onset -= 1
    return onset


def measure_cache_size(
    ctx: BenchmarkContext,
    kind: LoadKind,
    target: str,
    fetch_granularity: int,
    lo: int | None = None,
    hi_cap: int | None = None,
    sm: int = 0,
) -> MeasurementResult:
    """Measure the capacity of the memory element behind ``kind``.

    ``fetch_granularity`` (from the Section IV-D benchmark or an API) is
    both the access stride and the natural sweep step.  ``hi_cap`` caps
    the probe size (constant bank limit, device-memory budget).
    """
    cfg = ctx.config
    stride = int(fetch_granularity)
    lo = int(lo if lo is not None else cfg.search_lo)
    hi_cap = int(hi_cap if hi_cap is not None else cfg.search_hi)

    bounds = find_capacity_bounds(ctx, kind, stride, lo, hi_cap, sm)
    ctx.count("size", target)
    if bounds is None:
        return MeasurementResult(
            benchmark="size",
            target=target,
            value=hi_cap,
            unit="B",
            confidence=0.0,
            note=(
                f"no capacity boundary below the {hi_cap} B probe limit; "
                "value is a lower bound"
            ),
            detail={"lower_bound": True, "probe_limit": hi_cap},
        )

    a, b = bounds
    width = b - a
    for round_idx in range(cfg.max_widen_rounds + 1):
        sweep_lo = max(stride, a - max(width // 2, 2 * stride))
        sweep_hi = min(hi_cap, b + max(width // 4, 2 * stride))
        sizes = linear_sizes(sweep_lo, sweep_hi, stride, cfg.max_sweep_points)
        matrix = ctx.runner.sweep(kind, sizes, stride, sm=sm)
        reduced = geometric_reduction(matrix)
        scrubbed = scrub_outliers(reduced)
        cp = detect_change_point(scrubbed, alpha=cfg.ks_alpha)
        if (
            cp is not None
            and cp.significant
            and not near_interval_edge(cp.index, sizes.size)
        ):
            onset = _refine_onset(scrubbed, cp.index)
            boundary = int(sizes[onset - 1])
            data = SizeSweepData(
                sizes=sizes.tolist(),
                reduced=reduced.tolist(),
                # The bound-finding predicate's signal, computed for the
                # whole sweep in one batched call (row-scrub + Eq. 2):
                # lets the raw artefact explain a bound-vs-sweep
                # disagreement.  Diagnostic only — the change point above
                # is detected on the unscrubbed-row reduction.
                reduced_per_run=_reduced_values(
                    matrix, float(matrix.min())
                ).tolist(),
                raw_min=matrix.min(axis=1).tolist(),
                raw_mean=matrix.mean(axis=1).tolist(),
                raw_max=matrix.max(axis=1).tolist(),
                change_point_index=cp.index,
                widen_rounds=round_idx,
                ks_statistic=cp.statistic,
                ks_critical=cp.critical_value,
            )
            return MeasurementResult(
                benchmark="size",
                target=target,
                value=boundary,
                unit="B",
                confidence=cp.confidence,
                detail=data,
            )
        # Workflow step 3: widen and repeat.
        grow = max(int(width * cfg.widen_factor), 4 * stride)
        a = max(stride, a - grow)
        b = min(hi_cap, b + grow)
        width = b - a

    return MeasurementResult.no_result(
        "size",
        target,
        "B",
        f"no significant change point after {cfg.max_widen_rounds} widening rounds",
    )
