"""FLOPS and tensor-engine benchmarks (paper Section VII extension).

An opt-in extension of the suite: for every datatype the device exposes,
launch an arithmetic-saturation kernel (a long chain of FMAs for vector
pipelines, MMA fragments for tensor engines) at the bandwidth
benchmark's heuristic occupancy and time it with event records.  Like
the bandwidth benchmarks, the best of a few repetitions is reported.
"""

from __future__ import annotations

from repro.core.benchmarks.base import BenchmarkContext, MeasurementResult
from repro.gpusim.compute import ComputeThroughputModel, TENSOR_PREFIX

__all__ = ["measure_flops", "measure_all_flops"]

#: operations issued per measurement kernel (scaled by achieved rate).
_KERNEL_SECONDS_TARGET = 0.02


def measure_flops(
    ctx: BenchmarkContext,
    dtype: str,
    repeats: int = 3,
) -> MeasurementResult:
    """Measure achieved arithmetic throughput for one datatype."""
    device = ctx.device
    model = ComputeThroughputModel(device.spec, device.rng)
    if dtype not in model.datatypes:
        ctx.count("flops", dtype)
        return MeasurementResult.no_result(
            "flops",
            dtype,
            "OP/s",
            f"{device.name} exposes no {dtype} pipeline "
            "(or the spec provides no figure)",
        )
    # Size the kernel so the launch overhead is negligible.
    total_ops = int(model.peak(dtype) * _KERNEL_SECONDS_TARGET)
    samples = []
    for _ in range(max(1, repeats)):
        event = device.clock.event()
        seconds = model.kernel_seconds(total_ops, dtype)
        device.clock.advance_seconds(seconds)
        elapsed = device.clock.stop(event)
        samples.append(total_ops / elapsed)
    best = max(samples)
    ctx.count("flops", dtype)
    spread = (max(samples) - min(samples)) / max(best, 1e-9)
    return MeasurementResult(
        benchmark="flops",
        target=dtype,
        value=best,
        unit="OP/s",
        confidence=float(max(0.0, min(1.0, 1.0 - spread))),
        detail={
            "samples": samples,
            "engine": "tensor" if dtype.startswith(TENSOR_PREFIX) else "vector",
        },
    )


def measure_all_flops(ctx: BenchmarkContext) -> dict[str, MeasurementResult]:
    """Measure every datatype the device exposes, tensor engines included."""
    model = ComputeThroughputModel(ctx.device.spec, ctx.device.rng)
    return {dtype: measure_flops(ctx, dtype) for dtype in model.datatypes}
