"""Physical-sharing benchmarks (paper Sections IV-G and IV-H).

**NVIDIA** — logical memory spaces (global, texture, readonly, constant)
may be backed by one physical cache or by separate silicon.  The
benchmark is the Amount protocol squeezed onto a single core: warm cache
A through space A, warm cache B through space B, re-probe A.  Misses mean
B's array displaced A's — same physical cache.  On Pascal the constant
path sometimes pollutes the L1 silicon, which is why the paper reports
the L1<->Constant-L1 result as flaky on the P6000 (Section V item 3); the
benchmark votes over several repetitions and reports reduced confidence
when the repetitions disagree.

**AMD** — only scalar and vector L1 caches exist, so the question becomes
*which CUs share one sL1d*.  Two thread blocks are pinned onto two CU
ids, each warms the scalar path, one probes; eviction means the pair
shares.  All CU pairs are tested ("MT4G makes no assumptions about the CU
hardware layout"), and the result names, per CU, the partner CUs — which
also exposes CUs whose partners are fused off and who therefore own the
whole sL1d (the optimization opportunity of Section IV-H).  Under
virtualization (MI300X VF) blocks cannot be pinned and the benchmark
returns an honest no-result.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.benchmarks.base import BenchmarkContext, MeasurementResult
from repro.errors import SchedulingError
from repro.gpusim.isa import LoadKind

__all__ = ["measure_sharing_nvidia", "measure_sl1d_sharing"]

_MISS_FRACTION = 0.25
_VOTES = 3
#: Working sets stay slightly below the measured capacity so a small
#: size-benchmark overestimate cannot make the probe thrash itself.
_FILL_FRACTION = 0.85


def _working_set(size: int, stride: int) -> int:
    return max(stride, int(size * _FILL_FRACTION) // stride * stride)


def _evicts(
    ctx: BenchmarkContext,
    kind_a: LoadKind,
    size_a: int,
    stride_a: int,
    kind_b: LoadKind,
    size_b: int,
    stride_b: int,
    sm: int,
) -> bool:
    """One round of warm-A, warm-B, probe-A; True when B displaced A."""
    ws_a = _working_set(size_a, stride_a)
    ws_b = _working_set(size_b, stride_b)
    ctx.device.flush_caches()
    ctx.runner.warm(kind_a, ws_a, stride_a, sm=sm, slot=0)
    ctx.runner.warm(kind_b, ws_b, stride_b, sm=sm, slot=0)
    hits, _ = ctx.runner.probe(kind_a, ws_a, stride_a, sm=sm, slot=0)
    return float(np.mean(~hits)) > _MISS_FRACTION


def measure_sharing_nvidia(
    ctx: BenchmarkContext,
    targets: dict[str, tuple[LoadKind, int, int]],
    sm: int = 0,
) -> dict[str, MeasurementResult]:
    """Pairwise physical-sharing matrix for NVIDIA logical spaces.

    ``targets`` maps element name -> (load kind, working-set bytes,
    stride); working sets are the measured cache sizes so a shared cache
    is fully displaced.  Returns one result per element listing its
    partners; disagreeing repetition votes lower the confidence — the
    Pascal flakiness surfaces here rather than being silently averaged
    away.
    """
    names = list(targets)
    votes: dict[tuple[str, str], int] = {}
    for a, b in itertools.permutations(names, 2):
        kind_a, size_a, stride_a = targets[a]
        kind_b, size_b, stride_b = targets[b]
        votes[(a, b)] = sum(
            _evicts(ctx, kind_a, size_a, stride_a, kind_b, size_b, stride_b, sm)
            for _ in range(_VOTES)
        )

    results: dict[str, MeasurementResult] = {}
    for a in names:
        partners: list[str] = []
        min_agreement = 1.0
        for b in names:
            if a == b:
                continue
            # Sharing is physical, hence symmetric: pool both directions.
            total = votes[(a, b)] + votes[(b, a)]
            shared = total > _VOTES  # majority of 2*_VOTES rounds
            agreement = abs(total - _VOTES) / _VOTES  # 0 = split vote
            min_agreement = min(min_agreement, agreement)
            if shared:
                partners.append(b)
        ctx.count("physical_sharing", a)
        note = "" if min_agreement > 0.5 else "repetition votes disagree (flaky)"
        results[a] = MeasurementResult(
            benchmark="physical_sharing",
            target=a,
            value=tuple(sorted(partners)),
            unit="elements",
            confidence=min_agreement,
            note=note,
            detail={"votes": {f"{x}->{y}": v for (x, y), v in votes.items() if x == a}},
        )
    return results


def measure_sl1d_sharing(
    ctx: BenchmarkContext,
    cache_size: int,
    fetch_granularity: int,
    max_cus: int | None = None,
) -> MeasurementResult:
    """Discover which CU ids share one sL1d cache (all-pairs protocol)."""
    device = ctx.device
    num_cus = device.spec.compute.num_sms if max_cus is None else min(
        max_cus, device.spec.compute.num_sms
    )
    stride = int(fetch_granularity)
    nbytes = _working_set(int(cache_size), stride)
    try:
        # Pre-flight: CU pinning must work at all (virtualization check).
        device.pin_block_to_cu(0)
    except SchedulingError as exc:
        ctx.count("physical_sharing", "sL1d")
        return MeasurementResult.no_result("physical_sharing", "sL1d", "cu-map", str(exc))

    partners: dict[int, list[int]] = {cu: [] for cu in range(num_cus)}
    for cu_a, cu_b in itertools.combinations(range(num_cus), 2):
        device.flush_caches()
        ctx.runner.warm(LoadKind.S_LOAD, nbytes, stride, sm=cu_a, slot=0)
        ctx.runner.warm(LoadKind.S_LOAD, nbytes, stride, sm=cu_b, slot=1)
        hits, _ = ctx.runner.probe(LoadKind.S_LOAD, nbytes, stride, sm=cu_a, slot=0)
        if float(np.mean(~hits)) > _MISS_FRACTION:
            partners[cu_a].append(cu_b)
            partners[cu_b].append(cu_a)

    exclusive = tuple(cu for cu, p in partners.items() if not p)
    ctx.count("physical_sharing", "sL1d")
    return MeasurementResult(
        benchmark="physical_sharing",
        target="sL1d",
        value={cu: tuple(p) for cu, p in partners.items()},
        unit="cu-map",
        confidence=1.0,
        detail={
            "exclusive_cus": exclusive,
            "physical_ids": tuple(device.spec.compute.physical_cu_ids),
        },
        note=(
            f"{len(exclusive)} CUs own an exclusive sL1d"
            if exclusive
            else "all CUs share their sL1d with at least one partner"
        ),
    )
