"""Cache-line-size benchmarks (paper Section IV-E).

Premise: the size benchmark evicts lines because its stride is below the
line size.  Raising the stride above the line size skips whole lines, so
the capacity boundary *shifts* — the cache appears larger by the factor
``stride / line_size``.  Strides at even multiples of the line size alias
back onto a subset of the (power-of-two many) sets and fake an unshifted
boundary; the evaluation heuristics reject them automatically because
their apparent-capacity ratio stays at 1 (see
:mod:`repro.stats.heuristics` for the full derivation).

The benchmark therefore localises the apparent capacity for each stride
in the grid (reusing the size benchmark's bound-finding machinery with a
tight budget), feeds the (stride, apparent capacity) pairs into
:func:`~repro.stats.heuristics.estimate_cache_line_size`, and reports the
power-of-two-snapped median vote with its agreement confidence.

This is the discovery pipeline's heaviest consumer of huge p-chase
arrays (probes up to 8x the cache size per stride): line-skipping
strides exceed the cache line, so the analytic engine's rank cache
(:mod:`repro.gpusim.cache`) and deferred warms keep the per-probe cost
at O(samples) instead of O(array).
"""

from __future__ import annotations

import numpy as np

from repro.core.benchmarks.base import BenchmarkContext, MeasurementResult
from repro.core.benchmarks.size import find_capacity_bounds
from repro.gpusim.isa import LoadKind
from repro.stats.heuristics import estimate_cache_line_size

__all__ = ["measure_cache_line_size"]


def measure_cache_line_size(
    ctx: BenchmarkContext,
    kind: LoadKind,
    target: str,
    cache_size: int,
    fetch_granularity: int,
    sm: int = 0,
    max_line: int = 1024,
    max_size_cap: int | None = None,
) -> MeasurementResult:
    """Estimate the line size of a cache of known capacity.

    ``cache_size`` comes from the size benchmark (or an API); the stride
    grid is multiples of the fetch granularity up to a small multiple of
    ``max_line`` (a line holds at least one sector, so the granularity is
    the natural pivot).  ``max_size_cap`` bounds probe arrays (the 64 KiB
    constant bank).
    """
    fg = int(fetch_granularity)
    cache_size = int(cache_size)
    top = min(3 * max_line, max(cache_size // 4, 2 * fg))

    strides: list[int] = []
    apparent: list[float] = []
    shift_votes = 0
    first_shift: int | None = None
    stride = fg
    while stride <= top:
        lo = max(stride * 4, cache_size // 2)
        hi = cache_size * 8
        if max_size_cap is not None:
            hi = min(hi, int(max_size_cap))
        if lo * 2 > hi:
            break  # cannot probe beyond this stride under the array cap
        bounds = find_capacity_bounds(
            ctx,
            kind,
            stride,
            lo=lo,
            hi_cap=hi,
            sm=sm,
            budget=max(stride * 2, cache_size // 32),
        )
        if bounds is not None:
            measured = (bounds[0] + bounds[1]) / 2.0
            if measured < 0.95 * hi:  # saturated probes give no clean vote
                strides.append(stride)
                apparent.append(measured)
                if measured > 1.3 * apparent[0]:
                    shift_votes += 1
                    if first_shift is None:
                        first_shift = stride
        # Stop once enough shift evidence exists: the line size cannot
        # exceed the first shifted stride, so far longer strides only
        # repeat the vote (and cost large probe arrays).
        if first_shift is not None and (
            shift_votes >= 6 or stride >= 4 * first_shift
        ):
            break
        stride += fg

    ctx.count("cache_line_size", target)
    strides = np.asarray(strides, dtype=np.int64)
    apparent = np.asarray(apparent, dtype=np.float64)
    if strides.size < 2:
        return MeasurementResult.no_result(
            "cache_line_size",
            target,
            "B",
            "not enough unsaturated probes for a line-size estimate",
        )
    line, confidence = estimate_cache_line_size(strides, apparent, fg)
    if line is None:
        # No stride shifted the boundary: the line is at least as large as
        # the largest tested stride — report the bound honestly.
        return MeasurementResult(
            benchmark="cache_line_size",
            target=target,
            value=int(strides[-1]),
            unit="B",
            confidence=0.0,
            note="no boundary shift observed; value is a lower bound",
            detail={
                "strides": strides.tolist(),
                "apparent_capacities": apparent.tolist(),
                "lower_bound": True,
            },
        )
    return MeasurementResult(
        benchmark="cache_line_size",
        target=target,
        value=int(line),
        unit="B",
        confidence=confidence,
        detail={
            "strides": strides.tolist(),
            "apparent_capacities": apparent.tolist(),
        },
    )
