"""Amount benchmarks (paper Section IV-F) and the L2 segment special case.

**Per-SM amount** — two synchronized cores inside one SM:

1. core A (index 0) warms the cache with array A,
2. core B (index doubling 1, 2, 4, ... up to the core count) warms with
   array B of the same size,
3. core A probes array A and observes hits or misses.

If both cores sit behind the same cache segment, B's warm-up evicted A's
data (arrays are cache-sized) and step 3 misses; the first B index whose
probe *hits* reveals an isolated segment, and the amount is
``num_cores_per_SM / coreB_index``.  The L1 variant requires pinning
observer threads across *all* warps of the SM — which is exactly what the
P6000's scheduler refuses for warp 3 (paper Section V item 2), turning
that benchmark into an honest no-result.

**L2 segments** (Section IV-F.1) — the API reports the total L2 size
while one SM reaches only one segment, so the question flips: the size
benchmark's segment measurement is aligned to the nearest integer
fraction of the API size, and the distance to that fraction becomes the
confidence.
"""

from __future__ import annotations

from repro.core.benchmarks.base import BenchmarkContext, MeasurementResult
from repro.errors import SchedulingError
from repro.gpusim.isa import LoadKind
from repro.units import nearest_integer_fraction

__all__ = ["measure_amount", "resolve_l2_segments"]

_HIT_FRACTION = 0.5


def _preflight_all_warps(ctx: BenchmarkContext, sm: int) -> None:
    """The L1 protocol pins one observer thread per warp; verify we can."""
    core = ctx.device.sm(sm)
    for warp in range(core.warps):
        if not core.check_warp_schedulable(warp):
            raise SchedulingError(
                f"unable to schedule a thread on warp {warp} (of {core.warps})"
            )


def measure_amount(
    ctx: BenchmarkContext,
    kind: LoadKind,
    target: str,
    cache_size: int,
    fetch_granularity: int,
    sm: int = 0,
    spans_all_warps: bool = False,
) -> MeasurementResult:
    """Count independent cache segments per SM for one memory element.

    ``spans_all_warps`` marks protocols that must co-schedule observer
    threads on every warp (the L1 variant); others keep their helper
    threads in the low warps and are immune to the P6000 quirk.
    """
    stride = int(fetch_granularity)
    # "Close to the cache size to ensure potential cache evictions"
    # (Section IV-F) — but safely inside it, so a small size-benchmark
    # overestimate cannot make core A's probe thrash its own array.
    nbytes = max(stride, int(cache_size * 0.85) // stride * stride)
    cores = ctx.device.sm(sm).cores
    try:
        if spans_all_warps:
            _preflight_all_warps(ctx, sm)
        core_b = 1
        segments = 1
        while core_b < cores:
            ctx.device.flush_caches()
            ctx.runner.warm(kind, nbytes, stride, sm=sm, core=0, slot=0)
            ctx.runner.warm(kind, nbytes, stride, sm=sm, core=core_b, slot=1)
            hits, _ = ctx.runner.probe(kind, nbytes, stride, sm=sm, core=0, slot=0)
            if hits.mean() > _HIT_FRACTION:
                segments = cores // core_b
                break
            core_b *= 2
    except SchedulingError as exc:
        ctx.count("amount", target)
        return MeasurementResult.no_result("amount", target, "count", str(exc))
    ctx.count("amount", target)
    return MeasurementResult(
        benchmark="amount",
        target=target,
        value=int(segments),
        unit="count",
        confidence=1.0,
        detail={"first_isolated_core": core_b if segments > 1 else None},
    )


def resolve_l2_segments(
    ctx: BenchmarkContext,
    measured_segment_size: int,
    api_total_size: int,
) -> MeasurementResult:
    """Align a measured L2 segment size to an integer fraction of the API size."""
    if measured_segment_size <= 0 or api_total_size <= 0:
        raise ValueError("sizes must be positive")
    segments, confidence = nearest_integer_fraction(
        api_total_size, measured_segment_size
    )
    return MeasurementResult(
        benchmark="amount",
        target="L2",
        value=segments,
        unit="count",
        confidence=confidence,
        detail={
            "measured_segment_size": measured_segment_size,
            "api_total_size": api_total_size,
            "aligned_segment_size": api_total_size // segments,
        },
    )
