"""Fetch-granularity benchmarks (paper Section IV-D).

A cache line consists of one or more *sectors*; a miss fetches only the
accessed sector.  The benchmark runs cold p-chase instances with strides
growing from 4 B in 4 B steps (the paper assumes the granularity is a
multiple of four): while the stride is below the sector size, some loads
land in already-fetched sectors and hit; once the stride reaches the
sector size every load opens a new sector and only misses remain —
that first all-miss stride *is* the fetch granularity.

Classification is latency-based, as on real hardware: a load counts as a
hit when its observed latency is below the midpoint between the target
level's and the next level's hit latency (estimated robustly from the
run itself, not from ground truth).
"""

from __future__ import annotations

import numpy as np

from repro.core.benchmarks.base import BenchmarkContext, MeasurementResult
from repro.gpusim.isa import LoadKind

__all__ = ["measure_fetch_granularity"]

_PROBE_LOADS = 96


def _anchor_threshold(ctx: BenchmarkContext, kind: LoadKind, sm: int) -> float:
    """Hit-band anchor from a minimal-stride cold probe.

    A 4 B stride is below any plausible sector size (the paper assumes
    granularities are multiples of four), so its probe always contains
    *target-level* hits; the fastest observed latency anchors the hit
    band.  Larger strides are then classified against this absolute
    threshold, so sector hits in a deeper cache — possible whenever the
    levels' granularities differ, e.g. after reconfiguring the L2
    transaction size — never masquerade as target-level hits.
    """
    ctx.device.flush_caches()
    _, latencies = ctx.runner.probe(kind, 4 * _PROBE_LOADS, 4, sm=sm,
                                    n_samples=_PROBE_LOADS)
    anchor = float(np.min(latencies))
    return anchor + max(10.0, 0.3 * anchor)


def measure_fetch_granularity(
    ctx: BenchmarkContext,
    kind: LoadKind,
    target: str,
    max_stride: int = 512,
    sm: int = 0,
    hit_threshold: float | None = None,
) -> MeasurementResult:
    """Find the sector size of the element behind ``kind``.

    ``hit_threshold`` (cycles) overrides the bimodal auto-split; the
    constant hierarchy needs it because the constant path stacks two
    cache levels — a "hit" for the Constant L1.5 granularity means any
    latency below the CL1.5/DRAM midpoint, while the CL1 granularity only
    counts loads below the CL1/CL1.5 midpoint (paper Table III reports
    both: 64 B and 256 B on the H100).
    """
    if max_stride < 4:
        raise ValueError("max_stride must be at least 4")
    if hit_threshold is None:
        hit_threshold = _anchor_threshold(ctx, kind, sm)
    first_all_miss: int | None = None
    observed: dict[int, int] = {}
    for stride in range(4, max_stride + 1, 4):
        ctx.device.flush_caches()
        nbytes = stride * _PROBE_LOADS
        _, latencies = ctx.runner.probe(
            kind, nbytes, stride, sm=sm, n_samples=_PROBE_LOADS
        )
        hits = np.asarray(latencies) < hit_threshold
        observed[stride] = int(hits.sum())
        if not hits.any():
            first_all_miss = stride
            break
    ctx.count("fetch_granularity", target)
    if first_all_miss is None:
        return MeasurementResult.no_result(
            "fetch_granularity",
            target,
            "B",
            f"hits persisted up to the {max_stride} B stride cap",
        )
    return MeasurementResult(
        benchmark="fetch_granularity",
        target=target,
        value=first_all_miss,
        unit="B",
        confidence=1.0,
        detail={"hits_per_stride": observed},
    )
