"""The Section-IV microbenchmark suite.

One module per benchmark family; all operate on a shared
:class:`~repro.core.benchmarks.base.BenchmarkContext` and return
:class:`~repro.core.benchmarks.base.MeasurementResult` objects whose
``confidence``/``source`` fields implement the paper's error-honesty
policy (no result beats a wrong result).
"""

from repro.core.benchmarks.base import BenchmarkContext, MeasurementResult, Source

__all__ = ["BenchmarkContext", "MeasurementResult", "Source"]
