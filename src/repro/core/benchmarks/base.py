"""Shared benchmark infrastructure: context and result model.

Every benchmark returns a :class:`MeasurementResult`.  The result encodes
the paper's three-way honesty distinction (Section V):

* a confident value (``value`` set, ``confidence`` near 1);
* an inconclusive value (``value`` may be a bound, ``confidence == 0`` —
  e.g. the Constant L1.5 size capped by the 64 KiB constant bank);
* no result (``value is None`` with an explanatory ``note`` — e.g. the
  P6000 L1 Amount benchmark that cannot schedule warp 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.gpusim.device import SimulatedGPU
from repro.pchase.config import PChaseConfig
from repro.pchase.runner import PChaseRunner

__all__ = ["Source", "MeasurementResult", "BenchmarkContext"]


class Source(enum.Enum):
    """Where an attribute's value came from (paper Table I legend)."""

    BENCHMARK = "benchmark"  # "!" — microbenchmarked
    API = "api"  # "!(API)" — read from a vendor interface
    LOOKUP = "lookup"  # microarchitecture lookup table (cores/SM)
    UNAVAILABLE = "unavailable"  # "#" — cannot be obtained on this device
    NOT_APPLICABLE = "n/a"  # the attribute has no meaning here


@dataclass
class MeasurementResult:
    """One measured (or refused) attribute of one memory element."""

    benchmark: str  # e.g. "size", "load_latency"
    target: str  # memory element name, e.g. "L1"
    value: Any  # main result; None == no result
    unit: str  # "B", "cycles", "B/s", "count", ...
    confidence: float  # [0, 1]; 0 == inconclusive
    source: Source = Source.BENCHMARK
    note: str = ""
    detail: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {self.confidence}")

    @property
    def conclusive(self) -> bool:
        return self.value is not None and self.confidence > 0.0

    @classmethod
    def no_result(cls, benchmark: str, target: str, unit: str, note: str) -> "MeasurementResult":
        """A benchmark that could not run / decide — never a wrong value."""
        return cls(
            benchmark=benchmark,
            target=target,
            value=None,
            unit=unit,
            confidence=0.0,
            note=note,
        )

    @classmethod
    def from_api(
        cls, benchmark: str, target: str, value: Any, unit: str, note: str = ""
    ) -> "MeasurementResult":
        """An attribute served by a vendor interface (not benchmarked)."""
        return cls(
            benchmark=benchmark,
            target=target,
            value=value,
            unit=unit,
            confidence=1.0,
            source=Source.API,
            note=note,
        )


class BenchmarkContext:
    """Everything a benchmark needs: device, runner, config.

    Also counts benchmark invocations for the Section V-A run-time
    report (the paper cites ~35 benchmarks on NVIDIA vs ~15 on AMD).
    """

    def __init__(self, device: SimulatedGPU, config: PChaseConfig | None = None) -> None:
        self.device = device
        self.config = config or PChaseConfig()
        self.runner = PChaseRunner(device, self.config)
        self.benchmarks_run = 0
        self._timeline: list[tuple[str, float]] = []

    def count(self, benchmark: str, target: str) -> None:
        """Record one benchmark execution (for run-time accounting)."""
        self.benchmarks_run += 1
        self._timeline.append((f"{benchmark}:{target}", self.device.elapsed_seconds()))

    def timeline(self) -> list[tuple[str, float]]:
        """(benchmark:target, cumulative simulated seconds) entries."""
        return list(self._timeline)

    def seconds_per_benchmark(self) -> dict[str, float]:
        """Simulated GPU seconds attributed to each benchmark execution."""
        out: dict[str, float] = {}
        prev = 0.0
        for name, cumulative in self._timeline:
            out[name] = out.get(name, 0.0) + (cumulative - prev)
            prev = cumulative
        return out
