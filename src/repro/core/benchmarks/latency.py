"""Load-latency benchmarks (paper Section IV-C).

A p-chase with one fixed array size (256 x fetch granularity) targeting a
single memory element; the per-load timings *are* the measurement, the
mean is the headline number and p50/p95/std accompany it.

Targeting rules reproduced from the paper:

* lower-level caches are isolated by instruction kind (``.ca`` vs ``.cg``
  on NVIDIA; the GLC/sc0 bit on AMD);
* the Constant L1.5 is reached with an array larger than the Constant L1
  so the warm-up evicts CL1 and every timed load hits CL1.5;
* device memory is probed cold (no warm-up, caches flushed) so every
  load misses the whole hierarchy;
* scratchpads (Shared Memory / LDS) have no cache dynamics — any array
  size works.
"""

from __future__ import annotations

from repro.core.benchmarks.base import BenchmarkContext, MeasurementResult
from repro.gpusim.isa import LoadKind

__all__ = ["measure_load_latency"]


def measure_load_latency(
    ctx: BenchmarkContext,
    kind: LoadKind,
    target: str,
    fetch_granularity: int,
    array_bytes: int | None = None,
    cold: bool = False,
    sm: int = 0,
) -> MeasurementResult:
    """Measure the load latency of one memory element, in clock cycles.

    ``cold=True`` skips the warm-up (device-memory probing); otherwise the
    element is populated first, as Section IV-A prescribes.
    """
    from repro.stats.descriptive import summarize

    stride = int(fetch_granularity)
    if array_bytes is not None:
        nbytes = int(array_bytes)
    elif cold:
        # A cold probe must never wrap the ring: a revisited sector would
        # hit the caches filled by the probe itself.
        nbytes = ctx.config.n_samples * stride
    else:
        nbytes = ctx.config.latency_array_elems * stride
    latencies = ctx.runner.latencies(
        kind,
        nbytes,
        stride,
        sm=sm,
        fresh=True,
        warmup=not cold,
    )
    stats = summarize(latencies)
    ctx.count("load_latency", target)
    # Tight samples => trustworthy average; wide spread lowers confidence.
    spread = stats.std / max(stats.mean, 1e-9)
    confidence = float(max(0.0, min(1.0, 1.0 - spread)))
    return MeasurementResult(
        benchmark="load_latency",
        target=target,
        value=stats.mean,
        unit="cycles",
        confidence=confidence,
        detail={"stats": stats.as_dict(), "array_bytes": nbytes, "cold": cold},
    )
