"""Topology report model (paper Section III).

MT4G's output unifies vendor-specific sources into one report with three
areas: general information, compute resources and memory resources.
Every memory attribute carries its provenance (benchmarked / API /
lookup / unavailable / not-applicable — the legend of Table I) and a
confidence value, so downstream consumers (performance models, GPUscout,
sys-sage) can reason about trustworthiness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.benchmarks.base import MeasurementResult, Source
from repro.units import format_bandwidth, format_size

__all__ = [
    "ATTRIBUTES",
    "AttributeValue",
    "MemoryElementReport",
    "ComputeReport",
    "GeneralReport",
    "RuntimeReport",
    "TopologyReport",
]

#: Attribute columns, in the order of the paper's Table I.
ATTRIBUTES = (
    "size",
    "load_latency",
    "read_bandwidth",
    "write_bandwidth",
    "cache_line_size",
    "fetch_granularity",
    "amount",
    "shared_with",
)


@dataclass
class AttributeValue:
    """One attribute of one memory element, with provenance."""

    value: Any
    unit: str
    confidence: float
    source: Source
    note: str = ""

    @classmethod
    def from_measurement(cls, m: MeasurementResult) -> "AttributeValue":
        return cls(
            value=m.value,
            unit=m.unit,
            confidence=m.confidence,
            source=m.source,
            note=m.note,
        )

    @classmethod
    def not_applicable(cls, unit: str = "") -> "AttributeValue":
        return cls(None, unit, 0.0, Source.NOT_APPLICABLE)

    @classmethod
    def unavailable(cls, unit: str = "", note: str = "") -> "AttributeValue":
        return cls(None, unit, 0.0, Source.UNAVAILABLE, note)

    def rendered(self) -> str:
        """Human-readable cell value (used by the Markdown report)."""
        if self.source is Source.NOT_APPLICABLE:
            return "n/a"
        if self.value is None:
            return "—"
        if self.unit == "B":
            text = format_size(self.value)
        elif self.unit == "B/s":
            text = format_bandwidth(self.value)
        elif self.unit == "cycles":
            text = f"{float(self.value):.0f} cyc"
        elif self.unit == "elements":
            text = ",".join(self.value) if self.value else "no"
        elif self.unit == "cu-map":
            shared = sum(1 for v in self.value.values() if v)
            return f"CU map ({shared}/{len(self.value)} CUs share)"
        else:
            text = str(self.value)
        if self.source is Source.API:
            text += " (API)"
        if self.confidence == 0.0 and self.source is Source.BENCHMARK:
            text += " (conf 0)"
        return text

    def as_dict(self) -> dict[str, Any]:
        value = self.value
        if isinstance(value, tuple):
            value = list(value)
        elif isinstance(value, dict):
            value = {str(k): list(v) if isinstance(v, tuple) else v for k, v in value.items()}
        return {
            "value": value,
            "unit": self.unit,
            "confidence": round(self.confidence, 4),
            "source": self.source.value,
            "note": self.note,
        }


@dataclass
class MemoryElementReport:
    """All attributes of one memory element (one Table I row)."""

    name: str
    attributes: dict[str, AttributeValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.attributes) - set(ATTRIBUTES)
        if unknown:
            raise ValueError(f"{self.name}: unknown attributes {sorted(unknown)}")

    def get(self, attribute: str) -> AttributeValue:
        if attribute not in ATTRIBUTES:
            raise KeyError(f"unknown attribute {attribute!r}")
        return self.attributes.get(attribute, AttributeValue.not_applicable())

    def set(self, attribute: str, value: AttributeValue) -> None:
        if attribute not in ATTRIBUTES:
            raise KeyError(f"unknown attribute {attribute!r}")
        self.attributes[attribute] = value

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "attributes": {a: self.get(a).as_dict() for a in ATTRIBUTES},
        }


@dataclass
class ComputeReport:
    """Compute-resource information (paper Section III-B)."""

    num_sms: int
    cores_per_sm: int
    warp_size: int
    max_blocks_per_sm: int
    max_threads_per_block: int
    max_threads_per_sm: int
    registers_per_block: int
    registers_per_sm: int
    warps_per_sm: int
    simds_per_sm: int  # 0 on NVIDIA
    cores_per_sm_source: Source = Source.LOOKUP
    physical_cu_ids: tuple[int, ...] = ()  # AMD only

    def as_dict(self) -> dict[str, Any]:
        return {
            "num_sms": self.num_sms,
            "cores_per_sm": self.cores_per_sm,
            "cores_per_sm_source": self.cores_per_sm_source.value,
            "warp_size": self.warp_size,
            "max_blocks_per_sm": self.max_blocks_per_sm,
            "max_threads_per_block": self.max_threads_per_block,
            "max_threads_per_sm": self.max_threads_per_sm,
            "registers_per_block": self.registers_per_block,
            "registers_per_sm": self.registers_per_sm,
            "warps_per_sm": self.warps_per_sm,
            "simds_per_sm": self.simds_per_sm,
            "physical_cu_ids": list(self.physical_cu_ids),
        }


@dataclass
class GeneralReport:
    """General information (paper Section III-A)."""

    vendor: str
    model: str
    microarchitecture: str
    compute_capability: str
    clock_rate_hz: float
    memory_clock_rate_hz: float
    memory_bus_width_bits: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "vendor": self.vendor,
            "model": self.model,
            "microarchitecture": self.microarchitecture,
            "compute_capability": self.compute_capability,
            "clock_rate_hz": self.clock_rate_hz,
            "memory_clock_rate_hz": self.memory_clock_rate_hz,
            "memory_bus_width_bits": self.memory_bus_width_bits,
        }


@dataclass
class RuntimeReport:
    """Section V-A accounting: how much work the discovery took."""

    benchmarks_executed: int
    simulated_gpu_seconds: float
    modeled_cpu_seconds: float
    per_benchmark_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def modeled_total_seconds(self) -> float:
        return self.simulated_gpu_seconds + self.modeled_cpu_seconds

    def as_dict(self) -> dict[str, Any]:
        return {
            "benchmarks_executed": self.benchmarks_executed,
            "simulated_gpu_seconds": round(self.simulated_gpu_seconds, 3),
            "modeled_cpu_seconds": round(self.modeled_cpu_seconds, 3),
            "modeled_total_seconds": round(self.modeled_total_seconds, 3),
            "per_benchmark_seconds": {
                k: round(v, 4) for k, v in self.per_benchmark_seconds.items()
            },
        }


@dataclass
class TopologyReport:
    """The complete MT4G output for one device."""

    general: GeneralReport
    compute: ComputeReport
    memory: dict[str, MemoryElementReport]
    runtime: RuntimeReport
    seed: int = 0
    #: Section VII extension: datatype -> achieved arithmetic throughput
    #: (vector pipelines and tensor engines); empty unless the "flops"
    #: extension ran.
    throughput: dict[str, AttributeValue] = field(default_factory=dict)
    #: Post-hoc validation results (a
    #: :class:`repro.validate.ValidationReport`); None until a validation
    #: pass runs (``MT4G.discover(validate=True)`` or
    #: :func:`repro.validate.validate_report`).  Typed loosely to avoid a
    #: circular import — the validator consumes this module.
    validation: Any = None
    #: Run provenance that is *not* topology content — e.g. the discovery
    #: cache's ``{"cache": {"status": "hit"|"miss", "key": ..., "store":
    #: ...}}``.  Serialised only when non-empty; identity comparisons
    #: (engine equivalence, cache-hit-vs-cold) strip it, because a cached
    #: and a cold run legitimately differ in how the result was obtained
    #: while agreeing byte-for-byte on what was discovered.
    meta: dict[str, Any] = field(default_factory=dict)

    def element(self, name: str) -> MemoryElementReport:
        try:
            return self.memory[name]
        except KeyError:
            raise KeyError(
                f"no memory element {name!r}; available: {sorted(self.memory)}"
            ) from None

    def attribute(self, element: str, attribute: str) -> AttributeValue:
        return self.element(element).get(attribute)

    def as_dict(self) -> dict[str, Any]:
        out = {
            "schema": "mt4g-repro/1",
            "general": self.general.as_dict(),
            "compute": self.compute.as_dict(),
            "memory": {name: el.as_dict() for name, el in self.memory.items()},
            "runtime": self.runtime.as_dict(),
            "seed": self.seed,
        }
        if self.throughput:
            out["throughput"] = {k: v.as_dict() for k, v in self.throughput.items()}
        if self.validation is not None:
            out["validation"] = self.validation.as_dict()
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    def content_dict(self) -> dict[str, Any]:
        """``as_dict`` without run provenance — the identity-comparison view."""
        out = self.as_dict()
        out.pop("meta", None)
        return out
