"""Markdown report writer (the tool's ``-p`` human-readable output).

Renders the three information areas of paper Section III and a memory
table shaped like the paper's Table I/III rows, plus — when a validation
pass ran — a Validation section with the verdict, the cross-check deltas
and any escalated re-measurements.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.report import ATTRIBUTES, TopologyReport

__all__ = ["CONTENT_TYPE", "to_markdown", "write_markdown"]

#: MIME type of this writer's output (serving format negotiation).
CONTENT_TYPE = "text/markdown"

_HEADERS = {
    "size": "Size",
    "load_latency": "Load Latency",
    "read_bandwidth": "Read BW",
    "write_bandwidth": "Write BW",
    "cache_line_size": "Cache Line",
    "fetch_granularity": "Fetch Gran.",
    "amount": "# per SM/GPU",
    "shared_with": "Physically Shared With",
}


def to_markdown(report: TopologyReport) -> str:
    g = report.general
    c = report.compute
    lines: list[str] = []
    lines.append(f"# MT4G Topology Report — {g.model}")
    lines.append("")
    lines.append("## General Information")
    lines.append("")
    lines.append(f"- Vendor: {g.vendor}")
    lines.append(f"- Microarchitecture: {g.microarchitecture}")
    lines.append(f"- Compute capability: {g.compute_capability}")
    lines.append(f"- Core clock: {g.clock_rate_hz / 1e9:.2f} GHz")
    lines.append(f"- Memory clock: {g.memory_clock_rate_hz / 1e9:.2f} GHz")
    lines.append(f"- Memory bus width: {g.memory_bus_width_bits} bit")
    lines.append("")
    lines.append("## Compute Resources")
    lines.append("")
    lines.append(f"- SMs/CUs: {c.num_sms}")
    lines.append(f"- Cores per SM/CU: {c.cores_per_sm} (source: {c.cores_per_sm_source.value})")
    lines.append(f"- Warp/wavefront size: {c.warp_size}")
    lines.append(f"- Max blocks per SM/CU: {c.max_blocks_per_sm}")
    lines.append(f"- Max threads per block: {c.max_threads_per_block}")
    lines.append(f"- Max threads per SM/CU: {c.max_threads_per_sm}")
    lines.append(f"- Registers per block / SM: {c.registers_per_block} / {c.registers_per_sm}")
    if c.simds_per_sm:
        lines.append(f"- SIMDs per CU: {c.simds_per_sm}")
    else:
        lines.append(f"- Warps per SM: {c.warps_per_sm}")
    if c.physical_cu_ids:
        ids = c.physical_cu_ids
        lines.append(
            f"- Logical->physical CU ids: {len(ids)} active "
            f"(physical ids {min(ids)}..{max(ids)})"
        )
    lines.append("")
    lines.append("## Memory Resources")
    lines.append("")
    header = "| Element | " + " | ".join(_HEADERS[a] for a in ATTRIBUTES) + " |"
    lines.append(header)
    lines.append("|" + "---|" * (len(ATTRIBUTES) + 1))
    for name, element in report.memory.items():
        cells = [element.get(a).rendered() for a in ATTRIBUTES]
        lines.append(f"| {name} | " + " | ".join(cells) + " |")
    lines.append("")
    if report.throughput:
        lines.append("## Compute Throughput (extension)")
        lines.append("")
        lines.append("| Datatype | Achieved | Confidence |")
        lines.append("|---|---|---|")
        for dtype, av in sorted(report.throughput.items()):
            rate = f"{av.value / 1e12:.1f} TOP/s" if av.value else "—"
            lines.append(f"| {dtype} | {rate} | {av.confidence:.2f} |")
        lines.append("")
    if report.validation is not None:
        lines.extend(_validation_section(report.validation))
    lines.append("## Run Time")
    lines.append("")
    r = report.runtime
    lines.append(f"- Benchmarks executed: {r.benchmarks_executed}")
    lines.append(f"- Simulated GPU time: {r.simulated_gpu_seconds:.2f} s")
    lines.append(f"- Modeled total time: {r.modeled_total_seconds:.2f} s")
    lines.append("")
    cache_meta = report.meta.get("cache") if report.meta else None
    if cache_meta:
        lines.append("## Provenance")
        lines.append("")
        lines.append(
            f"- Discovery cache: **{cache_meta.get('status', '?')}** "
            f"(key `{str(cache_meta.get('key', ''))[:16]}…`, "
            f"store `{cache_meta.get('store', '?')}`)"
        )
        lines.append("")
    return "\n".join(lines)


def _fmt_checked(value) -> str:
    """A cross-check operand: numeric delta values or protocol tuples."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return f"{value:.6g}"
    if isinstance(value, (tuple, list)):
        return ",".join(str(v) for v in value) or "none"
    return str(value)


def _validation_section(validation) -> list[str]:
    """Render the post-hoc validation pass (checks, deltas, escalations)."""
    summary = validation.as_dict()["summary"]
    lines = ["## Validation", ""]
    lines.append(
        f"- Verdict: **{validation.verdict}** "
        f"({summary['checks_passed']} checks passed, "
        f"{summary['checks_failed']} failed, "
        f"{summary['checks_skipped']} skipped; "
        f"{summary['cross_checks_passed']}/{summary['cross_checks_passed'] + summary['cross_checks_failed']}"
        " cross-checks passed)"
    )
    failed = [c for c in validation.checks if c.status == "fail"]
    for check in failed:
        lines.append(f"- Failed check `{check.check}`: {check.detail}")
    if validation.cross_checks:
        lines.append("")
        lines.append("| Element | Attribute | Measured | Reference | Δ | Status |")
        lines.append("|---|---|---|---|---|---|")
        for cc in validation.cross_checks:
            lines.append(
                f"| {cc.element} | {cc.attribute} | {_fmt_checked(cc.measured)} "
                f"| {_fmt_checked(cc.reference)} | {cc.rel_error:.1%} | {cc.status} |"
            )
    if validation.escalations:
        lines.append("")
        lines.append("Escalated re-measurements:")
        lines.append("")
        for e in validation.escalations:
            outcome = (
                f"re-measured {e.old_value} -> {e.new_value}"
                if e.resolved
                else "no re-measurement path; failure stands"
            )
            lines.append(f"- {e.element}.{e.attribute} ({e.reason}): {outcome}")
    if validation.recalibrations:
        lines.append("")
        lines.append(
            f"Confidences recalibrated from cross-check agreement: "
            f"{len(validation.recalibrations)} attributes."
        )
    lines.append("")
    return lines


def write_markdown(report: TopologyReport, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_markdown(report), encoding="utf-8")
    return path
