"""Report writers: JSON (machine), Markdown (human), CSV (legacy).

The real tool prints JSON to stdout by default and offers ``-j`` (JSON
file), ``-p`` (Markdown report) and a CSV output that GPUscout-GUI still
parses (paper Section VI-B footnote 19).
"""

from repro.core.output.csv_out import to_csv
from repro.core.output.json_out import to_json
from repro.core.output.markdown import to_markdown

__all__ = ["to_json", "to_markdown", "to_csv"]
