"""JSON report writer (the tool's primary machine-readable output)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.report import TopologyReport
from repro.errors import OutputError

__all__ = ["to_json", "write_json"]


def to_json(report: TopologyReport, indent: int = 2) -> str:
    """Serialize a report to a JSON string."""
    try:
        return json.dumps(report.as_dict(), indent=indent, sort_keys=False)
    except (TypeError, ValueError) as exc:
        raise OutputError(f"report not JSON-serialisable: {exc}") from exc


def write_json(report: TopologyReport, path: str | Path, indent: int = 2) -> Path:
    """Write the JSON report to ``path`` (parent dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_json(report, indent=indent) + "\n", encoding="utf-8")
    return path
