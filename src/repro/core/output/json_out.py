"""JSON report writer (the tool's primary machine-readable output).

Also hosts :func:`to_jsonable`, the sanitiser the raw-data writer
(``mt4g -o``) uses: benchmark detail payloads carry numpy scalars and
arrays, tuples and enums that ``json.dumps`` rejects.
"""

from __future__ import annotations

import enum
import json
from pathlib import Path
from typing import Any

from repro.core.report import TopologyReport
from repro.errors import OutputError

__all__ = [
    "CONTENT_TYPE",
    "to_json",
    "write_json",
    "to_jsonable",
    "write_raw_json",
    "to_fleet_json",
    "write_fleet_json",
]

#: MIME type of this writer's output (the serving subsystem's format
#: negotiation maps Accept headers onto writers through these).
CONTENT_TYPE = "application/json"


def to_json(report: TopologyReport, indent: int = 2) -> str:
    """Serialize a report to a JSON string."""
    try:
        return json.dumps(report.as_dict(), indent=indent, sort_keys=False)
    except (TypeError, ValueError) as exc:
        raise OutputError(f"report not JSON-serialisable: {exc}") from exc


def write_json(report: TopologyReport, path: str | Path, indent: int = 2) -> Path:
    """Write the JSON report to ``path`` (parent dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_json(report, indent=indent) + "\n", encoding="utf-8")
    return path


def to_jsonable(value: Any) -> Any:
    """Recursively convert a raw-data payload to JSON-serialisable types.

    Handles numpy scalars/arrays (``item()``/``tolist()``), tuples, sets,
    enums and non-string dict keys; unknown objects fall back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays
        return to_jsonable(value.tolist())
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return str(value)


def write_raw_json(payload: dict[str, Any], path: str | Path, indent: int = 2) -> Path:
    """Write a raw-data payload (sanitised) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_jsonable(payload), indent=indent) + "\n", encoding="utf-8"
    )
    return path


def to_fleet_json(result, indent: int = 2) -> str:
    """Serialize a :class:`~repro.validate.fleet.FleetResult` to JSON.

    The fleet payload (matrix + per-preset reports + ``fleet_validation``
    section) is sanitised first: protocol values carry tuples.
    """
    try:
        return json.dumps(to_jsonable(result.as_dict()), indent=indent)
    except (TypeError, ValueError) as exc:
        raise OutputError(f"fleet result not JSON-serialisable: {exc}") from exc


def write_fleet_json(result, path: str | Path, indent: int = 2) -> Path:
    """Write the fleet JSON report to ``path`` (parent dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_fleet_json(result, indent=indent) + "\n", encoding="utf-8")
    return path
