"""CSV report writer.

GPUscout-GUI "currently parses the original MT4G CSV output" (paper
Section VI-B, footnote 19), so the legacy flat format is kept: one row
per (element, attribute) with value, unit, confidence and source.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.core.report import ATTRIBUTES, TopologyReport

__all__ = ["to_csv", "write_csv"]


def _flatten_value(value) -> str:
    if value is None:
        return ""
    if isinstance(value, tuple):
        return ";".join(str(v) for v in value)
    if isinstance(value, dict):
        return ";".join(f"{k}:{'|'.join(map(str, v))}" for k, v in value.items())
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def to_csv(report: TopologyReport) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["element", "attribute", "value", "unit", "confidence", "source", "note"])
    for name, element in report.memory.items():
        for attr in ATTRIBUTES:
            v = element.get(attr)
            writer.writerow(
                [
                    name,
                    attr,
                    _flatten_value(v.value),
                    v.unit,
                    f"{v.confidence:.4f}",
                    v.source.value,
                    v.note,
                ]
            )
    return buf.getvalue()


def write_csv(report: TopologyReport, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_csv(report), encoding="utf-8")
    return path
