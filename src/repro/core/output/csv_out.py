"""CSV report writer.

GPUscout-GUI "currently parses the original MT4G CSV output" (paper
Section VI-B, footnote 19), so the legacy flat format is kept: one row
per (element, attribute) with value, unit, confidence and source.
Validated reports append ``__validation__`` rows (verdict, per-check
status, cross-check deltas) after the attribute rows.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.core.report import ATTRIBUTES, TopologyReport

__all__ = ["CONTENT_TYPE", "to_csv", "write_csv"]

#: MIME type of this writer's output (serving format negotiation).
CONTENT_TYPE = "text/csv"


def _flatten_value(value) -> str:
    if value is None:
        return ""
    if isinstance(value, (tuple, list)):
        return ";".join(str(v) for v in value)
    if isinstance(value, dict):
        return ";".join(f"{k}:{_flatten_dict_entry(v)}" for k, v in value.items())
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _flatten_dict_entry(value) -> str:
    """Dict values may be sequences (CU-sharing maps) or plain scalars.

    Only real sequences are pipe-joined; a scalar is stringified whole —
    joining its characters would mangle it ({"L2": "Shared"} must read
    ``L2:Shared``, not ``L2:S|h|a|r|e|d``) and a non-iterable would raise.
    """
    if isinstance(value, (tuple, list)):
        return "|".join(str(v) for v in value)
    return str(value)


def to_csv(report: TopologyReport) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["element", "attribute", "value", "unit", "confidence", "source", "note"])
    for name, element in report.memory.items():
        for attr in ATTRIBUTES:
            v = element.get(attr)
            writer.writerow(
                [
                    name,
                    attr,
                    _flatten_value(v.value),
                    v.unit,
                    f"{v.confidence:.4f}",
                    v.source.value,
                    v.note,
                ]
            )
    # Validation rows ride along only when a validation pass ran, so the
    # legacy shape GPUscout parses is untouched for plain discoveries.
    # The sentinel element name cannot collide with a real memory element.
    if report.validation is not None:
        v = report.validation
        writer.writerow(
            ["__validation__", "verdict", v.verdict, "", "", "validation", ""]
        )
        for check in v.checks:
            writer.writerow(
                [
                    "__validation__",
                    check.check,
                    check.status,
                    "",
                    "",
                    "validation",
                    check.detail,
                ]
            )
        for cc in v.cross_checks:
            writer.writerow(
                [
                    "__validation__",
                    f"cross:{cc.element}.{cc.attribute}",
                    cc.status,
                    "",
                    f"{cc.rel_error:.4f}",
                    "validation",
                    f"measured {_flatten_value(cc.measured) or 'none'} vs "
                    f"{_flatten_value(cc.reference) or 'none'} ({cc.reference_source})",
                ]
            )
    # Cache provenance rides along the same way: a sentinel element that
    # cannot collide with a real memory element, absent for uncached runs.
    cache_meta = report.meta.get("cache") if report.meta else None
    if cache_meta:
        writer.writerow(
            [
                "__meta__",
                "cache",
                cache_meta.get("status", ""),
                "",
                "",
                "meta",
                f"key {cache_meta.get('key', '')} store {cache_meta.get('store', '')}",
            ]
        )
    return buf.getvalue()


def write_csv(report: TopologyReport, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_csv(report), encoding="utf-8")
    return path
