"""The MT4G orchestrator (paper contribution C1).

Drives the Section-IV benchmark suite and the vendor-API reads into a
unified :class:`~repro.core.report.TopologyReport`, following Table I's
source-of-truth matrix exactly: attributes available through an interface
are never benchmarked, attributes no interface exposes are measured, and
attributes that cannot be obtained are reported as such.

Per-element pipelines (dependencies dictate the order):

1. *fetch granularity* first — it is the access stride and the natural
   sweep step of everything that follows;
2. *size* — K-S change-point detection over a p-chase size sweep;
3. *load latency* — fixed-size p-chase (capped at the measured size so
   small caches like the 2 KiB Constant L1 are probed in-cache);
4. *cache line size* — stride profiles around the measured capacity;
5. *amount* / *L2 segments* — cooperative-eviction protocols;
6. *physical sharing* — pairwise eviction across logical spaces
   (NVIDIA) or CU pairs (AMD);
7. *bandwidth* — streaming kernels on higher-level caches and DRAM.
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Iterable

from repro.api.hip import hip_get_device_properties
from repro.api.hsa import hsa_cache_info
from repro.api.kfd import kfd_cache_line_sizes
from repro.core.benchmarks.amount import measure_amount, resolve_l2_segments
from repro.core.benchmarks.bandwidth import measure_bandwidth
from repro.core.benchmarks.base import BenchmarkContext, MeasurementResult, Source
from repro.core.benchmarks.cacheline import measure_cache_line_size
from repro.core.benchmarks.fetch_granularity import measure_fetch_granularity
from repro.core.benchmarks.flops import measure_all_flops
from repro.core.benchmarks.latency import measure_load_latency
from repro.core.benchmarks.sharing import measure_sharing_nvidia, measure_sl1d_sharing
from repro.core.benchmarks.size import measure_cache_size
from repro.core.report import (
    AttributeValue,
    ComputeReport,
    GeneralReport,
    MemoryElementReport,
    RuntimeReport,
    TopologyReport,
)
from repro.errors import ReproError, SimulationError, SpecError
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.isa import LoadKind
from repro.gpuspec.presets.amd import CORES_PER_CU
from repro.obs import profile as _profile
from repro.gpuspec.presets.nvidia import CORES_PER_SM
from repro.gpuspec.spec import Vendor
from repro.pchase.config import PChaseConfig
from repro.stats.compare import majority_index, median_index
from repro.units import KiB, MiB

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache pkg is leaf)
    from repro.cache.store import DiscoveryCache

__all__ = ["MT4G", "NVIDIA_ELEMENTS", "AMD_ELEMENTS"]

#: Modeled CPU-side cost (setup, transfers, K-S evaluation) per benchmark;
#: feeds the Section V-A run-time report.
CPU_SECONDS_PER_BENCHMARK = 0.35

#: NVIDIA compute capability -> microarchitecture (the tool's own table;
#: the simulator spec is not consulted).
CC_TO_MICROARCH = {
    "6.0": "Pascal",
    "6.1": "Pascal",
    "7.0": "Volta",
    "7.2": "Volta",
    "7.5": "Turing",
    "8.0": "Ampere",
    "8.6": "Ampere",
    "8.9": "Ada Lovelace",
    "9.0": "Hopper",
}

#: AMD gfx arch -> microarchitecture.
GFX_TO_MICROARCH = {
    "gfx908": "CDNA",
    "gfx90a": "CDNA2",
    "gfx942": "CDNA3",
    "gfxtest": "CDNA2",
}

NVIDIA_ELEMENTS = (
    "L1",
    "L2",
    "Texture",
    "Readonly",
    "ConstL1",
    "ConstL1.5",
    "SharedMem",
    "DeviceMemory",
)
AMD_ELEMENTS = ("vL1", "sL1d", "L2", "L3", "LDS", "DeviceMemory")

_NV_KINDS = {
    "L1": LoadKind.LD_GLOBAL_CA,
    "L2": LoadKind.LD_GLOBAL_CG,
    "Texture": LoadKind.TEX1DFETCH,
    "Readonly": LoadKind.LDG,
    "ConstL1": LoadKind.LD_CONST,
    "ConstL1.5": LoadKind.LD_CONST,
    "SharedMem": LoadKind.LD_SHARED,
}

_CONST_BANK = 64 * KiB  # paper Section III-C / footnote 10

_AMD_KINDS = {
    "vL1": LoadKind.FLAT_LOAD,
    "sL1d": LoadKind.S_LOAD,
    "L2": LoadKind.FLAT_LOAD_GLC,
}

#: Seed offsets of the escalation re-measurements: three independent
#: noise streams, far from any seed a user would pick deliberately.
_ESCALATION_SEED_OFFSETS = (1009, 2003, 3001)

#: One shared no-op context for every un-profiled phase scope: entering
#: it allocates nothing, keeping ``MT4G._phase`` free when profiling is
#: off (the ``faults.inject()`` zero-cost contract).
_NULL_PHASE = nullcontext()


class MT4G:
    """Vendor-agnostic GPU topology discovery against a (simulated) device.

    >>> tool = MT4G(SimulatedGPU.from_preset("H100-80"))
    >>> report = tool.discover()
    >>> report.attribute("L2", "amount").value
    2
    """

    #: opt-in Section VII extensions.
    EXTENSIONS = frozenset({"flops", "lowlevel_bandwidth"})

    def __init__(
        self,
        device: SimulatedGPU,
        config: PChaseConfig | None = None,
        targets: Iterable[str] | None = None,
        extensions: Iterable[str] = (),
        cache: "DiscoveryCache | None" = None,
    ) -> None:
        self.device = device
        self.ctx = BenchmarkContext(device, config)
        #: Optional :class:`repro.cache.DiscoveryCache`: whole-report
        #: discoveries and per-seed escalation re-measurements are
        #: memoised under content-addressed keys; None measures always.
        self.cache = cache
        self.extensions = frozenset(extensions)
        unknown_ext = self.extensions - self.EXTENSIONS
        if unknown_ext:
            raise SpecError(
                f"unknown extensions {sorted(unknown_ext)}; "
                f"available: {sorted(self.EXTENSIONS)}"
            )
        all_elements = (
            NVIDIA_ELEMENTS if device.vendor is Vendor.NVIDIA else AMD_ELEMENTS
        )
        if targets is None:
            self.targets = set(all_elements)
        else:
            unknown = set(targets) - set(all_elements)
            if unknown:
                raise SpecError(
                    f"unknown targets {sorted(unknown)}; "
                    f"valid for {device.vendor.value}: {all_elements}"
                )
            self.targets = set(targets)
        self._measured_sizes: dict[str, int] = {}
        self._measured_fg: dict[str, int] = {}
        #: raw benchmark artefacts (size grids, reduced latency vectors,
        #: per-run statistics) keyed element -> attribute; the CLI's
        #: ``--raw`` flag serialises this.
        self.raw_data: dict[str, dict[str, Any]] = {}
        #: The NVIDIA sharing protocol measures the *whole* pairwise
        #: matrix at once; when several shared_with checks escalate in
        #: one pass, the per-(seed, targets) matrix is computed once and
        #: each element takes its row from it.
        self._sharing_remeasure_cache: dict[tuple, dict[str, MeasurementResult]] = {}

    # ------------------------------------------------------------------ #
    # public API                                                          #
    # ------------------------------------------------------------------ #

    def discover(self, validate: bool = False) -> TopologyReport:
        """Run the full pipeline and return the unified report.

        ``validate=True`` appends the post-hoc validation pass
        (:mod:`repro.validate`): plausibility checks, cross-checks against
        the device's reference values, confidence recalibration and — for
        failing checks — re-measurement escalation.

        With a :class:`~repro.cache.DiscoveryCache` attached, a previous
        run with identical inputs (device spec + seed + carveout + MIG,
        p-chase config, targets, extensions, validate flag, schema salt)
        is returned from the store instead of re-measured — byte-identical
        to the cold report, with the raw sweep artefacts and the measured
        sizes the escalation path depends on restored alongside.  The
        report's ``meta["cache"]`` records hit/miss provenance.
        """
        key = None
        if self.cache is not None:
            # A cache must never sink a run: an unkeyable input (e.g. an
            # exotic spec field the canonicaliser refuses) degrades this
            # discovery to uncached measurement.
            try:
                key = self.cache.report_key(
                    self.device,
                    self.ctx.config,
                    self.targets,
                    self.extensions,
                    validate,
                )
            except Exception:
                key = None
            if key is not None:
                with self._phase("cache", "restore"):
                    report = self._restore_cached_discovery(
                        self.cache.get(key), key
                    )
                if report is not None:
                    prof = _profile.ACTIVE
                    if prof is not None:
                        # Attached to the *returned* report only — the
                        # stored payload predates this run, so profile
                        # data can never leak into served bytes.
                        report.meta["profile"] = prof.as_dict()
                    return report
        with self._phase("general", "api_query"):
            general, compute = self._general_and_compute()
        if self.device.vendor is Vendor.NVIDIA:
            memory = self._discover_nvidia()
        else:
            memory = self._discover_amd()
        throughput: dict[str, AttributeValue] = {}
        if "flops" in self.extensions:
            with self._phase("throughput", "flops"):
                throughput = {
                    dtype: AttributeValue.from_measurement(m)
                    for dtype, m in measure_all_flops(self.ctx).items()
                }
        if "lowlevel_bandwidth" in self.extensions:
            with self._phase("bandwidth", "extension"):
                self._extension_lowlevel_bandwidth(memory)
        runtime = RuntimeReport(
            benchmarks_executed=self.ctx.benchmarks_run,
            simulated_gpu_seconds=self.device.elapsed_seconds(),
            modeled_cpu_seconds=self.ctx.benchmarks_run * CPU_SECONDS_PER_BENCHMARK,
            per_benchmark_seconds=self.ctx.seconds_per_benchmark(),
        )
        report = TopologyReport(
            general=general,
            compute=compute,
            memory=memory,
            runtime=runtime,
            seed=self.device.seed,
            throughput=throughput,
        )
        if validate:
            with self._phase("validation", "checks"):
                self.validate(report)
        if self.cache is not None and key is not None:
            # Serialised before meta is attached: the stored payload must
            # not claim to be its own cache miss.
            self.cache.put(
                key,
                {
                    "report": report,
                    "raw_data": self.raw_data,
                    "measured_sizes": self._measured_sizes,
                    "measured_fg": self._measured_fg,
                },
            )
            report.meta["cache"] = self._cache_provenance("miss", key)
        prof = _profile.ACTIVE
        if prof is not None:
            # After cache.put, like meta["cache"]: profiles describe this
            # process's run, never the stored (and therefore served) bytes.
            report.meta["profile"] = prof.as_dict()
        return report

    def _cache_provenance(self, status: str, key: str) -> dict[str, Any]:
        return {"status": status, "key": key, "store": str(self.cache.root)}

    def _restore_cached_discovery(
        self, payload: Any, key: str
    ) -> TopologyReport | None:
        """Rehydrate a cached discovery, or None when the payload is unusable.

        Restores the tool state a later validation pass depends on
        (measured sizes/granularities shape the escalation probe rings)
        and the raw sweep artefacts the CLI's ``--raw`` flag serialises.
        """
        if not isinstance(payload, dict):
            return None
        report = payload.get("report")
        if not isinstance(report, TopologyReport):
            return None
        try:
            # Parsed fully before any assignment: a payload rejected
            # half-way must not leave stale cached state merged into the
            # fresh measurement that follows.
            raw_data = dict(payload["raw_data"])
            measured_sizes = dict(payload["measured_sizes"])
            measured_fg = dict(payload["measured_fg"])
        except (KeyError, TypeError, ValueError):
            return None
        self.raw_data = raw_data
        self._measured_sizes = measured_sizes
        self._measured_fg = measured_fg
        report.meta["cache"] = self._cache_provenance("hit", key)
        return report

    def validate(self, report: TopologyReport):
        """Run the validation pass over ``report`` (stored on the report).

        Wires this tool in as the validator's escalation backend: a
        failing check re-measures the implicated attribute with doubled
        sample counts across fresh seeds and keeps the median result.
        """
        # Imported lazily: the validate package's fleet runner imports
        # this module, so a module-level import would be circular.
        from repro.validate.validator import validate_report

        return validate_report(
            report,
            spec=self.device.spec,
            cache_config=self.device.cache_config,
            escalate=self._escalate_measurement,
        )

    def _extension_lowlevel_bandwidth(
        self, memory: dict[str, MemoryElementReport]
    ) -> None:
        """Section VII: "extend the bandwidth benchmarking to low-level
        caches" — measure the first-level data cache when the device's
        stream path can target it; otherwise record an honest no-result."""
        target = "L1" if self.device.vendor is Vendor.NVIDIA else "vL1"
        element = memory.get(target)
        if element is None:
            return
        for op in ("read", "write"):
            try:
                m = measure_bandwidth(self.ctx, target, op)
                m.note = "extension: low-level bandwidth"
            except SimulationError as exc:
                m = MeasurementResult.no_result(
                    f"bandwidth_{op}", target, "B/s", str(exc)
                )
            self._bench(element, f"{op}_bandwidth", m)

    # ------------------------------------------------------------------ #
    # general / compute (Sections III-A/B: APIs + lookup table)           #
    # ------------------------------------------------------------------ #

    def _general_and_compute(self) -> tuple[GeneralReport, ComputeReport]:
        props = hip_get_device_properties(self.device)
        if self.device.vendor is Vendor.NVIDIA:
            microarch = CC_TO_MICROARCH.get(props.compute_capability, "unknown")
            cores = CORES_PER_SM.get(microarch, 64)
            cc = props.compute_capability
            simds = 0
        else:
            microarch = GFX_TO_MICROARCH.get(props.gcnArchName, "unknown")
            cores = CORES_PER_CU.get(microarch, 64)
            cc = props.gcnArchName
            simds = 4
        general = GeneralReport(
            vendor=self.device.vendor.value,
            model=props.name,
            microarchitecture=microarch,
            compute_capability=cc,
            clock_rate_hz=props.clockRate * 1000.0,
            memory_clock_rate_hz=props.memoryClockRate * 1000.0,
            memory_bus_width_bits=props.memoryBusWidth,
        )
        compute = ComputeReport(
            num_sms=props.multiProcessorCount,
            cores_per_sm=cores,
            warp_size=props.warpSize,
            max_blocks_per_sm=props.maxBlocksPerMultiProcessor,
            max_threads_per_block=props.maxThreadsPerBlock,
            max_threads_per_sm=props.maxThreadsPerMultiProcessor,
            registers_per_block=props.regsPerBlock,
            registers_per_sm=props.regsPerMultiprocessor,
            warps_per_sm=cores // props.warpSize,
            simds_per_sm=simds,
            physical_cu_ids=tuple(self.device.spec.compute.physical_cu_ids),
        )
        return general, compute

    # ------------------------------------------------------------------ #
    # shared helpers                                                      #
    # ------------------------------------------------------------------ #

    def _phase(self, element: str, phase: str):
        """Profiler phase scope, or a shared no-op when profiling is off.

        Wall-clock nests: an inner phase's time is attributed to the
        inner entry only (:meth:`DiscoveryProfile.phase`), so wrapping a
        whole element *and* its sub-stages double-counts nothing.
        """
        prof = _profile.ACTIVE
        if prof is None:
            return _NULL_PHASE
        return prof.phase(element, phase)

    def _bench(self, element: MemoryElementReport, attribute: str, m: MeasurementResult) -> None:
        element.set(attribute, AttributeValue.from_measurement(m))
        if m.detail:
            self.raw_data.setdefault(element.name, {})[attribute] = {
                "benchmark": m.benchmark,
                "unit": m.unit,
                **m.detail,
            }

    def _fg(self, name: str, default: int = 32) -> int:
        return self._measured_fg.get(name, default)

    def _latency_element(
        self,
        element: MemoryElementReport,
        kind: LoadKind,
        name: str,
        array_bytes: int | None = None,
        cold: bool = False,
    ) -> None:
        m = measure_load_latency(
            self.ctx,
            kind,
            name,
            self._fg(name),
            array_bytes=array_bytes,
            cold=cold,
        )
        self._bench(element, "load_latency", m)

    @property
    def _props_struct(self) -> str:
        """The device-properties struct the vendor's runtime exposes."""
        return (
            "cudaDeviceProp" if self.device.vendor is Vendor.NVIDIA else "hipDeviceProp"
        )

    def _new_element(self, name: str) -> MemoryElementReport:
        el = MemoryElementReport(name)
        for attr in (
            "size",
            "load_latency",
            "read_bandwidth",
            "write_bandwidth",
            "cache_line_size",
            "fetch_granularity",
            "amount",
            "shared_with",
        ):
            el.set(attr, AttributeValue.not_applicable())
        return el

    def _lowlevel_bandwidth_note(self, element: MemoryElementReport) -> None:
        """Table I dagger: bandwidth only measured on higher levels."""
        note = "bandwidth measured only on higher-level caches / device memory"
        element.set("read_bandwidth", AttributeValue.not_applicable("B/s"))
        element.set("write_bandwidth", AttributeValue.not_applicable("B/s"))
        element.get("read_bandwidth").note = note

    # ------------------------------------------------------------------ #
    # NVIDIA pipeline                                                     #
    # ------------------------------------------------------------------ #

    def _discover_nvidia(self) -> dict[str, MemoryElementReport]:
        props = hip_get_device_properties(self.device)
        memory: dict[str, MemoryElementReport] = {}

        # --- cache family: FG -> size -> latency -> line -> amount -----
        cacheable = [
            n for n in ("L1", "Texture", "Readonly") if n in self.targets
        ]
        for name in cacheable:
            with self._phase(name, "measure"):
                memory[name] = self._nv_generic_cache(name)
        if "ConstL1" in self.targets or "ConstL1.5" in self.targets:
            with self._phase("ConstL1", "measure"):
                memory.update(self._nv_constant_pair())
        if "L2" in self.targets:
            with self._phase("L2", "measure"):
                memory["L2"] = self._nv_l2(props.l2CacheSize)
        if "SharedMem" in self.targets:
            with self._phase("SharedMem", "measure"):
                memory["SharedMem"] = self._nv_shared(props.sharedMemPerBlock)
        if "DeviceMemory" in self.targets:
            with self._phase("DeviceMemory", "measure"):
                memory["DeviceMemory"] = self._device_memory(props.totalGlobalMem)

        # --- physical sharing across logical spaces (Section IV-G) -----
        sharing_targets = {
            name: (
                _NV_KINDS[name],
                self._measured_sizes.get(name, 16 * KiB),
                self._fg(name),
            )
            for name in ("L1", "Texture", "Readonly", "ConstL1")
            if name in memory and self._measured_sizes.get(name)
        }
        if len(sharing_targets) >= 2:
            with self._phase("sharing", "measure"):
                results = measure_sharing_nvidia(self.ctx, sharing_targets)
            for name, res in results.items():
                self._bench(memory[name], "shared_with", res)
        return memory

    def _nv_generic_cache(self, name: str) -> MemoryElementReport:
        el = self._new_element(name)
        kind = _NV_KINDS[name]
        with self._phase(name, "fetch_granularity"):
            fg = measure_fetch_granularity(self.ctx, kind, name)
        self._bench(el, "fetch_granularity", fg)
        if fg.conclusive:
            self._measured_fg[name] = int(fg.value)
        with self._phase(name, "size_sweep"):
            size = measure_cache_size(
                self.ctx, kind, name, self._fg(name), lo=1 * KiB, hi_cap=1 * MiB
            )
        self._bench(el, "size", size)
        if size.conclusive:
            self._measured_sizes[name] = int(size.value)
        with self._phase(name, "latency"):
            self._latency_element(
                el, kind, name, array_bytes=self._latency_array(name)
            )
        if size.conclusive:
            with self._phase(name, "line_size"):
                line = measure_cache_line_size(
                    self.ctx, kind, name, int(size.value), self._fg(name)
                )
            self._bench(el, "cache_line_size", line)
            with self._phase(name, "amount"):
                amount = measure_amount(
                    self.ctx,
                    kind,
                    name,
                    int(size.value),
                    self._fg(name),
                    spans_all_warps=(name == "L1"),
                )
            self._bench(el, "amount", amount)
        self._lowlevel_bandwidth_note(el)
        return el

    def _latency_array(self, name: str) -> int | None:
        """Latency-benchmark array size: 256 x FG, capped inside the cache.

        The cap keeps a 10 % margin below the *measured* size so a slight
        size-benchmark overestimate cannot push the p-chase into the next
        level (Section IV-C requires in-cache probing).
        """
        measured = self._measured_sizes.get(name)
        default = self.ctx.config.latency_array_elems * self._fg(name)
        if measured is not None and measured < default:
            stride = self._fg(name)
            return max(stride, int(measured * 0.9) // stride * stride)
        return None

    def _nv_constant_pair(self) -> dict[str, MemoryElementReport]:
        """The constant hierarchy needs latency-band thresholds (IV-B fn. 10)."""
        ctx = self.ctx
        kind = LoadKind.LD_CONST
        cl1 = self._new_element("ConstL1")
        cl15 = self._new_element("ConstL1.5")

        # Latency bands: a tiny warmed array is surely inside CL1; the
        # CL1.5 band is the *smallest* clearly-elevated mean over a few
        # probe sizes (an array that overruns CL1.5 would report the next
        # level instead); a cold un-warmed run gives the DRAM band.
        band_cl1 = float(
            ctx.runner.latencies(kind, 512, 64, fresh=True, warmup=True).mean()
        )
        mid_candidates = [
            float(ctx.runner.latencies(kind, nb, 64, fresh=True, warmup=True).mean())
            for nb in (4 * KiB, 8 * KiB, 16 * KiB, 32 * KiB)
        ]
        elevated = [m for m in mid_candidates if m > band_cl1 + 10.0]
        band_cl15 = min(elevated) if elevated else max(mid_candidates)
        band_dram = float(
            ctx.runner.latencies(
                LoadKind.LD_GLOBAL_CG, 64 * KiB, 256, fresh=True, warmup=False
            ).mean()
        )

        # Fetch granularities: CL1 hits are below the CL1/CL1.5 midpoint;
        # CL1.5 hits below the CL1.5/DRAM midpoint.
        fg1 = measure_fetch_granularity(
            ctx, kind, "ConstL1", hit_threshold=(band_cl1 + band_cl15) / 2.0
        )
        self._bench(cl1, "fetch_granularity", fg1)
        if fg1.conclusive:
            self._measured_fg["ConstL1"] = int(fg1.value)
        fg15 = measure_fetch_granularity(
            ctx, kind, "ConstL1.5", hit_threshold=(band_cl15 + band_dram) / 2.0
        )
        self._bench(cl15, "fetch_granularity", fg15)
        if fg15.conclusive:
            self._measured_fg["ConstL1.5"] = int(fg15.value)

        size1 = measure_cache_size(
            ctx, kind, "ConstL1", self._fg("ConstL1", 64), lo=256, hi_cap=_CONST_BANK
        )
        self._bench(cl1, "size", size1)
        if size1.conclusive:
            self._measured_sizes["ConstL1"] = int(size1.value)
        cl1_size = self._measured_sizes.get("ConstL1", 2 * KiB)

        # CL1.5: probe window starts above the CL1 boundary; the constant
        # bank caps it at 64 KiB (the paper's ">64KiB, confidence 0" case).
        size15 = measure_cache_size(
            ctx,
            kind,
            "ConstL1.5",
            self._fg("ConstL1.5", 256),
            lo=min(4 * cl1_size, _CONST_BANK // 2),
            hi_cap=_CONST_BANK,
        )
        self._bench(cl15, "size", size15)
        if size15.conclusive:
            self._measured_sizes["ConstL1.5"] = int(size15.value)

        self._latency_element(cl1, kind, "ConstL1", array_bytes=cl1_size)
        self._latency_element(
            cl15, kind, "ConstL1.5", array_bytes=min(8 * cl1_size, _CONST_BANK)
        )

        if size1.conclusive:
            line1 = measure_cache_line_size(
                ctx,
                kind,
                "ConstL1",
                int(size1.value),
                self._fg("ConstL1", 64),
                max_size_cap=_CONST_BANK,
            )
            self._bench(cl1, "cache_line_size", line1)
            amount1 = measure_amount(
                ctx, kind, "ConstL1", int(size1.value), self._fg("ConstL1", 64)
            )
            self._bench(cl1, "amount", amount1)
        # The CL1.5 line size is never computed (paper Section V): the
        # size input is capped by the constant bank, and line-skipping
        # strides shrink the probe footprint back into the Constant L1,
        # which then captures every load before it reaches CL1.5.
        cl15.set(
            "cache_line_size",
            AttributeValue.unavailable(
                "B", "takes the cache size as input, which the 64 KiB bank caps"
            ),
        )
        # Amount cannot evict beyond the constant bank (paper Section III-C).
        cl15.set(
            "amount",
            AttributeValue.unavailable(
                "count", "64 KiB constant-array limit prevents eviction probing"
            ),
        )
        self._lowlevel_bandwidth_note(cl1)
        self._lowlevel_bandwidth_note(cl15)
        return {"ConstL1": cl1, "ConstL1.5": cl15}

    def _nv_l2(self, api_total: int) -> MemoryElementReport:
        el = self._new_element("L2")
        kind = LoadKind.LD_GLOBAL_CG
        el.set(
            "size",
            AttributeValue(api_total, "B", 1.0, Source.API, "cudaDeviceProp l2CacheSize"),
        )
        fg = measure_fetch_granularity(self.ctx, kind, "L2")
        self._bench(el, "fetch_granularity", fg)
        if fg.conclusive:
            self._measured_fg["L2"] = int(fg.value)
        stride = self._fg("L2")
        l1_size = self._measured_sizes.get("L1", 256 * KiB)
        segment = measure_cache_size(
            self.ctx,
            kind,
            "L2",
            stride,
            lo=max(4 * l1_size, 16 * KiB),
            hi_cap=2 * api_total,
        )
        if segment.conclusive:
            self._measured_sizes["L2"] = int(segment.value)
            segments = resolve_l2_segments(self.ctx, int(segment.value), api_total)
            self._bench(el, "amount", segments)
            line = measure_cache_line_size(
                self.ctx, kind, "L2", int(segment.value), stride
            )
            self._bench(el, "cache_line_size", line)
        else:
            el.set("amount", AttributeValue.unavailable("count", segment.note))
        self._latency_element(el, kind, "L2")
        self._bench(el, "read_bandwidth", measure_bandwidth(self.ctx, "L2", "read"))
        self._bench(el, "write_bandwidth", measure_bandwidth(self.ctx, "L2", "write"))
        el.set("shared_with", AttributeValue.not_applicable("elements"))
        return el

    def _nv_shared(self, api_size: int) -> MemoryElementReport:
        el = self._new_element("SharedMem")
        el.set(
            "size",
            AttributeValue(api_size, "B", 1.0, Source.API, "cudaDeviceProp sharedMemPerBlock"),
        )
        self._latency_element(el, LoadKind.LD_SHARED, "SharedMem", array_bytes=4 * KiB)
        self._lowlevel_bandwidth_note(el)
        return el

    def _device_memory(self, api_size: int) -> MemoryElementReport:
        el = self._new_element("DeviceMemory")
        el.set(
            "size",
            AttributeValue(
                api_size, "B", 1.0, Source.API, f"{self._props_struct} totalGlobalMem"
            ),
        )
        cold_kind = (
            LoadKind.LD_GLOBAL_CG
            if self.device.vendor is Vendor.NVIDIA
            else LoadKind.FLAT_LOAD_GLC
        )
        # The cold probe's stride must exceed every cache's sector size so
        # no access lands in a sector an earlier miss already fetched.
        m = measure_load_latency(
            self.ctx, cold_kind, "DeviceMemory", fetch_granularity=256, cold=True
        )
        self._bench(el, "load_latency", m)
        self._bench(
            el, "read_bandwidth", measure_bandwidth(self.ctx, "DeviceMemory", "read")
        )
        self._bench(
            el, "write_bandwidth", measure_bandwidth(self.ctx, "DeviceMemory", "write")
        )
        return el

    # ------------------------------------------------------------------ #
    # AMD pipeline                                                        #
    # ------------------------------------------------------------------ #

    def _discover_amd(self) -> dict[str, MemoryElementReport]:
        props = hip_get_device_properties(self.device)
        hsa = hsa_cache_info(self.device)
        kfd_lines = kfd_cache_line_sizes(self.device)
        memory: dict[str, MemoryElementReport] = {}

        if "vL1" in self.targets:
            with self._phase("vL1", "measure"):
                memory["vL1"] = self._amd_l1("vL1", LoadKind.FLAT_LOAD, amount=True)
        if "sL1d" in self.targets:
            with self._phase("sL1d", "measure"):
                memory["sL1d"] = self._amd_l1("sL1d", LoadKind.S_LOAD, amount=False)
                sl1d_size = self._measured_sizes.get("sL1d", 16 * KiB)
                sharing = measure_sl1d_sharing(
                    self.ctx, sl1d_size, self._fg("sL1d", 64)
                )
                self._bench(memory["sL1d"], "shared_with", sharing)
        if "L2" in self.targets:
            with self._phase("L2", "measure"):
                memory["L2"] = self._amd_llc("L2", hsa, kfd_lines, latency=True)
        if "L3" in self.targets and self.device.spec.has_cache("L3"):
            with self._phase("L3", "measure"):
                memory["L3"] = self._amd_llc("L3", hsa, kfd_lines, latency=False)
        if "LDS" in self.targets:
            with self._phase("LDS", "measure"):
                memory["LDS"] = self._amd_lds(props.sharedMemPerBlock)
        if "DeviceMemory" in self.targets:
            with self._phase("DeviceMemory", "measure"):
                memory["DeviceMemory"] = self._device_memory(props.totalGlobalMem)
        return memory

    def _amd_l1(self, name: str, kind: LoadKind, amount: bool) -> MemoryElementReport:
        el = self._new_element(name)
        fg = measure_fetch_granularity(self.ctx, kind, name)
        self._bench(el, "fetch_granularity", fg)
        if fg.conclusive:
            self._measured_fg[name] = int(fg.value)
        size = measure_cache_size(
            self.ctx, kind, name, self._fg(name, 64), lo=1 * KiB, hi_cap=1 * MiB
        )
        self._bench(el, "size", size)
        if size.conclusive:
            self._measured_sizes[name] = int(size.value)
            line = measure_cache_line_size(
                self.ctx, kind, name, int(size.value), self._fg(name, 64)
            )
            self._bench(el, "cache_line_size", line)
            if amount:
                amt = measure_amount(
                    self.ctx, kind, name, int(size.value), self._fg(name, 64)
                )
                self._bench(el, "amount", amt)
        self._latency_element(el, kind, name, array_bytes=self._latency_array(name))
        self._lowlevel_bandwidth_note(el)
        return el

    def _amd_llc(
        self,
        name: str,
        hsa: dict[str, dict[str, int]],
        kfd_lines: dict[str, int],
        latency: bool,
    ) -> MemoryElementReport:
        el = self._new_element(name)
        info = hsa.get(name)
        if info:
            el.set(
                "size",
                AttributeValue(
                    info["size"] * info["instances"], "B", 1.0, Source.API, "HSA runtime"
                ),
            )
            el.set(
                "amount",
                AttributeValue(
                    info["instances"], "count", 1.0, Source.API, "one L2 per XCD"
                ),
            )
        if name in kfd_lines:
            el.set(
                "cache_line_size",
                AttributeValue(kfd_lines[name], "B", 1.0, Source.API, "KFD driver files"),
            )
        if latency:
            kind = LoadKind.FLAT_LOAD_GLC
            fg = measure_fetch_granularity(self.ctx, kind, name)
            self._bench(el, "fetch_granularity", fg)
            if fg.conclusive:
                self._measured_fg[name] = int(fg.value)
            self._latency_element(el, kind, name)
        else:
            # Paper Section III-C: no load-latency / fetch-granularity
            # benchmark exists yet for the CDNA3 L3.
            el.set(
                "load_latency",
                AttributeValue.unavailable(
                    "cycles", "no benchmark can isolate the CDNA3 L3 yet"
                ),
            )
            el.set(
                "fetch_granularity",
                AttributeValue.unavailable(
                    "B", "no benchmark can isolate the CDNA3 L3 yet"
                ),
            )
        self._bench(el, "read_bandwidth", measure_bandwidth(self.ctx, name, "read"))
        self._bench(el, "write_bandwidth", measure_bandwidth(self.ctx, name, "write"))
        return el

    def _amd_lds(self, api_size: int) -> MemoryElementReport:
        el = self._new_element("LDS")
        el.set(
            "size",
            AttributeValue(api_size, "B", 1.0, Source.API, "hipDeviceProp sharedMemPerBlock"),
        )
        self._latency_element(el, LoadKind.DS_READ, "LDS", array_bytes=4 * KiB)
        self._lowlevel_bandwidth_note(el)
        return el

    # ------------------------------------------------------------------ #
    # validation escalation (re-measurement backend)                      #
    # ------------------------------------------------------------------ #

    def _kind_for(self, element: str) -> LoadKind | None:
        """The load instruction that targets ``element``, if one exists."""
        if element == "SharedMem":
            return LoadKind.LD_SHARED
        if element == "LDS":
            return LoadKind.DS_READ
        if element == "DeviceMemory":
            return (
                LoadKind.LD_GLOBAL_CG
                if self.device.vendor is Vendor.NVIDIA
                else LoadKind.FLAT_LOAD_GLC
            )
        if self.device.vendor is Vendor.NVIDIA:
            return _NV_KINDS.get(element)
        return _AMD_KINDS.get(element)

    def _escalation_context(self, seed_offset: int) -> BenchmarkContext:
        """A fresh device (new noise stream) with doubled sample counts."""
        device = SimulatedGPU(
            self.device.spec,
            seed=self.device.seed + seed_offset,
            cache_config=self.device.cache_config,
        )
        config = dataclasses.replace(
            self.ctx.config, n_samples=2 * self.ctx.config.n_samples
        )
        return BenchmarkContext(device, config)

    def _remeasure_latency(
        self, ctx: BenchmarkContext, element: str
    ) -> MeasurementResult | None:
        kind = self._kind_for(element)
        if kind is None:
            return None
        if element == "DeviceMemory":
            return measure_load_latency(
                ctx, kind, element, fetch_granularity=256, cold=True
            )
        if element in ("SharedMem", "LDS"):
            return measure_load_latency(
                ctx, kind, element, self._fg(element), array_bytes=4 * KiB
            )
        stride = self._fg(element)
        if element == "ConstL1":
            # The pipeline probes with a ring of exactly the measured
            # size; if that size is one sweep-stride too large (a routine
            # overestimate, cf. Table III's 2.1 KiB), the ring thrashes
            # and the latency reads high.  The re-measurement keeps the
            # same 10 % in-cache margin the generic caches use.
            measured = self._measured_sizes.get("ConstL1", 2 * KiB)
            array = max(stride, int(measured * 0.9) // stride * stride)
        elif element == "ConstL1.5":
            cl1 = self._measured_sizes.get("ConstL1", 2 * KiB)
            cl15 = self._measured_sizes.get("ConstL1.5")
            if cl15 is not None and cl15 < _CONST_BANK:
                array = max(
                    2 * cl1, int(cl15 * 0.9) // stride * stride
                )
            else:
                array = min(8 * cl1, _CONST_BANK)
        else:
            array = self._latency_array(element)
        return measure_load_latency(
            ctx, kind, element, stride, array_bytes=array
        )

    def _remeasure_size(
        self, ctx: BenchmarkContext, element: str
    ) -> MeasurementResult | None:
        kind = self._kind_for(element)
        # L2/L3/ConstL1.5 sizes are API values or capped lower bounds;
        # re-sweeping them cannot produce a better answer.
        if kind is None or element in (
            "L2",
            "L3",
            "ConstL1.5",
            "SharedMem",
            "LDS",
            "DeviceMemory",
        ):
            return None
        if element == "ConstL1":
            return measure_cache_size(
                ctx, kind, element, self._fg("ConstL1", 64), lo=256, hi_cap=_CONST_BANK
            )
        return measure_cache_size(
            ctx, kind, element, self._fg(element), lo=1 * KiB, hi_cap=1 * MiB
        )

    def _remeasure_amount(
        self, ctx: BenchmarkContext, element: str
    ) -> MeasurementResult | None:
        """Protocol re-measurement: re-run the eviction amount protocol.

        The L2 special case replays the segment-size sweep and realigns
        it to the API total (Section IV-F.1); elements whose amount is an
        API value or structurally unmeasurable return None.
        """
        kind = self._kind_for(element)
        if kind is None:
            return None
        if element == "L2":
            if self.device.vendor is not Vendor.NVIDIA:
                return None  # AMD L2/L3 segment counts are API values
            api_total = hip_get_device_properties(self.device).l2CacheSize
            l1_size = self._measured_sizes.get("L1", 256 * KiB)
            segment = measure_cache_size(
                ctx,
                kind,
                "L2",
                self._fg("L2"),
                lo=max(4 * l1_size, 16 * KiB),
                hi_cap=2 * api_total,
            )
            if not segment.conclusive:
                return None
            return resolve_l2_segments(ctx, int(segment.value), api_total)
        if element in ("ConstL1.5", "sL1d", "L3", "SharedMem", "LDS", "DeviceMemory"):
            return None  # no eviction protocol exists for these (Section III-C)
        size = self._measured_sizes.get(element)
        if size is None:
            return None
        default_fg = 64 if element in ("ConstL1", "vL1") else 32
        return measure_amount(
            ctx,
            kind,
            element,
            size,
            self._fg(element, default_fg),
            spans_all_warps=(element == "L1"),
        )

    def _remeasure_sharing(
        self, ctx: BenchmarkContext, element: str
    ) -> MeasurementResult | None:
        """Protocol re-measurement: re-run the physical-sharing protocol.

        NVIDIA re-runs the full pairwise eviction matrix over the same
        targets the pipeline used (the protocol is pairwise — a single
        element cannot be re-measured in isolation) and returns the
        requested element's row; AMD re-runs the sL1d CU-pair sweep.
        """
        if self.device.vendor is Vendor.NVIDIA:
            targets = {
                name: (_NV_KINDS[name], self._measured_sizes[name], self._fg(name))
                for name in ("L1", "Texture", "Readonly", "ConstL1")
                if self._measured_sizes.get(name)
            }
            if element not in targets or len(targets) < 2:
                return None
            # One matrix per (escalation seed, target geometry): other
            # elements escalated in the same pass reuse their row rather
            # than re-running the identical full pairwise protocol.
            key = (
                ctx.device.seed,
                tuple(sorted((n, s, f) for n, (_, s, f) in targets.items())),
            )
            matrix = self._sharing_remeasure_cache.get(key)
            if matrix is None:
                matrix = measure_sharing_nvidia(ctx, targets)
                self._sharing_remeasure_cache[key] = matrix
            # A copy, so the escalation note never mutates the cached row.
            return dataclasses.replace(matrix[element])
        if element == "sL1d":
            size = self._measured_sizes.get("sL1d", 16 * KiB)
            return measure_sl1d_sharing(ctx, size, self._fg("sL1d", 64))
        return None

    def _escalate_measurement(
        self, element: str, attribute: str
    ) -> MeasurementResult | None:
        """Re-measure one attribute across fresh seeds and keep one run.

        The validator calls this when a check fails.  Numeric results
        (latency, size, bandwidth, and the integer amount — re-run via
        its full eviction protocol) keep the median run; ``shared_with``
        re-runs the sharing protocol and keeps the majority outcome —
        a partner tuple has no meaningful median.  Returns None when the
        attribute has no re-measurement path (API values) — the failure
        then stands as recorded.
        """
        handlers = {
            "load_latency": self._remeasure_latency,
            "size": self._remeasure_size,
            "read_bandwidth": lambda ctx, el: measure_bandwidth(ctx, el, "read"),
            "write_bandwidth": lambda ctx, el: measure_bandwidth(ctx, el, "write"),
            "amount": self._remeasure_amount,
            "shared_with": self._remeasure_sharing,
        }
        handler = handlers.get(attribute)
        if handler is None:
            return None
        candidates: list[MeasurementResult] = []
        for offset in _ESCALATION_SEED_OFFSETS:
            # Each (seed offset, element, attribute) re-measurement is
            # cached individually: re-validating a fleet replays the
            # escalation verdicts from the store instead of re-running
            # three fresh-seed measurement campaigns per failing check.
            # The key carries the measured-size/granularity state because
            # it shapes the probe rings the handlers build.
            mkey = None
            if self.cache is not None:
                try:
                    mkey = self.cache.measurement_key(
                        self.device,
                        self.ctx.config,
                        element,
                        attribute,
                        offset,
                        context={
                            "sizes": self._measured_sizes,
                            "fg": self._measured_fg,
                        },
                    )
                except Exception:  # unkeyable input: measure uncached
                    mkey = None
            if mkey is not None:
                cached = self.cache.get(mkey)
                if isinstance(cached, MeasurementResult):
                    candidates.append(cached)
                    continue
            ctx = self._escalation_context(offset)
            try:
                with self._phase(element, f"escalate:{attribute}"):
                    m = handler(ctx, element)
            except ReproError:
                continue
            if m is None or not m.conclusive:
                continue
            if attribute != "shared_with" and (
                isinstance(m.value, bool) or not isinstance(m.value, (int, float))
            ):
                continue
            if mkey is not None:
                # Only results that passed the filters above are stored —
                # a cache hit re-enters the candidate list directly.  The
                # put serialises eagerly, so the median/majority winner's
                # note mutation below never leaks into the store.
                self.cache.put(mkey, m)
            candidates.append(m)
        if not candidates:
            return None
        if attribute == "shared_with":
            # Majority vote over canonical forms; ties keep the earliest
            # seed so the outcome is deterministic.
            chosen = candidates[majority_index([repr(c.value) for c in candidates])]
            tag = (
                f"escalated: majority of {len(candidates)} protocol re-runs "
                "across fresh seeds"
            )
        else:
            chosen = candidates[median_index([float(c.value) for c in candidates])]
            # Bandwidth re-measurements run the stream benchmark's fixed
            # best-of-3 loop, amount re-runs the full eviction protocol;
            # only the p-chase paths consume n_samples.
            if attribute in ("read_bandwidth", "write_bandwidth"):
                per_run = "best-of-3 stream runs each"
            elif attribute == "amount":
                per_run = "full eviction protocol each"
            else:
                per_run = f"{2 * self.ctx.config.n_samples} samples each"
            tag = f"escalated: median of {len(candidates)} re-measurements, {per_run}"
        chosen.note = f"{chosen.note}; {tag}" if chosen.note else tag
        # A corrected size recalibrates the tool: later escalations (the
        # latency ring is sized from the measured capacity) must use it.
        if attribute == "size":
            self._measured_sizes[element] = int(chosen.value)
        # Keep the -o raw artifact consistent with the validated report:
        # the escalated run's sweep detail supersedes the original's.
        if chosen.detail:
            self.raw_data.setdefault(element, {})[attribute] = {
                "benchmark": chosen.benchmark,
                "unit": chosen.unit,
                "escalated": True,
                **chosen.detail,
            }
        return chosen
