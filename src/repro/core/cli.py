"""Command-line interface mirroring the real ``mt4g`` binary.

Artifact appendix flags reproduced: ``-j`` (JSON file), ``-p`` (Markdown
report), ``-o`` (store raw sweep data: the per-benchmark size grids,
reduced latency vectors and per-run statistics), ``-q`` (quiet: JSON to
stdout only, the mode the paper used for its timing runs), ``--mem``
(restrict to one memory element, footnote 18), plus the cache-carveout
option of footnote 17.  The simulator-specific additions are ``--gpu``
(which preset to analyse — the stand-in for "which machine am I running
on"), ``--seed``, ``--validate`` (the post-hoc validation pass), the
``mt4g fleet`` subcommand that discovers many presets concurrently and
prints a cross-device comparison matrix, the ``mt4g serve`` subcommand
that runs the long-lived topology query service (catalog + reports +
compare/diff over the discovery cache, with single-flight cold-request
coalescing), the ``mt4g graph`` subcommand that renders the canonical
topology graph (JSON or Graphviz DOT, byte-identical to what
``GET /graph/{preset}`` serves, with opt-in ``--host`` context), and
the discovery cache flags ``--cache-dir`` (default ``~/.cache/mt4g``) /
``--no-cache`` — repeat runs with identical inputs are served from the
content-addressed store byte-identically instead of re-measured.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from pathlib import Path

from repro.cache.store import DEFAULT_PRUNE_BYTES, DiscoveryCache
from repro.core.output.csv_out import write_csv
from repro.core.output.json_out import (
    to_fleet_json,
    to_json,
    write_fleet_json,
    write_json,
    write_raw_json,
)
from repro.core.output.markdown import write_markdown
from repro.core.tool import AMD_ELEMENTS, MT4G, NVIDIA_ELEMENTS
from repro.errors import ReproError
from repro.gpusim.device import SimulatedGPU
from repro.gpuspec.presets import available_presets, get_preset
from repro.gpuspec.spec import Vendor

__all__ = [
    "main",
    "build_parser",
    "build_fleet_parser",
    "fleet_main",
    "build_graph_parser",
    "graph_main",
    "build_serve_parser",
    "serve_main",
    "resolve_cache_limit",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mt4g",
        description="Auto-discover GPU compute and memory topologies (simulated).",
    )
    parser.add_argument(
        "--gpu",
        default="H100-80",
        help="GPU preset to analyse (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available GPU presets and exit"
    )
    parser.add_argument("--seed", type=int, default=0, help="measurement noise seed")
    parser.add_argument(
        "--cache-config",
        default="PreferL1",
        choices=("PreferL1", "PreferShared", "PreferEqual"),
        help="NVIDIA L1/shared carveout (cudaDeviceSetCacheConfig)",
    )
    parser.add_argument(
        "--mem",
        action="append",
        metavar="ELEMENT",
        help="restrict discovery to one or more memory elements (repeatable)",
    )
    parser.add_argument(
        "-j",
        "--json",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="write the JSON report to FILE (default <GPU>.json)",
    )
    parser.add_argument(
        "-p",
        "--markdown",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="write a Markdown report to FILE (default <GPU>.md)",
    )
    parser.add_argument(
        "--csv",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="write the legacy CSV report to FILE (default <GPU>.csv)",
    )
    parser.add_argument(
        "-o",
        "--raw",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="store raw sweep data (sizes/reductions) to FILE (default <GPU>_raw.json)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print only the JSON report"
    )
    _add_cache_args(parser)
    parser.add_argument(
        "--validate",
        action="store_true",
        help="run the post-hoc validation pass (plausibility checks, "
        "cross-checks, confidence recalibration, escalation); "
        "exits 2 on a failed verdict",
    )
    parser.add_argument(
        "--flops",
        action="store_true",
        help="extension: benchmark FLOPS per datatype incl. tensor engines",
    )
    parser.add_argument(
        "--lowlevel-bandwidth",
        action="store_true",
        help="extension: benchmark first-level cache bandwidth",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the discovery: per-element per-phase wall clock and "
        "p-chase run counts, printed to stderr after the run (report "
        "bytes on stdout are unchanged)",
    )
    return parser


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("MT4G_CACHE_DIR", "~/.cache/mt4g"),
        metavar="DIR",
        help="content-addressed discovery cache directory; re-runs with "
        "identical inputs are served from here byte-identically "
        "($MT4G_CACHE_DIR overrides; default: ~/.cache/mt4g)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the discovery cache (always measure)",
    )
    parser.add_argument(
        "--cache-limit",
        type=int,
        default=None,
        metavar="BYTES",
        help="LRU-prune the on-disk cache to this many bytes after a run "
        "(precedence: this flag, then $MT4G_CACHE_LIMIT_BYTES, then the "
        "2 GiB default)",
    )


def resolve_cache_limit(args: argparse.Namespace) -> int:
    """Disk-cache byte budget: ``--cache-limit`` > env > 2 GiB default."""
    limit = getattr(args, "cache_limit", None)
    if limit is not None:
        return limit
    try:
        return int(os.environ.get("MT4G_CACHE_LIMIT_BYTES", DEFAULT_PRUNE_BYTES))
    except ValueError:
        return DEFAULT_PRUNE_BYTES


def _cache_from_args(args: argparse.Namespace) -> DiscoveryCache | None:
    if args.no_cache:
        return None
    return DiscoveryCache(Path(args.cache_dir).expanduser())


def _prune_cache(store: DiscoveryCache | None, args: argparse.Namespace) -> None:
    """Opportunistic LRU prune after a run: the default-on cache must
    not grow without bound under seed/config sweeps."""
    if store is None:
        return
    store.prune(resolve_cache_limit(args))


def _default_path(arg: str | None, gpu: str, suffix: str) -> Path | None:
    if arg is None:
        return None
    return Path(arg) if arg else Path(f"{gpu}{suffix}")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "fleet":
        return fleet_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "graph":
        return graph_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in available_presets(include_testing=True):
            print(name)
        return 0

    try:
        spec = get_preset(args.gpu)
        device = SimulatedGPU(spec, seed=args.seed, cache_config=args.cache_config)
        valid = NVIDIA_ELEMENTS if spec.vendor is Vendor.NVIDIA else AMD_ELEMENTS
        targets = None
        if args.mem:
            targets = set(args.mem)
            unknown = targets - set(valid)
            if unknown:
                parser.error(
                    f"unknown --mem element(s) {sorted(unknown)}; "
                    f"valid: {', '.join(valid)}"
                )
        extensions = set()
        if args.flops:
            extensions.add("flops")
        if args.lowlevel_bandwidth:
            extensions.add("lowlevel_bandwidth")
        cache = _cache_from_args(args)
        tool = MT4G(device, targets=targets, extensions=extensions, cache=cache)
        if not args.quiet:
            print(f"# analysing {spec.name} ({spec.vendor.value}), seed {args.seed}", file=sys.stderr)
        if args.profile:
            from repro.obs.profile import print_profile, profiled

            with profiled() as profiler:
                report = tool.discover(validate=args.validate)
            # The profile is provenance, not report content: drop it from
            # meta so stdout/report bytes match an unprofiled run exactly,
            # and print the human table to stderr instead.
            report.meta.pop("profile", None)
            print_profile(profiler)
        else:
            report = tool.discover(validate=args.validate)
        cache_meta = report.meta.get("cache")
        if cache_meta and not args.quiet:
            print(
                f"# cache {cache_meta['status']} "
                f"(key {cache_meta['key'][:12]}…, store {cache_meta['store']})",
                file=sys.stderr,
            )
    except ReproError as exc:
        print(f"mt4g: error: {exc}", file=sys.stderr)
        return 1
    _prune_cache(cache, args)

    print(to_json(report))

    json_path = _default_path(args.json, spec.name, ".json")
    if json_path:
        write_json(report, json_path)
        if not args.quiet:
            print(f"# JSON report -> {json_path}", file=sys.stderr)
    md_path = _default_path(args.markdown, spec.name, ".md")
    if md_path:
        write_markdown(report, md_path)
        if not args.quiet:
            print(f"# Markdown report -> {md_path}", file=sys.stderr)
    csv_path = _default_path(args.csv, spec.name, ".csv")
    if csv_path:
        write_csv(report, csv_path)
        if not args.quiet:
            print(f"# CSV report -> {csv_path}", file=sys.stderr)
    raw_path = _default_path(args.raw, spec.name, "_raw.json")
    if raw_path:
        raw = {
            "schema": "mt4g-repro-raw/1",
            "gpu": spec.name,
            "seed": args.seed,
            "benchmarks_executed": report.runtime.benchmarks_executed,
            "per_benchmark_seconds": report.runtime.per_benchmark_seconds,
            # The actual sweep artefacts the help text promises: per-
            # benchmark size grids, reduced latency vectors, raw per-size
            # min/mean/max and per-run statistics, keyed element.attribute.
            "sweeps": tool.raw_data,
        }
        write_raw_json(raw, raw_path)
        if not args.quiet:
            print(f"# raw data -> {raw_path}", file=sys.stderr)
    # Mirror the fleet subcommand: a failed validation verdict is a
    # non-zero exit so CI pipelines need not parse the JSON.
    if args.validate and not report.validation.passed:
        if not args.quiet:
            print(
                f"# validation FAILED: {', '.join(report.validation.failures())}",
                file=sys.stderr,
            )
        return 2
    return 0


def build_fleet_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mt4g fleet",
        description=(
            "Discover many GPU presets concurrently and print a "
            "cross-device comparison matrix with validation verdicts."
        ),
        epilog=(
            "exit codes: 0 all presets discovered and validated; "
            "1 usage/configuration error; "
            "2 validation disagreement (a preset's verdict failed or the "
            "cross-device judge found an inconsistency); "
            "3 worker/infrastructure failure (a discovery errored, timed "
            "out, or its worker process died — takes precedence over 2)"
        ),
    )
    parser.add_argument(
        "--gpu",
        action="append",
        metavar="PRESET",
        help="preset to include (repeatable; default: the ten paper GPUs)",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="include the synthetic testing presets as well",
    )
    parser.add_argument("--seed", type=int, default=0, help="measurement noise seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: one per preset, capped by CPUs)",
    )
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="run in-process, one preset after another (the baseline)",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the per-preset validation pass",
    )
    parser.add_argument(
        "-j",
        "--json",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="write the fleet JSON (matrix + all reports) to FILE "
        "(default fleet.json)",
    )
    parser.add_argument(
        "-p",
        "--markdown",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="write the comparison matrix to FILE (default fleet.md)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="print only the fleet JSON",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="worker attempts per preset for transient failures "
        "(default: 3; 1 disables retrying)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-preset wall budget, queue wait included "
        "(default: unbounded)",
    )
    _add_cache_args(parser)
    return parser


def fleet_main(argv: list[str] | None = None) -> int:
    """``mt4g fleet``: concurrent multi-preset discovery + comparison."""
    # Imported here so plain single-device runs never pay for the
    # process-pool machinery.
    from repro.validate.fleet import discover_fleet

    parser = build_fleet_parser()
    args = parser.parse_args(argv)
    presets = args.gpu or list(available_presets(include_testing=args.all))
    if args.retries is not None and args.retries < 1:
        print("mt4g fleet: error: --retries must be >= 1", file=sys.stderr)
        return 1
    retry = None
    if args.retries is not None:
        from repro.faults.retry import DEFAULT_FLEET_RETRY

        retry = replace(DEFAULT_FLEET_RETRY, attempts=args.retries)
    try:
        result = discover_fleet(
            presets,
            seed=args.seed,
            jobs=args.jobs,
            validate=not args.no_validate,
            parallel=not args.sequential,
            cache_dir=None
            if args.no_cache
            else Path(args.cache_dir).expanduser(),
            retry=retry,
            deadline_seconds=args.deadline,
        )
    except ReproError as exc:
        print(f"mt4g fleet: error: {exc}", file=sys.stderr)
        return 1
    if not args.no_cache:
        _prune_cache(DiscoveryCache(Path(args.cache_dir).expanduser()), args)
    if args.quiet:
        print(to_fleet_json(result))
    else:
        print(result.to_markdown())
    json_path = _default_path(args.json, "fleet", ".json")
    if json_path:
        write_fleet_json(result, json_path)
        if not args.quiet:
            print(f"# fleet JSON -> {json_path}", file=sys.stderr)
    md_path = _default_path(args.markdown, "fleet", ".md")
    if md_path:
        md_path.parent.mkdir(parents=True, exist_ok=True)
        md_path.write_text(result.to_markdown(), encoding="utf-8")
        if not args.quiet:
            print(f"# fleet matrix -> {md_path}", file=sys.stderr)
    # Two distinct non-zero exits so CI can tell "the measurements
    # disagree" (2) from "the machinery broke" (3) without parsing JSON;
    # infrastructure takes precedence — a half-run fleet's verdicts are
    # not evidence either way.
    entries_ok = all(e.verdict in ("pass", "unvalidated") for e in result.entries)
    fleet_ok = result.validation is None or result.validation.passed
    if not fleet_ok and not args.quiet:
        print(
            "# fleet validation FAILED: "
            + ", ".join(result.validation.failures()),
            file=sys.stderr,
        )
    if result.infrastructure_failed:
        if not args.quiet:
            kinds = ", ".join(
                f"{preset}: {kind}"
                for preset, kind in sorted(result.error_kinds().items())
            )
            print(f"# fleet worker/infrastructure FAILURE: {kinds}", file=sys.stderr)
        return 3
    return 0 if entries_ok and fleet_ok else 2


def build_graph_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mt4g graph",
        description=(
            "Render the canonical topology graph of one preset (typed "
            "nodes/edges, canonical ordering).  The JSON bytes equal "
            "GET /graph/{preset} on a service warmed from the same "
            "cache — the graph is a pure function of report content."
        ),
    )
    parser.add_argument(
        "--gpu",
        default="H100-80",
        help="GPU preset to render (see mt4g --list)",
    )
    parser.add_argument("--seed", type=int, default=0, help="measurement noise seed")
    parser.add_argument(
        "--cache-config",
        default="PreferL1",
        choices=("PreferL1", "PreferShared", "PreferEqual"),
        help="NVIDIA L1/shared carveout (cudaDeviceSetCacheConfig)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="discover with the post-hoc validation pass (changes the "
        "cache key, so it must match how a peer service was warmed)",
    )
    parser.add_argument(
        "--format",
        default="json",
        choices=("json", "dot"),
        help="rendering: canonical JSON (default) or Graphviz DOT",
    )
    parser.add_argument(
        "--host",
        action="store_true",
        help="attach best-effort host context (CPU/NUMA/PCIe from /proc "
        "and /sys); collectors that cannot read degrade silently and "
        "the graph records why under meta.host_degraded — host facts "
        "are per-machine, so this breaks byte-identity with a served "
        "graph by design",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the rendering to FILE instead of stdout",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress progress messages"
    )
    _add_cache_args(parser)
    return parser


def graph_main(argv: list[str] | None = None) -> int:
    """``mt4g graph``: the canonical topology graph, offline."""
    # Imported here so plain discovery runs never pay for the graph
    # machinery (mirrors the fleet/serve subcommands' lazy imports).
    from repro.graph import build_graph, collect_host, to_dot, to_graph_json

    parser = build_graph_parser()
    args = parser.parse_args(argv)
    try:
        spec = get_preset(args.gpu)
        device = SimulatedGPU(spec, seed=args.seed, cache_config=args.cache_config)
        cache = _cache_from_args(args)
        tool = MT4G(device, cache=cache)
        if not args.quiet:
            print(
                f"# graphing {spec.name} ({spec.vendor.value}), seed {args.seed}",
                file=sys.stderr,
            )
        report = tool.discover(validate=args.validate)
    except ReproError as exc:
        print(f"mt4g graph: error: {exc}", file=sys.stderr)
        return 1
    _prune_cache(cache, args)
    host = None
    if args.host:
        host = collect_host()
        if host.degraded and not args.quiet:
            print(
                "# host collectors degraded: "
                + ", ".join(sorted(host.degraded)),
                file=sys.stderr,
            )
    graph = build_graph(report, host=host)
    rendered = to_graph_json(graph) if args.format == "json" else to_dot(graph)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered + "\n", encoding="utf-8")
        if not args.quiet:
            print(f"# graph -> {path}", file=sys.stderr)
    else:
        print(rendered)
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mt4g serve",
        description=(
            "Run the long-lived topology query service over the discovery "
            "cache: device catalog, report serving with format "
            "negotiation, cross-device compare, structural diff, and "
            "single-flight background discovery."
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8734,
        help="TCP port to bind; 0 picks an ephemeral port (default: 8734)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("MT4G_CACHE_DIR", "~/.cache/mt4g"),
        metavar="DIR",
        help="discovery cache directory the service serves from "
        "($MT4G_CACHE_DIR overrides; default: ~/.cache/mt4g)",
    )
    parser.add_argument(
        "--no-discover",
        action="store_true",
        help="read-only mode: serve only what the cache already holds; "
        "cold requests are 404s and POST /discover is rejected",
    )
    parser.add_argument(
        "--cache-config",
        default="PreferL1",
        choices=("PreferL1", "PreferShared", "PreferEqual"),
        help="NVIDIA L1/shared carveout the served report keys assume — "
        "must match how the store was warmed (default: PreferL1)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="discovery worker processes (default: CPU count)",
    )
    parser.add_argument(
        "--peers",
        action="append",
        default=None,
        metavar="URL[,URL...]",
        help="peer instance base URLs forming a consistent-hash ring "
        "(repeatable or comma-separated); report keys are sharded "
        "across the ring, local misses pull from the owning peer, and "
        "cold discoveries route to the key's owner",
    )
    parser.add_argument(
        "--advertise",
        default=None,
        metavar="URL",
        help="base URL peers reach this instance under on the ring "
        "(default: http://<bound host>:<bound port>)",
    )
    parser.add_argument(
        "--memory-limit",
        type=int,
        default=None,
        metavar="BYTES",
        help="in-process memory-tier budget in front of the disk store "
        "(0 disables the memory tier; default: 256 MiB)",
    )
    parser.add_argument(
        "--cache-limit",
        type=int,
        default=None,
        metavar="BYTES",
        help="LRU-prune the disk tier to this many bytes after each "
        "completed discovery (precedence: this flag, then "
        "$MT4G_CACHE_LIMIT_BYTES, then the 2 GiB default)",
    )
    parser.add_argument(
        "--keep-alive-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="idle seconds a keep-alive connection is held open for its "
        "next request; 0 disables keep-alive entirely, closing after "
        "every response (default: 60)",
    )
    parser.add_argument(
        "--hot-cache-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="byte budget for the hot-report render cache of "
        "pre-rendered response bodies; 0 disables it "
        "(default: 64 MiB)",
    )
    parser.add_argument(
        "--pool",
        default="warm",
        choices=("warm", "lazy"),
        help="discovery worker-pool lifecycle: 'warm' spawns and "
        "pre-warms the persistent pool at service start, 'lazy' "
        "creates it on the first cold request (default: warm)",
    )
    parser.add_argument(
        "--catalog-ttl",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds the /devices and /healthz catalog snapshot stays "
        "valid before the store is re-walked; 0 re-walks per request "
        "(default: 2)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable request tracing: accept/emit W3C traceparent, record "
        "spans across handler, store tiers, job queue, pool workers and "
        "peer fetches into an in-memory ring served at GET /traces and "
        "GET /traces/{id}",
    )
    parser.add_argument(
        "--trace-slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="with --trace: emit any completed trace slower than MS as a "
        "structured JSON log line (default: off)",
    )
    parser.add_argument(
        "--log-format",
        choices=("json", "text"),
        default=None,
        help="structured access log: one line per request (method, route, "
        "status, duration, trace id, connection reuse) plus write/framing "
        "error events (default: no access log)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the startup banner",
    )
    return parser


def serve_main(argv: list[str] | None = None) -> int:
    """``mt4g serve``: the asyncio topology query service."""
    # Imported here so plain discovery runs never pay for the serving
    # machinery (mirrors the fleet subcommand's lazy import).
    import asyncio

    from repro.cache.ring import normalize_node
    from repro.cache.tiers import DEFAULT_MEMORY_BYTES
    from repro.serve.hotcache import DEFAULT_HOT_CACHE_BYTES
    from repro.serve.server import run_service

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    peers: list[str] = []
    for chunk in args.peers or ():
        peers.extend(p.strip() for p in chunk.split(",") if p.strip())
    try:
        peers = [normalize_node(p) for p in peers]
    except ValueError as exc:
        print(f"mt4g serve: error: --peers: {exc}", file=sys.stderr)
        return 1
    try:
        asyncio.run(
            run_service(
                Path(args.cache_dir).expanduser(),
                host=args.host,
                port=args.port,
                read_only=args.no_discover,
                cache_config=args.cache_config,
                max_workers=args.jobs,
                quiet=args.quiet,
                peers=peers or None,
                advertise=args.advertise,
                memory_limit=DEFAULT_MEMORY_BYTES
                if args.memory_limit is None
                else args.memory_limit,
                cache_limit=resolve_cache_limit(args),
                keep_alive_timeout=args.keep_alive_timeout,
                hot_cache_bytes=DEFAULT_HOT_CACHE_BYTES
                if args.hot_cache_bytes is None
                else args.hot_cache_bytes,
                catalog_ttl=args.catalog_ttl,
                pool_mode=args.pool,
                trace=args.trace,
                trace_slow_ms=args.trace_slow_ms,
                log_format=args.log_format,
            )
        )
    except KeyboardInterrupt:
        pass
    except OSError as exc:  # bind failure: port in use, bad interface
        print(f"mt4g serve: error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
