"""MT4G core: the paper's primary contribution.

:class:`~repro.core.tool.MT4G` orchestrates the Section-IV benchmark
suite and the vendor-API reads into a unified
:class:`~repro.core.report.TopologyReport`.
"""

from repro.core.report import AttributeValue, MemoryElementReport, TopologyReport
from repro.core.tool import MT4G

__all__ = ["MT4G", "TopologyReport", "MemoryElementReport", "AttributeValue"]
