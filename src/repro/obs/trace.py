"""End-to-end request tracing (W3C ``traceparent``, bounded span ring).

The model is deliberately small: a :class:`SpanContext` names *where we
are* in a trace — ``(tracer, trace_id, span_id, parent_id)`` — and lives
in the :data:`CURRENT` context variable.  Instrumented code does::

    ctx = CURRENT.get()
    if ctx is None:          # tracing off: the whole cost of the plane
        ...                  # (one C-level contextvar read, no allocs)

and, when a context is active, records completed spans into the owning
:class:`Tracer`'s lock-guarded bounded ring.  Spans are recorded *at
completion* (there is no mutable in-flight span object), which keeps
recording a single append.

Hot-path spans are stored as flat tuples — ``(trace_id, span_id,
parent_id, name, start_ms, duration_ms, attrs)`` — not dicts: a tuple
of scalars is cheaper to build, and CPython's GC untracks it, so a full
ring adds nothing to collection sweeps.  Tuples become the public JSON
dict shape lazily, at query time (:func:`_finalize_bucket`), the same
deferral as leaf span ids.  Ingested spans (pool workers, peers) arrive
as dicts and are stored as-is; buckets may hold a mix.

Why the tracer rides in the context instead of a module global: tests
and replication run two :class:`~repro.serve.server.TopologyService`
instances in one process, and each must keep its own ring.

Propagation follows the ``$MT4G_FAULT_PLAN`` pattern: the context
crosses process boundaries as a ``traceparent`` string — handed to pool
workers as an argument (persistent pre-warmed pools outlive any env
snapshot) and mirrored into :data:`ENV_VAR` for the job's duration, and
attached as an HTTP header on peer-proxy calls — so a cold request
proxied across the ring is one trace id fleet-wide.
"""

from __future__ import annotations

import json
import os
import random
import re
import sys
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from itertools import islice
from typing import Any, Iterable, Iterator, NamedTuple

__all__ = [
    "CURRENT",
    "ENV_VAR",
    "SpanContext",
    "Tracer",
    "child",
    "complete",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "outbound_traceparent",
    "parse_traceparent",
    "record",
    "worker_trace",
]

#: Environment mirror of the active trace context — the cross-process
#: channel, exactly like ``MT4G_FAULT_PLAN`` for fault plans.
ENV_VAR = "MT4G_TRACEPARENT"

_TRACEPARENT = re.compile(r"^[0-9a-f]{2}-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$")


#: Ids need uniqueness, not unpredictability — and they are minted on
#: the warm serve path, so ``os.urandom``'s per-call syscall is real
#: money.  One urandom seed, then Mersenne draws; ``getrandbits`` is a
#: single C call, atomic under the GIL, so no lock is needed.
_rand = random.Random(os.urandom(16))


def new_trace_id() -> str:
    return f"{_rand.getrandbits(128):032x}"


def new_span_id() -> str:
    return f"{_rand.getrandbits(64):016x}"


#: Pool of pre-minted 48-hex-char id blocks (32 trace + 16 span): one
#: bulk draw plus one C-level hex conversion amortized over the batch
#: beats a per-request draw-and-format.  ``list.pop``/``append`` are
#: GIL-atomic; a racing double-refill just pools extra ids.
_ID_BATCH = 64
_id_pool: list[str] = []


def _new_id_block() -> str:
    if not _id_pool:
        hexed = _rand.getrandbits(_ID_BATCH * 192).to_bytes(
            _ID_BATCH * 24, "big"
        ).hex()
        _id_pool.extend(
            hexed[i : i + 48] for i in range(0, _ID_BATCH * 48, 48)
        )
    return _id_pool.pop()


def parse_traceparent(header: str | None) -> tuple[str, str] | None:
    """``(trace_id, parent_span_id)`` from a W3C traceparent, or None.

    Malformed headers are treated as absent (a fresh trace starts)
    rather than rejected — tracing must never fail a request.
    """
    if not header:
        return None
    match = _TRACEPARENT.match(header.strip().lower())
    if match is None:
        return None
    trace_id, span_id = match.group(1), match.group(2)
    if trace_id == "0" * 32 or span_id == "0" * 16:  # forbidden by the spec
        return None
    return trace_id, span_id


def format_traceparent(trace_id: str, span_id: str) -> str:
    return f"00-{trace_id}-{span_id}-01"


class SpanContext(NamedTuple):
    """A position in a trace: children parent to ``span_id``."""

    tracer: "Tracer"
    trace_id: str
    span_id: str
    #: Parent of the span ``span_id`` itself (remote parent for a
    #: request root continued from an incoming traceparent).
    parent_id: str | None
    #: Request-local span buffer.  When present, leaf spans recorded
    #: under this context go here — one GIL-atomic list append, no
    #: lock, no ring bookkeeping — and reach the ring in a single
    #: locked flush when the request finishes.  ``None`` (worker and
    #: job contexts) means record straight into the ring.
    buf: "list | None" = None

    @property
    def traceparent(self) -> str:
        return format_traceparent(self.trace_id, self.span_id)


#: The active span context.  ``None`` means tracing is off — the single
#: check every instrumented hot path performs.  Context-local, so two
#: services in one process (or one loop) never cross-record.
CURRENT: ContextVar[SpanContext | None] = ContextVar("mt4g_trace", default=None)


class Tracer:
    """Lock-guarded bounded ring of completed traces.

    Spans arrive from the event loop, executor threads and (ingested)
    pool workers; everything mutating is under one lock.  The ring
    bounds both the number of retained traces and spans per trace, so
    a scraping-free deployment cannot grow without limit — the same
    posture as ``MAX_TERMINAL_JOBS``.
    """

    def __init__(
        self,
        max_traces: int = 512,
        max_spans_per_trace: int = 256,
        slow_ms: float | None = None,
        log_stream: Any = None,
        clock=time.time,
    ) -> None:
        self.max_traces = max(1, int(max_traces))
        self.max_spans_per_trace = max(1, int(max_spans_per_trace))
        self.slow_ms = slow_ms
        self._log_stream = log_stream
        self._clock = clock
        # Wall-clock epoch for perf_counter stamps, fixed at creation:
        # start_ms becomes one multiply-add per span instead of a
        # clock() call — this runs on the warm serve path.
        self._epoch_ms = clock() * 1e3 - time.perf_counter() * 1e3
        self._lock = threading.Lock()
        # Insertion-ordered (plain dicts are, since 3.7): eviction is
        # "delete from the front".  Evicting in small batches amortizes
        # the bookkeeping — at steady state every new trace would
        # otherwise pay one eviction on the serve hot path.
        self._evict_batch = max(1, min(32, self.max_traces // 8))
        self._traces: dict[str, list] = {}
        # Finished request buffers wait here (one GIL-atomic append,
        # no lock) until a batch boundary or any query inserts them
        # into the ring.  Queries flush first, so reads stay
        # read-your-writes; the ring lags by at most one batch.
        self._staged: list[list] = []
        self._stage_batch = 64
        self.spans_recorded = 0
        self.spans_dropped = 0
        self.traces_evicted = 0
        self.slow_traces = 0

    # -- context construction ------------------------------------------ #

    def begin(self, traceparent: str | None = None) -> SpanContext:
        """Root context for one request: continue or start a trace.

        The context carries a request-local span buffer: everything
        recorded under it stays off the ring until
        :meth:`finish_request` flushes the whole request in one locked
        pass.
        """
        parsed = parse_traceparent(traceparent) if traceparent else None
        if parsed is None:
            # Both ids from one pooled block; ``tuple.__new__`` skips
            # the generated namedtuple ctor frame.
            ids = _new_id_block()
            return tuple.__new__(
                SpanContext, (self, ids[:32], ids[32:], None, [])
            )
        trace_id, parent_id = parsed
        return tuple.__new__(
            SpanContext, (self, trace_id, new_span_id(), parent_id, [])
        )

    # -- recording ----------------------------------------------------- #

    def record(
        self,
        ctx: SpanContext,
        name: str,
        start: float,
        attrs: dict | None = None,
        *,
        span_id: str | None = None,
        parent_id: str | None = None,
    ) -> None:
        """Record a completed span; ``start`` is a ``perf_counter`` stamp.

        Without ``span_id`` a fresh **leaf** span is created under
        ``ctx.span_id`` — its own id is left unassigned until queried
        (see :func:`_finalize`); with it, the span *is* ``ctx`` (its
        parent the remote/submitting span) — used for request roots and
        job spans whose ids children and workers have already parented
        to.
        """
        duration_ms = (time.perf_counter() - start) * 1e3
        span = {
            "trace_id": ctx.trace_id,
            "span_id": span_id,
            "parent_id": parent_id if span_id is not None else ctx.span_id,
            "name": name,
            "start_ms": self._epoch_ms + start * 1e3,
            "duration_ms": duration_ms,
        }
        if attrs:
            span["attrs"] = attrs
        self._append(span)

    def ingest(self, spans: Iterable[dict]) -> None:
        """Adopt spans recorded elsewhere (pool worker, peer instance)."""
        for span in spans:
            if isinstance(span, dict) and "trace_id" in span:
                self._append(dict(span))

    def drain(self) -> list[dict]:
        """All spans, flat, clearing the ring (worker-side harvest)."""
        with self._lock:
            self._flush_staged()
            spans = []
            for bucket in self._traces.values():
                spans.extend(_finalize_bucket(bucket))
            self._traces.clear()
        return spans

    def _append(self, span: "dict | tuple") -> None:
        key = span[0] if type(span) is tuple else span["trace_id"]
        with self._lock:
            traces = self._traces
            bucket = traces.get(key)
            if bucket is None:
                if len(traces) >= self.max_traces:
                    for trace_id in list(islice(iter(traces), self._evict_batch)):
                        del traces[trace_id]
                        self.traces_evicted += 1
                bucket = traces[key] = []
            if len(bucket) >= self.max_spans_per_trace:
                self.spans_dropped += 1
                return
            bucket.append(span)
            self.spans_recorded += 1

    # -- request completion (root span + slow-trace log) --------------- #

    def finish_request(
        self,
        ctx: SpanContext,
        name: str,
        start: float,
        status: int,
        elapsed: float | None = None,
    ) -> None:
        """Record the request root and flush the request's span buffer.

        One lock acquisition and one bucket lookup for the entire
        request, however many spans it buffered — the buffer list
        itself becomes the ring bucket, no copy.  ``elapsed`` (seconds)
        lets a caller that already took the end stamp share it.
        """
        elapsed_ms = (
            (time.perf_counter() - start) if elapsed is None else elapsed
        ) * 1e3
        spans = ctx.buf if ctx.buf is not None else []
        # A bare int in the attrs slot means {"status": int} — the one
        # attr every root span carries, folded flat to skip a dict.
        spans.append(
            (
                ctx.trace_id,
                ctx.span_id,
                ctx.parent_id,
                name,
                self._epoch_ms + start * 1e3,
                elapsed_ms,
                status,
            )
        )
        staged = self._staged
        staged.append(spans)
        if len(staged) >= self._stage_batch:
            with self._lock:
                self._flush_staged()
        if self.slow_ms is not None and elapsed_ms >= self.slow_ms:
            self._log_slow(ctx.trace_id, name, status, elapsed_ms)

    def _flush_staged(self) -> None:
        """Insert staged request buffers into the ring (lock held).

        Drain-prefix: concurrent ``finish_request`` appends land past
        the snapshot length and survive the trailing ``del``.  A buffer
        list *becomes* its ring bucket (no copy); ``adopted`` tracks
        lists adopted within this pass so a context finished twice
        between flushes is not double-counted.
        """
        staged = self._staged
        n = len(staged)
        if not n:
            return
        traces = self._traces
        adopted: set[int] | None = None
        for spans in staged[:n]:
            tail = spans[-1]
            key = tail[0] if type(tail) is tuple else tail["trace_id"]
            bucket = traces.get(key)
            if bucket is spans:
                if adopted is None or id(spans) not in adopted:
                    # Adopted by an earlier flush; only the root newly
                    # appended by this finish is unaccounted.
                    self.spans_recorded += 1
                continue
            if bucket is None:
                if len(traces) >= self.max_traces:
                    for trace_id in list(islice(iter(traces), self._evict_batch)):
                        del traces[trace_id]
                        self.traces_evicted += 1
                over = len(spans) - self.max_spans_per_trace
                if over > 0:
                    del spans[self.max_spans_per_trace :]
                    self.spans_dropped += over
                traces[key] = spans
                self.spans_recorded += len(spans)
                if adopted is None:
                    adopted = set()
                adopted.add(id(spans))
            else:
                room = self.max_spans_per_trace - len(bucket)
                take = max(0, min(room, len(spans)))
                bucket.extend(spans[:take])
                self.spans_recorded += take
                self.spans_dropped += len(spans) - take
        del staged[:n]

    def _log_slow(
        self, trace_id: str, name: str, status: int, elapsed_ms: float
    ) -> None:
        with self._lock:
            self._flush_staged()
            self.slow_traces += 1
            bucket = self._traces.get(trace_id)
            spans = _finalize_bucket(bucket) if bucket is not None else []
        line = json.dumps(
            {
                "event": "slow_trace",
                "trace_id": trace_id,
                "route": name,
                "status": status,
                "duration_ms": round(elapsed_ms, 3),
                "threshold_ms": self.slow_ms,
                "spans": spans,
            },
            separators=(",", ":"),
        )
        stream = self._log_stream if self._log_stream is not None else sys.stderr
        try:
            print(line, file=stream, flush=True)
        except (OSError, ValueError):  # closed stream: logging never raises
            pass

    # -- queries ------------------------------------------------------- #

    def spans(self, trace_id: str) -> list[dict]:
        with self._lock:
            self._flush_staged()
            bucket = self._traces.get(trace_id)
            return _finalize_bucket(bucket) if bucket is not None else []

    def summaries(self) -> list[dict]:
        """Newest-first per-trace digests for ``GET /traces``."""
        with self._lock:
            self._flush_staged()
            items = [
                (tid, _finalize_bucket(bucket))
                for tid, bucket in self._traces.items()
            ]
        out = []
        for trace_id, spans in reversed(items):
            roots = [s for s in spans if s.get("parent_id") is None]
            head = roots[0] if roots else spans[0]
            out.append(
                {
                    "trace_id": trace_id,
                    "name": head["name"],
                    "duration_ms": max(s["duration_ms"] for s in spans),
                    "spans": len(spans),
                }
            )
        return out

    def stats(self) -> dict:
        with self._lock:
            self._flush_staged()
            return {
                "traces_held": len(self._traces),
                "spans_recorded": self.spans_recorded,
                "spans_dropped": self.spans_dropped,
                "traces_evicted": self.traces_evicted,
                "slow_traces": self.slow_traces,
            }


# -------------------------------------------------------------------- #
# module-level helpers used by instrumented code                        #
# -------------------------------------------------------------------- #


def _finalize_bucket(bucket: list) -> list[dict]:
    """Make a trace bucket presentable, at query time, in place.

    Hot-path spans sit in the bucket as flat tuples; here each becomes
    the public JSON dict, leaf spans get their ids (they are parents to
    nothing, so the id is pure output — minting it on the serve hot
    path would be paying for the query in the request), and timestamps
    get rounded.  Finalized spans are *written back*, so ids are stable
    across repeated queries (callers hold the tracer lock).
    """
    for i, span in enumerate(bucket):
        if type(span) is tuple:
            trace_id, span_id, parent_id, name, start_ms, duration_ms, attrs = span
            span = {
                "trace_id": trace_id,
                "span_id": span_id if span_id is not None else new_span_id(),
                "parent_id": parent_id,
                "name": name,
                "start_ms": round(start_ms, 3),
                "duration_ms": round(duration_ms, 3),
            }
            if attrs is not None:
                # a bare int is the folded root-span status (see
                # finish_request)
                span["attrs"] = {"status": attrs} if type(attrs) is int else attrs
            bucket[i] = span
        else:
            if span["span_id"] is None:
                span["span_id"] = new_span_id()
            span["start_ms"] = round(span["start_ms"], 3)
            span["duration_ms"] = round(span["duration_ms"], 3)
    return list(bucket)


def record(ctx: SpanContext, name: str, start: float, **attrs: Any) -> None:
    """Record a leaf span under ``ctx`` (hot-path form: caller already
    holds the context and its ``perf_counter`` start)."""
    span = (
        ctx.trace_id,
        None,  # leaf: id filled at query time
        ctx.span_id,
        name,
        ctx.tracer._epoch_ms + start * 1e3,
        (time.perf_counter() - start) * 1e3,
        attrs or None,
    )
    if ctx.buf is not None:
        ctx.buf.append(span)  # flushed by finish_request
    else:
        ctx.tracer._append(span)


def complete(ctx: SpanContext, name: str, start: float, **attrs: Any) -> None:
    """Record the span ``ctx`` itself identifies (children/workers have
    already parented to ``ctx.span_id``)."""
    span = (
        ctx.trace_id,
        ctx.span_id,
        ctx.parent_id,
        name,
        ctx.tracer._epoch_ms + start * 1e3,
        (time.perf_counter() - start) * 1e3,
        attrs or None,
    )
    if ctx.buf is not None:
        ctx.buf.append(span)  # flushed by finish_request
    else:
        ctx.tracer._append(span)


@contextmanager
def child(name: str, **attrs: Any) -> Iterator[SpanContext | None]:
    """Run a block as a child span (no-op yielding None when off)."""
    ctx = CURRENT.get()
    if ctx is None:
        yield None
        return
    sub = SpanContext(ctx.tracer, ctx.trace_id, new_span_id(), ctx.span_id, ctx.buf)
    token = CURRENT.set(sub)
    start = time.perf_counter()
    try:
        yield sub
    finally:
        CURRENT.reset(token)
        complete(sub, name, start, **attrs)


def outbound_traceparent() -> str | None:
    """Header value for outbound peer calls: the active context, else
    the environment mirror (set around pool-worker jobs)."""
    ctx = CURRENT.get()
    if ctx is not None:
        return ctx.traceparent
    return os.environ.get(ENV_VAR) or None


@contextmanager
def worker_trace(traceparent: str | None) -> Iterator[SpanContext | None]:
    """Activate tracing inside a pool worker for one job.

    Builds a throwaway :class:`Tracer` (the worker has no ring of its
    own — spans travel back in the ``WorkerOutcome``), parents to the
    job span named by ``traceparent``, and mirrors the context into
    :data:`ENV_VAR` for the job's duration so nested subprocess or
    peer-fetch paths inherit it the way fault plans do.
    """
    parsed = parse_traceparent(traceparent)
    if parsed is None:
        yield None
        return
    trace_id, parent_id = parsed
    ctx = SpanContext(Tracer(max_traces=8), trace_id, new_span_id(), parent_id)
    token = CURRENT.set(ctx)
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = traceparent  # the MT4G_FAULT_PLAN idiom
    try:
        yield ctx
    finally:
        CURRENT.reset(token)
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
