"""Structured access log for ``mt4g serve`` (``--log-format json|text``).

One line per completed request plus one line per connection-level
failure (framing errors, write failures) — the events the connection
counters in ``/metrics`` previously only tallied.  JSON lines are
machine-parseable (one object per line); text is the classic
human-scannable form.  Lines go to stderr by default so stdout stays
clean, and emission never raises: a logging failure must not take a
connection down with it.
"""

from __future__ import annotations

import json
import time
from typing import Any, TextIO

__all__ = ["AccessLog"]

FORMATS = ("json", "text")


class AccessLog:
    def __init__(
        self, fmt: str = "json", stream: TextIO | None = None, clock=time.time
    ) -> None:
        if fmt not in FORMATS:
            raise ValueError(f"log format must be one of {FORMATS}, got {fmt!r}")
        self.fmt = fmt
        self.stream = stream
        self._clock = clock

    def _emit(self, fields: dict[str, Any], text: str) -> None:
        if self.fmt == "json":
            line = json.dumps(fields, separators=(",", ":"))
        else:
            line = text
        try:
            if self.stream is not None:
                print(line, file=self.stream, flush=True)
            else:
                import sys

                print(line, file=sys.stderr, flush=True)
        except (OSError, ValueError):
            pass

    def _stamp(self) -> str:
        now = self._clock()
        return time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(now)) + (
            ".%03dZ" % int(now % 1 * 1000)
        )

    def request(
        self,
        *,
        method: str,
        path: str,
        route: str,
        status: int,
        duration_ms: float,
        trace_id: str = "",
        reused: bool = False,
    ) -> None:
        ts = self._stamp()
        fields = {
            "ts": ts,
            "event": "request",
            "method": method,
            "route": route,
            "path": path,
            "status": status,
            "duration_ms": round(duration_ms, 3),
            "reused": reused,
        }
        if trace_id:
            fields["trace_id"] = trace_id
        trace = f" trace={trace_id}" if trace_id else ""
        self._emit(
            fields,
            f"{ts} {method} {path} {status} {duration_ms:.3f}ms"
            f"{trace}{' reused' if reused else ''}",
        )

    def event(self, kind: str, reason: str, **extra: Any) -> None:
        """Connection-level event (``bad_request``, ``write_error``...)."""
        ts = self._stamp()
        fields = {"ts": ts, "event": kind, "reason": reason, **extra}
        detail = "".join(f" {k}={v}" for k, v in extra.items())
        self._emit(fields, f"{ts} {kind}: {reason}{detail}")
