"""Discovery phase profiler: per-element, per-phase wall attribution.

``/metrics`` can say a discovery took 2.3 s; it cannot say where the
time went.  This module attributes discovery wall-clock to phases —
size sweeps, binary descent, latency/line/amount measurement,
validation, escalation re-measurements — per memory element, together
with the p-chase run and warm-reuse counts that explain the cost
(``PChaseRunner.stats`` exposes only totals).

Activation is process-global and opt-in (``mt4g --profile``, or the
serve pool when tracing is on); when :data:`ACTIVE` is ``None`` the
hooks in ``MT4G`` and ``PChaseRunner.latencies`` cost one attribute
read and a ``None`` check — the ``faults.inject()`` contract.

The rendered profile is run provenance, not topology content: it is
attached to ``report.meta`` only *after* the cache entry is serialised
(the ``meta["cache"]`` ordering) and therefore never lands in stored or
served report bytes — the same rule as ``host_degraded``.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["ACTIVE", "DiscoveryProfile", "activate", "deactivate", "profiled"]

#: The active profile, or None (off).  Hot paths read this attribute
#: directly; mutate it only through activate()/deactivate().
ACTIVE: "DiscoveryProfile | None" = None

#: Warm-reuse classes mirrored from ``PChaseRunner.stats``.
_WARM_KINDS = ("full_warms", "suffix_warms", "shrink_warms")


class DiscoveryProfile:
    """Phase ledger for one discovery run.

    Phases nest (an escalation re-measurement runs inside validation);
    wall time is attributed to the *innermost* open phase, matching how
    a flame graph reads.  Single discovery runs are single-threaded, so
    no lock — each pool worker activates its own instance.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._started = clock()
        self._phases: dict[tuple[str, str], dict] = {}
        self._current: dict | None = None
        self.pchase_runs = 0
        self.pchase_seconds = 0.0

    # -- phase attribution --------------------------------------------- #

    def _entry(self, element: str, phase: str) -> dict:
        key = (element, phase)
        entry = self._phases.get(key)
        if entry is None:
            entry = self._phases[key] = {
                "element": element,
                "phase": phase,
                "wall_seconds": 0.0,
                "calls": 0,
                "pchase_runs": 0,
                "pchase_seconds": 0.0,
                "warms": dict.fromkeys(_WARM_KINDS, 0),
            }
        return entry

    @contextmanager
    def phase(self, element: str, phase: str) -> Iterator[None]:
        entry = self._entry(element, phase)
        previous = self._current
        self._current = entry
        start = self._clock()
        try:
            yield
        finally:
            entry["wall_seconds"] += self._clock() - start
            entry["calls"] += 1
            self._current = previous

    def record_run(self, seconds: float, warm_kind: str | None) -> None:
        """One ``PChaseRunner.latencies`` call, attributed to the open
        phase (``warm_kind`` is a ``_WARM_KINDS`` member or None)."""
        self.pchase_runs += 1
        self.pchase_seconds += seconds
        entry = self._current
        if entry is not None:
            entry["pchase_runs"] += 1
            entry["pchase_seconds"] += seconds
            if warm_kind is not None:
                entry["warms"][warm_kind] += 1

    # -- output -------------------------------------------------------- #

    def as_dict(self) -> dict[str, Any]:
        phases = [
            {
                **entry,
                "wall_seconds": round(entry["wall_seconds"], 6),
                "pchase_seconds": round(entry["pchase_seconds"], 6),
                "warms": dict(entry["warms"]),
            }
            for entry in self._phases.values()
        ]
        return {
            "schema": "mt4g-repro-profile/1",
            "wall_seconds": round(self._clock() - self._started, 6),
            "pchase_runs": self.pchase_runs,
            "pchase_seconds": round(self.pchase_seconds, 6),
            "phases": phases,
        }

    def render(self) -> str:
        """Human table (``mt4g --profile`` prints this to stderr)."""
        data = self.as_dict()
        lines = [
            f"discovery profile: {data['wall_seconds']:.3f}s wall, "
            f"{data['pchase_runs']} p-chase runs "
            f"({data['pchase_seconds']:.3f}s)",
            f"{'element':<18} {'phase':<22} {'wall_s':>8} {'runs':>6} "
            f"{'full':>5} {'sufx':>5} {'shrk':>5}",
        ]
        ordered = sorted(
            data["phases"], key=lambda p: p["wall_seconds"], reverse=True
        )
        for entry in ordered:
            warms = entry["warms"]
            lines.append(
                f"{entry['element']:<18} {entry['phase']:<22} "
                f"{entry['wall_seconds']:>8.3f} {entry['pchase_runs']:>6} "
                f"{warms['full_warms']:>5} {warms['suffix_warms']:>5} "
                f"{warms['shrink_warms']:>5}"
            )
        return "\n".join(lines)


def activate(profile: DiscoveryProfile) -> DiscoveryProfile:
    global ACTIVE
    ACTIVE = profile
    return profile


def deactivate() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def profiled() -> Iterator[DiscoveryProfile]:
    """Activate a fresh profile for a block, restoring the previous."""
    global ACTIVE
    previous = ACTIVE
    profile = DiscoveryProfile()
    ACTIVE = profile
    try:
        yield profile
    finally:
        ACTIVE = previous


def print_profile(profile: DiscoveryProfile, stream=None) -> None:
    """Render to stderr (stdout stays reserved for report bytes)."""
    print(profile.render(), file=stream if stream is not None else sys.stderr)
