"""Observability plane: tracing, discovery profiling, structured logs.

Three off-by-default instruments over the discovery/serving stack:

* :mod:`repro.obs.trace` — W3C ``traceparent`` request tracing with a
  bounded in-memory ring of completed spans (served at ``/traces``),
  propagated across pool workers and ring peers so one cold proxied
  request is one trace;
* :mod:`repro.obs.profile` — per-element, per-phase discovery wall
  profiler over ``MT4G.discover``/``PChaseRunner`` (``mt4g --profile``);
* :mod:`repro.obs.accesslog` — structured per-request access log
  (``mt4g serve --log-format json|text``).

Everything here follows the ``faults.inject()`` contract: when not
activated, instrumented hot paths pay a single ``None`` check and
allocate nothing, and no instrument ever alters served report bytes.
"""

from repro.obs.accesslog import AccessLog
from repro.obs.profile import DiscoveryProfile
from repro.obs.trace import (
    CURRENT,
    SpanContext,
    Tracer,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)

__all__ = [
    "AccessLog",
    "CURRENT",
    "DiscoveryProfile",
    "SpanContext",
    "Tracer",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
]
