"""The host-side p-chase driver: buffers, runs, sweeps.

Owns the benchmark buffers (one reusable arena slot per address space, so
repeated sweeps do not exhaust the device allocator) and exposes the three
measurement primitives every Section-IV benchmark builds on:

* :meth:`PChaseRunner.latencies` — one fine-grained p-chase run;
* :meth:`PChaseRunner.sweep` — a latency matrix over array sizes;
* :meth:`PChaseRunner.probe` — cold/warm probe passes for the protocols.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.isa import LoadKind, MemorySpace, space_for_kind
from repro.gpusim.kernel import probe_hits, run_pchase, warm
from repro.pchase.config import PChaseConfig

__all__ = ["PChaseRunner"]

_SHARED_BASE = 1 << 28


class PChaseRunner:
    """Stateful driver bound to one simulated device."""

    def __init__(self, device: SimulatedGPU, config: PChaseConfig | None = None) -> None:
        self.device = device
        self.config = config or PChaseConfig()
        self._buffers: dict[tuple[MemorySpace, int], tuple[int, int]] = {}

    # ------------------------------------------------------------------ #
    # buffers                                                             #
    # ------------------------------------------------------------------ #

    def buffer(self, kind: LoadKind, nbytes: int, slot: int = 0) -> int:
        """Base address of a buffer large enough for ``nbytes``.

        Buffers are cached per (address space, slot) and only re-allocated
        when they must grow; the cooperative protocols use two slots of
        the same space (arrays A and B of Sections IV-F..H).  The
        shared-memory space needs no arena (loads never touch a cache)
        and uses fixed scratch addresses.
        """
        if nbytes <= 0:
            raise SimulationError("buffer size must be positive")
        space = space_for_kind(kind)
        if space is MemorySpace.SHARED:
            if nbytes > self.device.spec.scratchpad.size:
                raise SimulationError(
                    f"shared buffer of {nbytes} B exceeds the "
                    f"{self.device.spec.scratchpad.size} B scratchpad"
                )
            return _SHARED_BASE + slot * (64 << 10)
        key = (space, slot)
        cached = self._buffers.get(key)
        if cached is not None and cached[1] >= nbytes:
            return cached[0]
        if space is MemorySpace.CONSTANT:
            # The whole constant bank is allocated once — it cannot grow.
            # Slot 1 (the cooperative protocols' array B) lives in the
            # upper half; a full-bank slot-0 sweep and a slot-1 array are
            # never live simultaneously (benchmarks flush between runs).
            limit = self.device.memory.constant_limit
            if (MemorySpace.CONSTANT, 0) not in self._buffers:
                base = self.device.alloc(space, limit)
                self._buffers[(MemorySpace.CONSTANT, 0)] = (base, limit)
            base = self._buffers[(MemorySpace.CONSTANT, 0)][0]
            if slot not in (0, 1):
                raise SimulationError("the constant bank offers two slots")
            offset = 0 if slot == 0 else limit // 2
            if nbytes > limit - offset:
                raise SimulationError(
                    f"constant buffer of {nbytes} B exceeds the available "
                    f"{limit - offset} B of the bank (slot {slot})"
                )
            return base + offset
        granted = max(nbytes, 1 << 16)
        base = self.device.alloc(space, granted)
        self._buffers[key] = (base, granted)
        return base

    # ------------------------------------------------------------------ #
    # measurement primitives                                              #
    # ------------------------------------------------------------------ #

    def latencies(
        self,
        kind: LoadKind,
        nbytes: int,
        stride: int,
        sm: int = 0,
        core: int = 0,
        fresh: bool = True,
        warmup: bool = True,
        n_samples: int | None = None,
        slot: int = 0,
    ) -> np.ndarray:
        """One p-chase run; returns the first-N observed latencies."""
        base = self.buffer(kind, nbytes, slot)
        return run_pchase(
            self.device,
            kind,
            base,
            nbytes,
            stride,
            n_samples=n_samples or self.config.n_samples,
            sm=sm,
            core=core,
            warmup_passes=self.config.warmup_passes if warmup else 0,
            flush=fresh,
        )

    def sweep(
        self,
        kind: LoadKind,
        sizes: np.ndarray,
        stride: int,
        sm: int = 0,
        core: int = 0,
    ) -> np.ndarray:
        """Latency matrix: one fresh p-chase run per array size."""
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.size == 0:
            raise SimulationError("sweep requires at least one size")
        matrix = np.empty((sizes.size, self.config.n_samples), dtype=np.float64)
        for i, size in enumerate(sizes):
            matrix[i] = self.latencies(kind, int(size), stride, sm=sm, core=core)
        return matrix

    def warm(
        self,
        kind: LoadKind,
        nbytes: int,
        stride: int,
        sm: int = 0,
        core: int = 0,
        slot: int = 0,
    ) -> None:
        """Untimed warm pass over a buffer (protocol building block)."""
        base = self.buffer(kind, nbytes, slot)
        addrs = base + np.arange(nbytes // stride, dtype=np.int64) * stride
        warm(self.device, kind, addrs, sm=sm, core=core)

    def probe(
        self,
        kind: LoadKind,
        nbytes: int,
        stride: int,
        sm: int = 0,
        core: int = 0,
        n_samples: int | None = None,
        slot: int = 0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Timed probe pass (no warm-up): (first-level hits, latencies)."""
        base = self.buffer(kind, nbytes, slot)
        count = nbytes // stride
        if count == 0:
            raise SimulationError("probe array smaller than one stride")
        n = min(n_samples or self.config.n_samples, count)
        addrs = base + np.arange(n, dtype=np.int64) * stride
        return probe_hits(self.device, kind, addrs, sm=sm, core=core)
