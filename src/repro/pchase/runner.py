"""The host-side p-chase driver: buffers, runs, sweeps.

Owns the benchmark buffers (one reusable arena slot per address space, so
repeated sweeps do not exhaust the device allocator) and exposes the three
measurement primitives every Section-IV benchmark builds on:

* :meth:`PChaseRunner.latencies` — one fine-grained p-chase run;
* :meth:`PChaseRunner.sweep` — a latency matrix over array sizes;
* :meth:`PChaseRunner.probe` — cold/warm probe passes for the protocols.

**Incremental sweeps** (the analytic engine's driver-side half): a fresh
p-chase of ``n`` bytes leaves every cache on the path at the warm LRU
fixed point of its ring.  When the next fresh run extends the same ring
(same buffer base, same stride, larger size — exactly what the size
benchmark's doubling ascent and linear sweeps do), flushing and
re-warming from scratch is redundant: warming only the appended suffix
provably reaches the same fixed point (property-tested in
``tests/test_cache_chase.py``).  When the next fresh run *shrinks* the
same ring (the size benchmark's binary-descent probes), the deferred
fixed point is truncated in place — flush + warm of the prefix ring by
definition — so descent probes are O(1) warm-state work too.  The runner tracks the warmed ring in
``_warm_token`` and proves nothing else touched the caches in between via
the device's ``op_serial``; any interleaved kernel operation or flush
invalidates the token.  Simulated run-time accounting is unaffected — the
skipped flush + full warm is still charged, so the Section V-A run-time
model reports what the real tool would measure.

One caveat the benchmarks satisfy by construction: a preserved run leaves
the path's caches at the warm fixed point rather than the exact engine's
post-timed-pass state.  Measurements are unaffected (every fresh run
starts from the same provably-identical state), but a caller that *reads*
cache state after ``latencies(fresh=True)`` without flushing first — no
benchmark does — would observe the fixed point; use
``PChaseConfig(engine="exact")`` when that distinction matters.
"""

from __future__ import annotations

from time import perf_counter
from typing import NamedTuple

import numpy as np

from repro.errors import SimulationError
from repro.obs import profile as _profile
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.isa import LoadKind, MemorySpace, space_for_kind
from repro.gpusim.kernel import probe_hits, run_pchase_ex, warm
from repro.gpuspec.spec import Quirk
from repro.pchase.config import PChaseConfig

__all__ = ["PChaseRunner"]

_SHARED_BASE = 1 << 28


class _WarmToken(NamedTuple):
    """Proof that a ring is warmed to its fixed point on the device."""

    key: tuple[LoadKind, int, int, int, int]  # kind, sm, core, base, stride
    nbytes: int
    op_serial: int


class PChaseRunner:
    """Stateful driver bound to one simulated device."""

    def __init__(self, device: SimulatedGPU, config: PChaseConfig | None = None) -> None:
        self.device = device
        self.config = config or PChaseConfig()
        self._buffers: dict[tuple[MemorySpace, int], tuple[int, int]] = {}
        self._warm_token: _WarmToken | None = None
        #: Warm-state accounting per fresh run: ``full_warms`` executed a
        #: real device flush + fresh warm, ``suffix_warms`` extended the
        #: previous fixed point (growing probe), ``shrink_warms``
        #: truncated it (binary-descent probe).  The discovery benchmark
        #: reports these to show descent probes no longer flush.
        self.stats = {
            "fresh_runs": 0,
            "full_warms": 0,
            "suffix_warms": 0,
            "shrink_warms": 0,
        }

    # ------------------------------------------------------------------ #
    # buffers                                                             #
    # ------------------------------------------------------------------ #

    def buffer(self, kind: LoadKind, nbytes: int, slot: int = 0) -> int:
        """Base address of a buffer large enough for ``nbytes``.

        Buffers are cached per (address space, slot) and only re-allocated
        when they must grow; the cooperative protocols use two slots of
        the same space (arrays A and B of Sections IV-F..H).  The
        shared-memory space needs no arena (loads never touch a cache)
        and uses fixed scratch addresses.
        """
        if nbytes <= 0:
            raise SimulationError("buffer size must be positive")
        space = space_for_kind(kind)
        if space is MemorySpace.SHARED:
            if nbytes > self.device.spec.scratchpad.size:
                raise SimulationError(
                    f"shared buffer of {nbytes} B exceeds the "
                    f"{self.device.spec.scratchpad.size} B scratchpad"
                )
            return _SHARED_BASE + slot * (64 << 10)
        key = (space, slot)
        cached = self._buffers.get(key)
        if cached is not None and cached[1] >= nbytes:
            return cached[0]
        if space is MemorySpace.CONSTANT:
            # The whole constant bank is allocated once — it cannot grow.
            # Slot 1 (the cooperative protocols' array B) lives in the
            # upper half; a full-bank slot-0 sweep and a slot-1 array are
            # never live simultaneously (benchmarks flush between runs).
            limit = self.device.memory.constant_limit
            if (MemorySpace.CONSTANT, 0) not in self._buffers:
                base = self.device.alloc(space, limit)
                self._buffers[(MemorySpace.CONSTANT, 0)] = (base, limit)
            base = self._buffers[(MemorySpace.CONSTANT, 0)][0]
            if slot not in (0, 1):
                raise SimulationError("the constant bank offers two slots")
            offset = 0 if slot == 0 else limit // 2
            if nbytes > limit - offset:
                raise SimulationError(
                    f"constant buffer of {nbytes} B exceeds the available "
                    f"{limit - offset} B of the bank (slot {slot})"
                )
            return base + offset
        # Grow with headroom: a stable base address lets ascending probe
        # chains (doubling ascent, linear sweeps) extend an already-warmed
        # ring instead of re-warming from scratch after every growth.
        granted = max(2 * nbytes, 1 << 16)
        base = self.device.alloc(space, granted)
        self._buffers[key] = (base, granted)
        return base

    # ------------------------------------------------------------------ #
    # measurement primitives                                              #
    # ------------------------------------------------------------------ #

    def _incremental_from(
        self, key: tuple[LoadKind, int, int, int, int], nbytes: int
    ) -> int | None:
        """Warmed byte count reusable for ``key``, or None.

        Both directions reuse the warmed ring: a growing probe warms only
        the appended suffix, a shrinking probe (binary descent) truncates
        the deferred fixed point — each provably equal to flush + full
        warm of the probed ring.
        """
        token = self._warm_token
        if (
            token is None
            or token.key != key
            or token.op_serial != self.device.op_serial
        ):
            return None
        kind = key[0]
        # The P6000's flaky constant path re-rolls its side-effect caches
        # per run, so the warmed cache *set* is not reproducible across
        # runs.  The kernel independently validates every cache on the
        # resolved path via SimCache.extend_fixed_point (a structural
        # guard against any path instability); this driver-side check
        # additionally keeps caches that drop OUT of the path from
        # retaining warm state the exact engine would have flushed.
        if (
            kind is LoadKind.LD_CONST
            and Quirk.FLAKY_L1_CONST_SHARING in self.device.spec.quirks
        ):
            return None
        return token.nbytes

    def latencies(
        self,
        kind: LoadKind,
        nbytes: int,
        stride: int,
        sm: int = 0,
        core: int = 0,
        fresh: bool = True,
        warmup: bool = True,
        n_samples: int | None = None,
        slot: int = 0,
    ) -> np.ndarray:
        """One p-chase run; returns the first-N observed latencies."""
        base = self.buffer(kind, nbytes, slot)
        engine = self.config.engine
        key = (kind, sm, core, base, stride)
        reusable = (
            fresh
            and warmup
            and self.config.warmup_passes > 0
            and engine == "analytic"
            and slot == 0
        )
        incremental_from = self._incremental_from(key, nbytes) if reusable else None
        flushes_before = self.device.flush_count
        prof = _profile.ACTIVE  # None = profiling off: the only cost
        run_start = perf_counter() if prof is not None else 0.0
        lat, preserved = run_pchase_ex(
            self.device,
            kind,
            base,
            nbytes,
            stride,
            n_samples=n_samples or self.config.n_samples,
            sm=sm,
            core=core,
            warmup_passes=self.config.warmup_passes if warmup else 0,
            flush=fresh,
            engine=engine,
            incremental_from=incremental_from,
            preserve_warm_state=reusable,
        )
        warm_kind = None
        if fresh:
            self.stats["fresh_runs"] += 1
            if self.device.flush_count != flushes_before:
                self.stats["full_warms"] += 1
                warm_kind = "full_warms"
            elif incremental_from is not None:
                warm_kind = (
                    "suffix_warms" if incremental_from <= nbytes else "shrink_warms"
                )
                self.stats[warm_kind] += 1
        if prof is not None:
            prof.record_run(perf_counter() - run_start, warm_kind)
        if preserved:
            self._warm_token = _WarmToken(key, nbytes, self.device.op_serial)
        else:
            self._warm_token = None
        return lat

    def sweep(
        self,
        kind: LoadKind,
        sizes: np.ndarray,
        stride: int,
        sm: int = 0,
        core: int = 0,
    ) -> np.ndarray:
        """Latency matrix: one fresh p-chase run per array size.

        Ascending size grids (the natural output of
        :func:`~repro.pchase.arrays.linear_sizes`) reuse warm state
        between runs: each size extends the previous ring, so only the
        appended suffix is warmed — measurements and simulated run time
        are identical to flush + full re-warm, only the wall clock shrinks.
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.size == 0:
            raise SimulationError("sweep requires at least one size")
        matrix = np.empty((sizes.size, self.config.n_samples), dtype=np.float64)
        for i, size in enumerate(sizes):
            matrix[i] = self.latencies(kind, int(size), stride, sm=sm, core=core)
        return matrix

    def warm(
        self,
        kind: LoadKind,
        nbytes: int,
        stride: int,
        sm: int = 0,
        core: int = 0,
        slot: int = 0,
    ) -> None:
        """Untimed warm pass over a buffer (protocol building block)."""
        base = self.buffer(kind, nbytes, slot)
        addrs = base + np.arange(nbytes // stride, dtype=np.int64) * stride
        warm(
            self.device,
            kind,
            addrs,
            sm=sm,
            core=core,
            stride=stride,
            engine=self.config.engine,
        )

    def probe(
        self,
        kind: LoadKind,
        nbytes: int,
        stride: int,
        sm: int = 0,
        core: int = 0,
        n_samples: int | None = None,
        slot: int = 0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Timed probe pass (no warm-up): (first-level hits, latencies)."""
        base = self.buffer(kind, nbytes, slot)
        count = nbytes // stride
        if count == 0:
            raise SimulationError("probe array smaller than one stride")
        n = min(n_samples or self.config.n_samples, count)
        addrs = base + np.arange(n, dtype=np.int64) * stride
        return probe_hits(
            self.device, kind, addrs, sm=sm, core=core, engine=self.config.engine
        )
