"""Benchmark configuration knobs.

Mirrors the real tool's CLI tuning surface: the paper notes users "can
configure the measurements more coarsely and thus significantly reduce
the run time" (Section V-A).  ``max_sweep_points`` is that coarseness
control — the step of a size sweep is never finer than the fetch
granularity and never produces more than this many p-chase runs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PChaseConfig"]


@dataclass(frozen=True)
class PChaseConfig:
    """Tunables of the measurement pipeline."""

    #: first-N latencies stored per timed pass (paper Section IV-A).
    n_samples: int = 384
    #: untimed passes before the timed pass.
    warmup_passes: int = 1
    #: upper bound on the number of sizes per sweep (coarseness control).
    max_sweep_points: int = 192
    #: significance level of the K-S change-point test.
    ks_alpha: float = 0.01
    #: widen-interval factor per outlier round (Section IV-B step 3).
    widen_factor: float = 0.5
    #: maximum widening rounds before declaring the result inconclusive.
    max_widen_rounds: int = 4
    #: search-space bounds of the size benchmark (Section IV-B: 1 KiB..1 MiB
    #: for SM-level caches; GPU-level caches derive their own bounds).
    search_lo: int = 1024
    search_hi: int = 1024 * 1024
    #: latency-benchmark array size in fetch-granularity units (IV-C:
    #: "MT4G uses size of 256 * Fetch Granularity").
    latency_array_elems: int = 256
    #: measurement engine: "analytic" batches warm/timed/probe passes
    #: through the vectorised cache primitives (with automatic exact
    #: fallback) and lets sweeps reuse warm state incrementally;
    #: "exact" walks every load through the per-access simulator.  Both
    #: produce identical measurements — the analytic engine exists purely
    #: for speed (see benchmarks/bench_discovery_speed.py).
    engine: str = "analytic"

    def __post_init__(self) -> None:
        if self.n_samples <= 0 or self.warmup_passes < 0:
            raise ValueError("n_samples must be positive, warmup_passes >= 0")
        if self.engine not in ("analytic", "exact"):
            raise ValueError(
                f"engine must be 'analytic' or 'exact', got {self.engine!r}"
            )
        if self.max_sweep_points < 8:
            raise ValueError("max_sweep_points must be at least 8")
        if not 0.0 < self.ks_alpha < 1.0:
            raise ValueError("ks_alpha must be in (0, 1)")
        if self.widen_factor <= 0 or self.max_widen_rounds < 0:
            raise ValueError("widening parameters must be positive")
        if not 0 < self.search_lo < self.search_hi:
            raise ValueError("search interval must satisfy 0 < lo < hi")
        if self.latency_array_elems <= 0:
            raise ValueError("latency_array_elems must be positive")
