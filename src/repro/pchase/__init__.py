"""Host-side p-chase benchmark engine.

The GPU side (address walking, cache effects, timing) lives in
:mod:`repro.gpusim.kernel`; this package is the CPU side the paper
describes in Section IV: "The setup, configuration, post-processing, and
evaluation steps are executed on the CPU, while the actual benchmarking
is performed on the GPU."
"""

from repro.pchase.arrays import exponential_sizes, linear_sizes
from repro.pchase.config import PChaseConfig
from repro.pchase.runner import PChaseRunner

__all__ = ["PChaseRunner", "PChaseConfig", "exponential_sizes", "linear_sizes"]
