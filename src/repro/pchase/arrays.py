"""Size-grid construction for sweep benchmarks."""

from __future__ import annotations

import numpy as np

__all__ = ["exponential_sizes", "linear_sizes"]


def exponential_sizes(lo: int, hi: int) -> np.ndarray:
    """Doubling grid from ``lo`` up to and including at least ``hi``.

    Used by the size benchmark's bound-finding phase (Section IV-B
    workflow step 1): start at the lower search bound and double until
    the array exceeds the cache.
    """
    if lo <= 0 or hi < lo:
        raise ValueError("need 0 < lo <= hi")
    sizes = [lo]
    while sizes[-1] < hi:
        sizes.append(sizes[-1] * 2)
    return np.asarray(sizes, dtype=np.int64)


def linear_sizes(lo: int, hi: int, step: int, max_points: int) -> np.ndarray:
    """Linear grid from ``lo`` to ``hi`` inclusive.

    The natural step is the fetch granularity (Section IV-B workflow step
    2: finer steps re-access sectors, coarser steps skip lines); when the
    interval would exceed ``max_points`` runs, the step grows to the next
    multiple of ``step`` that fits — the paper's coarse-measurement mode.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if step <= 0 or max_points < 2:
        raise ValueError("step must be positive, max_points >= 2")
    span = hi - lo
    natural_points = span // step + 1
    if natural_points > max_points:
        multiplier = -(-span // (step * (max_points - 1)))
        step = step * multiplier
    grid = np.arange(lo, hi + 1, step, dtype=np.int64)
    if grid[-1] != hi:
        grid = np.append(grid, np.int64(hi))
    return grid
