"""Fleet-level cross-device consistency checks (the fleet *judge*).

PR 2's fleet runner renders a comparison matrix but never judges it.
This module closes that gap: presets are grouped by (vendor,
microarchitecture) and each group is held to the invariants real silicon
obeys — Jia et al.'s Turing dissection shows cache line sizes and fetch
granularities are per-architecture constants, and two devices of one
microarchitecture cannot disagree on their warp size or on the *relative*
ordering of their hierarchy levels (an L1 faster than the L2 on one H100
and slower on another is a measurement failure, not a hardware feature).

Three layers of judgement:

* **invariant consensus** — per (element, attribute) for the exact
  per-architecture constants (cache line size, fetch granularity), a
  confidence-weighted majority picks the consensus value; presets that
  dissent fail the check and get their attribute confidence recalibrated
  through :mod:`repro.stats.compare` (the same rule the single-device
  cross-checks use);
* **compute invariants** — the warp/wavefront size must be identical
  across the group;
* **ordering agreement** — for sizes, latencies and bandwidths the
  *relative* order of any two memory elements must agree across the
  group, with per-attribute tolerances so near-ties (values within
  measurement spread) can never flip a verdict.

The result is a :class:`FleetValidation` carried on the
:class:`~repro.validate.fleet.FleetResult`, rendered by ``mt4g fleet``
(Markdown + JSON) and folded into its exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.benchmarks.base import Source
from repro.stats.compare import (
    agreement_score,
    recalibrated_confidence,
    within_tolerance,
)
from repro.units import format_size

if TYPE_CHECKING:  # pragma: no cover - the fleet module imports us
    from repro.validate.fleet import FleetEntry, FleetResult

__all__ = [
    "FLEET_TOLERANCES",
    "INVARIANT_ATTRIBUTES",
    "ORDERING_ATTRIBUTES",
    "FleetCheck",
    "FleetConsensus",
    "FleetRecalibration",
    "FleetValidation",
    "run_fleet_checks",
]

#: Relative tolerance per attribute.  The exact-by-nature architecture
#: constants demand perfect agreement; sizes/latencies/bandwidths only
#: need *orderings* to agree, and the tolerance decides when two values
#: are too close to call (a tie can never conflict with an ordering).
FLEET_TOLERANCES: dict[str, float] = {
    "cache_line_size": 0.0,
    "fetch_granularity": 0.0,
    "warp_size": 0.0,
    "size": 0.05,
    "load_latency": 0.15,
    "read_bandwidth": 0.10,
    "write_bandwidth": 0.10,
}

#: Per-microarchitecture constants: every device of one architecture must
#: report the same value (Jia et al., cited by the paper).
INVARIANT_ATTRIBUTES = ("cache_line_size", "fetch_granularity")

#: Attributes whose cross-element *orderings* must agree across devices.
ORDERING_ATTRIBUTES = ("size", "load_latency", "read_bandwidth", "write_bandwidth")


@dataclass
class FleetCheck:
    """One cross-device check over a (vendor, microarchitecture) group."""

    check: str
    group: str
    status: str  # "pass" | "fail" | "skip"
    detail: str
    presets: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return self.status != "fail"

    def as_dict(self) -> dict[str, Any]:
        return {
            "check": self.check,
            "group": self.group,
            "status": self.status,
            "detail": self.detail,
            "presets": list(self.presets),
        }


@dataclass
class FleetConsensus:
    """Confidence-weighted majority over one invariant attribute."""

    group: str
    element: str
    attribute: str
    consensus: float
    weight: float  # total confidence behind the consensus value
    agreeing: tuple[str, ...]
    dissenting: tuple[str, ...]

    @property
    def status(self) -> str:
        return "pass" if not self.dissenting else "fail"

    @property
    def passed(self) -> bool:
        return not self.dissenting

    def as_dict(self) -> dict[str, Any]:
        return {
            "group": self.group,
            "element": self.element,
            "attribute": self.attribute,
            "consensus": self.consensus,
            "weight": round(self.weight, 4),
            "agreeing": list(self.agreeing),
            "dissenting": list(self.dissenting),
            "status": self.status,
        }


@dataclass
class FleetRecalibration:
    """A dissenting preset's attribute confidence, recalibrated."""

    preset: str
    element: str
    attribute: str
    before: float
    after: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "preset": self.preset,
            "element": self.element,
            "attribute": self.attribute,
            "before": round(self.before, 4),
            "after": round(self.after, 4),
        }


@dataclass
class FleetValidation:
    """The ``fleet_validation`` section of a fleet report."""

    verdict: str  # "pass" | "fail"
    groups: dict[str, tuple[str, ...]] = field(default_factory=dict)
    checks: list[FleetCheck] = field(default_factory=list)
    consensus: list[FleetConsensus] = field(default_factory=list)
    recalibrations: list[FleetRecalibration] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.verdict == "pass"

    def failures(self) -> list[str]:
        """Human-readable identifiers of every cross-device disagreement."""
        out = [c.check for c in self.checks if c.status == "fail"]
        out.extend(
            f"{c.group}:{c.element}.{c.attribute}"
            for c in self.consensus
            if not c.passed
        )
        return out

    def as_dict(self) -> dict[str, Any]:
        statuses = [c.status for c in self.checks]
        return {
            "verdict": self.verdict,
            "summary": {
                "groups": len(self.groups),
                "checks_passed": statuses.count("pass"),
                "checks_failed": statuses.count("fail"),
                "checks_skipped": statuses.count("skip"),
                "consensus_attributes": len(self.consensus),
                "dissents": sum(1 for c in self.consensus if not c.passed),
                "recalibrations": len(self.recalibrations),
            },
            "groups": {k: list(v) for k, v in self.groups.items()},
            "checks": [c.as_dict() for c in self.checks],
            "consensus": [c.as_dict() for c in self.consensus],
            "recalibrations": [r.as_dict() for r in self.recalibrations],
        }

    def to_markdown_lines(self) -> list[str]:
        """The ``## Fleet Validation`` section of the fleet Markdown."""
        s = self.as_dict()["summary"]
        lines = ["## Fleet Validation", ""]
        lines.append(
            f"- Verdict: **{self.verdict}** "
            f"({s['checks_passed']} cross-device checks passed, "
            f"{s['checks_failed']} failed, {s['checks_skipped']} skipped; "
            f"{s['consensus_attributes']} consensus attributes, "
            f"{s['dissents']} dissenting)"
        )
        for key, presets in self.groups.items():
            lines.append(f"- Group `{key}`: {', '.join(presets)}")
        for check in self.checks:
            if check.status == "fail":
                lines.append(f"- Failed check `{check.check}`: {check.detail}")
        if self.consensus:
            lines.append("")
            lines.append(
                "| Group | Element | Attribute | Consensus | Agreeing | Dissenting |"
            )
            lines.append("|---|---|---|---|---|---|")
            for c in self.consensus:
                value = (
                    format_size(c.consensus)
                    if c.attribute in ("cache_line_size", "fetch_granularity", "size")
                    else f"{c.consensus:.6g}"
                )
                lines.append(
                    f"| {c.group} | {c.element} | {c.attribute} | {value} "
                    f"| {', '.join(c.agreeing) or '—'} "
                    f"| {', '.join(c.dissenting) or '—'} |"
                )
        if self.recalibrations:
            lines.append("")
            lines.append("Dissenting confidences recalibrated:")
            lines.append("")
            for r in self.recalibrations:
                lines.append(
                    f"- {r.preset}: {r.element}.{r.attribute} "
                    f"{r.before:.2f} -> {r.after:.2f}"
                )
        lines.append("")
        return lines


# ---------------------------------------------------------------------- #
# value extraction                                                        #
# ---------------------------------------------------------------------- #


def _conclusive_numeric(av) -> float | None:
    """A trustworthy numeric value (benchmarked or API), else None.

    Inconclusive results (confidence 0 — bounds, honest non-claims) are
    not claims and cannot vote; neither can absent or non-numeric values.
    """
    if av.source not in (Source.BENCHMARK, Source.API):
        return None
    if av.confidence <= 0.0 or av.value is None:
        return None
    if isinstance(av.value, bool) or not isinstance(av.value, (int, float)):
        return None
    return float(av.value)


# ---------------------------------------------------------------------- #
# per-group checks                                                        #
# ---------------------------------------------------------------------- #


def _warp_size_check(
    key: str, entries: list["FleetEntry"], tolerance: float
) -> FleetCheck:
    presets = tuple(e.preset for e in entries)
    warps = {e.preset: e.report.compute.warp_size for e in entries}
    values = list(warps.values())
    # The default tolerance is 0 (exact equality); an override widens the
    # allowed spread between the smallest and largest reported warp.
    if within_tolerance(float(min(values)), float(max(values)), tolerance):
        return FleetCheck(
            check=f"warp_size:{key}",
            group=key,
            status="pass",
            detail=f"warp size {values[0]} across {len(entries)} presets",
            presets=presets,
        )
    return FleetCheck(
        check=f"warp_size:{key}",
        group=key,
        status="fail",
        detail="; ".join(f"{p}: {w}" for p, w in sorted(warps.items())),
        presets=presets,
    )


def _invariant_consensus(
    key: str,
    entries: list["FleetEntry"],
    tolerances: dict[str, float],
) -> tuple[list[FleetConsensus], list[FleetRecalibration]]:
    """Confidence-weighted majority per invariant (element, attribute)."""
    consensus_out: list[FleetConsensus] = []
    recalibrations: list[FleetRecalibration] = []
    elements = sorted({name for e in entries for name in e.report.memory})
    for element in elements:
        for attribute in INVARIANT_ATTRIBUTES:
            tol = tolerances[attribute]
            votes: list[tuple[str, float, Any]] = []  # (preset, value, av)
            for e in entries:
                if element not in e.report.memory:
                    continue
                av = e.report.memory[element].get(attribute)
                value = _conclusive_numeric(av)
                if value is not None:
                    votes.append((e.preset, value, av))
            if len(votes) < 2:
                continue  # nothing to compare across devices
            weights: dict[float, float] = {}
            for _, value, av in votes:
                weights[value] = weights.get(value, 0.0) + av.confidence
            # Highest total confidence wins; ties go to the smaller value
            # so the outcome never depends on dict iteration order.
            winner = max(sorted(weights), key=lambda v: weights[v])
            agreeing = tuple(
                p for p, v, _ in votes if within_tolerance(v, winner, tol)
            )
            dissenting = tuple(
                p for p, v, _ in votes if not within_tolerance(v, winner, tol)
            )
            consensus_out.append(
                FleetConsensus(
                    group=key,
                    element=element,
                    attribute=attribute,
                    consensus=winner,
                    weight=weights[winner],
                    agreeing=agreeing,
                    dissenting=dissenting,
                )
            )
            for preset, value, av in votes:
                if preset not in dissenting:
                    continue
                if av.source is not Source.BENCHMARK:
                    continue  # API values are authoritative; never demoted
                before = av.confidence
                after = recalibrated_confidence(
                    before, agreement_score(value, winner, tol)
                )
                if after != before:
                    av.confidence = after
                    recalibrations.append(
                        FleetRecalibration(
                            preset=preset,
                            element=element,
                            attribute=attribute,
                            before=before,
                            after=after,
                        )
                    )
    return consensus_out, recalibrations


def _ordering_checks(
    key: str,
    entries: list["FleetEntry"],
    tolerances: dict[str, float],
) -> list[FleetCheck]:
    """Relative orderings of elements must agree across the group.

    For every pair of memory elements every preset reports, each preset
    classifies the pair as ``<``, ``>`` or a tie (values within the
    attribute tolerance of each other).  A tie is compatible with either
    ordering; only a hard ``<`` vs ``>`` contradiction fails.
    """
    checks: list[FleetCheck] = []
    presets = tuple(e.preset for e in entries)
    for attribute in ORDERING_ATTRIBUTES:
        tol = tolerances[attribute]
        per_preset: dict[str, dict[str, float]] = {}
        for e in entries:
            values = {}
            for name, element in e.report.memory.items():
                v = _conclusive_numeric(element.get(attribute))
                if v is not None:
                    values[name] = v
            per_preset[e.preset] = values
        common = sorted(set.intersection(*(set(v) for v in per_preset.values())))
        check_id = f"ordering.{attribute}:{key}"
        pairs_checked = 0
        conflicts: list[tuple[str, str, dict[str, str]]] = []
        for i, a in enumerate(common):
            for b in common[i + 1 :]:
                relations: dict[str, str] = {}
                for preset, values in per_preset.items():
                    va, vb = values[a], values[b]
                    if within_tolerance(va, vb, tol):
                        relations[preset] = "~"
                    else:
                        relations[preset] = "<" if va < vb else ">"
                pairs_checked += 1
                signs = set(relations.values())
                if "<" in signs and ">" in signs:
                    conflicts.append((a, b, relations))
        if pairs_checked == 0:
            checks.append(
                FleetCheck(
                    check=check_id,
                    group=key,
                    status="skip",
                    detail=f"no common {attribute} values to order",
                    presets=presets,
                )
            )
        elif conflicts:
            for a, b, relations in conflicts:
                detail = "; ".join(
                    f"{p}: {a} {r} {b}" for p, r in sorted(relations.items())
                )
                checks.append(
                    FleetCheck(
                        check=f"{check_id}:{a}-vs-{b}",
                        group=key,
                        status="fail",
                        detail=detail,
                        presets=presets,
                    )
                )
        else:
            checks.append(
                FleetCheck(
                    check=check_id,
                    group=key,
                    status="pass",
                    detail=(
                        f"{pairs_checked} element pairs consistently ordered "
                        f"across {len(entries)} presets"
                    ),
                    presets=presets,
                )
            )
    return checks


def _revert_recalibrations(result: "FleetResult") -> None:
    """Undo the previous judgement's confidence demotions.

    Only confidences still carrying the recorded ``after`` value are
    restored — a value touched since (e.g. by a re-measurement) is left
    alone rather than clobbered with a stale ``before``.
    """
    for r in result.validation.recalibrations:
        try:
            entry = result.entry(r.preset)
        except KeyError:
            continue
        if not entry.ok or r.element not in entry.report.memory:
            continue
        av = entry.report.memory[r.element].get(r.attribute)
        if av.confidence == r.after:
            av.confidence = r.before


# ---------------------------------------------------------------------- #
# the fleet judgement pass                                                #
# ---------------------------------------------------------------------- #


def run_fleet_checks(
    result: "FleetResult",
    tolerances: dict[str, float] | None = None,
) -> FleetValidation:
    """Judge a fleet: group by (vendor, microarchitecture) and compare.

    Only successful entries participate (error entries already fail the
    fleet through their own verdict); a group with a single member has
    nothing to compare and records a skip.  Dissenting presets have their
    attribute confidences recalibrated in place (mutating their reports,
    exactly like the single-device validator does).  The returned
    :class:`FleetValidation` is also stored on ``result.validation``.

    Re-judging an already-judged fleet is idempotent: the previous
    pass's recalibrations are reverted first, so repeated calls cannot
    compound a dissenter's demotion or shift the consensus weights.
    """
    tol = {**FLEET_TOLERANCES, **(tolerances or {})}
    if result.validation is not None:
        _revert_recalibrations(result)
    entries = [e for e in result.entries if e.ok]
    grouped: dict[str, list] = {}
    for e in entries:
        key = f"{e.report.general.vendor}/{e.report.general.microarchitecture}"
        grouped.setdefault(key, []).append(e)

    checks: list[FleetCheck] = []
    consensus: list[FleetConsensus] = []
    recalibrations: list[FleetRecalibration] = []
    for key in sorted(grouped):
        members = grouped[key]
        presets = tuple(e.preset for e in members)
        if len(members) < 2:
            checks.append(
                FleetCheck(
                    check=f"group:{key}",
                    group=key,
                    status="skip",
                    detail="single preset in group; nothing to compare",
                    presets=presets,
                )
            )
            continue
        checks.append(_warp_size_check(key, members, tol["warp_size"]))
        group_consensus, group_recals = _invariant_consensus(key, members, tol)
        consensus.extend(group_consensus)
        recalibrations.extend(group_recals)
        checks.extend(_ordering_checks(key, members, tol))

    ok = all(c.passed for c in checks) and all(c.passed for c in consensus)
    validation = FleetValidation(
        verdict="pass" if ok else "fail",
        groups={k: tuple(e.preset for e in grouped[k]) for k in sorted(grouped)},
        checks=checks,
        consensus=consensus,
        recalibrations=recalibrations,
    )
    result.validation = validation
    return validation
