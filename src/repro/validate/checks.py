"""Structural plausibility checks over a :class:`TopologyReport`.

The paper's "reliable" claim rests on the discovered topology *making
sense* as a memory hierarchy, not just on per-benchmark statistics.  The
checks here encode the invariants any sane GPU satisfies:

* capacities grow down the hierarchy (L1 <= L2 <= DeviceMemory, and the
  constant path ConstL1 <= ConstL1.5);
* load latencies grow down the hierarchy along the same chains;
* achieved bandwidth shrinks down the hierarchy (an L2 stream must not be
  slower than DRAM);
* a cache line is never smaller than the fetch granularity and is an
  integer number of sectors;
* measured capacities are "round" — a small odd multiple of a power of
  two (192 KiB = 3 * 64 KiB passes), or, for the L1-silicon elements of
  an NVIDIA device, an 8 KiB carveout quantum *consistent with the
  generation's unified SRAM block* (the V100's 120 KiB PreferL1 split
  fits the 128 KiB Volta block; a 520 KiB misread does not fit any).

Every check returns a :class:`CheckResult` with a ``pass``/``fail``/
``skip`` status; a check whose inputs are missing (element not measured,
attribute served by no source) *skips* rather than fails — absence of
evidence is the honesty policy at work, not a broken topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.benchmarks.base import Source
from repro.core.report import TopologyReport

__all__ = [
    "CheckResult",
    "run_structural_checks",
    "is_roundish_size",
    "SIZE_CHAINS",
    "LATENCY_CHAINS",
    "BANDWIDTH_CHAINS",
]

#: (lower element, higher element) capacity orderings, per vendor.
SIZE_CHAINS: dict[str, tuple[tuple[str, str], ...]] = {
    "NVIDIA": (
        ("L1", "L2"),
        ("Texture", "L2"),
        ("Readonly", "L2"),
        ("ConstL1", "ConstL1.5"),
        ("L2", "DeviceMemory"),
    ),
    "AMD": (
        ("vL1", "L2"),
        ("sL1d", "L2"),
        ("L2", "L3"),
        ("L2", "DeviceMemory"),
        ("L3", "DeviceMemory"),
    ),
}

#: Load-latency orderings; only levels on one load path are comparable
#: (the scratchpads and the scalar path are siblings, not levels).
LATENCY_CHAINS: dict[str, tuple[tuple[str, str], ...]] = {
    "NVIDIA": (
        ("L1", "L2"),
        ("L2", "DeviceMemory"),
        ("ConstL1", "ConstL1.5"),
    ),
    "AMD": (
        ("vL1", "L2"),
        ("L2", "DeviceMemory"),
    ),
}

#: Achieved-bandwidth orderings (higher level >= lower level).
BANDWIDTH_CHAINS: dict[str, tuple[tuple[str, str], ...]] = {
    "NVIDIA": (("L2", "DeviceMemory"),),
    "AMD": (("L2", "L3"), ("L2", "DeviceMemory"), ("L3", "DeviceMemory")),
}

#: Measured latencies carry jitter; a lower level may exceed a higher one
#: by this relative margin before the ordering counts as violated.
_LATENCY_SLACK = 0.02
#: Stream-benchmark runs vary run-to-run; same idea for bandwidth.
_BANDWIDTH_SLACK = 0.05
#: A measured capacity must sit within this relative distance of a
#: "round" value.  Size sweeps step by one fetch granularity, so a
#: boundary is routinely one stride past the true capacity (the paper's
#: Table III reports 2.1 KiB for 2 KiB constant caches) — the tolerance
#: must absorb one stride at the smallest capacities without excusing a
#: genuinely implausible value.
_ROUND_TOLERANCE = 0.035
#: NVIDIA carves the unified SM SRAM block into L1 and Shared Memory in
#: 8 KiB steps; capacities at or above this floor may be carveouts.
_CARVEOUT_QUANTUM = 8 * 1024
_CARVEOUT_FLOOR = 64 * 1024

#: Vendor/generation carveout table: the unified SM SRAM block size per
#: NVIDIA microarchitecture (vendor documentation; the runtime's
#: ``cudaDeviceSetCacheConfig`` splits are carved out of exactly this
#: block in 8 KiB steps).  A claimed carveout capacity must fit the
#: generation's block — "any 8 KiB multiple" let a 520 KiB misread pass
#: on a device whose whole SRAM block is 192 KiB.  Only the logical
#: spaces routed through the L1 silicon can be carveouts at all.
#: Generations whose block differs per chip (Ampere: GA100 is 192 KiB,
#: GA10x is 128 KiB) map compute capability -> block; the largest block
#: of the generation is the fallback when the CC is unknown.
_SRAM_BLOCK_BYTES: dict[tuple[str, str], int | dict[str, int]] = {
    ("NVIDIA", "Pascal"): 64 * 1024,  # fixed 64 KiB shared + 48 KiB L1
    ("NVIDIA", "Volta"): 128 * 1024,
    ("NVIDIA", "Turing"): 96 * 1024,
    ("NVIDIA", "Ampere"): {"8.0": 192 * 1024, "8.6": 128 * 1024},
    ("NVIDIA", "Ada Lovelace"): 128 * 1024,
    ("NVIDIA", "Hopper"): 256 * 1024,
}


def _sram_block(
    vendor: str, microarchitecture: str | None, compute_capability: str | None
) -> int | None:
    entry = _SRAM_BLOCK_BYTES.get((vendor, microarchitecture or ""))
    if isinstance(entry, dict):
        return entry.get(compute_capability or "", max(entry.values()))
    return entry

#: Logical memory elements that share the carveout-configurable L1
#: silicon (post-Pascal NVIDIA routes Texture/Readonly through l1tex).
_CARVEOUT_ELEMENTS = frozenset({"L1", "Texture", "Readonly"})

#: GPU-scope elements whose capacity is built from whole-MiB slices
#: (LLC banks: one slice per partition/XCD), not from the SM-level
#: carveout machinery.  A benchmarked 25 MiB Hopper L2 segment is a
#: perfectly round capacity — 25 x 1 MiB slices — yet is neither a
#: small odd multiple of a power of two nor a carveout (it is not L1
#: silicon, and it dwarfs every SRAM block in the table).
_MIB_SLICE_ELEMENTS = frozenset({"L2", "L3"})
_MIB = 1024 * 1024
#: Size sweeps overshoot the true boundary by at most a stride (a few
#: KiB), so the MiB-slice rule uses an *absolute* slack cap: at 25 MiB a
#: purely relative tolerance would span half a slice and wave anything
#: through (whole-MiB multiples are dense at that scale).
_MIB_SLICE_SLACK_BYTES = 64 * 1024


@dataclass
class CheckResult:
    """Outcome of one structural check."""

    check: str
    status: str  # "pass" | "fail" | "skip"
    detail: str
    elements: tuple[str, ...] = ()
    #: benchmarked (element, attribute) pairs implicated in a failure —
    #: the validator's escalation pass re-measures exactly these.
    implicated: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        return self.status != "fail"

    def as_dict(self) -> dict[str, Any]:
        return {
            "check": self.check,
            "status": self.status,
            "detail": self.detail,
            "elements": list(self.elements),
        }


def _numeric(report: TopologyReport, element: str, attribute: str) -> float | None:
    """The attribute's value as a float, or None when absent/non-numeric.

    Inconclusive lower bounds (confidence 0 with a value — the paper's
    ">64 KiB" case) still participate: a *lower* bound on a deeper level
    can only make orderings easier to satisfy, and treating it as absent
    would silently drop the ConstL1 <= ConstL1.5 chain everywhere.
    """
    if element not in report.memory:
        return None
    av = report.memory[element].get(attribute)
    if av.source in (Source.NOT_APPLICABLE, Source.UNAVAILABLE):
        return None
    if isinstance(av.value, bool) or not isinstance(av.value, (int, float)):
        return None
    return float(av.value)


def _benchmarked(report: TopologyReport, element: str, attribute: str) -> bool:
    if element not in report.memory:
        return False
    return report.memory[element].get(attribute).source is Source.BENCHMARK


def _chain_checks(
    report: TopologyReport,
    name: str,
    attribute: str,
    chains: dict[str, tuple[tuple[str, str], ...]],
    slack: float,
    descending: bool = False,
) -> Iterator[CheckResult]:
    """One CheckResult per comparable (lower, higher) pair."""
    vendor = report.general.vendor
    for low, high in chains.get(vendor, ()):
        a = _numeric(report, low, attribute)
        b = _numeric(report, high, attribute)
        check_id = f"{name}:{low}<={high}" if not descending else f"{name}:{low}>={high}"
        if a is None or b is None:
            missing = [el for el, v in ((low, a), (high, b)) if v is None]
            yield CheckResult(
                check=check_id,
                status="skip",
                detail=f"no {attribute} value for {', '.join(missing)}",
                elements=(low, high),
            )
            continue
        ok = a >= b * (1.0 - slack) if descending else a <= b * (1.0 + slack)
        implicated = tuple(
            (el, attribute)
            for el in (low, high)
            if _benchmarked(report, el, attribute)
        )
        yield CheckResult(
            check=check_id,
            status="pass" if ok else "fail",
            detail=(
                f"{low}.{attribute}={a:.6g} vs {high}.{attribute}={b:.6g}"
                + ("" if ok else " violates the hierarchy ordering")
            ),
            elements=(low, high),
            implicated=() if ok else implicated,
        )


def is_roundish_size(
    value: float,
    tolerance: float = _ROUND_TOLERANCE,
    vendor: str | None = None,
    microarchitecture: str | None = None,
    element: str | None = None,
    compute_capability: str | None = None,
) -> bool:
    """Is ``value`` plausibly a real cache capacity?

    Three shapes qualify, scoped by what kind of element the capacity
    belongs to: a small odd multiple of a power of two (power-of-two
    banks: 192 KiB = 3 * 64 KiB, 5 MiB L2 slices); for *GPU-scope* LLC
    elements (:data:`_MIB_SLICE_ELEMENTS`) at or above 1 MiB, any whole
    number of 1 MiB slices within an absolute slack of
    :data:`_MIB_SLICE_SLACK_BYTES` (a benchmarked 25 MiB H100-style L2
    segment is round; 25.5 MiB is not); or — for capacities large enough
    to be an L1/Shared-Memory carveout — an 8 KiB carveout quantum
    *consistent with the vendor/generation carveout table*: the quantum
    must fit the generation's unified SRAM block
    (:data:`_SRAM_BLOCK_BYTES`), and only elements routed through the L1
    silicon may claim a carveout at all.  Without vendor context (no
    report at hand — e.g. direct unit-test calls) the legacy permissive
    quantum rule applies; with context, an unknown generation falls back
    to the permissive rule for NVIDIA only, and AMD — whose first-level
    caches are fixed-function — gets no carveout branch.
    """
    if value <= 0:
        return False
    candidate = 1
    while candidate <= value * (1.0 + tolerance):
        for m in (1, 3, 5, 7, 9):
            c = m * candidate
            if abs(value - c) <= tolerance * c:
                return True
        candidate *= 2
    if element in _MIB_SLICE_ELEMENTS and value >= _MIB:
        # Element-scope-aware roundness: an LLC capacity is a count of
        # whole-MiB slices, never an SM-SRAM carveout — the carveout
        # branch below must not judge (and reject) it.
        c = round(value / _MIB) * _MIB
        return c > 0 and abs(value - c) <= min(tolerance * c, _MIB_SLICE_SLACK_BYTES)
    if value < _CARVEOUT_FLOOR:
        return False
    if vendor is not None:
        if vendor != "NVIDIA":
            return False
        if element is not None and element not in _CARVEOUT_ELEMENTS:
            return False
        block = _sram_block(vendor, microarchitecture, compute_capability)
        if block is not None and value > block * 1.02:
            return False
    c = round(value / _CARVEOUT_QUANTUM) * _CARVEOUT_QUANTUM
    return c > 0 and abs(value - c) <= 0.02 * c


def run_structural_checks(report: TopologyReport) -> list[CheckResult]:
    """All plausibility checks, in a stable order."""
    results: list[CheckResult] = []
    results.extend(
        _chain_checks(report, "size_monotonicity", "size", SIZE_CHAINS, slack=0.0)
    )
    results.extend(
        _chain_checks(
            report,
            "latency_monotonicity",
            "load_latency",
            LATENCY_CHAINS,
            slack=_LATENCY_SLACK,
        )
    )
    for attribute in ("read_bandwidth", "write_bandwidth"):
        # the attribute is part of the check id so a read failure and a
        # write failure on the same pair stay distinguishable
        results.extend(
            _chain_checks(
                report,
                f"bandwidth_ordering.{attribute}",
                attribute,
                BANDWIDTH_CHAINS,
                slack=_BANDWIDTH_SLACK,
                descending=True,
            )
        )

    # cache line >= fetch granularity, and an integer number of sectors.
    for name in report.memory:
        line = _numeric(report, name, "cache_line_size")
        fg = _numeric(report, name, "fetch_granularity")
        check_id = f"line_vs_fetch:{name}"
        if line is None or fg is None:
            results.append(
                CheckResult(
                    check=check_id,
                    status="skip",
                    detail="cache line or fetch granularity not available",
                    elements=(name,),
                )
            )
            continue
        ok = line >= fg and fg > 0 and int(line) % int(fg) == 0
        results.append(
            CheckResult(
                check=check_id,
                status="pass" if ok else "fail",
                detail=f"line={line:.6g} B, fetch granularity={fg:.6g} B",
                elements=(name,),
                implicated=()
                if ok
                else tuple(
                    (name, attr)
                    for attr in ("cache_line_size", "fetch_granularity")
                    if _benchmarked(report, name, attr)
                ),
            )
        )

    # power-of-two-ish capacities — only for *conclusive benchmarked*
    # sizes: API values are authoritative, lower bounds are caps.
    for name, element in report.memory.items():
        av = element.get("size")
        check_id = f"round_size:{name}"
        if av.source is not Source.BENCHMARK or not isinstance(
            av.value, (int, float)
        ) or av.confidence <= 0.0:
            results.append(
                CheckResult(
                    check=check_id,
                    status="skip",
                    detail="size not conclusively benchmarked",
                    elements=(name,),
                )
            )
            continue
        ok = is_roundish_size(
            float(av.value),
            vendor=report.general.vendor,
            microarchitecture=report.general.microarchitecture,
            element=name,
            compute_capability=report.general.compute_capability,
        )
        results.append(
            CheckResult(
                check=check_id,
                status="pass" if ok else "fail",
                detail=f"measured size {int(av.value)} B"
                + (
                    ""
                    if ok
                    else " is neither a small odd multiple of a power of two, "
                    "a whole-MiB LLC slice multiple, "
                    "nor a generation-consistent carveout quantum"
                ),
                elements=(name,),
                implicated=() if ok else ((name, "size"),),
            )
        )
    return results
