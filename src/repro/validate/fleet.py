"""Fleet discovery: many presets, one process pool, one comparison matrix.

The ROADMAP's scale goal applied to discovery itself: instead of
analysing one device per invocation, :func:`discover_fleet` runs the full
MT4G pipeline for many presets concurrently (one worker process per
device — discovery is CPU-bound numpy work, so processes give real
parallelism) and folds the results into a cross-device comparison matrix
with a per-preset validation verdict, the multi-machine view of the
paper's Table II/III.

Every worker builds its own simulated device from (preset, seed), so a
fleet run with ``jobs=1`` and a sequential loop produce byte-identical
reports — parallelism never changes results, only wall-clock time
(recorded per entry and for the whole fleet).

A validated fleet is also *judged*: after the entries are collected the
cross-device checks of :mod:`repro.validate.fleet_checks` group them by
(vendor, microarchitecture) and verify the invariants real silicon
obeys, attaching a :class:`FleetValidation` to the result.

Fault tolerance (the reliability layer under the reliability layer):
workers retry *transient* failures under a shared :class:`RetryPolicy`
(bounded attempts, exponential backoff, deterministic jitter, optional
per-preset deadline) and report a typed :class:`WorkerOutcome`; a broken
process pool degrades to typed per-entry error rows plus an in-process
recovery pass instead of sinking the fleet; and every path is
exercisable deterministically through the named ``fleet.worker``
injection point of :mod:`repro.faults`.  The invariant all of this
preserves: a discovery that succeeds — first try or last — is
byte-identical to the fault-free report.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro import faults
from repro.cache.costs import estimate_discovery_cost, schedule_order
from repro.cache.store import DiscoveryCache
from repro.cache.tiers import build_worker_cache
from repro.core.report import TopologyReport
from repro.core.tool import MT4G
from repro.errors import ReproError, is_transient
from repro.faults.retry import DEFAULT_FLEET_RETRY, RetryPolicy
from repro.gpusim.device import SimulatedGPU
from repro.gpuspec.presets import available_presets, get_preset
from repro.obs import profile as _profile
from repro.obs import trace as _trace
from repro.pchase.config import PChaseConfig
from repro.units import format_bandwidth, format_size
from repro.validate.fleet_checks import FleetValidation, run_fleet_checks

__all__ = [
    "FleetEntry",
    "FleetResult",
    "WorkerOutcome",
    "discover_fleet",
    "discover_one",
    "fleet_schedule",
]


@dataclass
class FleetEntry:
    """One preset's outcome inside a fleet run."""

    preset: str
    seed: int
    report: TopologyReport | None
    wall_seconds: float
    error: str = ""
    #: failure taxonomy: "" (no error) | "transient" (retry budget
    #: exhausted) | "permanent" (retrying cannot help) | "deadline"
    #: (per-preset deadline exceeded) | "infrastructure" (the pool, not
    #: the worker body, failed — e.g. a worker process died).
    error_kind: str = ""
    #: worker attempts consumed (1 = first try succeeded).
    attempts: int = 1
    #: True when an in-process recovery pass produced this entry after
    #: the worker pool broke underneath the original attempt.
    recovered: bool = False

    @property
    def ok(self) -> bool:
        return self.report is not None and not self.error

    @property
    def cache_status(self) -> str:
        """"hit" / "miss" when a store served this entry, else "off"."""
        if self.report is None:
            return "off"
        cache_meta = self.report.meta.get("cache")
        if isinstance(cache_meta, dict):
            return str(cache_meta.get("status", "off"))
        return "off"

    @property
    def verdict(self) -> str:
        if not self.ok:
            return "error"
        if self.report.validation is None:
            return "unvalidated"
        return self.report.validation.verdict


@dataclass
class FleetResult:
    """All fleet entries plus run-level accounting."""

    entries: list[FleetEntry]
    jobs: int
    total_wall_seconds: float
    seed: int
    #: Cross-device judgement (:func:`repro.validate.run_fleet_checks`);
    #: None until a fleet validation pass runs.
    validation: FleetValidation | None = None

    def entry(self, preset: str) -> FleetEntry:
        for e in self.entries:
            if e.preset == preset:
                return e
        raise KeyError(f"no fleet entry for preset {preset!r}")

    def verdicts(self) -> dict[str, str]:
        return {e.preset: e.verdict for e in self.entries}

    # ------------------------------------------------------------------ #
    # fault-tolerance accounting                                          #
    # ------------------------------------------------------------------ #

    @property
    def retries_total(self) -> int:
        """Worker attempts beyond the first, summed over the fleet."""
        return sum(max(0, e.attempts - 1) for e in self.entries)

    @property
    def recovered_in_process(self) -> int:
        return sum(1 for e in self.entries if e.recovered)

    @property
    def infrastructure_failed(self) -> bool:
        """True when any entry died of pool/worker infrastructure (as
        opposed to validation disagreement) — the ``mt4g fleet`` exit-3
        condition."""
        return any(e.error for e in self.entries)

    def error_kinds(self) -> dict[str, str]:
        """preset -> failure taxonomy, for failed entries only."""
        return {e.preset: e.error_kind or "unknown" for e in self.entries if e.error}

    @property
    def all_passed(self) -> bool:
        """Every per-preset verdict passed AND no cross-device disagreement."""
        if not all(e.verdict == "pass" for e in self.entries):
            return False
        return self.validation is None or self.validation.passed

    def validate(self) -> FleetValidation:
        """Run the cross-device judge over the collected entries."""
        return run_fleet_checks(self)

    # ------------------------------------------------------------------ #
    # comparison matrix                                                   #
    # ------------------------------------------------------------------ #

    def comparison_matrix(self) -> list[dict[str, Any]]:
        """One row per preset: the cross-device attribute summary."""
        rows: list[dict[str, Any]] = []
        for e in self.entries:
            row: dict[str, Any] = {
                "preset": e.preset,
                "verdict": e.verdict,
                "wall_seconds": round(e.wall_seconds, 3),
                "cache": e.cache_status,
            }
            if e.attempts > 1 or e.recovered:
                row["attempts"] = e.attempts
                row["recovered"] = e.recovered
            if not e.ok:
                row.update(
                    vendor="?",
                    first_level_size=None,
                    l2_size=None,
                    dram_latency_cycles=None,
                    dram_read_bandwidth=None,
                    error=e.error,
                    error_kind=e.error_kind,
                )
                rows.append(row)
                continue
            report = e.report
            vendor = report.general.vendor
            first = "L1" if vendor == "NVIDIA" else "vL1"

            def value(element: str, attribute: str) -> Any:
                if element not in report.memory:
                    return None
                return report.memory[element].get(attribute).value

            row.update(
                vendor=vendor,
                first_level_size=value(first, "size"),
                l2_size=value("L2", "size"),
                dram_latency_cycles=value("DeviceMemory", "load_latency"),
                dram_read_bandwidth=value("DeviceMemory", "read_bandwidth"),
                benchmarks_executed=report.runtime.benchmarks_executed,
            )
            rows.append(row)
        return rows

    def to_markdown(self) -> str:
        """The comparison matrix as a Markdown table (CLI output)."""
        lines = [
            f"# MT4G Fleet Report — {len(self.entries)} presets, "
            f"{self.jobs} workers, seed {self.seed}",
            "",
            f"Total wall time: {self.total_wall_seconds:.2f} s "
            f"(sum of per-preset walls: "
            f"{sum(e.wall_seconds for e in self.entries):.2f} s)",
            "",
            "| Preset | Vendor | L1/vL1 Size | L2 Size | DRAM Latency "
            "| DRAM Read BW | Verdict | Wall [s] |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for row in self.comparison_matrix():
            if "error" in row:
                # An exception with an empty message must still render a
                # readable cell (the worker falls back to the exception
                # type, but entries can also be built by hand).
                error = row["error"] or "unknown error"
                kind = row.get("error_kind") or ""
                cell = f"error[{kind}]: {error}" if kind else f"error: {error}"
                lines.append(
                    f"| {row['preset']} | ? | — | — | — | — "
                    f"| {cell} | {row['wall_seconds']:.2f} |"
                )
                continue
            first = row["first_level_size"]
            l2 = row["l2_size"]
            lat = row["dram_latency_cycles"]
            bw = row["dram_read_bandwidth"]
            # "is not None" — a legitimately-zero measurement is a value,
            # not a missing cell.
            lines.append(
                "| {preset} | {vendor} | {first} | {l2} | {lat} | {bw} "
                "| {verdict} | {wall:.2f} |".format(
                    preset=row["preset"],
                    vendor=row["vendor"],
                    first=format_size(first) if first is not None else "—",
                    l2=format_size(l2) if l2 is not None else "—",
                    lat=f"{float(lat):.0f} cyc" if lat is not None else "—",
                    bw=format_bandwidth(bw) if bw is not None else "—",
                    verdict=row["verdict"],
                    wall=row["wall_seconds"],
                )
            )
        lines.append("")
        if self.validation is not None:
            lines.extend(self.validation.to_markdown_lines())
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "schema": "mt4g-repro-fleet/1",
            "seed": self.seed,
            "jobs": self.jobs,
            "total_wall_seconds": round(self.total_wall_seconds, 3),
            "matrix": self.comparison_matrix(),
            "reports": {
                e.preset: e.report.as_dict() for e in self.entries if e.ok
            },
            "errors": {e.preset: e.error for e in self.entries if e.error},
            "fault_tolerance": {
                "retries_total": self.retries_total,
                "recovered_in_process": self.recovered_in_process,
                "error_kinds": self.error_kinds(),
            },
        }
        if self.validation is not None:
            out["fleet_validation"] = self.validation.as_dict()
        return out


# ---------------------------------------------------------------------- #
# workers                                                                 #
# ---------------------------------------------------------------------- #


@dataclass
class WorkerOutcome:
    """What one worker invocation reports back to its coordinator.

    Returned (never raised) for every in-body failure mode, so the
    parent can account for errors without caring whether the worker ran
    in a pool process or inline.  Only *infrastructure* failures — the
    pool dying underneath the worker — surface as exceptions on the
    future instead.
    """

    preset: str
    report: TopologyReport | None
    wall_seconds: float
    error: str = ""
    #: "" | "transient" (budget exhausted) | "permanent" | "deadline".
    error_kind: str = ""
    #: attempts consumed (1 = first try succeeded).
    attempts: int = 1
    #: completed trace spans recorded in-worker (PR 10), already plain
    #: dicts so they pickle across the pool boundary; ``None`` when the
    #: submitting side did not pass a traceparent.
    spans: Any = None
    #: per-phase discovery profile (``DiscoveryProfile.as_dict()``) when
    #: the worker ran with profiling on; never folded into the report.
    profile: Any = None

    @property
    def ok(self) -> bool:
        return self.report is not None and not self.error


def _discover_one(
    preset: str,
    seed: int,
    cache_config: str,
    engine: str,
    validate: bool,
    cache_dir: str | None = None,
    retry: RetryPolicy | None = None,
    traceparent: str | None = None,
    profile: bool = False,
) -> WorkerOutcome:
    """Worker body: one full discovery (+ validation) for one preset.

    ``traceparent`` (PR 10) joins this worker to the submitting
    request's trace: spans recorded here come back on
    ``WorkerOutcome.spans`` — worker processes share no tracer ring with
    the service.  ``profile`` additionally activates the discovery phase
    profiler and returns its breakdown on ``WorkerOutcome.profile``.
    Both default off and then cost nothing — the fleet CLI path never
    even enters the instrumented wrapper.
    """
    if traceparent is None and not profile:
        return _discover_one_inner(
            preset, seed, cache_config, engine, validate, cache_dir, retry
        )
    start = time.perf_counter()
    with _trace.worker_trace(traceparent) as ctx:
        if profile:
            with _profile.profiled() as prof:
                outcome = _discover_one_inner(
                    preset, seed, cache_config, engine, validate, cache_dir, retry
                )
            outcome.profile = prof.as_dict()
        else:
            outcome = _discover_one_inner(
                preset, seed, cache_config, engine, validate, cache_dir, retry
            )
        if ctx is not None:  # profile without a traceparent: no spans
            _trace.complete(
                ctx,
                "worker.discover",
                start,
                preset=preset,
                ok=outcome.ok,
                attempts=outcome.attempts,
                error_kind=outcome.error_kind,
            )
            outcome.spans = ctx.tracer.drain()
    return outcome


def _discover_one_inner(
    preset: str,
    seed: int,
    cache_config: str,
    engine: str,
    validate: bool,
    cache_dir: str | None = None,
    retry: RetryPolicy | None = None,
) -> WorkerOutcome:
    """The uninstrumented worker body (see :func:`_discover_one`).

    *Transient* failures (see :func:`repro.errors.is_transient`) are
    retried in-worker under ``retry`` — bounded attempts, exponential
    backoff, deterministic per-preset jitter, optional overall deadline;
    ``retry=None`` means a single attempt, the pre-fault-tolerance
    behaviour.  Permanent failures and exhausted budgets are returned as
    data (report ``None`` + error string + taxonomy kind) with the real
    elapsed wall, so sequential and concurrent runs account for a failed
    preset identically.  Because discovery is deterministic in
    (preset, seed), a retry that succeeds returns a report byte-identical
    to a first-try success — retries cost wall-clock, never correctness.

    ``cache_dir`` points every worker at one shared on-disk store — safe
    because entries are immutable and land via atomic rename, and two
    workers racing on the same key write byte-identical payloads.
    """
    policy = retry if retry is not None else RetryPolicy(attempts=1)
    start = time.perf_counter()
    deadline = (
        start + policy.deadline_seconds
        if policy.deadline_seconds is not None
        else None
    )
    error, kind = "", ""
    attempt = 0
    ctx = _trace.CURRENT.get()  # None unless _discover_one set a trace
    while attempt < policy.attempts:
        attempt += 1
        attempt_start = time.perf_counter()
        try:
            # The chaos plane's hook: label = "<preset>@<attempt index>"
            # so a recorded plan can fail attempt 0 and spare attempt 1
            # regardless of which process runs the worker.
            faults.inject("fleet.worker", f"{preset}@{attempt - 1}")
            # The standard tier stack (memory LRU over the shared disk
            # store): reads within this worker's retries hit memory,
            # writes land through to disk where every worker sees them.
            store = build_worker_cache(cache_dir)
            device = SimulatedGPU(
                get_preset(preset), seed=seed, cache_config=cache_config
            )
            tool = MT4G(device, config=PChaseConfig(engine=engine), cache=store)
            report = tool.discover(validate=validate)
            if ctx is not None:
                _trace.record(
                    ctx, "worker.attempt", attempt_start, attempt=attempt,
                    outcome="ok",
                )
            return WorkerOutcome(
                preset, report, time.perf_counter() - start, attempts=attempt
            )
        except Exception as exc:
            # An exception with an empty message (``raise ValueError()``)
            # must not yield an error entry that renders as blank text.
            error = _describe(exc)
            kind = "transient" if is_transient(exc) else "permanent"
            retrying = kind != "permanent" and attempt < policy.attempts
            pause = policy.delay(preset, attempt - 1) if retrying else 0.0
            if retrying and deadline is not None and (
                time.perf_counter() + pause >= deadline
            ):
                kind = "deadline"
                retrying = False
            if ctx is not None:
                _trace.record(
                    ctx, "worker.attempt", attempt_start, attempt=attempt,
                    outcome=kind, backoff_s=round(pause, 6) if retrying else 0.0,
                )
            if not retrying:
                break
            time.sleep(pause)
    return WorkerOutcome(
        preset,
        None,
        time.perf_counter() - start,
        error=error,
        error_kind=kind,
        attempts=attempt,
    )


#: Public name of the worker body: the serving subsystem's single-flight
#: discovery queue (:mod:`repro.serve.jobs`) submits exactly this
#: function to its pool, so a service-run discovery lands in the shared
#: store byte-identically to a fleet-run one.
discover_one = _discover_one


def _describe(exc: BaseException) -> str:
    """A never-empty error string: the message, or the exception type."""
    return str(exc) or type(exc).__name__


def fleet_schedule(
    names: Sequence[str], store: DiscoveryCache | None
) -> list[str]:
    """Submission order: longest job first (LPT), costs from the store.

    Recorded walls (the store's ``stats.json`` sidecar) rank presets the
    pool has seen before; unseen presets rank by a spec-derived estimate
    calibrated onto the recorded scale.  Pool makespan then approaches
    the LPT bound instead of depending on the caller's input order.
    """
    walls = store.recorded_walls() if store is not None else {}
    estimates = {n: estimate_discovery_cost(get_preset(n)) for n in names}
    return schedule_order(names, walls, estimates)


def discover_fleet(
    presets: Sequence[str] | None = None,
    seed: int = 0,
    jobs: int | None = None,
    validate: bool = True,
    engine: str = "analytic",
    cache_config: str = "PreferL1",
    parallel: bool = True,
    cache_dir: str | Path | None = None,
    retry: RetryPolicy | None = None,
    deadline_seconds: float | None = None,
    recover_in_process: bool = True,
) -> FleetResult:
    """Discover many presets concurrently and compare the results.

    ``presets`` defaults to the ten paper machines; ``jobs`` defaults to
    one worker per preset, capped by the CPU count.  ``parallel=False``
    runs the same pipeline sequentially in-process (the baseline the
    fleet benchmark measures against, and the fallback for environments
    without working multiprocessing).  A preset whose discovery raises is
    recorded as an error entry; it never sinks the rest of the fleet.

    ``cache_dir`` shares one on-disk :class:`~repro.cache.DiscoveryCache`
    across all workers: a re-run of the same fleet replays every report
    from the store (near-free re-validation), and the recorded per-preset
    walls drive the longest-first submission order.  Scheduling and
    caching never change results — entries keep the caller's input order
    and cached reports are byte-identical to cold ones.

    Fault tolerance: workers retry transient failures under ``retry``
    (default :data:`~repro.faults.retry.DEFAULT_FLEET_RETRY`).
    ``deadline_seconds`` bounds each preset end to end — inside the
    worker it caps the attempt/backoff loop, and in the parallel path the
    parent additionally stops waiting once the budget elapses, marking
    still-pending presets with a ``deadline`` error entry (the parent
    clock starts at submission, so the deadline *includes* pool queue
    wait — a saturated pool spends budget).  A broken pool (a worker
    process dying, not the worker body raising) degrades to typed
    ``infrastructure`` error rows, and ``recover_in_process=True`` then
    re-runs exactly those presets inline in the parent — results stay
    byte-identical because discovery is deterministic in (preset, seed).
    """
    names = list(presets) if presets is not None else list(available_presets())
    if not names:
        raise ReproError("discover_fleet needs at least one preset")
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        # results are keyed by preset name; a duplicate would silently
        # pay for two discoveries and keep one
        raise ReproError(f"duplicate preset(s) in fleet: {duplicates}")
    for name in names:
        get_preset(name)  # fail fast on unknown presets, before forking
    if jobs is None:
        jobs = max(1, min(len(names), os.cpu_count() or 1))
    jobs = max(1, min(jobs, len(names)))

    store = DiscoveryCache(cache_dir) if cache_dir else None
    cache_dir_arg = str(Path(cache_dir)) if cache_dir else None
    submission_order = fleet_schedule(names, store)
    policy = (retry if retry is not None else DEFAULT_FLEET_RETRY).with_deadline(
        deadline_seconds
    )

    def entry_from(outcome: WorkerOutcome, recovered: bool = False) -> FleetEntry:
        return FleetEntry(
            outcome.preset,
            seed,
            outcome.report,
            outcome.wall_seconds,
            error=outcome.error,
            error_kind=outcome.error_kind,
            attempts=outcome.attempts,
            recovered=recovered,
        )

    start = time.perf_counter()
    by_name: dict[str, FleetEntry] = {}
    if not parallel or jobs == 1:
        for name in submission_order:
            t0 = time.perf_counter()
            try:
                by_name[name] = entry_from(
                    _discover_one(
                        name, seed, cache_config, engine, validate,
                        cache_dir_arg, policy,
                    )
                )
            except Exception as exc:  # the worker body itself failed
                by_name[name] = FleetEntry(
                    name,
                    seed,
                    None,
                    time.perf_counter() - t0,
                    error=_describe(exc),
                    error_kind="infrastructure",
                )
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(
                    _discover_one,
                    name,
                    seed,
                    cache_config,
                    engine,
                    validate,
                    cache_dir_arg,
                    policy,
                ): name
                for name in submission_order
            }
            submitted_at = time.perf_counter()
            pending = set(futures)
            while pending:
                timeout = None
                if policy.deadline_seconds is not None:
                    timeout = max(
                        0.0,
                        submitted_at + policy.deadline_seconds - time.perf_counter(),
                    )
                done, pending = wait(
                    pending, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Budget elapsed with workers still out: mark every
                    # remaining preset instead of waiting on a hang.
                    # (Pool shutdown below still joins the processes, so
                    # a "hung" worker must eventually return — injected
                    # hangs are finite sleeps by construction.)
                    for fut in pending:
                        fut.cancel()
                        by_name[futures[fut]] = FleetEntry(
                            futures[fut],
                            seed,
                            None,
                            time.perf_counter() - submitted_at,
                            error=(
                                f"fleet deadline of "
                                f"{policy.deadline_seconds:.3g} s exceeded"
                            ),
                            error_kind="deadline",
                        )
                    pending = set()
                    continue
                for fut in done:
                    name = futures[fut]
                    if name in by_name:
                        continue  # a late result after its deadline entry
                    try:
                        by_name[name] = entry_from(fut.result())
                    except Exception as exc:  # pool infrastructure failure
                        by_name[name] = FleetEntry(
                            name,
                            seed,
                            None,
                            0.0,
                            error=_describe(exc),
                            error_kind="infrastructure",
                        )

        if recover_in_process:
            # The pool broke underneath these presets; their worker
            # bodies may never have run.  Re-run them inline — same
            # deterministic pipeline, same retry policy — so a dying
            # worker process costs wall-clock, not coverage.
            for name in submission_order:
                entry = by_name.get(name)
                if entry is None or entry.error_kind != "infrastructure":
                    continue
                outcome = _discover_one(
                    name, seed, cache_config, engine, validate,
                    cache_dir_arg, policy,
                )
                if outcome.ok:
                    by_name[name] = entry_from(outcome, recovered=True)
                else:
                    by_name[name] = entry_from(outcome)

    if store is not None:
        # Only genuinely measured (non-hit) walls feed the scheduler: a
        # cache-hit wall is a hash lookup and would poison the LPT order.
        for entry in by_name.values():
            if entry.ok and entry.cache_status != "hit":
                store.record_wall(entry.preset, entry.wall_seconds)

    result = FleetResult(
        entries=[by_name[name] for name in names],  # stable input order
        jobs=jobs if parallel else 1,
        total_wall_seconds=time.perf_counter() - start,
        seed=seed,
    )
    if validate:
        # The cross-device judge runs in the parent over the collected
        # entries, so it is deterministic and identical for sequential
        # and concurrent runs (parallelism never changes results).
        result.validate()
    return result
