"""Post-hoc validation of a discovery run (paper Sections IV-V).

The paper's "reliable" headline is earned after the benchmarks finish:
measured values are checked for structural plausibility, cross-checked
against independent reference values (vendor APIs / datasheets — in this
reproduction, the simulated device's spec plays that role, exactly like
the paper's Table I/III delta columns), per-attribute confidences are
recalibrated from the observed agreement, and a failing check can
*escalate* into a re-measurement with more samples across fresh seeds.

The result is a :class:`ValidationReport` that lands in the topology
report's ``validation`` section and is rendered by all three writers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.benchmarks.base import MeasurementResult, Source
from repro.core.report import AttributeValue, TopologyReport
from repro.gpuspec.spec import GPUSpec
from repro.stats.compare import (
    agreement_score,
    recalibrated_confidence,
    relative_error,
    within_tolerance,
)
from repro.validate.checks import CheckResult, run_structural_checks

__all__ = [
    "CrossCheck",
    "EscalationRecord",
    "Recalibration",
    "ValidationReport",
    "validate_report",
    "DEFAULT_TOLERANCES",
    "reference_for",
]

#: Relative tolerance per cross-checked attribute (paper Table III shows
#: single-digit-percent deltas for sizes, wider spreads for latency and
#: bandwidth; line/granularity/amount/sharing values are exact by nature).
DEFAULT_TOLERANCES: dict[str, float] = {
    "size": 0.05,
    "load_latency": 0.15,
    "cache_line_size": 0.0,
    "fetch_granularity": 0.0,
    "read_bandwidth": 0.10,
    "write_bandwidth": 0.10,
    "amount": 0.0,
    "shared_with": 0.0,
}

#: Re-measurements triggered per validation pass are bounded: escalation
#: is a targeted second opinion, not a second discovery run.
MAX_ESCALATIONS = 8

Escalator = Callable[[str, str], "MeasurementResult | None"]


@dataclass
class CrossCheck:
    """One benchmark-vs-reference comparison (a Table I/III delta).

    ``measured``/``reference`` are floats for value checks; *protocol*
    checks (``shared_with``) carry partner tuples instead, with a 0/1
    ``rel_error`` standing in for match/mismatch.
    """

    element: str
    attribute: str
    measured: Any
    reference: Any
    reference_source: str
    rel_error: float
    tolerance: float
    status: str  # "pass" | "fail"

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    def as_dict(self) -> dict[str, Any]:
        def plain(v: Any) -> Any:
            return list(v) if isinstance(v, tuple) else v

        return {
            "element": self.element,
            "attribute": self.attribute,
            "measured": plain(self.measured),
            "reference": plain(self.reference),
            "reference_source": self.reference_source,
            "rel_error": round(self.rel_error, 6),
            "tolerance": self.tolerance,
            "status": self.status,
        }


@dataclass
class EscalationRecord:
    """One re-measurement triggered by a failed check."""

    element: str
    attribute: str
    reason: str
    old_value: Any
    new_value: Any
    resolved: bool

    def as_dict(self) -> dict[str, Any]:
        return {
            "element": self.element,
            "attribute": self.attribute,
            "reason": self.reason,
            "old_value": self.old_value,
            "new_value": self.new_value,
            "resolved": self.resolved,
        }


@dataclass
class Recalibration:
    """A confidence adjusted by cross-check agreement."""

    element: str
    attribute: str
    before: float
    after: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "element": self.element,
            "attribute": self.attribute,
            "before": round(self.before, 4),
            "after": round(self.after, 4),
        }


@dataclass
class ValidationReport:
    """The ``validation`` section of a topology report."""

    verdict: str  # "pass" | "fail"
    checks: list[CheckResult] = field(default_factory=list)
    cross_checks: list[CrossCheck] = field(default_factory=list)
    escalations: list[EscalationRecord] = field(default_factory=list)
    recalibrations: list[Recalibration] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.verdict == "pass"

    def failures(self) -> list[str]:
        """Human-readable identifiers of everything that failed."""
        out = [c.check for c in self.checks if c.status == "fail"]
        out.extend(
            f"{cc.element}.{cc.attribute}" for cc in self.cross_checks if not cc.passed
        )
        return out

    def as_dict(self) -> dict[str, Any]:
        statuses = [c.status for c in self.checks]
        return {
            "verdict": self.verdict,
            "summary": {
                "checks_passed": statuses.count("pass"),
                "checks_failed": statuses.count("fail"),
                "checks_skipped": statuses.count("skip"),
                "cross_checks_passed": sum(1 for c in self.cross_checks if c.passed),
                "cross_checks_failed": sum(
                    1 for c in self.cross_checks if not c.passed
                ),
                "escalations": len(self.escalations),
                "recalibrations": len(self.recalibrations),
            },
            "checks": [c.as_dict() for c in self.checks],
            "cross_checks": [c.as_dict() for c in self.cross_checks],
            "escalations": [e.as_dict() for e in self.escalations],
            "recalibrations": [r.as_dict() for r in self.recalibrations],
        }


# ---------------------------------------------------------------------- #
# reference values                                                        #
# ---------------------------------------------------------------------- #


def reference_for(
    spec: GPUSpec,
    element: str,
    attribute: str,
    cache_config: str = "PreferL1",
) -> tuple[float, str] | None:
    """Independent reference value for one (element, attribute), if any.

    The spec stands in for the vendor datasheet/API column of the paper's
    validation tables.  Latency references include the constant
    clock-read overhead every measured sample carries (Section IV-A
    footnote 7).
    """
    overhead = spec.noise.measurement_overhead
    if element == "DeviceMemory":
        refs = {
            "size": (float(spec.memory.size), "spec: device memory capacity"),
            "load_latency": (
                spec.memory.load_latency + overhead,
                "spec: DRAM latency + clock overhead",
            ),
            "read_bandwidth": (spec.memory.read_bandwidth, "spec: achieved DRAM read BW"),
            "write_bandwidth": (
                spec.memory.write_bandwidth,
                "spec: achieved DRAM write BW",
            ),
        }
        return refs.get(attribute)
    if element == spec.scratchpad.name:
        refs = {
            "size": (float(spec.scratchpad.size), "spec: scratchpad capacity"),
            "load_latency": (
                spec.scratchpad.load_latency + overhead,
                "spec: scratchpad latency + clock overhead",
            ),
        }
        return refs.get(attribute)
    if not spec.has_cache(element):
        return None
    cache = spec.cache(element)
    if attribute == "size":
        # Logical spaces routed through the L1 silicon (Texture/Readonly
        # share the unified l1tex block on post-Pascal NVIDIA) follow the
        # runtime carveout, not the nominal spec capacity.
        primary = "L1" if spec.vendor.value == "NVIDIA" else "vL1"
        if (
            spec.has_cache(primary)
            and cache.effective_physical_id
            == spec.cache(primary).effective_physical_id
        ):
            return (
                float(spec.effective_l1_size(cache_config)),
                "spec: cache capacity (carveout)",
            )
        return float(cache.size), "spec: cache capacity"
    if attribute == "load_latency":
        return cache.load_latency + overhead, "spec: cache latency + clock overhead"
    if attribute == "cache_line_size":
        return float(cache.line_size), "spec: cache line size"
    if attribute == "fetch_granularity":
        return float(cache.fetch_granularity), "spec: sector size"
    if attribute == "amount":
        return float(cache.segments), "spec: independent segments"
    if attribute == "read_bandwidth" and cache.read_bandwidth > 0:
        return cache.read_bandwidth, "spec: achieved cache read BW"
    if attribute == "write_bandwidth" and cache.write_bandwidth > 0:
        return cache.write_bandwidth, "spec: achieved cache write BW"
    return None


def _sharing_cross_check(
    report: TopologyReport, spec: GPUSpec, element: str, measured: tuple
) -> CrossCheck | None:
    """Protocol check: measured physical-sharing partners vs spec groups.

    The spec's physical-id groups are the reference (the paper validates
    sharing against whitepaper block diagrams).  Expected partners are
    restricted to elements that actually ran the sharing protocol —
    an element excluded from the benchmark cannot appear as a partner.
    """
    if not spec.has_cache(element):
        return None
    participants = {
        name
        for name, el in report.memory.items()
        if el.get("shared_with").source is Source.BENCHMARK
        and isinstance(el.get("shared_with").value, (tuple, list))
    }
    group = spec.sharing_groups()[spec.cache(element).effective_physical_id]
    expected = tuple(sorted((set(group) - {element}) & participants))
    got = tuple(sorted(str(v) for v in measured))
    ok = got == expected
    return CrossCheck(
        element=element,
        attribute="shared_with",
        measured=got,
        reference=expected,
        reference_source="spec: physical sharing groups",
        rel_error=0.0 if ok else 1.0,
        tolerance=0.0,
        status="pass" if ok else "fail",
    )


def run_cross_checks(
    report: TopologyReport,
    spec: GPUSpec,
    cache_config: str = "PreferL1",
    tolerances: dict[str, float] | None = None,
) -> list[CrossCheck]:
    """Compare every conclusive benchmarked value against its reference."""
    tol = {**DEFAULT_TOLERANCES, **(tolerances or {})}
    out: list[CrossCheck] = []
    for name, element in report.memory.items():
        for attribute, tolerance in tol.items():
            av = element.get(attribute)
            if av.source is not Source.BENCHMARK or av.value is None:
                continue
            if av.confidence <= 0.0:
                # Inconclusive values (lower bounds, paper's honesty
                # marker) are not claims; there is nothing to cross-check.
                continue
            if attribute == "shared_with":
                # Protocol result: a partner tuple on NVIDIA (the AMD
                # CU-map has no spec-side reference and is skipped).
                if isinstance(av.value, (tuple, list)):
                    cc = _sharing_cross_check(report, spec, name, tuple(av.value))
                    if cc is not None:
                        out.append(cc)
                continue
            if isinstance(av.value, bool) or not isinstance(av.value, (int, float)):
                continue
            ref = reference_for(spec, name, attribute, cache_config)
            if ref is None:
                continue
            reference, ref_source = ref
            err = relative_error(float(av.value), reference)
            ok = within_tolerance(float(av.value), reference, tolerance)
            out.append(
                CrossCheck(
                    element=name,
                    attribute=attribute,
                    measured=float(av.value),
                    reference=reference,
                    reference_source=ref_source,
                    rel_error=err,
                    tolerance=tolerance,
                    status="pass" if ok else "fail",
                )
            )
    return out


# ---------------------------------------------------------------------- #
# the validation pass                                                     #
# ---------------------------------------------------------------------- #


#: Attributes whose cross-check is a protocol match, not a numeric delta.
_PROTOCOL_ATTRIBUTES = ("amount", "shared_with")


def _escalation_targets(
    checks: list[CheckResult], crosses: list[CrossCheck]
) -> list[tuple[str, str, str]]:
    """Ordered unique (element, attribute, reason) triples to re-measure.

    Value checks (size, latency, bandwidth) come first: repairing an
    upstream value (a corrected size un-thrashes the dependent latency
    ring) is worth more of the bounded escalation budget than a protocol
    re-run.  Failing *protocol* checks (amount, shared_with) follow with
    a protocol-specific reason, then structurally implicated attributes.
    """
    targets: list[tuple[str, str, str]] = []
    seen: set[tuple[str, str]] = set()

    def add(element: str, attribute: str, reason: str) -> None:
        key = (element, attribute)
        if key not in seen:
            seen.add(key)
            targets.append((element, attribute, reason))

    for cc in crosses:
        if cc.passed or cc.attribute in _PROTOCOL_ATTRIBUTES:
            continue
        add(
            cc.element,
            cc.attribute,
            f"cross-check delta {cc.rel_error:.1%} > {cc.tolerance:.0%}",
        )
    for cc in crosses:
        if cc.passed or cc.attribute not in _PROTOCOL_ATTRIBUTES:
            continue
        add(
            cc.element,
            cc.attribute,
            f"protocol check disagrees with {cc.reference_source}",
        )
    for check in checks:
        if check.status != "fail":
            continue
        for element, attribute in check.implicated:
            add(element, attribute, f"structural check {check.check} failed")
    return targets


def validate_report(
    report: TopologyReport,
    spec: GPUSpec | None = None,
    cache_config: str = "PreferL1",
    escalate: Escalator | None = None,
    tolerances: dict[str, float] | None = None,
    max_escalations: int = MAX_ESCALATIONS,
) -> ValidationReport:
    """Run the full validation pass over ``report`` (mutating it).

    Structural checks always run; cross-checks need a ``spec`` reference.
    When ``escalate`` is given, each failing benchmarked attribute is
    re-measured once (bounded by ``max_escalations``); a re-measurement
    replaces the attribute value and every check is evaluated again.
    Cross-check agreement finally recalibrates the attribute confidences.
    The resulting :class:`ValidationReport` is stored on the report's
    ``validation`` field and returned.
    """
    checks = run_structural_checks(report)
    crosses = (
        run_cross_checks(report, spec, cache_config, tolerances) if spec else []
    )

    escalations: list[EscalationRecord] = []
    if escalate is not None:
        for element, attribute, reason in _escalation_targets(checks, crosses)[
            :max_escalations
        ]:
            old = report.memory[element].get(attribute)
            try:
                m = escalate(element, attribute)
            except Exception as exc:  # an escalation must never sink the run
                m = None
                reason = f"{reason}; re-measurement raised {exc!r}"
            # An inconclusive re-measurement (confidence 0 — a bound, not
            # a claim) must not replace a conclusive value: checks skip
            # inconclusive inputs, so accepting it would convert a failed
            # check into a "pass" without any measurement agreeing.
            if m is None or not m.conclusive:
                escalations.append(
                    EscalationRecord(
                        element=element,
                        attribute=attribute,
                        reason=reason,
                        old_value=old.value,
                        new_value=None,
                        resolved=False,
                    )
                )
                continue
            report.memory[element].set(attribute, AttributeValue.from_measurement(m))
            escalations.append(
                EscalationRecord(
                    element=element,
                    attribute=attribute,
                    reason=reason,
                    old_value=old.value,
                    new_value=m.value,
                    resolved=True,
                )
            )
        if any(e.resolved for e in escalations):
            checks = run_structural_checks(report)
            crosses = (
                run_cross_checks(report, spec, cache_config, tolerances)
                if spec
                else []
            )

    recalibrations: list[Recalibration] = []
    for cc in crosses:
        av = report.memory[cc.element].get(cc.attribute)
        before = av.confidence
        if isinstance(cc.measured, (int, float)):
            agreement = agreement_score(cc.measured, cc.reference, cc.tolerance)
        else:
            # Protocol results have no numeric delta: agreement is binary.
            agreement = 1.0 if cc.passed else 0.0
        after = recalibrated_confidence(before, agreement)
        if after != before:
            av.confidence = after
            recalibrations.append(
                Recalibration(
                    element=cc.element,
                    attribute=cc.attribute,
                    before=before,
                    after=after,
                )
            )

    ok = all(c.passed for c in checks) and all(c.passed for c in crosses)
    validation = ValidationReport(
        verdict="pass" if ok else "fail",
        checks=checks,
        cross_checks=crosses,
        escalations=escalations,
        recalibrations=recalibrations,
    )
    report.validation = validation
    return validation
