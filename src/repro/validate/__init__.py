"""Cross-validation of discovery results (the paper's reliability claim).

Three layers:

* :mod:`repro.validate.checks` — structural plausibility checks on a
  single report (hierarchy monotonicity, sector geometry, round sizes);
* :mod:`repro.validate.validator` — the full validation pass:
  plausibility + benchmark-vs-reference cross-checks + confidence
  recalibration + re-measurement escalation, producing the report's
  ``validation`` section;
* :mod:`repro.validate.fleet` — concurrent multi-preset discovery with a
  cross-device comparison matrix and per-preset verdicts;
* :mod:`repro.validate.fleet_checks` — the fleet-level *judge*:
  cross-device invariants (line size, fetch granularity, warp size,
  hierarchy orderings) per (vendor, microarchitecture) group, with
  confidence-weighted consensus and dissent recalibration.
"""

from repro.validate.checks import CheckResult, is_roundish_size, run_structural_checks
from repro.validate.fleet import (
    FleetEntry,
    FleetResult,
    discover_fleet,
    fleet_schedule,
)
from repro.validate.fleet_checks import (
    FLEET_TOLERANCES,
    FleetCheck,
    FleetConsensus,
    FleetRecalibration,
    FleetValidation,
    run_fleet_checks,
)
from repro.validate.validator import (
    DEFAULT_TOLERANCES,
    CrossCheck,
    EscalationRecord,
    Recalibration,
    ValidationReport,
    reference_for,
    validate_report,
)

__all__ = [
    "CheckResult",
    "CrossCheck",
    "DEFAULT_TOLERANCES",
    "EscalationRecord",
    "FLEET_TOLERANCES",
    "FleetCheck",
    "FleetConsensus",
    "FleetEntry",
    "FleetRecalibration",
    "FleetResult",
    "FleetValidation",
    "Recalibration",
    "ValidationReport",
    "discover_fleet",
    "fleet_schedule",
    "is_roundish_size",
    "reference_for",
    "run_fleet_checks",
    "run_structural_checks",
    "validate_report",
]
