"""Deterministic fault injection + retry/backoff policies (the chaos plane).

MT4G's headline claim is *reliable* auto-discovery; this package is how
the reproduction proves the reliability machinery itself.  It has two
halves:

* :mod:`repro.faults.plan` — a seedable, recorded :class:`FaultPlan`
  that injects worker crashes, hangs, slow or failing cache I/O,
  corrupted-on-write store entries and transient measurement exceptions
  at named injection points in the fleet runner, the discovery store and
  the serving queue.  Off by default with nothing but a ``None`` check
  on the hot path; activated explicitly or via ``$MT4G_FAULT_PLAN`` (so
  worker processes inherit the plan);
* :mod:`repro.faults.retry` — the :class:`RetryPolicy` both retry layers
  share: bounded attempts, exponential backoff, deterministic per-key
  jitter, optional overall deadline.

The contract the chaos harness (``benchmarks/bench_chaos.py``) enforces:
any discovery that *succeeds* under an injected fault plan is
byte-identical to its fault-free report — faults may cost retries and
wall-clock, never correctness.
"""

from repro.faults.plan import (
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    activate,
    active_plan,
    deactivate,
    inject,
    injected,
    injected_counts,
    injected_total,
)
from repro.faults.retry import (
    DEFAULT_FLEET_RETRY,
    DEFAULT_SERVE_RETRY,
    RetryPolicy,
)

__all__ = [
    "DEFAULT_FLEET_RETRY",
    "DEFAULT_SERVE_RETRY",
    "ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "activate",
    "active_plan",
    "deactivate",
    "inject",
    "injected",
    "injected_counts",
    "injected_total",
]
