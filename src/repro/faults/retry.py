"""Retry budgets with exponential backoff and deterministic jitter.

One :class:`RetryPolicy` shape serves both retry layers — the fleet
worker's in-process attempt loop and the serving queue's per-job budget —
so "how many attempts, how long between them, how long overall" is
configured once and means the same thing everywhere.

Jitter is deterministic: the delay for attempt *n* of operation *key* is
the exponential base delay scaled by a factor in ``[0.5, 1.0)`` drawn
from ``sha256(seed | key | n)``.  Determinism matters twice over — the
chaos harness replays recovery schedules exactly, and a fleet of workers
retrying the same failure still decorrelates (each key hashes its own
schedule) without sharing any RNG state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

__all__ = ["RetryPolicy", "DEFAULT_FLEET_RETRY", "DEFAULT_SERVE_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often to try, how long to wait, and when to stop entirely."""

    #: total attempts (1 = no retry).  Only *transient* failures are
    #: retried — :func:`repro.errors.is_transient` is the classifier.
    attempts: int = 3
    #: backoff base: delay before retry n is ``base_delay * 2**n``…
    base_delay: float = 0.05
    #: …capped here.
    max_delay: float = 2.0
    #: overall per-operation deadline (attempts + backoff sleeps must fit
    #: inside it); None = unbounded.
    deadline_seconds: float | None = None
    #: jitter seed (folded into the per-key hash, not global RNG).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive (or None)")

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based) of operation ``key``.

        >>> policy = RetryPolicy(base_delay=0.1, max_delay=10.0)
        >>> policy.delay("A100", 0) == policy.delay("A100", 0)  # replayable
        True
        >>> 0.1 <= policy.delay("A100", 2) / policy.delay("A100", 0) <= 8.0
        True
        """
        raw = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        material = f"{self.seed}|{key}|{attempt}"
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return raw * (0.5 + 0.5 * fraction)

    def with_deadline(self, deadline_seconds: float | None) -> "RetryPolicy":
        if deadline_seconds is None:
            return self
        return replace(self, deadline_seconds=deadline_seconds)


#: Fleet workers: a couple of quick retries, never minutes of backoff —
#: a preset that fails three times deserves its error row.
DEFAULT_FLEET_RETRY = RetryPolicy(attempts=3, base_delay=0.05, max_delay=1.0)

#: Serving: one retry inside the job (cold requests are latency-bound);
#: persistent failure is the failure-TTL memo and breaker's business.
DEFAULT_SERVE_RETRY = RetryPolicy(attempts=2, base_delay=0.05, max_delay=0.5)
