"""The deterministic, seedable fault plan and its injection points.

A :class:`FaultPlan` is a recorded list of :class:`FaultSpec` rules.
Code under test calls :func:`inject` at *named injection points* (e.g.
``"fleet.worker"``, ``"store.get"``, ``"store.put"``, ``"store.stats"``,
``"serve.job"``)
with a label describing the concrete operation (a preset name plus
attempt index, a cache key).  When no plan is active — the production
default — :func:`inject` is a single attribute load and a ``None`` check;
there is nothing to configure, nothing to pay.

Determinism is the whole point: a spec fires on explicit *occurrence
indices* of its (site, label) match (``times=(0,)`` = the first matching
call in this process) and/or on a probability drawn from a hash of
``(plan seed, site, label, occurrence)`` — never from global RNG state —
so a recorded plan replays the identical fault sequence run after run,
which is what lets the chaos harness assert byte-identical recovery.

Activation crosses process boundaries: :func:`activate` mirrors the plan
into ``$MT4G_FAULT_PLAN``, and this module re-hydrates from that
variable on import, so fleet worker processes (fork *or* spawn) observe
the same plan the parent recorded.  Worker-side occurrence counters
start fresh per process; specs that must fire exactly once per named
operation should therefore match on labels (``"A100@0"`` = preset A100,
first attempt) rather than on bare occurrence counts.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import (
    InjectedPermanentError,
    InjectedTransientError,
    WorkerCrashError,
)

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "activate",
    "active_plan",
    "deactivate",
    "inject",
    "injected",
    "injected_counts",
    "injected_total",
]

#: Environment variable carrying the active plan across processes:
#: inline JSON, or ``@/path/to/plan.json``.
ENV_VAR = "MT4G_FAULT_PLAN"

#: The fault kinds :meth:`FaultSpec.perform` knows how to execute.
#: ``corrupt`` is passive — the injection site itself implements it
#: (e.g. the store truncates the blob it was about to write).
KINDS = ("crash", "exit", "hang", "slow", "io_error", "transient", "permanent", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: where, what, and on which occurrences."""

    #: injection-point name (fnmatch pattern), e.g. ``fleet.worker``.
    site: str
    #: one of :data:`KINDS`.
    kind: str
    #: label filter (fnmatch pattern) over the operation label the site
    #: passes — e.g. ``A100@0`` (preset A100, first attempt), a cache key.
    label: str = "*"
    #: per-process occurrence indices of the (site, label-match) counter
    #: this spec fires on; ``None`` = every matching occurrence.
    times: tuple[int, ...] | None = (0,)
    #: probability gate on top of ``times`` (deterministic, hash-drawn).
    probability: float = 1.0
    #: sleep duration for ``hang``/``slow`` faults.
    delay_seconds: float = 0.1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {KINDS}")
        if self.times is not None:
            object.__setattr__(self, "times", tuple(int(t) for t in self.times))
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")

    def matches(self, site: str, label: str) -> bool:
        return fnmatch.fnmatchcase(site, self.site) and fnmatch.fnmatchcase(
            label, self.label
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "label": self.label,
            "times": list(self.times) if self.times is not None else None,
            "probability": self.probability,
            "delay_seconds": self.delay_seconds,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "FaultSpec":
        known = {"site", "kind", "label", "times", "probability", "delay_seconds"}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown fault spec field(s): {sorted(unknown)}")
        spec = dict(raw)
        if "times" in spec and spec["times"] is not None:
            spec["times"] = tuple(spec["times"])
        return cls(**spec)


class FaultPlan:
    """A seeded, replayable set of fault rules plus firing accounting."""

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = int(seed)
        #: pid of the process that activated the plan — the ``exit``
        #: kind only hard-kills *other* processes (pool workers), never
        #: the coordinating parent.
        self.activation_pid = os.getpid()
        #: (site, label) -> how many times :func:`inject` was consulted.
        self.occurrences: dict[tuple[str, str], int] = {}
        #: site -> how many faults actually fired (this process).
        self.fired: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # (de)serialisation                                                   #
    # ------------------------------------------------------------------ #

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "activation_pid": self.activation_pid,
            "faults": [s.as_dict() for s in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "FaultPlan":
        if not isinstance(raw, dict) or "faults" not in raw:
            raise ValueError('a fault plan is {"faults": [...], "seed": <int>}')
        plan = cls(
            [FaultSpec.from_dict(s) for s in raw["faults"]],
            seed=raw.get("seed", 0),
        )
        if "activation_pid" in raw:
            plan.activation_pid = int(raw["activation_pid"])
        return plan

    @classmethod
    def from_env_value(cls, raw: str) -> "FaultPlan":
        """Parse ``$MT4G_FAULT_PLAN``: inline JSON or ``@file`` path."""
        if raw.startswith("@"):
            raw = open(raw[1:], encoding="utf-8").read()
        return cls.from_dict(json.loads(raw))

    # ------------------------------------------------------------------ #
    # firing                                                              #
    # ------------------------------------------------------------------ #

    def _gate(self, spec_index: int, site: str, label: str, occurrence: int) -> bool:
        """Deterministic probability draw — hash, never global RNG."""
        spec = self.specs[spec_index]
        if spec.probability >= 1.0:
            return True
        material = f"{self.seed}|{spec_index}|{site}|{label}|{occurrence}"
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < spec.probability

    def fire(self, site: str, label: str) -> FaultSpec | None:
        """Consult the plan at one injection point; perform any match.

        Active kinds raise or sleep right here; the matched spec is
        returned for passive kinds (``corrupt``) the site implements.
        """
        fired = None
        for index, spec in enumerate(self.specs):
            if not spec.matches(site, label):
                continue
            counter_key = (site, label)
            occurrence = self.occurrences.get(counter_key, 0)
            self.occurrences[counter_key] = occurrence + 1
            if spec.times is not None and occurrence not in spec.times:
                continue
            if not self._gate(index, site, label, occurrence):
                continue
            fired = spec
            break
        if fired is None:
            return None
        self.fired[site] = self.fired.get(site, 0) + 1
        return self._perform(fired, site, label)

    def _perform(self, spec: FaultSpec, site: str, label: str) -> FaultSpec | None:
        where = f"at {site} ({label})" if label else f"at {site}"
        if spec.kind == "crash":
            raise WorkerCrashError(f"injected worker crash {where}")
        if spec.kind == "exit":
            if os.getpid() != self.activation_pid:
                os._exit(70)  # hard-kill a pool worker, not the parent
            raise WorkerCrashError(f"injected worker exit {where}")
        if spec.kind in ("hang", "slow"):
            time.sleep(spec.delay_seconds)
            return spec
        if spec.kind == "io_error":
            raise OSError(f"injected I/O failure {where}")
        if spec.kind == "transient":
            raise InjectedTransientError(f"injected transient fault {where}")
        if spec.kind == "permanent":
            raise InjectedPermanentError(f"injected permanent fault {where}")
        return spec  # "corrupt": the site implements the damage


# ---------------------------------------------------------------------- #
# module-level activation                                                 #
# ---------------------------------------------------------------------- #

_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    return _ACTIVE


def activate(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` in this process and mirror it into the
    environment so worker processes created afterwards inherit it."""
    global _ACTIVE
    plan.activation_pid = os.getpid()
    _ACTIVE = plan
    os.environ[ENV_VAR] = plan.to_json()
    return plan


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None
    os.environ.pop(ENV_VAR, None)


@contextmanager
def injected(plan: FaultPlan):
    """``with injected(plan):`` — activate for a block, always restore."""
    previous_env = os.environ.get(ENV_VAR)
    previous_plan = _ACTIVE
    activate(plan)
    try:
        yield plan
    finally:
        deactivate()
        if previous_plan is not None:
            activate(previous_plan)
        elif previous_env is not None:
            os.environ[ENV_VAR] = previous_env


def inject(site: str, label: str = "") -> FaultSpec | None:
    """The injection point: a no-op unless a plan is active.

    May raise (crash/io_error/transient/...), may sleep (hang/slow), and
    returns the fired spec for passive kinds the call site implements
    (``corrupt``).  Returns ``None`` when nothing fired.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(site, label)


def injected_counts() -> dict[str, int]:
    """site -> faults fired in this process (``{}`` when inactive)."""
    return dict(_ACTIVE.fired) if _ACTIVE is not None else {}


def injected_total() -> int:
    return sum(_ACTIVE.fired.values()) if _ACTIVE is not None else 0


def _bootstrap_from_env() -> None:
    """Re-hydrate an env-carried plan (worker processes, CLI runs).

    A malformed plan is reported and ignored — fault injection must
    never be able to sink a production run by configuration typo alone.
    """
    global _ACTIVE
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return
    try:
        _ACTIVE = FaultPlan.from_env_value(raw)
    except Exception as exc:
        print(f"mt4g: ignoring malformed ${ENV_VAR}: {exc}", file=sys.stderr)


_bootstrap_from_env()
