"""Two-sample Kolmogorov-Smirnov test (paper Section II-C.1).

Implements the exact machinery the paper describes: the test statistic is
the Kolmogorov distance ``D = max_x |F(x) - G(x)|`` between the empirical
CDFs of the two samples, compared against the critical value of paper
Eq. (1):

    d_alpha = sqrt( -1/2 * (n+m)/(n*m) * ln(alpha/2) )

(the paper's rendering omits the sign under the radical; ``ln(alpha/2)``
is negative for any usable alpha, so the negation is required for a real
root — this matches Wilcox's formulation the paper cites).

A scipy cross-check test validates :func:`ks_distance` against
``scipy.stats.ks_2samp``, but the implementation here is self-contained
because the *paper's* critical-value approximation, not scipy's exact
p-value, drives the tool's decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["KSResult", "ks_distance", "ks_critical_value", "ks_2sample", "ks_pvalue"]


@dataclass(frozen=True)
class KSResult:
    """Outcome of a two-sample K-S test."""

    distance: float  # D = max |F - G|
    critical_value: float  # d_alpha of paper Eq. (1)
    alpha: float
    p_value: float  # asymptotic two-sided p
    n: int
    m: int

    @property
    def reject_null(self) -> bool:
        """True when the samples come from different distributions."""
        return self.distance > self.critical_value

    @property
    def confidence(self) -> float:
        """1 - p, clipped to [0, 1]: the paper's reported quality metric."""
        return float(min(1.0, max(0.0, 1.0 - self.p_value)))


def ks_distance(x: np.ndarray, y: np.ndarray) -> float:
    """Kolmogorov distance between the empirical CDFs of ``x`` and ``y``."""
    x = np.sort(np.asarray(x, dtype=np.float64))
    y = np.sort(np.asarray(y, dtype=np.float64))
    if x.size == 0 or y.size == 0:
        raise ValueError("K-S test requires non-empty samples")
    grid = np.concatenate([x, y])
    cdf_x = np.searchsorted(x, grid, side="right") / x.size
    cdf_y = np.searchsorted(y, grid, side="right") / y.size
    return float(np.abs(cdf_x - cdf_y).max())


def ks_critical_value(n: int, m: int, alpha: float = 0.05) -> float:
    """Critical value d_alpha of paper Eq. (1)."""
    if n <= 0 or m <= 0:
        raise ValueError("sample sizes must be positive")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    return math.sqrt(-0.5 * (n + m) / (n * m) * math.log(alpha / 2.0))


def ks_pvalue(distance: float, n: int, m: int) -> float:
    """Asymptotic two-sided p-value (Smirnov approximation).

    Inverse of Eq. (1): the alpha at which ``d_alpha == distance``.
    """
    if n <= 0 or m <= 0:
        raise ValueError("sample sizes must be positive")
    en = n * m / (n + m)
    return float(min(1.0, max(0.0, 2.0 * math.exp(-2.0 * distance * distance * en))))


def ks_2sample(x: np.ndarray, y: np.ndarray, alpha: float = 0.05) -> KSResult:
    """Full two-sample K-S test with the paper's critical value."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    d = ks_distance(x, y)
    return KSResult(
        distance=d,
        critical_value=ks_critical_value(x.size, y.size, alpha),
        alpha=alpha,
        p_value=ks_pvalue(d, x.size, y.size),
        n=int(x.size),
        m=int(y.size),
    )
