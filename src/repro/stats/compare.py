"""Agreement metrics for the post-hoc validation pass (paper Section V).

The paper validates measured attributes against vendor specifications and
API values and reports per-attribute deltas (Tables I/III).  These helpers
turn such deltas into the quantities the validator needs: a symmetric
relative error, a tolerance predicate, an agreement score in [0, 1], and
the confidence-recalibration rule that folds agreement back into an
attribute's confidence.
"""

from __future__ import annotations

from typing import Hashable, Sequence

__all__ = [
    "relative_error",
    "within_tolerance",
    "agreement_score",
    "recalibrated_confidence",
    "median_index",
    "majority_index",
]


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| normalised by the reference magnitude.

    A zero reference falls back to the measured magnitude so the error
    stays finite (0 only when both are 0).
    """
    measured = float(measured)
    reference = float(reference)
    denom = abs(reference) if reference != 0.0 else abs(measured)
    return abs(measured - reference) / max(denom, 1e-12)


def within_tolerance(measured: float, reference: float, tolerance: float) -> bool:
    """Does the measurement agree with the reference up to ``tolerance``?

    ``tolerance`` is a relative bound (0.05 == 5 %); 0 demands exact
    agreement (used for cache-line and fetch-granularity cross-checks).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    if tolerance == 0.0:
        return float(measured) == float(reference)
    return relative_error(measured, reference) <= tolerance


def agreement_score(measured: float, reference: float, tolerance: float) -> float:
    """Map a cross-check delta to [0, 1]: 1 == exact, 0 == at/over tolerance."""
    if tolerance <= 0.0:
        return 1.0 if float(measured) == float(reference) else 0.0
    return max(0.0, 1.0 - relative_error(measured, reference) / tolerance)


def recalibrated_confidence(old: float, agreement: float) -> float:
    """Fold a cross-check agreement into a measured confidence.

    An independent reference that agrees should *raise* trust, one that
    disagrees should lower it; an inconclusive measurement (confidence 0,
    the paper's honesty marker) is never resurrected by agreement alone.
    """
    if old <= 0.0:
        return old
    return max(0.0, min(1.0, 0.5 * old + 0.5 * agreement))


def median_index(values: Sequence[float]) -> int:
    """Index of the median element (lower median for even counts).

    The escalation path re-measures across several seeds and keeps the
    median run — the consensus value robust to one disturbed re-run.
    """
    if not values:
        raise ValueError("median_index needs at least one value")
    order = sorted(range(len(values)), key=lambda i: float(values[i]))
    return order[(len(order) - 1) // 2]


def majority_index(keys: Sequence[Hashable]) -> int:
    """Index of the first element whose key wins the plurality vote.

    Protocol re-measurements (sharing partner tuples, CU maps) have no
    meaningful median, so escalation keeps the *modal* outcome across
    seeds instead.  Ties are broken toward the earliest-seen key, keeping
    the choice deterministic.
    """
    if not keys:
        raise ValueError("majority_index needs at least one key")
    counts: dict[Hashable, int] = {}
    first: dict[Hashable, int] = {}
    for i, key in enumerate(keys):
        counts[key] = counts.get(key, 0) + 1
        first.setdefault(key, i)
    winner = max(counts, key=lambda k: (counts[k], -first[k]))
    return first[winner]
