"""Offline single-change-point detection on reduced series.

Implements the paper's Section IV-B step (4): every index of the reduced
series S is considered a potential change point; the two-sample K-S test
compares the distribution left of the split against the distribution
right of it.  The accepted change point is the split with the largest
*normalised* K-S statistic (so unequal segment sizes are comparable), and
the test's significance doubles as the confidence metric the tool
reports.

The paper notes (Section IV-B.1) that shortlisting candidate indices — as
Truong et al. do — is unnecessary at this data size; we likewise scan all
indices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.stats.kstest import ks_critical_value, ks_pvalue

__all__ = ["ChangePoint", "detect_change_point"]


@dataclass(frozen=True)
class ChangePoint:
    """A detected distribution change at ``series[index]``.

    ``index`` is the first element belonging to the *new* distribution
    (the right segment).  ``confidence`` is ``1 - p`` of the K-S test at
    the split.
    """

    index: int
    statistic: float  # Kolmogorov distance D at the split
    critical_value: float  # d_alpha for the split's segment sizes
    p_value: float
    confidence: float
    significant: bool

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        flag = "significant" if self.significant else "not significant"
        return (
            f"change point @ {self.index} (D={self.statistic:.3f}, "
            f"d_alpha={self.critical_value:.3f}, conf={self.confidence:.3f}, {flag})"
        )


def detect_change_point(
    series: np.ndarray,
    alpha: float = 0.01,
    min_segment: int = 3,
) -> ChangePoint | None:
    """Scan all splits of ``series`` for the strongest distribution change.

    Returns ``None`` when the series is too short to split.  The returned
    change point may be non-``significant`` — callers decide whether to
    treat that as "no boundary found" (e.g. the Constant L1.5 size
    benchmark reports a lower bound with confidence 0).
    """
    s = np.asarray(series, dtype=np.float64)
    n = s.size
    if n < 2 * min_segment:
        return None

    order = np.argsort(s, kind="stable")
    ranks_sorted_values = s[order]

    # Capacity cliffs produce a *ramp*, not a step: past the boundary the
    # reduction grows as more sets thrash, and every split inside a
    # monotone ramp separates perfectly (D == 1).  The K-S statistic alone
    # therefore cannot localise the boundary; among maximal-D splits we
    # pick the one with the largest separation margin
    # ``min(right) - max(left)``.  The reduction ramp is concave (energy
    # grows with the square root of the miss count), so the largest
    # margin sits at the ramp onset — the paper's "the K-S test denies
    # the null hypothesis when reaching the index of the actual change
    # point".
    best_index = -1
    best_d = 0.0
    best_margin = -math.inf
    for t in range(min_segment, n - min_segment + 1):
        left = s[:t]
        right = s[t:]
        # Kolmogorov distance via the pooled sorted values: for each pooled
        # value v, |F_left(v) - F_right(v)|.
        cdf_left = np.searchsorted(np.sort(left), ranks_sorted_values, side="right") / t
        cdf_right = (
            np.searchsorted(np.sort(right), ranks_sorted_values, side="right") / (n - t)
        )
        d = float(np.abs(cdf_left - cdf_right).max())
        margin = float(right.min() - left.max())
        if d > best_d + 1e-12 or (d > best_d - 1e-12 and margin > best_margin):
            best_d = max(best_d, d)
            best_margin = margin
            best_index = t

    if best_index < 0:
        return None
    n_left = best_index
    n_right = n - best_index
    crit = ks_critical_value(n_left, n_right, alpha)
    p = ks_pvalue(best_d, n_left, n_right)
    return ChangePoint(
        index=best_index,
        statistic=best_d,
        critical_value=crit,
        p_value=p,
        confidence=float(min(1.0, max(0.0, 1.0 - p))),
        significant=best_d > crit,
    )
