"""Outlier detection for the interval-widening loop.

Workflow step (3) of paper Section IV-B: after a size sweep, "the results
are checked for outliers, especially ones caused by cache sizes close to
one of the boundaries or unexpected disturbances.  If outliers are found,
the search interval is widened" and the sweep repeats.

Two failure modes are distinguished:

* **spikes** — isolated values far from their neighbourhood (measurement
  disturbances); detected with a robust median/MAD z-score and *scrubbed*
  (replaced by the local median) before change-point detection, so a
  single TLB hiccup cannot masquerade as a cache boundary;
* **edge change points** — a detected boundary in the first/last few
  indices of the sweep means the true boundary may sit outside the
  interval; the benchmark widens and retries.
"""

from __future__ import annotations

import numpy as np

__all__ = ["find_outliers", "scrub_outliers", "near_interval_edge"]


def _mad(values: np.ndarray) -> float:
    med = np.median(values)
    return float(np.median(np.abs(values - med)))


def find_outliers(series: np.ndarray, z_threshold: float = 6.0) -> np.ndarray:
    """Boolean mask of isolated spikes via robust (median/MAD) z-scores.

    A point is a spike only if *it* exceeds the threshold while its
    immediate neighbours do not — a genuine level shift (a cache cliff)
    raises a contiguous run of points and is therefore not flagged.
    """
    s = np.asarray(series, dtype=np.float64)
    if s.size < 5:
        return np.zeros(s.size, dtype=bool)
    mad = _mad(s)
    if mad == 0.0:
        # More than half the points sit exactly on the median (quantized
        # data): treat any point deviating by more than a per-mille of the
        # median as a spike.  A std-based fallback would be inflated by
        # the very spikes we are hunting.
        mad = max(abs(float(np.median(s))) * 1e-3, 1e-12)
    z = np.abs(s - np.median(s)) / (1.4826 * mad)
    hot = z > z_threshold
    if not hot.any():
        return hot
    # Keep only isolated spikes: both neighbours must be cool.
    left = np.roll(hot, 1)
    right = np.roll(hot, -1)
    left[0] = False
    right[-1] = False
    isolated = hot & ~left & ~right
    return isolated


def scrub_outliers(series: np.ndarray, z_threshold: float = 6.0, window: int = 3) -> np.ndarray:
    """Replace isolated spikes by their local median; returns a copy."""
    s = np.asarray(series, dtype=np.float64).copy()
    mask = find_outliers(s, z_threshold)
    for idx in np.flatnonzero(mask):
        lo = max(0, idx - window)
        hi = min(s.size, idx + window + 1)
        neighbourhood = np.delete(s[lo:hi], idx - lo)
        if neighbourhood.size:
            s[idx] = float(np.median(neighbourhood))
    return s


def near_interval_edge(index: int, length: int, margin_fraction: float = 0.05) -> bool:
    """True when a change point sits suspiciously close to the sweep edge.

    The margin is at least two indices; benchmarks treat an edge hit as
    "the real boundary may lie outside the interval" and widen.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if not 0 <= index < length:
        raise ValueError(f"index {index} outside series of length {length}")
    margin = max(2, int(round(length * margin_fraction)))
    return index < margin or index >= length - margin
