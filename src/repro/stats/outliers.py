"""Outlier detection for the interval-widening loop.

Workflow step (3) of paper Section IV-B: after a size sweep, "the results
are checked for outliers, especially ones caused by cache sizes close to
one of the boundaries or unexpected disturbances.  If outliers are found,
the search interval is widened" and the sweep repeats.

Two failure modes are distinguished:

* **spikes** — isolated values far from their neighbourhood (measurement
  disturbances); detected with a robust median/MAD z-score and *scrubbed*
  (replaced by the local median) before change-point detection, so a
  single TLB hiccup cannot masquerade as a cache boundary;
* **edge change points** — a detected boundary in the first/last few
  indices of the sweep means the true boundary may sit outside the
  interval; the benchmark widens and retries.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "find_outliers",
    "scrub_outliers",
    "scrub_outliers_matrix",
    "near_interval_edge",
]


def _mad(values: np.ndarray) -> float:
    med = np.median(values)
    return float(np.median(np.abs(values - med)))


def find_outliers(series: np.ndarray, z_threshold: float = 6.0) -> np.ndarray:
    """Boolean mask of isolated spikes via robust (median/MAD) z-scores.

    A point is a spike only if *it* exceeds the threshold while its
    immediate neighbours do not — a genuine level shift (a cache cliff)
    raises a contiguous run of points and is therefore not flagged.
    """
    s = np.asarray(series, dtype=np.float64)
    if s.size < 5:
        return np.zeros(s.size, dtype=bool)
    mad = _mad(s)
    if mad == 0.0:
        # More than half the points sit exactly on the median (quantized
        # data): treat any point deviating by more than a per-mille of the
        # median as a spike.  A std-based fallback would be inflated by
        # the very spikes we are hunting.
        mad = max(abs(float(np.median(s))) * 1e-3, 1e-12)
    z = np.abs(s - np.median(s)) / (1.4826 * mad)
    hot = z > z_threshold
    if not hot.any():
        return hot
    # Keep only isolated spikes: both neighbours must be cool.
    left = np.roll(hot, 1)
    right = np.roll(hot, -1)
    left[0] = False
    right[-1] = False
    isolated = hot & ~left & ~right
    return isolated


def scrub_outliers(series: np.ndarray, z_threshold: float = 6.0, window: int = 3) -> np.ndarray:
    """Replace isolated spikes by their local median; returns a copy."""
    s = np.asarray(series, dtype=np.float64).copy()
    mask = find_outliers(s, z_threshold)
    for idx in np.flatnonzero(mask):
        lo = max(0, idx - window)
        hi = min(s.size, idx + window + 1)
        neighbourhood = np.delete(s[lo:hi], idx - lo)
        if neighbourhood.size:
            s[idx] = float(np.median(neighbourhood))
    return s


def scrub_outliers_matrix(
    matrix: np.ndarray, z_threshold: float = 6.0, window: int = 3
) -> np.ndarray:
    """Row-wise :func:`scrub_outliers` over a whole latency matrix — batched.

    Exactly equivalent to ``np.stack([scrub_outliers(row) for row in
    matrix])`` (property-tested), but the spike *detection* — the hot
    path: per-row median/MAD z-scores over every sample of every run —
    is a handful of whole-matrix reductions instead of ~6 scalar
    ``np.median`` calls per row.  Replacement stays per-spike, in row
    order: spikes are rare by construction (z > threshold on robust
    scores) and a spike's local median may legitimately include an
    earlier spike's replacement value.
    """
    m = np.asarray(matrix, dtype=np.float64).copy()
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D latency matrix, got ndim={m.ndim}")
    n_rows, n = m.shape
    if n_rows == 0 or n < 5:
        return m
    med = np.median(m, axis=1, keepdims=True)
    mad = np.median(np.abs(m - med), axis=1, keepdims=True)
    fallback = np.maximum(np.abs(med) * 1e-3, 1e-12)
    mad = np.where(mad == 0.0, fallback, mad)
    hot = np.abs(m - med) / (1.4826 * mad) > z_threshold
    if not hot.any():
        return m
    # Keep only isolated spikes: both neighbours must be cool.
    left = np.zeros_like(hot)
    left[:, 1:] = hot[:, :-1]
    right = np.zeros_like(hot)
    right[:, :-1] = hot[:, 1:]
    isolated = hot & ~left & ~right
    for r, idx in zip(*np.nonzero(isolated)):
        lo = max(0, idx - window)
        hi = min(n, idx + window + 1)
        neighbourhood = np.delete(m[r, lo:hi], idx - lo)
        if neighbourhood.size:
            m[r, idx] = float(np.median(neighbourhood))
    return m


def near_interval_edge(index: int, length: int, margin_fraction: float = 0.05) -> bool:
    """True when a change point sits suspiciously close to the sweep edge.

    The margin is at least two indices; benchmarks treat an edge hit as
    "the real boundary may lie outside the interval" and widen.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if not 0 <= index < length:
        raise ValueError(f"index {index} outside series of length {length}")
    margin = max(2, int(round(length * margin_fraction)))
    return index < margin or index >= length - margin
