"""Dimension reduction of raw p-chase matrices (paper Eq. 2).

Each size benchmark produces a 2-D result: one latency vector per array
size.  Before change-point detection the paper reduces each vector to a
single scalar with the geometrically-inspired mapping of Grundy et al.:

    S_i = sqrt( sum_j (r_ij - min(r))^2 )

where ``min(r)`` is the *global* minimum over the whole matrix.  The
reduction is monotone in both the number and the magnitude of slow loads,
which is why Fig. 2 shows it exposing the change point far more clearly
than per-size maxima (outlier-prone) or means (diluted).
"""

from __future__ import annotations

import numpy as np

__all__ = ["geometric_reduction", "reduce_matrix_rows"]


def geometric_reduction(matrix: np.ndarray, global_min: float | None = None) -> np.ndarray:
    """Reduce an (n_sizes, n_samples) latency matrix to n_sizes scalars.

    ``global_min`` defaults to the matrix minimum (paper Eq. 2); callers
    with streaming data may pass a precomputed floor instead.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D latency matrix, got ndim={m.ndim}")
    if m.size == 0:
        raise ValueError("latency matrix must be non-empty")
    floor = float(m.min()) if global_min is None else float(global_min)
    deltas = m - floor
    return np.sqrt(np.einsum("ij,ij->i", deltas, deltas))


def reduce_matrix_rows(rows: list[np.ndarray], global_min: float | None = None) -> np.ndarray:
    """Ragged-row variant: rows may have different sample counts.

    Each row is normalised by ``sqrt(len(row))`` so that rows of unequal
    length remain comparable (the p-chase stores first-N samples, but N
    can shrink for tiny arrays).
    """
    if not rows:
        raise ValueError("need at least one row")
    floor = (
        min(float(np.min(r)) for r in rows) if global_min is None else float(global_min)
    )
    out = np.empty(len(rows), dtype=np.float64)
    for i, row in enumerate(rows):
        r = np.asarray(row, dtype=np.float64)
        if r.size == 0:
            raise ValueError(f"row {i} is empty")
        d = r - floor
        out[i] = np.sqrt(float(d @ d) / r.size) * np.sqrt(
            max(len(r) for r in rows)
        )
    return out
