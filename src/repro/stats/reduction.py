"""Dimension reduction of raw p-chase matrices (paper Eq. 2).

Each size benchmark produces a 2-D result: one latency vector per array
size.  Before change-point detection the paper reduces each vector to a
single scalar with the geometrically-inspired mapping of Grundy et al.:

    S_i = sqrt( sum_j (r_ij - min(r))^2 )

where ``min(r)`` is the *global* minimum over the whole matrix.  The
reduction is monotone in both the number and the magnitude of slow loads,
which is why Fig. 2 shows it exposing the change point far more clearly
than per-size maxima (outlier-prone) or means (diluted).
"""

from __future__ import annotations

import numpy as np

__all__ = ["geometric_reduction", "reduce_matrix_rows"]


def geometric_reduction(matrix: np.ndarray, global_min: float | None = None) -> np.ndarray:
    """Reduce an (n_sizes, n_samples) latency matrix to n_sizes scalars.

    ``global_min`` defaults to the matrix minimum (paper Eq. 2); callers
    with streaming data may pass a precomputed floor instead.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D latency matrix, got ndim={m.ndim}")
    if m.size == 0:
        raise ValueError("latency matrix must be non-empty")
    floor = float(m.min()) if global_min is None else float(global_min)
    deltas = m - floor
    return np.sqrt(np.einsum("ij,ij->i", deltas, deltas))


def reduce_matrix_rows(rows: list[np.ndarray], global_min: float | None = None) -> np.ndarray:
    """Ragged-row variant: rows may have different sample counts.

    Each row is normalised by ``sqrt(len(row))`` so that rows of unequal
    length remain comparable (the p-chase stores first-N samples, but N
    can shrink for tiny arrays).  Uniform-length row sets — the common
    case — reduce through one batched matrix pass; genuinely ragged
    input falls back to a per-row loop.
    """
    if not rows:
        raise ValueError("need at least one row")
    arrs = [np.asarray(row, dtype=np.float64) for row in rows]
    for i, r in enumerate(arrs):
        if r.size == 0:
            raise ValueError(f"row {i} is empty")
    floor = (
        min(float(np.min(r)) for r in arrs) if global_min is None else float(global_min)
    )
    max_len = max(r.size for r in arrs)
    if all(r.size == max_len for r in arrs):
        deltas = np.stack(arrs) - floor
        ss = np.einsum("ij,ij->i", deltas, deltas)
        # sqrt(ss / n) * sqrt(max_len) with n == max_len everywhere: the
        # normalisation cancels and the uniform case is plain Eq. 2.
        return np.sqrt(ss)
    out = np.empty(len(arrs), dtype=np.float64)
    for i, r in enumerate(arrs):
        d = r - floor
        out[i] = np.sqrt(float(d @ d) / r.size) * np.sqrt(max_len)
    return out
