"""Cache-line-size evaluation heuristics (paper Section IV-E).

The premise (paper IV-E): the size benchmark evicts lines because its
stride is below the line size; a stride *above* the line size skips whole
lines, so the cache appears larger.  Quantitatively, for a cache of
capacity ``C`` and line size ``L`` probed with stride ``s``:

* ``s <= L`` — every line is touched; the apparent capacity (the array
  size where misses start) is ``C``;
* ``s > L``, ``s`` not a multiple of ``L`` (or an odd multiple) — one
  line per element, all sets covered; apparent capacity is ``C * s / L``;
* ``s`` an even multiple of ``L`` (power-of-two set counts) — only a
  fraction of the sets is reachable and the apparent capacity *aliases*
  back to ``C``.  These are the "aliased outliers" the paper's
  heuristics must survive.

:func:`estimate_cache_line_size` inverts that relation: every stride
whose apparent-capacity ratio ``r(s) = C*(s)/C`` clearly exceeds 1 votes
for ``L = s / r(s)``; aliased strides conveniently disqualify themselves
(their ratio stays ~1), and the median vote is snapped to a power of two
(the paper's final assumption).

:func:`similarity_scores` / :func:`amplify_scores` implement the paper's
original pivot/MAX weighting formulation; they are kept as the
lower-level building blocks (and exercised by tests), while the
apparent-capacity estimator is what the benchmark drives, because it
degrades more gracefully when profile magnitudes differ between strides.
"""

from __future__ import annotations

import numpy as np

from repro.units import round_to_power_of_two

__all__ = [
    "similarity_scores",
    "amplify_scores",
    "estimate_cache_line_size",
]

_EPS = 1e-12

#: A stride counts as "shifted" (line-skipping) when its apparent
#: capacity exceeds the base capacity by at least this factor.
_SHIFT_THRESHOLD = 1.30


def similarity_scores(profiles: np.ndarray) -> np.ndarray:
    """Per-stride similarity to the MAX profile, in [0, 1].

    ``profiles`` has shape (n_strides, n_sizes); row 0 is the pivot, the
    last row is MAX.  A score of 0 means "behaves like the pivot", 1
    means "behaves like MAX".  Column weights grow linearly with the
    array-size index (the paper's heuristic: larger arrays weigh more).
    """
    p = np.asarray(profiles, dtype=np.float64)
    if p.ndim != 2 or p.shape[0] < 3:
        raise ValueError("need at least pivot, one candidate and MAX profiles")
    pivot, maxp = p[0], p[-1]
    weights = np.arange(1, p.shape[1] + 1, dtype=np.float64)
    weights /= weights.sum()
    d_pivot = np.abs(p - pivot)
    d_max = np.abs(p - maxp)
    ratio = d_pivot / (d_pivot + d_max + _EPS)
    return ratio @ weights


def amplify_scores(scores: np.ndarray) -> np.ndarray:
    """Monotone amplification above the pivot->MAX crossing.

    Once a stride is more MAX-like than pivot-like (score > 0.5), no
    later stride may fall back below the running maximum: aliasing can
    only *reduce* apparent misses spuriously, never increase them.
    """
    s = np.asarray(scores, dtype=np.float64).copy()
    crossing = np.flatnonzero(s > 0.5)
    if crossing.size:
        start = int(crossing[0])
        s[start:] = np.maximum.accumulate(s[start:])
    return s


def estimate_cache_line_size(
    strides: np.ndarray,
    apparent_capacities: np.ndarray,
    fetch_granularity: int,
) -> tuple[int | None, float]:
    """Estimate (line_size, confidence) from apparent capacities.

    ``apparent_capacities[i]`` is the measured capacity boundary when
    probing with ``strides[i]``; the first stride must be at or below the
    line size (the benchmark uses the fetch granularity, and a line holds
    at least one sector).  Returns ``(None, 0.0)`` when no stride shifted
    the boundary — the grid never exceeded the line size.
    """
    strides = np.asarray(strides, dtype=np.float64)
    apparent = np.asarray(apparent_capacities, dtype=np.float64)
    if strides.shape != apparent.shape or strides.size < 2:
        raise ValueError("need matching stride/capacity arrays of length >= 2")
    if np.any(apparent <= 0):
        raise ValueError("apparent capacities must be positive")
    base = float(apparent[0])
    ratios = apparent / base
    shifted = ratios >= _SHIFT_THRESHOLD
    if not shifted.any():
        return None, 0.0
    votes = strides[shifted] / ratios[shifted]
    # Partial aliasing (a stride at an even-but-not-power-of-two multiple
    # of the line covers only 1/2^k of the sets) inflates a vote to
    # line * 2^k — never below the true line.  The smallest snapped vote
    # cluster with any support is therefore the line size.
    snapped = np.array(
        [max(int(fetch_granularity), round_to_power_of_two(float(v))) for v in votes]
    )
    candidates, counts = np.unique(snapped, return_counts=True)
    line = None
    for cand, count in zip(candidates, counts):
        if count >= 2 or candidates.size == 1:
            line = int(cand)
            support = int(count)
            break
    if line is None:  # all singletons: trust the smallest
        line = int(candidates[0])
        support = 1
    cluster = votes[snapped == line]
    rel_err = float(np.median(np.abs(cluster - line)) / line)
    agreement = support / votes.size
    confidence = float(np.clip(agreement * (1.0 - 2.0 * rel_err), 0.0, 1.0))
    return line, confidence
