"""Descriptive latency statistics (paper Section IV-C).

The load-latency benchmarks report "the average as a main result, and a
set of statistical values, such as p50, p95, or standard deviation".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyStats", "summarize"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample, in clock cycles."""

    mean: float
    p50: float
    p95: float
    std: float
    minimum: float
    maximum: float
    count: int

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "count": float(self.count),
        }


def summarize(latencies: np.ndarray) -> LatencyStats:
    """Compute the paper's latency summary for one sample vector."""
    lat = np.asarray(latencies, dtype=np.float64)
    if lat.size == 0:
        raise ValueError("cannot summarize an empty latency sample")
    return LatencyStats(
        mean=float(lat.mean()),
        p50=float(np.percentile(lat, 50)),
        p95=float(np.percentile(lat, 95)),
        std=float(lat.std(ddof=1)) if lat.size > 1 else 0.0,
        minimum=float(lat.min()),
        maximum=float(lat.max()),
        count=int(lat.size),
    )
