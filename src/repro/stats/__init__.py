"""Statistical auto-evaluation of microbenchmark results.

The paper's contribution C3: raw per-load latencies in, reliable
topological attributes out.  The pipeline is

1. :mod:`~repro.stats.reduction` — collapse each size's latency vector to
   one scalar via the geometric mapping of Grundy et al. (paper Eq. 2);
2. :mod:`~repro.stats.outliers` — robust spike detection driving the
   interval-widening loop (workflow step 3 of Section IV-B);
3. :mod:`~repro.stats.kstest` + :mod:`~repro.stats.changepoint` — the
   two-sample Kolmogorov-Smirnov change-point detector with the critical
   value of paper Eq. 1;
4. :mod:`~repro.stats.heuristics` — the cache-line-size amplification
   heuristics of Section IV-E;
5. :mod:`~repro.stats.descriptive` — latency summaries (mean, p50, p95);
6. :mod:`~repro.stats.compare` — agreement metrics for the post-hoc
   cross-validation of measured attributes against reference values
   (paper Tables I/III deltas) and the confidence-recalibration rule.
"""

from repro.stats.changepoint import ChangePoint, detect_change_point
from repro.stats.compare import (
    agreement_score,
    median_index,
    recalibrated_confidence,
    relative_error,
    within_tolerance,
)
from repro.stats.descriptive import LatencyStats, summarize
from repro.stats.kstest import KSResult, ks_2sample, ks_critical_value, ks_distance
from repro.stats.outliers import find_outliers, near_interval_edge
from repro.stats.reduction import geometric_reduction

__all__ = [
    "ChangePoint",
    "detect_change_point",
    "LatencyStats",
    "summarize",
    "KSResult",
    "ks_2sample",
    "ks_critical_value",
    "ks_distance",
    "find_outliers",
    "near_interval_edge",
    "geometric_reduction",
    "agreement_score",
    "median_index",
    "recalibrated_confidence",
    "relative_error",
    "within_tolerance",
]
