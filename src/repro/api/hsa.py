"""Emulated HSA runtime cache information (AMD only).

The paper uses "HSA runtime library to get all cache sizes on AMD GPUs"
(Section III-C); per the source-of-truth matrix of Table I, MT4G takes
the L2 and L3 sizes (and their per-GPU counts, via the XCD topology)
from this interface while the vL1/sL1d sizes remain benchmark-derived.
"""

from __future__ import annotations

from repro.errors import APIUnavailableError
from repro.gpusim.device import SimulatedGPU
from repro.gpuspec.spec import CacheScope, Vendor

__all__ = ["hsa_cache_info"]


def hsa_cache_info(device: SimulatedGPU) -> dict[str, dict[str, int]]:
    """Cache properties as the HSA agent iterator reports them.

    Returns ``{cache_name: {"size": bytes_per_instance, "instances": n}}``
    for the GPU-level caches (L2, and L3 where present).  ``instances``
    reflects the XCD count — the paper's Section IV-F.1 notes MT4G
    "assumes one L2 cache per XCD; using the API-provided XCD count".
    """
    if device.vendor is not Vendor.AMD:
        raise APIUnavailableError("HSA cache info is only available on AMD devices")
    info: dict[str, dict[str, int]] = {}
    for cache in device.spec.caches:
        if cache.scope is CacheScope.GPU and cache.size_via_api:
            info[cache.name] = {
                "size": cache.size,
                "instances": cache.segments,
            }
    return info
