"""Emulated vendor interfaces.

MT4G "gathers information from vendor-specific APIs, where available"
(paper Section I) and benchmarks only what the APIs cannot tell.  This
package reproduces the *exposure matrix* of those interfaces (Table I):

* :mod:`repro.api.hip` — ``hipDeviceProp_t`` (both vendors): device
  memory, shared-memory/LDS size, L2 total size, compute resources;
* :mod:`repro.api.cuda` — ``cudaDeviceProp`` (NVIDIA), mirrored by HIP;
* :mod:`repro.api.hsa` — HSA runtime cache properties (AMD): L2/L3 sizes
  and segment counts;
* :mod:`repro.api.kfd` — KFD driver files (AMD): L2/L3 cache line sizes;
* :mod:`repro.api.nvml` — NVML (NVIDIA): MIG mode and instance geometry.

Nothing here exposes simulator ground truth beyond what the real
interfaces expose — the gaps are the whole point.
"""

from repro.api.cuda import CudaDeviceProp, cuda_get_device_properties
from repro.api.hip import HipDeviceProp, hip_get_device_properties
from repro.api.hsa import hsa_cache_info
from repro.api.kfd import kfd_cache_line_sizes
from repro.api.nvml import nvml_mig_state

__all__ = [
    "HipDeviceProp",
    "hip_get_device_properties",
    "CudaDeviceProp",
    "cuda_get_device_properties",
    "hsa_cache_info",
    "kfd_cache_line_sizes",
    "nvml_mig_state",
]
