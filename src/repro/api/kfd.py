"""Emulated KFD driver topology files (AMD only).

The amdgpu KFD driver exposes per-cache properties under
``/sys/class/kfd/kfd/topology/nodes/*/caches/*/properties``; MT4G reads
the ``cache_line_size`` fields from there (paper Section III-C).  Per
Table I this serves the L2/L3 line sizes; the vL1/sL1d line sizes remain
benchmark-derived.
"""

from __future__ import annotations

from repro.errors import APIUnavailableError
from repro.gpusim.device import SimulatedGPU
from repro.gpuspec.spec import CacheScope, Vendor

__all__ = ["kfd_cache_line_sizes"]


def kfd_cache_line_sizes(device: SimulatedGPU) -> dict[str, int]:
    """``{cache_name: line_size_bytes}`` for the KFD-visible caches."""
    if device.vendor is not Vendor.AMD:
        raise APIUnavailableError("KFD topology files exist only on AMD systems")
    out: dict[str, int] = {}
    for cache in device.spec.caches:
        if cache.scope is CacheScope.GPU and cache.line_size_via_api:
            out[cache.name] = cache.line_size
    return out
