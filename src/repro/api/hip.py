"""Emulated ``hipDeviceProp_t`` (paper Section III-A).

HIP exposes the same structure on both vendors (it mimics
``cudaDeviceProp``), which is why MT4G reads general and compute
information through it.  Fields and units follow the ROCm documentation
the paper cites: clock rates in kHz, sizes in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import SimulatedGPU
from repro.gpuspec.spec import Vendor

__all__ = ["HipDeviceProp", "hip_get_device_properties"]


@dataclass(frozen=True)
class HipDeviceProp:
    """The subset of ``hipDeviceProp_t`` MT4G consumes."""

    name: str
    gcnArchName: str
    totalGlobalMem: int  # bytes
    sharedMemPerBlock: int  # bytes (Shared Memory / LDS)
    regsPerBlock: int
    warpSize: int
    maxThreadsPerBlock: int
    maxThreadsPerMultiProcessor: int
    maxBlocksPerMultiProcessor: int
    regsPerMultiprocessor: int
    multiProcessorCount: int
    clockRate: int  # kHz
    memoryClockRate: int  # kHz
    memoryBusWidth: int  # bits
    l2CacheSize: int  # bytes, TOTAL across segments (paper fn. 13)
    major: int
    minor: int

    @property
    def compute_capability(self) -> str:
        return f"{self.major}.{self.minor}"


def hip_get_device_properties(device: SimulatedGPU) -> HipDeviceProp:
    """``hipGetDeviceProperties`` against the simulated device."""
    spec = device.spec
    l2 = spec.cache("L2")
    if spec.vendor is Vendor.NVIDIA:
        major, minor = (int(p) for p in spec.compute_capability.split("."))
        arch = f"sm_{major}{minor}"
    else:
        major, minor = 9, 0  # HIP reports gfx arch via gcnArchName on AMD
        arch = spec.compute_capability
    return HipDeviceProp(
        name=f"{spec.vendor.value} {spec.name}",
        gcnArchName=arch,
        totalGlobalMem=spec.memory.size,
        sharedMemPerBlock=spec.scratchpad.size,
        regsPerBlock=spec.compute.registers_per_block,
        warpSize=spec.compute.warp_size,
        maxThreadsPerBlock=spec.compute.max_threads_per_block,
        maxThreadsPerMultiProcessor=spec.compute.max_threads_per_sm,
        maxBlocksPerMultiProcessor=spec.compute.max_blocks_per_sm,
        regsPerMultiprocessor=spec.compute.registers_per_sm,
        multiProcessorCount=device.visible_sms,
        clockRate=int(spec.core_clock_hz / 1000),
        memoryClockRate=int(spec.memory.memory_clock_hz / 1000),
        memoryBusWidth=spec.memory.bus_width_bits,
        l2CacheSize=l2.size * l2.segments,
        major=major,
        minor=minor,
    )
