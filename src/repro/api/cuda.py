"""Emulated ``cudaDeviceProp`` (NVIDIA only).

HIP's property structure mimics this one (paper Section III-A); MT4G can
use either on NVIDIA.  Kept separate so the exposure matrix stays honest:
querying it on an AMD device raises, exactly like linking CUDA on ROCm
would fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.hip import HipDeviceProp, hip_get_device_properties
from repro.errors import APIUnavailableError
from repro.gpusim.device import SimulatedGPU
from repro.gpuspec.spec import Vendor

__all__ = ["CudaDeviceProp", "cuda_get_device_properties"]


@dataclass(frozen=True)
class CudaDeviceProp:
    """The subset of ``cudaDeviceProp`` MT4G consumes."""

    name: str
    totalGlobalMem: int
    sharedMemPerBlock: int
    regsPerBlock: int
    warpSize: int
    maxThreadsPerBlock: int
    maxThreadsPerMultiProcessor: int
    maxBlocksPerMultiProcessor: int
    regsPerMultiprocessor: int
    multiProcessorCount: int
    clockRate: int  # kHz
    memoryClockRate: int  # kHz
    memoryBusWidth: int  # bits
    l2CacheSize: int
    major: int
    minor: int


def cuda_get_device_properties(device: SimulatedGPU) -> CudaDeviceProp:
    """``cudaGetDeviceProperties``; NVIDIA devices only."""
    if device.vendor is not Vendor.NVIDIA:
        raise APIUnavailableError(
            f"cudaDeviceProp is unavailable on {device.vendor.value} devices"
        )
    hip: HipDeviceProp = hip_get_device_properties(device)
    return CudaDeviceProp(
        name=hip.name,
        totalGlobalMem=hip.totalGlobalMem,
        sharedMemPerBlock=hip.sharedMemPerBlock,
        regsPerBlock=hip.regsPerBlock,
        warpSize=hip.warpSize,
        maxThreadsPerBlock=hip.maxThreadsPerBlock,
        maxThreadsPerMultiProcessor=hip.maxThreadsPerMultiProcessor,
        maxBlocksPerMultiProcessor=hip.maxBlocksPerMultiProcessor,
        regsPerMultiprocessor=hip.regsPerMultiprocessor,
        multiProcessorCount=hip.multiProcessorCount,
        clockRate=hip.clockRate,
        memoryClockRate=hip.memoryClockRate,
        memoryBusWidth=hip.memoryBusWidth,
        l2CacheSize=hip.l2CacheSize,
        major=hip.major,
        minor=hip.minor,
    )
