"""Emulated NVML MIG queries (NVIDIA only).

The sys-sage integration (paper Section VI-C) combines static MT4G output
with *dynamic* resource-isolation settings queried through nvml.  This
module answers those queries from the device's current MIG state.
"""

from __future__ import annotations

from repro.errors import APIUnavailableError
from repro.gpusim.device import SimulatedGPU
from repro.gpuspec.spec import Vendor

__all__ = ["nvml_mig_state"]


def nvml_mig_state(device: SimulatedGPU) -> dict[str, object]:
    """Current MIG mode and instance geometry, nvml-style.

    Returns mode (enabled flag), profile name, visible SM count, DRAM
    bytes and the memory-slice fraction — the inputs sys-sage needs to
    scale the static topology (Fig. 5).
    """
    if device.vendor is not Vendor.NVIDIA:
        raise APIUnavailableError("NVML is only available on NVIDIA devices")
    mig = device.mig
    return {
        "mig_enabled": mig.profile != "full",
        "profile": mig.profile,
        "visible_sms": mig.visible_sms(device.spec),
        "visible_dram_bytes": mig.visible_dram_bytes(device.spec),
        "memory_fraction": mig.memory_fraction,
        "compute_fraction": mig.compute_fraction,
        "supported_profiles": sorted(device.spec.mig_profiles),
    }
