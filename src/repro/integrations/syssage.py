"""sys-sage integration (paper Section VI-C, Fig. 5).

sys-sage manages HPC system topologies as a component tree; MT4G's report
supplies the *static* GPU topology, and dynamic nvml queries supply the
*current* MIG partitioning.  The combination answers the question Fig. 5
poses: *how much L2 does a kernel on one SM actually see right now?*

Key reproduction targets:

* :meth:`SysSageTopology.effective_l2_per_sm` — the value behind Fig. 5's
  vertical lines: one SM reaches at most one L2 segment (the MT4G
  "Amount" information), and never more than the MIG instance's slice —
  which is why the full A100 and its ``4g.20gb`` instance coincide;
* :meth:`SysSageTopology.stream_experiment` — the streaming-read sweep of
  Fig. 5 (ns/B over array sizes) under the current MIG profile;
* :meth:`SysSageTopology.tree` — the component tree (Machine -> GPU ->
  memory/L2 segments + cluster -> SM -> L1/shared/cores) rendered as a
  :mod:`networkx` DiGraph with attribute payloads.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.api.nvml import nvml_mig_state
from repro.core.report import TopologyReport
from repro.errors import ReproError, SpecError
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.mig import resolve_mig
from repro.gpuspec.spec import Vendor

__all__ = ["SysSageTopology"]


class SysSageTopology:
    """Static MT4G context + dynamic device state, sys-sage style."""

    def __init__(self, report: TopologyReport, device: SimulatedGPU) -> None:
        if report.general.model != f"{device.vendor.value} {device.name}":
            raise ReproError(
                "report/device mismatch: "
                f"{report.general.model!r} vs {device.vendor.value} {device.name!r}"
            )
        self.report = report
        self.device = device
        self._mig = device.mig

    # ------------------------------------------------------------------ #
    # dynamic state                                                       #
    # ------------------------------------------------------------------ #

    def refresh(self) -> dict[str, object]:
        """Re-query the dynamic configuration (nvml on NVIDIA)."""
        if self.device.vendor is Vendor.NVIDIA:
            state = nvml_mig_state(self.device)
            self._mig = self.device.mig
            return state
        return {"mig_enabled": False, "profile": "full"}

    def set_mig_profile(self, profile: str | None) -> None:
        """Reconfigure the device's MIG instance and refresh the view."""
        if profile not in (None, "full") and self.device.vendor is not Vendor.NVIDIA:
            raise SpecError("MIG partitioning exists only on NVIDIA devices")
        self.device.mig = resolve_mig(self.device.spec, profile)
        self._mig = self.device.mig

    # ------------------------------------------------------------------ #
    # derived topology answers                                            #
    # ------------------------------------------------------------------ #

    @property
    def visible_sms(self) -> int:
        return self._mig.visible_sms(self.device.spec)

    @property
    def visible_dram_bytes(self) -> int:
        return self._mig.visible_dram_bytes(self.device.spec)

    def l2_segment_count(self) -> int:
        """The MT4G 'Amount' of the L2 — static information."""
        amount = self.report.attribute("L2", "amount").value
        return int(amount) if amount else 1

    def l2_total_size(self) -> int:
        size = self.report.attribute("L2", "size").value
        if size is None:
            raise ReproError("report lacks an L2 size")
        return int(size)

    def effective_l2_per_sm(self) -> int:
        """L2 capacity one SM can reach under the current configuration.

        Combines three facts: the API-reported total (MT4G 'Size'), the
        segment count (MT4G 'Amount' — crucial, per Fig. 5's observation
        2), and the dynamic MIG memory fraction.  Without the Amount
        information the full-GPU line would be drawn at the total size
        and the observed performance cliff would not match it.
        """
        total = self.l2_total_size()
        segment = total // self.l2_segment_count()
        mig_visible = int(total * self._mig.memory_fraction)
        return min(segment, mig_visible)

    # ------------------------------------------------------------------ #
    # the Fig. 5 experiment                                               #
    # ------------------------------------------------------------------ #

    def stream_experiment(
        self, working_sets: np.ndarray, noisy: bool = True
    ) -> np.ndarray:
        """ns/B of a one-core streaming read over the given array sizes."""
        mig = None if self._mig.profile == "full" else self._mig
        return self.device.bandwidth.stream_sweep_ns_per_byte(
            np.asarray(working_sets, dtype=np.float64), mig=mig, noisy=noisy
        )

    # ------------------------------------------------------------------ #
    # the component tree                                                  #
    # ------------------------------------------------------------------ #

    def tree(self, max_sms: int = 4) -> nx.DiGraph:
        """Render the combined topology as a component tree.

        ``max_sms`` limits the expanded SM subtrees (a H100 has 132; the
        tree keeps the first few and a summary node, like sys-sage GUIs
        do).
        """
        r = self.report
        g = nx.DiGraph()
        g.add_node("machine", kind="Machine")
        gpu_node = f"gpu:{self.device.name}"
        g.add_node(
            gpu_node,
            kind="Chip",
            vendor=r.general.vendor,
            microarchitecture=r.general.microarchitecture,
            mig_profile=self._mig.profile,
        )
        g.add_edge("machine", gpu_node)

        dram = "memory:DRAM"
        g.add_node(
            dram,
            kind="MemoryRegion",
            size=self.visible_dram_bytes,
            latency=r.attribute("DeviceMemory", "load_latency").value,
        )
        g.add_edge(gpu_node, dram)

        segment_size = self.l2_total_size() // self.l2_segment_count()
        for seg in range(self.l2_segment_count()):
            node = f"cache:L2.{seg}"
            g.add_node(node, kind="Cache", level=2, size=segment_size)
            g.add_edge(gpu_node, node)

        l1_name = "L1" if "L1" in r.memory else "vL1"
        scratch = "SharedMem" if "SharedMem" in r.memory else "LDS"
        shown = min(max_sms, self.visible_sms)
        for sm in range(shown):
            sm_node = f"sm:{sm}"
            g.add_node(sm_node, kind="SM", cores=r.compute.cores_per_sm)
            g.add_edge(gpu_node, sm_node)
            l1_node = f"cache:{l1_name}.sm{sm}"
            g.add_node(
                l1_node,
                kind="Cache",
                level=1,
                size=r.attribute(l1_name, "size").value,
                shared_with=r.attribute(l1_name, "shared_with").value,
            )
            g.add_edge(sm_node, l1_node)
            sp_node = f"scratchpad:{scratch}.sm{sm}"
            g.add_node(sp_node, kind="Scratchpad", size=r.attribute(scratch, "size").value)
            g.add_edge(sm_node, sp_node)
        if self.visible_sms > shown:
            rest = f"sm:+{self.visible_sms - shown}more"
            g.add_node(rest, kind="SMGroup", count=self.visible_sms - shown)
            g.add_edge(gpu_node, rest)
        return g
