"""sys-sage integration (paper Section VI-C, Fig. 5).

sys-sage manages HPC system topologies as a component tree; MT4G's report
supplies the *static* GPU topology, and dynamic nvml queries supply the
*current* MIG partitioning.  The combination answers the question Fig. 5
poses: *how much L2 does a kernel on one SM actually see right now?*

Key reproduction targets:

* :meth:`SysSageTopology.effective_l2_per_sm` — the value behind Fig. 5's
  vertical lines: one SM reaches at most one L2 segment (the MT4G
  "Amount" information), and never more than the MIG instance's slice —
  which is why the full A100 and its ``4g.20gb`` instance coincide;
* :meth:`SysSageTopology.stream_experiment` — the streaming-read sweep of
  Fig. 5 (ns/B over array sizes) under the current MIG profile;
* :meth:`SysSageTopology.tree` — the component tree (Machine -> GPU ->
  memory/L2 segments + cluster -> SM -> L1/shared/cores) rendered as a
  :mod:`networkx` DiGraph with attribute payloads.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.api.nvml import nvml_mig_state
from repro.core.report import TopologyReport
from repro.errors import ReproError, SpecError
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.mig import resolve_mig
from repro.gpuspec.spec import Vendor
from repro.graph import TopologyGraph, build_graph, element_node_id

__all__ = ["SysSageTopology"]


class SysSageTopology:
    """Static MT4G context + dynamic device state, sys-sage style."""

    def __init__(self, report: TopologyReport, device: SimulatedGPU) -> None:
        if report.general.model != f"{device.vendor.value} {device.name}":
            raise ReproError(
                "report/device mismatch: "
                f"{report.general.model!r} vs {device.vendor.value} {device.name!r}"
            )
        self.report = report
        self.device = device
        self._mig = device.mig

    # ------------------------------------------------------------------ #
    # dynamic state                                                       #
    # ------------------------------------------------------------------ #

    def refresh(self) -> dict[str, object]:
        """Re-query the dynamic configuration (nvml on NVIDIA)."""
        if self.device.vendor is Vendor.NVIDIA:
            state = nvml_mig_state(self.device)
            self._mig = self.device.mig
            return state
        return {"mig_enabled": False, "profile": "full"}

    def set_mig_profile(self, profile: str | None) -> None:
        """Reconfigure the device's MIG instance and refresh the view."""
        if profile not in (None, "full") and self.device.vendor is not Vendor.NVIDIA:
            raise SpecError("MIG partitioning exists only on NVIDIA devices")
        self.device.mig = resolve_mig(self.device.spec, profile)
        self._mig = self.device.mig

    # ------------------------------------------------------------------ #
    # derived topology answers                                            #
    # ------------------------------------------------------------------ #

    @property
    def visible_sms(self) -> int:
        return self._mig.visible_sms(self.device.spec)

    @property
    def visible_dram_bytes(self) -> int:
        return self._mig.visible_dram_bytes(self.device.spec)

    def l2_segment_count(self) -> int:
        """The MT4G 'Amount' of the L2 — static information."""
        amount = self.report.attribute("L2", "amount").value
        return int(amount) if amount else 1

    def l2_total_size(self) -> int:
        size = self.report.attribute("L2", "size").value
        if size is None:
            raise ReproError("report lacks an L2 size")
        return int(size)

    def effective_l2_per_sm(self) -> int:
        """L2 capacity one SM can reach under the current configuration.

        Combines three facts: the API-reported total (MT4G 'Size'), the
        segment count (MT4G 'Amount' — crucial, per Fig. 5's observation
        2), and the dynamic MIG memory fraction.  Without the Amount
        information the full-GPU line would be drawn at the total size
        and the observed performance cliff would not match it.
        """
        total = self.l2_total_size()
        segment = total // self.l2_segment_count()
        mig_visible = int(total * self._mig.memory_fraction)
        return min(segment, mig_visible)

    # ------------------------------------------------------------------ #
    # the Fig. 5 experiment                                               #
    # ------------------------------------------------------------------ #

    def stream_experiment(
        self, working_sets: np.ndarray, noisy: bool = True
    ) -> np.ndarray:
        """ns/B of a one-core streaming read over the given array sizes."""
        mig = None if self._mig.profile == "full" else self._mig
        return self.device.bandwidth.stream_sweep_ns_per_byte(
            np.asarray(working_sets, dtype=np.float64), mig=mig, noisy=noisy
        )

    # ------------------------------------------------------------------ #
    # the component tree                                                  #
    # ------------------------------------------------------------------ #

    def graph(self) -> TopologyGraph:
        """The canonical topology graph under the *current* MIG view.

        This is :func:`repro.graph.build.build_graph` with the dynamic
        partition overlaid — the one representation :meth:`tree` (and
        anything else sys-sage-shaped) derives from.
        """
        return build_graph(
            self.report,
            mig_profile=self._mig.profile,
            visible_sms=self.visible_sms,
            visible_dram_bytes=self.visible_dram_bytes,
        )

    def tree(self, max_sms: int = 4) -> nx.DiGraph:
        """Render the combined topology as a component tree.

        Derived from the canonical graph (:meth:`graph`) rather than by
        re-interpreting the report: the tree is a *view* — per-SM cache
        instances expanded, SM subtrees truncated — over the same nodes
        the serving layer and the CLI render.  ``max_sms`` limits the
        expanded SM subtrees (a H100 has 132; the tree keeps the first
        few and a summary node, like sys-sage GUIs do).
        """
        topo = self.graph()
        nodes = topo.nodes

        def value(element_id: str, attribute: str):
            payload = nodes[element_id].attrs.get(attribute)
            return payload.get("value") if isinstance(payload, dict) else None

        g = nx.DiGraph()
        g.add_node("machine", kind="Machine")
        gpu = topo.nodes_of_kind("gpu")[0]
        g.add_node(
            gpu.id,
            kind="Chip",
            vendor=gpu.attrs["vendor"],
            microarchitecture=gpu.attrs["microarchitecture"],
            mig_profile=self._mig.profile,
        )
        g.add_edge("machine", gpu.id)

        dram_id = element_node_id("DeviceMemory")
        dram = nodes[dram_id]
        g.add_node(
            dram_id,
            kind="MemoryRegion",
            size=dram.attrs.get("visible_bytes", value(dram_id, "size")),
            latency=value(dram_id, "load_latency"),
        )
        g.add_edge(gpu.id, dram_id)

        # L2 segments are first-class graph nodes (the MT4G "Amount"
        # made structural); a report whose amount stayed unmeasured has
        # no segment children, so the L2 itself stands in for its one.
        l2_id = element_node_id("L2")
        segments = [n for n in topo.children(l2_id) if "segment" in n.attrs]
        if segments:
            for seg in segments:
                g.add_node(seg.id, kind="Cache", level=2, size=seg.attrs.get("size"))
                g.add_edge(gpu.id, seg.id)
        else:
            g.add_node(l2_id, kind="Cache", level=2, size=self.l2_total_size())
            g.add_edge(gpu.id, l2_id)

        l1_name = "L1" if element_node_id("L1") in nodes else "vL1"
        scratch = "SharedMem" if element_node_id("SharedMem") in nodes else "LDS"
        sm_nodes = sorted(
            topo.nodes_of_kind("sm", "cu"), key=lambda n: int(n.name)
        )
        shown = min(max_sms, len(sm_nodes))
        for sm in sm_nodes[:shown]:
            index = int(sm.name)
            g.add_node(sm.id, kind="SM", cores=sm.attrs["cores"])
            g.add_edge(gpu.id, sm.id)
            l1_node = element_node_id(l1_name, sm=index)
            g.add_node(
                l1_node,
                kind="Cache",
                level=1,
                size=value(element_node_id(l1_name), "size"),
                shared_with=value(element_node_id(l1_name), "shared_with"),
            )
            g.add_edge(sm.id, l1_node)
            sp_node = element_node_id(scratch, sm=index)
            g.add_node(
                sp_node, kind="Scratchpad", size=value(element_node_id(scratch), "size")
            )
            g.add_edge(sm.id, sp_node)
        if len(sm_nodes) > shown:
            rest = f"sm:+{len(sm_nodes) - shown}more"
            g.add_node(rest, kind="SMGroup", count=len(sm_nodes) - shown)
            g.add_edge(gpu.id, rest)
        return g
