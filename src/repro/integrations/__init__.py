"""The paper's three integration use-cases (Section VI).

* :mod:`repro.integrations.perfmodel` — the Hong & Kim CWP/MWP analytical
  performance model, parameterised from an MT4G report (VI-A);
* :mod:`repro.integrations.gpuscout` — GPUscout-GUI's memory-graph
  context: NCU-like counters joined with MT4G sizes plus bottleneck
  recommendations (VI-B, Fig. 4);
* :mod:`repro.integrations.syssage` — a sys-sage-style topology store
  combining the static MT4G report with dynamic MIG queries (VI-C,
  Fig. 5).
"""

from repro.integrations.gpuscout import GPUscoutContext, NCUCounters
from repro.integrations.perfmodel import ApplicationParams, GPUParams, HongKimModel
from repro.integrations.syssage import SysSageTopology

__all__ = [
    "ApplicationParams",
    "GPUParams",
    "HongKimModel",
    "GPUscoutContext",
    "NCUCounters",
    "SysSageTopology",
]
