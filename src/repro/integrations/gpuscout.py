"""GPUscout-GUI integration (paper Section VI-B, Fig. 4).

GPUscout detects memory-related kernel bottlenecks from Nsight-Compute
counters; its GUI renders a *memory graph* — kernel, L1, L2, DRAM and
Shared-Memory nodes with per-level traffic and hit rates — and MT4G
supplies the hardware context: cache sizes, amounts and sharing.  With
both, the recommendations become quantitative ("your per-block working
set is 1.7x the 238 KiB L1") instead of guesses.

:class:`NCUCounters` stands in for the profiler output; the
:class:`GPUscoutContext` joins it with a :class:`TopologyReport` into a
:mod:`networkx` memory graph plus rule-based recommendations, mirroring
the GUI's Memory Graph component.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.report import TopologyReport
from repro.errors import ReproError
from repro.units import format_size

__all__ = ["NCUCounters", "Recommendation", "GPUscoutContext"]


@dataclass(frozen=True)
class NCUCounters:
    """The subset of Nsight-Compute counters GPUscout consumes."""

    kernel_name: str
    l1_hit_rate: float  # [0, 1]
    l2_hit_rate: float  # [0, 1]
    l1_bytes: int  # traffic entering L1 from the kernel
    l2_bytes: int  # traffic L1 -> L2
    dram_bytes: int  # traffic L2 -> DRAM
    registers_per_thread: int
    threads_per_block: int
    blocks_per_sm: int
    shared_bytes_per_block: int = 0
    local_spill_bytes: int = 0
    working_set_per_block: int = 0

    def __post_init__(self) -> None:
        for rate in (self.l1_hit_rate, self.l2_hit_rate):
            if not 0.0 <= rate <= 1.0:
                raise ReproError("hit rates must be in [0, 1]")
        if min(self.l1_bytes, self.l2_bytes, self.dram_bytes) < 0:
            raise ReproError("traffic byte counters must be non-negative")
        if self.threads_per_block <= 0 or self.blocks_per_sm <= 0:
            raise ReproError("launch geometry must be positive")


@dataclass(frozen=True)
class Recommendation:
    """One GPUscout-style tuning hint, backed by MT4G numbers."""

    severity: str  # "info" | "warning" | "critical"
    code: str
    message: str


class GPUscoutContext:
    """Joins profiler counters with MT4G topology for one kernel."""

    #: element names per vendor-agnostic role
    _L1_ROLE = ("L1", "vL1")
    _SHARED_ROLE = ("SharedMem", "LDS")

    def __init__(self, report: TopologyReport, counters: NCUCounters) -> None:
        self.report = report
        self.counters = counters

    # ------------------------------------------------------------------ #
    # element helpers                                                     #
    # ------------------------------------------------------------------ #

    def _first_element(self, names: tuple[str, ...]) -> str:
        for name in names:
            if name in self.report.memory:
                return name
        raise ReproError(f"report has none of {names}")

    def _size_of(self, element: str) -> int | None:
        value = self.report.attribute(element, "size").value
        return int(value) if value is not None else None

    # ------------------------------------------------------------------ #
    # the memory graph (Fig. 4)                                           #
    # ------------------------------------------------------------------ #

    def memory_graph(self) -> nx.DiGraph:
        """Kernel -> L1 -> L2 -> DRAM graph with sizes, rates and traffic."""
        c = self.counters
        l1 = self._first_element(self._L1_ROLE)
        shared = self._first_element(self._SHARED_ROLE)
        graph = nx.DiGraph()
        graph.add_node(
            "Kernel",
            kind="kernel",
            name=c.kernel_name,
            registers_per_thread=c.registers_per_thread,
            threads_per_block=c.threads_per_block,
        )
        graph.add_node(
            l1,
            kind="cache",
            size=self._size_of(l1),
            hit_rate=c.l1_hit_rate,
            amount=self.report.attribute(l1, "amount").value,
            shared_with=self.report.attribute(l1, "shared_with").value,
        )
        graph.add_node(
            "L2",
            kind="cache",
            size=self._size_of("L2"),
            hit_rate=c.l2_hit_rate,
            amount=self.report.attribute("L2", "amount").value,
        )
        graph.add_node(
            "DeviceMemory",
            kind="memory",
            size=self._size_of("DeviceMemory"),
            read_bandwidth=self.report.attribute("DeviceMemory", "read_bandwidth").value,
        )
        graph.add_node(shared, kind="scratchpad", size=self._size_of(shared))
        graph.add_edge("Kernel", l1, bytes=c.l1_bytes)
        graph.add_edge(l1, "L2", bytes=c.l2_bytes)
        graph.add_edge("L2", "DeviceMemory", bytes=c.dram_bytes)
        graph.add_edge("Kernel", shared, bytes=c.shared_bytes_per_block * c.blocks_per_sm)
        return graph

    # ------------------------------------------------------------------ #
    # recommendations                                                     #
    # ------------------------------------------------------------------ #

    def recommendations(self) -> list[Recommendation]:
        """Rule-based hints, each grounded in an MT4G attribute.

        The rules mirror the examples the paper names: register spilling
        is tied to the registers per SM, the L1 hit rate to the L1 size,
        and block-dimension redesign to whether the working set fits L1.
        """
        recs: list[Recommendation] = []
        c = self.counters
        compute = self.report.compute
        l1_name = self._first_element(self._L1_ROLE)
        l1_size = self._size_of(l1_name)
        shared_name = self._first_element(self._SHARED_ROLE)
        shared_size = self._size_of(shared_name)

        regs_needed = c.registers_per_thread * c.threads_per_block * c.blocks_per_sm
        if regs_needed > compute.registers_per_sm or c.local_spill_bytes > 0:
            recs.append(
                Recommendation(
                    "critical",
                    "register-spilling",
                    f"kernel needs {regs_needed} registers per SM but the GPU "
                    f"provides {compute.registers_per_sm}; spills of "
                    f"{c.local_spill_bytes} B go through the memory hierarchy — "
                    "reduce per-thread registers or shrink the block",
                )
            )

        if l1_size is not None and c.working_set_per_block:
            ws = c.working_set_per_block * c.blocks_per_sm
            if ws > l1_size and c.l1_hit_rate < 0.8:
                recs.append(
                    Recommendation(
                        "warning",
                        "l1-working-set",
                        f"per-SM working set {format_size(ws)} exceeds the "
                        f"{format_size(l1_size)} L1 ({c.l1_hit_rate:.0%} hit rate) — "
                        "redesign block dimensions so a block's tile fits in L1",
                    )
                )
            elif ws <= l1_size and c.l1_hit_rate < 0.5:
                recs.append(
                    Recommendation(
                        "info",
                        "l1-thrash-pattern",
                        f"working set {format_size(ws)} fits the L1 but the hit "
                        f"rate is only {c.l1_hit_rate:.0%} — check for strided or "
                        "conflict-heavy access patterns",
                    )
                )

        l2_size = self._size_of("L2")
        if l2_size is not None and c.l2_hit_rate < 0.5 and c.dram_bytes > c.l2_bytes // 2:
            recs.append(
                Recommendation(
                    "warning",
                    "l2-capacity",
                    f"L2 hit rate {c.l2_hit_rate:.0%} with heavy DRAM traffic — "
                    f"tile the problem to the {format_size(l2_size)} L2 "
                    "(one SM only reaches one segment)",
                )
            )

        if shared_size is not None and c.shared_bytes_per_block:
            per_sm = c.shared_bytes_per_block * c.blocks_per_sm
            if per_sm > shared_size:
                recs.append(
                    Recommendation(
                        "critical",
                        "shared-oversubscribed",
                        f"blocks request {format_size(per_sm)} of "
                        f"{shared_name} per SM but only "
                        f"{format_size(shared_size)} exists — occupancy will drop",
                    )
                )
        if not recs:
            recs.append(
                Recommendation(
                    "info",
                    "no-bottleneck",
                    "no memory-related bottleneck detected by the rules",
                )
            )
        return recs
