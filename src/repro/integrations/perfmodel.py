"""GPU performance modeling with MT4G parameters (paper Section VI-A).

Implements the warp-parallelism model of Hong & Kim ("An analytical model
for a GPU architecture with memory-level and thread-level parallelism
awareness", ISCA 2009) exactly as the paper's Eqs. (3)-(4) summarise it:

* **CWP** (compute warp parallelism) — warps that can execute while one
  warp waits on memory: ``CWP' = (mem_cycles + comp_cycles) / comp_cycles``,
  capped by the active warps per SM;
* **MWP** (memory warp parallelism) — warps that can overlap their memory
  accesses: the minimum of the latency-bound limit
  ``MWP' = mem_latency / departure_delay``, the bandwidth-bound limit
  ``MWP'' = mem_bandwidth / (BW_per_warp * num_SMs)`` with
  ``BW_per_warp = freq * load_bytes_per_warp / mem_latency``, and the
  active warp count.

The GPU-side parameters (``mem_latency``, ``mem_bandwidth``, ``freq``,
SM counts, warp geometry) come straight from an MT4G report — the whole
point of the integration: no datasheet archaeology.  The application-side
parameters would come from Nsight Compute / ROCProfiler in the paper's
workflow; here they are explicit inputs.

Classification follows the paper: CWP > MWP means the application is
memory-bound, otherwise compute-bound.  :meth:`HongKimModel.execution_cycles`
implements the three canonical Hong-Kim cases for total cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import TopologyReport
from repro.errors import ReproError

__all__ = ["ApplicationParams", "GPUParams", "HongKimModel", "ModelResult"]

#: Cycles between two consecutive warps' memory requests leaving one SM
#: (Hong & Kim's departure delay for coalesced accesses).
DEFAULT_DEPARTURE_DELAY = 4.0


@dataclass(frozen=True)
class ApplicationParams:
    """Application-specific model inputs (profiler-derived in the paper)."""

    comp_insts_per_warp: float  # dynamic compute instructions per warp
    mem_insts_per_warp: float  # dynamic memory instructions per warp
    active_warps_per_sm: int  # N in the paper's equations
    load_bytes_per_warp: float = 128.0  # e.g. 32 threads x 4 B coalesced
    cycles_per_comp_inst: float = 4.0  # issue cost per compute instruction
    total_warps: int | None = None  # across the whole grid; None = N * SMs

    def __post_init__(self) -> None:
        if self.comp_insts_per_warp < 0 or self.mem_insts_per_warp <= 0:
            raise ReproError("instruction counts must be positive")
        if self.active_warps_per_sm <= 0:
            raise ReproError("active_warps_per_sm must be positive")
        if self.load_bytes_per_warp <= 0 or self.cycles_per_comp_inst <= 0:
            raise ReproError("per-warp load bytes and issue cost must be positive")


@dataclass(frozen=True)
class GPUParams:
    """GPU-specific model inputs, obtainable from one MT4G report."""

    mem_latency: float  # cycles
    mem_bandwidth: float  # bytes/second
    clock_hz: float  # core clock (the model's mem_freq)
    num_sms: int
    max_warps_per_sm: int
    departure_delay: float = DEFAULT_DEPARTURE_DELAY

    def __post_init__(self) -> None:
        if min(self.mem_latency, self.mem_bandwidth, self.clock_hz) <= 0:
            raise ReproError("latency, bandwidth and clock must be positive")
        if self.num_sms <= 0 or self.max_warps_per_sm <= 0:
            raise ReproError("SM/warp counts must be positive")
        if self.departure_delay <= 0:
            raise ReproError("departure_delay must be positive")

    @classmethod
    def from_report(
        cls,
        report: TopologyReport,
        level: str = "DeviceMemory",
        departure_delay: float = DEFAULT_DEPARTURE_DELAY,
    ) -> "GPUParams":
        """Extract model parameters for one memory level from a report.

        ``level`` may be any element with measured latency and bandwidth —
        the paper extends the original DRAM-only formulation across the
        hierarchy (L1, L2, DRAM) because MT4G provides all of them.
        """
        latency = report.attribute(level, "load_latency")
        bandwidth = report.attribute(level, "read_bandwidth")
        if latency.value is None:
            raise ReproError(f"{level}: no load latency in the report")
        if bandwidth.value is None:
            # Lower-level caches have no bandwidth figure (Table I dagger):
            # fall back to device-memory bandwidth as the binding limit.
            bandwidth = report.attribute("DeviceMemory", "read_bandwidth")
            if bandwidth.value is None:
                raise ReproError("no bandwidth figure available in the report")
        return cls(
            mem_latency=float(latency.value),
            mem_bandwidth=float(bandwidth.value),
            clock_hz=report.general.clock_rate_hz,
            num_sms=report.compute.num_sms,
            max_warps_per_sm=report.compute.max_threads_per_sm
            // report.compute.warp_size,
            departure_delay=departure_delay,
        )


@dataclass(frozen=True)
class ModelResult:
    """Evaluated model for one (application, GPU, level) combination."""

    cwp: float
    mwp: float
    cwp_raw: float
    mwp_latency_bound: float
    mwp_bandwidth_bound: float
    memory_bound: bool
    execution_cycles: float

    @property
    def bottleneck(self) -> str:
        return "memory" if self.memory_bound else "compute"


class HongKimModel:
    """The CWP/MWP model bound to one application and one GPU."""

    def __init__(self, app: ApplicationParams, gpu: GPUParams) -> None:
        self.app = app
        self.gpu = gpu

    # -- building blocks ------------------------------------------------ #

    @property
    def comp_cycles(self) -> float:
        """Computation cycles of one warp."""
        return self.app.cycles_per_comp_inst * self.app.comp_insts_per_warp

    @property
    def mem_cycles(self) -> float:
        """Memory waiting cycles of one warp."""
        return self.gpu.mem_latency * self.app.mem_insts_per_warp

    @property
    def active_warps(self) -> int:
        return min(self.app.active_warps_per_sm, self.gpu.max_warps_per_sm)

    # -- Eq. (3): CWP ---------------------------------------------------- #

    @property
    def cwp_raw(self) -> float:
        comp = max(self.comp_cycles, 1e-9)
        return (self.mem_cycles + comp) / comp

    @property
    def cwp(self) -> float:
        return min(self.cwp_raw, float(self.active_warps))

    # -- Eq. (4): MWP ---------------------------------------------------- #

    @property
    def mwp_latency_bound(self) -> float:
        """MWP' — how many requests fit inside one memory latency."""
        return self.gpu.mem_latency / self.gpu.departure_delay

    @property
    def mwp_bandwidth_bound(self) -> float:
        """MWP'' — how many warps the memory channels can feed."""
        bw_per_warp = (
            self.gpu.clock_hz * self.app.load_bytes_per_warp / self.gpu.mem_latency
        )
        return self.gpu.mem_bandwidth / (bw_per_warp * self.gpu.num_sms)

    @property
    def mwp(self) -> float:
        return min(
            self.mwp_latency_bound,
            self.mwp_bandwidth_bound,
            float(self.active_warps),
        )

    # -- classification & cycle estimate --------------------------------- #

    @property
    def memory_bound(self) -> bool:
        """Paper Section VI-A: CWP exceeding MWP means memory-bound."""
        return self.cwp > self.mwp

    def execution_cycles(self) -> float:
        """Total cycles per SM, following Hong & Kim's three cases."""
        n = float(self.active_warps)
        mwp, cwp = self.mwp, self.cwp
        comp, mem = self.comp_cycles, self.mem_cycles
        repetitions = 1.0
        if self.app.total_warps is not None:
            repetitions = max(
                1.0, self.app.total_warps / (n * self.gpu.num_sms)
            )
        n_mem = max(self.app.mem_insts_per_warp, 1.0)
        if mwp >= cwp and cwp >= n:  # enough of both: fully overlapped
            cycles = mem + comp * n
        elif cwp >= mwp:  # memory-bound: channels saturate
            cycles = mem * (n / mwp) + (comp / n_mem) * (mwp - 1)
        else:  # compute-bound: one latency + serialized compute
            cycles = mem / n_mem + comp * n
        return cycles * repetitions

    def evaluate(self) -> ModelResult:
        return ModelResult(
            cwp=self.cwp,
            mwp=self.mwp,
            cwp_raw=self.cwp_raw,
            mwp_latency_bound=self.mwp_latency_bound,
            mwp_bandwidth_bound=self.mwp_bandwidth_bound,
            memory_bound=self.memory_bound,
            execution_cycles=self.execution_cycles(),
        )
