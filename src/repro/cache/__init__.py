"""Content-addressed persistent caching of discovery results.

The paper positions MT4G as a tool that runs *repeatedly* — per device,
per driver update, per fleet — yet each run re-measures from scratch.
This package amortises that repetition the way microbenchmark-dissection
and auto-tuning practice do: results are memoised on disk under a
content-addressed key (SHA-256 over the canonical serialisation of
everything that determines the result — device spec, p-chase
configuration, seed, carveout configuration, targets, a schema-version
salt), so a re-run with identical inputs is a hash lookup instead of a
measurement campaign, and *any* change to an input silently produces a
fresh key (no invalidation protocol to get wrong).

Two entry granularities are cached:

* whole :class:`~repro.core.report.TopologyReport` discoveries
  (``MT4G.discover``), including the raw sweep artefacts and the
  measured-size state the validation escalation path depends on;
* individual escalation re-measurements (one per ``seed + offset``
  per attribute), so re-validating a fleet is near-free even when the
  whole-report entry misses.

The store (:class:`~repro.cache.store.DiscoveryCache`) is safe for
concurrent fleet workers: entries are immutable once written and land
via atomic rename, a corrupted or truncated entry degrades to a silent
miss + re-measure, and a cache failure of any kind never sinks a run.
A ``stats.json`` sidecar records per-preset discovery walls, which
:func:`repro.validate.fleet.discover_fleet` feeds into its cost-aware
(longest-processing-time-first) scheduling.
"""

from repro.cache.costs import estimate_discovery_cost, schedule_order
from repro.cache.keys import (
    SCHEMA_VERSION,
    canonical_json,
    device_fingerprint,
    digest,
    measurement_key,
    report_key,
    spec_fingerprint,
)
from repro.cache.ring import HashRing, normalize_node
from repro.cache.store import DiscoveryCache
from repro.cache.tiers import (
    DiskTier,
    MemoryTier,
    PeerTier,
    TieredCache,
    build_worker_cache,
)

__all__ = [
    "DiscoveryCache",
    "DiskTier",
    "HashRing",
    "MemoryTier",
    "PeerTier",
    "SCHEMA_VERSION",
    "TieredCache",
    "build_worker_cache",
    "normalize_node",
    "canonical_json",
    "device_fingerprint",
    "digest",
    "estimate_discovery_cost",
    "measurement_key",
    "report_key",
    "schedule_order",
    "spec_fingerprint",
]

# (Tier composition and ring routing live in repro.cache.tiers /
# repro.cache.ring; re-exported above so callers get one import site.)
