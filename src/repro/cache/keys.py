"""Content-addressed cache keys: canonical serialisation + SHA-256.

A cache key must change whenever *anything* that determines a
measurement changes, and must be bit-stable across processes and hosts
for identical inputs.  Both properties come from hashing a canonical
JSON form of the inputs:

* dataclasses serialise field by field (covering every nested spec
  dataclass: caches, scratchpad, noise model, quirks, carveouts);
* enums serialise to their values, sets/frozensets to sorted lists,
  dicts with sorted stringified keys, tuples as lists;
* the JSON is emitted with sorted keys and no whitespace.

Every key additionally carries a schema-version salt
(:data:`SCHEMA_VERSION`): bumping it orphans every existing entry at
once, which is the only invalidation "protocol" the store needs when the
meaning of a cached payload changes (e.g. the report model gains a
field).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Iterable

__all__ = [
    "SCHEMA_VERSION",
    "canonical_json",
    "canonicalize",
    "device_fingerprint",
    "digest",
    "measurement_key",
    "report_key",
    "spec_fingerprint",
]

#: Salt mixed into every key.  Bump when the *payload* schema changes
#: (report model, measurement dataclass, stored sidecar state) so stale
#: entries become unreachable instead of unpicklable surprises.
SCHEMA_VERSION = 1


def _tool_version() -> str:
    """The package version, mixed into every key.

    A release that changes what a benchmark *measures* without touching
    the payload schema must not serve results computed by the old code:
    bumping the package version is enough to orphan every entry.
    Imported lazily — :mod:`repro` imports this package at init time.
    """
    from repro import __version__

    return __version__


def canonicalize(value: Any) -> Any:
    """Recursively convert ``value`` to canonical JSON-compatible types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return canonicalize(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {
            str(k): canonicalize(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (set, frozenset)):
        return sorted(canonicalize(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays AND numpy scalars
        return canonicalize(value.tolist())
    raise TypeError(
        f"cannot canonicalise {type(value).__name__} for a cache key; "
        "generic reprs embed memory addresses and would silently key "
        "per-process (permanent misses)"
    )


def canonical_json(value: Any) -> str:
    """The canonical (sorted, whitespace-free) JSON form of ``value``."""
    return json.dumps(canonicalize(value), sort_keys=True, separators=(",", ":"))


def digest(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def spec_fingerprint(spec: Any) -> str:
    """Content fingerprint of a :class:`~repro.gpuspec.spec.GPUSpec`."""
    return digest(spec)


def device_fingerprint(device: Any, include_run_state: bool = True) -> dict[str, Any]:
    """Everything about a simulated device that determines measurements.

    The spec alone is not enough: the noise stream (seed, contention),
    the L1/shared carveout configuration and an active MIG profile all
    change what the benchmarks observe.  With ``include_run_state``
    (the whole-report case, which measures on *this* device) the mutable
    run state is included too — a device that already executed work has
    advanced its noise RNGs and time accounting, so measuring on it
    again produces *different* results than a fresh same-seed device;
    keying only on (spec, seed) would let such a run poison the pristine
    key.  Escalation re-measurements run on freshly-built
    ``(spec, seed + offset)`` devices, so their keys use the static
    identity only (``include_run_state=False``) — the parent's run state
    cannot influence them.
    """
    out: dict[str, Any] = {
        "spec": canonicalize(device.spec),
        "seed": int(device.seed),
        "cache_config": device.cache_config,
        "contention": float(device.noise.contention_factor),
        "mig_profile": device.mig.profile,
    }
    if include_run_state:
        out.update(
            op_serial=int(device.op_serial),
            total_loads=int(device.total_loads),
            elapsed_seconds=float(device.elapsed_seconds()),
            rng_state=canonicalize(device.rng.bit_generator.state),
            quirk_rng_state=canonicalize(device._quirk_rng.bit_generator.state),
        )
    return out


def report_key(
    device: Any,
    config: Any,
    targets: Iterable[str],
    extensions: Iterable[str],
    validate: bool,
    version: int = SCHEMA_VERSION,
) -> str:
    """Key of one whole ``MT4G.discover`` result."""
    return digest(
        {
            "kind": "report",
            "schema": int(version),
            "tool_version": _tool_version(),
            "device": device_fingerprint(device),
            "config": canonicalize(config),
            "targets": sorted(targets),
            "extensions": sorted(extensions),
            "validate": bool(validate),
        }
    )


def measurement_key(
    device: Any,
    config: Any,
    element: str,
    attribute: str,
    seed_offset: int,
    context: Any = None,
    version: int = SCHEMA_VERSION,
) -> str:
    """Key of one escalation re-measurement.

    ``context`` carries the tool state the re-measurement depends on
    beyond (device, config) — the measured sizes and fetch granularities
    that shape the probe rings.  A re-validation whose pipeline measured
    a different capacity must therefore miss, not reuse a ring of the
    wrong size.
    """
    return digest(
        {
            "kind": "measurement",
            "schema": int(version),
            "tool_version": _tool_version(),
            "device": device_fingerprint(device, include_run_state=False),
            "config": canonicalize(config),
            "element": element,
            "attribute": attribute,
            "seed_offset": int(seed_offset),
            "context": canonicalize(context),
        }
    )
