"""The on-disk content-addressed store.

Layout under the cache root (default ``~/.cache/mt4g``)::

    <root>/entries/<key[:2]>/<key>.pkl   # immutable pickled payloads
    <root>/stats.json                    # per-preset wall-time sidecar

Design constraints, in order:

* **a cache must never sink a run** — every filesystem or
  deserialisation failure degrades to a miss (reads) or a no-op
  (writes); the tool then simply measures;
* **concurrent fleet workers share one store** — entries land via
  write-to-temp + atomic ``os.replace``; two workers computing the same
  key write byte-identical payloads, so last-rename-wins is correct, and
  readers never observe a partially-written entry;
* **corruption is a miss, not an error** — a truncated or garbage entry
  fails to unpickle (or fails the embedded key/schema check) and is
  best-effort deleted so the next run re-measures and heals it;
* **degradation is silent to the run but never to the operator** —
  every swallowed failure increments a named counter in
  :attr:`DiscoveryCache.degradations` (read errors, corrupted entries,
  write failures, sidecar lock timeouts, sidecar corruption), which the
  serving layer folds into ``GET /metrics``.

The store is also a first-class chaos surface: named injection points
(``store.get``, ``store.put``, ``store.stats`` — see
:mod:`repro.faults`) let a recorded fault plan exercise exactly these
degradation paths deterministically.

Payloads are pickled: the report/measurement dataclasses round-trip
exactly (types included), which is what makes a cache-hit report
byte-identical to the cold one.  Cross-version safety comes from the
schema salt in the key plus the embedded schema check, not from trusting
old pickles.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path
from typing import Any, Iterator

from repro import faults
from repro.cache import keys as _keys
from repro.obs import trace as _trace

__all__ = ["DiscoveryCache", "DEFAULT_PRUNE_BYTES", "DEGRADATION_KINDS"]

#: The degradation counters every store instance keeps (fixed keys so
#: the ``/metrics`` payload shape is stable even at zero).
DEGRADATION_KINDS = (
    "read_error",       # unreadable entry file (I/O trouble, not a plain miss)
    "corrupt_entry",    # entry present but failed unpickle/key/schema check
    "write_error",      # put() could not land its atomic rename
    "lock_timeout",     # stats sidecar lock not acquired; wrote lock-free
    "stats_corrupt",    # stats.json unreadable; degraded to empty walls
)

#: Store budget the CLI applies opportunistically after each run
#: (override with ``$MT4G_CACHE_LIMIT_BYTES``).  Without a bound a
#: default-on cache sweeping seeds or configs would grow forever.
DEFAULT_PRUNE_BYTES = 2 << 30  # 2 GiB


class DiscoveryCache:
    """Content-addressed persistent cache of discovery results.

    >>> store = DiscoveryCache("/tmp/mt4g-cache-doctest")
    >>> store.put("a" * 64, {"x": 1})
    True
    >>> store.get("a" * 64)
    {'x': 1}
    >>> store.get("b" * 64) is None
    True
    """

    def __init__(self, root: str | Path, version: int = _keys.SCHEMA_VERSION) -> None:
        self.root = Path(root).expanduser()
        self.version = int(version)
        #: in-process accounting (benchmarks and tests read these).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: silent-degradation accounting, keyed by DEGRADATION_KINDS —
        #: the run never sees these failures, the operator always does.
        self.degradations: dict[str, int] = {k: 0 for k in DEGRADATION_KINDS}

    # ------------------------------------------------------------------ #
    # key derivation (schema salt applied)                                #
    # ------------------------------------------------------------------ #

    def report_key(
        self,
        device: Any,
        config: Any,
        targets,
        extensions,
        validate: bool,
    ) -> str:
        return _keys.report_key(
            device, config, targets, extensions, validate, version=self.version
        )

    def measurement_key(
        self,
        device: Any,
        config: Any,
        element: str,
        attribute: str,
        seed_offset: int,
        context: Any = None,
    ) -> str:
        return _keys.measurement_key(
            device,
            config,
            element,
            attribute,
            seed_offset,
            context,
            version=self.version,
        )

    # ------------------------------------------------------------------ #
    # entries                                                             #
    # ------------------------------------------------------------------ #

    def _entry_path(self, key: str) -> Path:
        return self.root / "entries" / key[:2] / f"{key}.pkl"

    def _validate_blob(self, key: str, blob: bytes) -> Any:
        """Unpickle a wrapped entry blob and check its embedded address.

        Returns the payload; raises on truncation, garbage bytes, or a
        schema/key mismatch (the callers decide how that degrades).
        """
        wrapped = pickle.loads(blob)
        if (
            not isinstance(wrapped, dict)
            or wrapped.get("schema") != self.version
            or wrapped.get("key") != key
        ):
            raise ValueError("cache entry does not match its address")
        return wrapped["payload"]

    def _read_validated(self, key: str) -> tuple[bytes, Any] | None:
        """Read + validate ``key``'s entry: ``(raw blob, payload)`` or miss.

        Any failure — missing file, truncation, garbage bytes, a payload
        whose embedded key or schema does not match — is a silent miss;
        unreadable entries are best-effort deleted so they heal.
        """
        ctx = _trace.CURRENT.get()  # None = tracing off: no other cost
        if ctx is None:
            return self._read_validated_inner(key)
        start = time.perf_counter()
        got = self._read_validated_inner(key)
        _trace.record(
            ctx,
            "store.read",
            start,
            key=key[:12],
            outcome="hit" if got is not None else "miss",
        )
        return got

    def _read_validated_inner(self, key: str) -> tuple[bytes, Any] | None:
        try:
            path = self._entry_path(key)
            faults.inject("store.get", key)
            blob = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1  # a plain miss, not a degradation
            return None
        except (OSError, TypeError):
            self.misses += 1
            self.degradations["read_error"] += 1
            return None
        try:
            payload = self._validate_blob(key, blob)
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            self.degradations["corrupt_entry"] += 1
            return None
        try:
            # Refresh the entry's mtime so pruning approximates LRU
            # (least-recently-*used*, not least-recently-written).
            os.utime(path)
        except OSError:
            pass
        self.hits += 1
        return blob, payload

    def get(self, key: str) -> Any | None:
        """The payload stored under ``key``, or None (miss)."""
        got = self._read_validated(key)
        return None if got is None else got[1]

    def get_blob(self, key: str, peer: bool = True) -> bytes | None:
        """The raw wrapped entry bytes under ``key``, or None (miss).

        ``peer`` is accepted (and ignored) for interface parity with
        :class:`repro.cache.tiers.TieredCache`, where ``peer=False``
        restricts the lookup to local tiers — a bare disk store *is*
        local, so the flag is moot here.

        The wire format of peer replication (``GET /store/{key}``): the
        blob already embeds the key and schema salt, so the fetching
        side re-validates it against the same address before landing it
        — and because it is the byte-for-byte disk entry, a replica's
        copy is identical to the owner's.
        """
        got = self._read_validated(key)
        return None if got is None else got[0]

    def put(self, key: str, payload: Any) -> bool:
        """Store ``payload`` under ``key`` (atomic; failures are no-ops).

        The payload is serialised eagerly, so later mutation of the
        in-memory object never leaks into the store.
        """
        try:
            blob = pickle.dumps(
                {"schema": self.version, "key": key, "payload": payload},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            self.degradations["write_error"] += 1
            return False
        return self._write_blob(key, blob)

    def put_blob(self, key: str, blob: bytes) -> bool:
        """Land a wrapped entry blob fetched from a peer (atomic).

        Unlike :meth:`put` the bytes came over a network, so they are
        validated against the address *before* landing: a truncated or
        forged blob counts as a corrupt entry and never reaches disk.
        """
        try:
            self._validate_blob(key, blob)
        except Exception:
            self.degradations["corrupt_entry"] += 1
            return False
        return self._write_blob(key, blob)

    def _write_blob(self, key: str, blob: bytes) -> bool:
        """Atomic write-to-temp + rename shared by put/put_blob."""
        ctx = _trace.CURRENT.get()
        if ctx is None:
            return self._write_blob_inner(key, blob)
        start = time.perf_counter()
        ok = self._write_blob_inner(key, blob)
        _trace.record(
            ctx, "store.write", start, key=key[:12], outcome="ok" if ok else "error"
        )
        return ok

    def _write_blob_inner(self, key: str, blob: bytes) -> bool:
        tmp = None
        try:
            path = self._entry_path(key)
            fired = faults.inject("store.put", key)
            if fired is not None and fired.kind == "corrupt":
                # A torn write: the entry lands but holds half a pickle.
                # get() must degrade it to a miss and self-heal.
                blob = blob[: len(blob) // 2]
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f".{key}.{os.getpid()}.{os.urandom(4).hex()}.tmp")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except Exception:
            if tmp is not None:
                try:
                    tmp.unlink()
                except OSError:
                    pass
            self.degradations["write_error"] += 1
            return False
        self.stores += 1
        return True

    def entries(self) -> Iterator[tuple[str, Any]]:
        """Yield ``(key, payload)`` for every readable entry, sorted by key.

        The serving catalog's enumeration API.  Unlike :meth:`get`, this
        walk counts toward neither hits nor misses and does not refresh
        mtimes — browsing the store must not distort the LRU order or the
        hit-rate metrics.  Every per-entry failure is skipped silently:
        an entry unlinked mid-walk by a concurrent :meth:`prune` (or a
        corrupted blob) is simply not part of the enumeration, exactly
        like a racing reader of :meth:`get` would observe a miss.
        """
        root = self.root / "entries"
        try:
            paths = sorted(root.glob("*/*.pkl"))
        except OSError:
            return
        for path in paths:
            key = path.stem
            try:
                wrapped = pickle.loads(path.read_bytes())
            except Exception:
                continue
            if (
                not isinstance(wrapped, dict)
                or wrapped.get("schema") != self.version
                or wrapped.get("key") != key
            ):
                continue
            yield key, wrapped["payload"]

    def entry_count(self) -> int:
        """Number of entry files on disk (cheap: no unpickling)."""
        try:
            return sum(1 for _ in (self.root / "entries").glob("*/*.pkl"))
        except OSError:
            return 0

    def prune(self, max_bytes: int = DEFAULT_PRUNE_BYTES) -> int:
        """Delete least-recently-used entries until the store fits.

        Entries are ranked by mtime (refreshed on every hit, so this is
        LRU, not FIFO); oldest go first until the total entry size drops
        to ``max_bytes``.  Version-salt bumps leave orphaned files with
        unreachable keys — pruning is what eventually reclaims them.
        Returns the number of entries removed; failures are no-ops.
        """
        removed = 0
        try:
            # Crash-orphaned temp files first: a kill between write and
            # rename leaves a full-size .tmp no key can ever reach.  The
            # age floor keeps a concurrent writer's in-flight temp safe.
            now = time.time()
            for tmp in (self.root / "entries").glob("*/.*.tmp"):
                try:
                    if now - tmp.stat().st_mtime > 3600.0:
                        tmp.unlink()
                except OSError:
                    continue
            entries: list[tuple[float, int, Path]] = []
            total = 0
            for path in (self.root / "entries").glob("*/*.pkl"):
                try:
                    st = path.stat()
                except OSError:
                    continue
                entries.append((st.st_mtime, st.st_size, path))
                total += st.st_size
            if total <= max_bytes:
                return 0
            entries.sort()
            for _, size, path in entries:
                if total <= max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                removed += 1
        except Exception:
            pass
        return removed

    # ------------------------------------------------------------------ #
    # wall-time sidecar (cost-aware fleet scheduling)                     #
    # ------------------------------------------------------------------ #

    @property
    def _stats_path(self) -> Path:
        return self.root / "stats.json"

    def _read_stats(self) -> dict[str, Any]:
        """The sidecar dict; a corrupted sidecar degrades to ``{}``.

        A truncated or non-JSON ``stats.json`` loses only scheduling
        hints, never results — but the degradation is counted, and the
        next :meth:`record_wall` rewrites a valid sidecar (self-heal).
        """
        try:
            data = json.loads(self._stats_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return {}  # no sidecar yet: normal first-run state
        except Exception:
            self.degradations["stats_corrupt"] += 1
            return {}
        if not isinstance(data, dict):
            self.degradations["stats_corrupt"] += 1
            return {}
        return data

    def record_wall(self, label: str, seconds: float) -> None:
        """Record one measured discovery wall for ``label`` (a preset).

        Kept as an exponentially-smoothed value so a one-off slow run
        (cold page cache, noisy host) does not dominate the schedule.

        Merge-on-write: concurrent fleet parents and service workers all
        record walls into the same sidecar, so the sidecar is re-read
        *inside* the replace window — under a best-effort ``O_EXCL``
        lock that serialises the read-modify-write — and our label's
        entry is merged into whatever the other writers landed in the
        meantime.  Only a same-label race stays last-writer-wins (the
        two smoothed values are equally valid).  If the lock cannot be
        acquired (a crashed holder is reclaimed past an age floor) the
        write proceeds lock-free: a cache must never sink a run, and the
        fresh re-read still bounds the lost-update window to the few
        microseconds between read and rename.
        """
        if seconds <= 0:
            return
        try:
            faults.inject("store.stats", label)
            self.root.mkdir(parents=True, exist_ok=True)
            lock = self._acquire_stats_lock()
            if lock is None:
                # Proceeding unlocked is the right call for the run —
                # but a silent one was unobservable (the satellite fix):
                # the operator now sees lock contention in /metrics.
                self.degradations["lock_timeout"] += 1
            try:
                stats = self._read_stats()
                walls = stats.setdefault("walls", {})
                prev = walls.get(label)
                if isinstance(prev, dict) and isinstance(
                    prev.get("seconds"), (int, float)
                ):
                    seconds = 0.5 * float(prev["seconds"]) + 0.5 * float(seconds)
                    runs = int(prev.get("runs", 0)) + 1
                else:
                    runs = 1
                walls[label] = {"seconds": round(float(seconds), 6), "runs": runs}
                tmp = self._stats_path.with_name(
                    f".stats.{os.getpid()}.{os.urandom(4).hex()}.tmp"
                )
                tmp.write_text(json.dumps(stats, indent=2, sort_keys=True) + "\n")
                os.replace(tmp, self._stats_path)
            finally:
                if lock is not None:
                    try:
                        lock.unlink()
                    except OSError:
                        pass
        except Exception:
            pass

    #: A crashed writer's lock file is reclaimed after this many seconds;
    #: a healthy record_wall holds the lock for well under a millisecond.
    _STATS_LOCK_STALE_SECONDS = 10.0

    def _acquire_stats_lock(self, timeout: float = 1.0) -> Path | None:
        """Exclusive sidecar lock via ``O_CREAT | O_EXCL``, or None.

        Returns the lock path to unlink on release.  None means the lock
        could not be acquired within ``timeout`` — the caller proceeds
        unlocked rather than dropping the wall (best-effort semantics).
        """
        lock_path = self.root / ".stats.lock"
        deadline = time.monotonic() + timeout
        while True:
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                return lock_path
            except FileExistsError:
                try:
                    age = time.time() - lock_path.stat().st_mtime
                    if age > self._STATS_LOCK_STALE_SECONDS:
                        lock_path.unlink()
                        continue
                except OSError:
                    continue  # holder released between open and stat
                if time.monotonic() >= deadline:
                    return None
                time.sleep(0.002)
            except OSError:
                return None

    def recorded_walls(self) -> dict[str, float]:
        """label -> smoothed wall seconds, from the sidecar (may be {})."""
        out: dict[str, float] = {}
        for label, entry in self._read_stats().get("walls", {}).items():
            if isinstance(entry, dict) and isinstance(
                entry.get("seconds"), (int, float)
            ):
                out[str(label)] = float(entry["seconds"])
        return out
