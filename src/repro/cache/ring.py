"""Consistent-hash routing of content-addressed keys across instances.

One ``mt4g serve`` instance owns one disk store; N instances serving one
fleet need an answer to "which instance owns this report key?" that
every instance computes identically and that barely moves when the
member list changes.  That is textbook consistent hashing, and the
SHA-256 report key the store already uses is an ideal ring position:
uniformly distributed by construction, stable across processes and
hosts.

Each member is placed on the ring at :data:`DEFAULT_REPLICAS` virtual
positions (hash of ``"<node>|vnode|<i>"``), a key lands at the position
derived from its own digest, and the key's **owner** is the first
member clockwise from there.  Adding or removing one member therefore
remaps only ~1/N of the keyspace — the property that makes rolling a
new replica into a serving fleet cheap.

The routing contract the serving layer builds on:

* every instance constructs its ring from the *same member URLs*
  (normalised by :func:`normalize_node`), so ``owner(key)`` agrees
  fleet-wide without any coordination service;
* :meth:`HashRing.owner` names the instance that should *discover* a
  cold key (the cross-instance single-flight anchor);
* :meth:`HashRing.peer_target` names the first member other than self in
  the key's preference order — where a read-only replica pulls a miss
  from, and where a non-owner proxies a discovery to.
"""

from __future__ import annotations

import bisect
import hashlib
import re
from urllib.parse import urlsplit, urlunsplit

__all__ = ["DEFAULT_REPLICAS", "HashRing", "normalize_node"]

#: Virtual nodes per member.  Enough that a two-member ring splits the
#: keyspace near 50/50 instead of wherever two single hashes landed.
DEFAULT_REPLICAS = 64

_HEX_KEY = re.compile(r"^[0-9a-f]{64}$")


def normalize_node(url: str) -> str:
    """Canonical form of a member URL (the ring's identity for it).

    Ring agreement requires byte-identical member strings on every
    instance, so cosmetic differences must not split the ring: the
    scheme and host lowercase, the default scheme is ``http``, and any
    trailing slash goes.

    >>> normalize_node("HTTP://Host:8734/")
    'http://host:8734'
    >>> normalize_node("host:8734")
    'http://host:8734'
    """
    url = url.strip()
    if not url:
        raise ValueError("a ring member URL cannot be empty")
    if "//" not in url:
        url = f"http://{url}"
    parts = urlsplit(url)
    if not parts.netloc:
        raise ValueError(f"not a usable ring member URL: {url!r}")
    return urlunsplit(
        (parts.scheme.lower() or "http", parts.netloc.lower(), parts.path.rstrip("/"), "", "")
    )


def _position(material: str) -> int:
    """Ring position of arbitrary material (64-bit hash prefix)."""
    digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
    return int(digest[:16], 16)


def _key_position(key: str) -> int:
    """Ring position of a cache key.

    Report keys are already SHA-256 hex, so their own leading bytes are
    the position (no second hash); anything else is hashed first.
    """
    if _HEX_KEY.match(key):
        return int(key[:16], 16)
    return _position(key)


class HashRing:
    """Deterministic key → instance routing over a fixed member list.

    >>> ring = HashRing("http://a:1", ["http://b:2"])
    >>> ring.self_node
    'http://a:1'
    >>> sorted(ring.nodes)
    ['http://a:1', 'http://b:2']
    >>> ring.owner("ab" * 32) in ring.nodes
    True
    >>> HashRing("http://b:2", ["http://a:1"]).owner("ab" * 32) \
        == ring.owner("ab" * 32)  # every instance routes identically
    True
    """

    def __init__(
        self,
        self_node: str,
        peers: "list[str] | tuple[str, ...]" = (),
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.self_node = normalize_node(self_node)
        members = {self.self_node}
        members.update(normalize_node(p) for p in peers)
        self.nodes: tuple[str, ...] = tuple(sorted(members))
        points: list[tuple[int, str]] = []
        for node in self.nodes:
            for i in range(replicas):
                points.append((_position(f"{node}|vnode|{i}"), node))
        # A position collision between two members would make the ring
        # order depend on sort tie-breaking; the node string breaks the
        # tie deterministically (and identically on every instance).
        points.sort()
        self._points = points
        self._positions = [p for p, _ in points]

    def owner(self, key: str) -> str:
        """The member that owns ``key`` — where cold discoveries run."""
        return self.preference(key)[0]

    def is_owner(self, key: str) -> bool:
        return self.owner(key) == self.self_node

    def preference(self, key: str, count: int | None = None) -> list[str]:
        """The first ``count`` *distinct* members clockwise from ``key``.

        Index 0 is the owner; the rest are the successors a fetch falls
        back to (and where replicated writes would land).
        """
        wanted = len(self.nodes) if count is None else min(count, len(self.nodes))
        start = bisect.bisect_right(self._positions, _key_position(key))
        out: list[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in out:
                out.append(node)
                if len(out) >= wanted:
                    break
        return out

    def peer_target(self, key: str) -> str | None:
        """The first member other than self in ``key``'s preference order.

        Where this instance goes for the key when it cannot (or should
        not) serve it locally: the owner when the owner is remote, else
        the owner's first successor.  None on a single-member ring.
        """
        for node in self.preference(key):
            if node != self.self_node:
                return node
        return None
