"""The tier stack: per-process memory → local disk → remote peers.

One :class:`~repro.cache.store.DiscoveryCache` directory is both the
store and the scale ceiling; this module turns it into one tier of a
stack.  Reads fall through the tiers in order and **promote** on the way
back (a disk hit lands in memory, a peer hit lands in memory *and*
disk), so every tier self-heals from the tiers below it; writes follow a
per-tier policy (write-through, write-back with an explicit
:meth:`TieredCache.flush`, or off).

What moves between tiers is the store's *wrapped entry blob* — the exact
pickled bytes the disk tier writes, embedding the key and schema salt —
never a re-serialisation.  That is what keeps the standing invariant
cheap to maintain: a report served out of memory, off disk, or fetched
from a peer is byte-identical to a fresh ``mt4g --no-cache -j``, because
at no point does any tier re-encode the payload.

The tiers:

* :class:`MemoryTier` — bounded-bytes in-process LRU over pre-pickled
  blobs.  Unpickles per get (callers can mutate their copy freely) and
  validates the embedded address, so a corrupted slot degrades to a miss
  exactly like a corrupted file does;
* :class:`DiskTier` — the existing :class:`DiscoveryCache`, unchanged:
  atomic-rename writes, corruption-degrades-to-miss, ``store.*`` fault
  sites, the stats sidecar;
* :class:`PeerTier` — an HTTP client over other instances'
  ``GET /store/{key}`` route, routed by the consistent-hash ring
  (:mod:`repro.cache.ring`), with a bounded
  :class:`~repro.faults.retry.RetryPolicy`, a fetch timeout, and a
  per-peer circuit breaker so one dead replica cannot stall every read.

Every tier keeps the same counter quartet the bare store does (hits /
misses / stores / degradations), and the composed
:class:`TieredCache` exposes both the aggregate view (drop-in for code
that reads ``store.hits``) and the per-tier breakdown
(:meth:`TieredCache.tier_stats`, folded into ``GET /metrics``).

New chaos surface: ``tier.memory`` (labelled by key) and ``tier.peer``
(labelled by peer URL) join the ``store.*`` injection sites, with the
passive ``corrupt`` kind corrupting the blob in flight so the
degradation paths above are deterministically exercisable.
"""

from __future__ import annotations

import pickle
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterator
from urllib import error as _urlerror
from urllib import request as _urlrequest
from urllib.parse import quote

from repro import faults
from repro.cache import keys as _keys
from repro.cache.ring import HashRing
from repro.cache.store import DEGRADATION_KINDS, DEFAULT_PRUNE_BYTES, DiscoveryCache
from repro.faults.retry import RetryPolicy
from repro.obs import trace as _trace

__all__ = [
    "DEFAULT_MEMORY_BYTES",
    "DEFAULT_PEER_RETRY",
    "DEFAULT_PEER_TIMEOUT",
    "CacheTier",
    "DiskTier",
    "MemoryTier",
    "PeerTier",
    "TieredCache",
    "build_worker_cache",
    "peer_fetch",
]

#: Default memory-tier budget.  Reports pickle to ~100-200 KiB, so this
#: holds on the order of a thousand hot reports — plenty for 14 presets
#: times a realistic seed spread — without mattering next to the model
#: weights of anything else on the host.
DEFAULT_MEMORY_BYTES = 256 << 20  # 256 MiB

#: Per-request timeout for a peer fetch.  A peer serving from its own
#: memory or disk answers in milliseconds; anything slower is a peer in
#: trouble, and the local fallback (or next candidate) is the better use
#: of the caller's time.
DEFAULT_PEER_TIMEOUT = 5.0

#: Retry policy for one peer candidate.  Deliberately tighter than the
#: serve-side discovery retry: a fetch is cheap to re-route, so fail
#: over to the next candidate (or to a local discovery) quickly.
DEFAULT_PEER_RETRY = RetryPolicy(attempts=2, base_delay=0.05, max_delay=0.25)


def peer_fetch(
    node: str,
    key: str,
    *,
    timeout: float = DEFAULT_PEER_TIMEOUT,
    discover: bool = False,
    preset: str | None = None,
    seed: int | None = None,
    validate: bool | None = None,
    headers: "dict[str, str] | None" = None,
) -> tuple[int, bytes]:
    """One ``GET {node}/store/{key}`` — ``(status, body)``.

    With ``discover=True`` the owner is asked to *produce* the entry if
    it is cold (the cross-instance single-flight proxy path); the query
    carries everything the owner needs to run the discovery itself.

    Transport-level failures (refused, reset, timeout) raise ``OSError``
    — which :func:`repro.errors.is_transient` classifies as retryable —
    while HTTP error statuses return normally as ``(status, body)`` so
    the caller can distinguish an authoritative 404 from a sick peer.
    """
    url = f"{node}/store/{key}"
    params: list[str] = []
    if discover:
        params.append("discover=1")
        if preset is not None:
            params.append(f"preset={quote(preset, safe='')}")
        if seed is not None:
            params.append(f"seed={int(seed)}")
        if validate is not None:
            params.append(f"validate={'1' if validate else '0'}")
    if params:
        url = f"{url}?{'&'.join(params)}"
    request_headers = {"Accept": "application/octet-stream"}
    if headers:
        request_headers.update(headers)
    traceparent = _trace.outbound_traceparent()
    if traceparent is not None and "traceparent" not in request_headers:
        # Cross-instance trace continuity: the peer's handler joins the
        # same trace id (it keeps its spans in its own ring; the entry
        # instance's /traces/{id} merges them back).
        request_headers["traceparent"] = traceparent
    request = _urlrequest.Request(url, headers=request_headers)
    try:
        with _urlrequest.urlopen(request, timeout=timeout) as response:
            return int(response.status), response.read()
    except _urlerror.HTTPError as exc:
        try:
            body = exc.read()
        except Exception:
            body = b""
        return int(exc.code), body


class CacheTier:
    """One level of the stack: named, counted, blob-in/blob-out.

    The internal contract is deliberately narrow — :meth:`fetch` returns
    the validated ``(blob, payload)`` pair or ``None``, :meth:`put_blob`
    lands pre-wrapped bytes — because the blob is the unit of promotion
    and replication; only :class:`TieredCache` deals in payloads.
    """

    name = "tier"

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.degradations: dict[str, int] = {k: 0 for k in DEGRADATION_KINDS}

    def fetch(self, key: str) -> tuple[bytes, Any] | None:
        raise NotImplementedError

    def put_blob(self, key: str, blob: bytes) -> bool:
        raise NotImplementedError

    def stats(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "degradations": dict(self.degradations),
        }


class MemoryTier(CacheTier):
    """Byte-bounded in-process LRU over pre-pickled entry blobs.

    >>> tier = MemoryTier(max_bytes=1 << 20)
    >>> blob = pickle.dumps({"schema": _keys.SCHEMA_VERSION,
    ...                      "key": "a" * 64, "payload": {"x": 1}})
    >>> tier.put_blob("a" * 64, blob)
    True
    >>> tier.fetch("a" * 64)[1]
    {'x': 1}
    """

    name = "memory"

    def __init__(
        self,
        max_bytes: int = DEFAULT_MEMORY_BYTES,
        version: int = _keys.SCHEMA_VERSION,
    ) -> None:
        super().__init__()
        self.max_bytes = int(max_bytes)
        self.version = int(version)
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def current_bytes(self) -> int:
        return self._bytes

    def _validate(self, key: str, blob: bytes) -> Any:
        wrapped = pickle.loads(blob)
        if (
            not isinstance(wrapped, dict)
            or wrapped.get("schema") != self.version
            or wrapped.get("key") != key
        ):
            raise ValueError("memory entry does not match its address")
        return wrapped["payload"]

    def _evict(self, key: str) -> None:
        blob = self._entries.pop(key, None)
        if blob is not None:
            self._bytes -= len(blob)

    def fetch(self, key: str) -> tuple[bytes, Any] | None:
        blob = self._entries.get(key)
        if blob is None:
            self.misses += 1
            return None
        try:
            fired = faults.inject("tier.memory", key)
        except (OSError, TypeError):
            self.misses += 1
            self.degradations["read_error"] += 1
            return None
        if fired is not None and fired.kind == "corrupt":
            # Bit-rot in the resident blob: truncate what validation
            # sees, so the slot degrades to a miss and gets evicted.
            blob = blob[: len(blob) // 2]
        try:
            payload = self._validate(key, blob)
        except Exception:
            self._evict(key)  # self-heal: the next get falls through
            self.misses += 1
            self.degradations["corrupt_entry"] += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return blob, payload

    def put_blob(self, key: str, blob: bytes) -> bool:
        """Land ``blob``; evict LRU entries until the budget holds.

        Blobs are trusted here (they come from our own :meth:`put`
        pickling or from an already-validated lower-tier fetch); the
        validation cost is paid on the read path, where corruption must
        degrade anyway.
        """
        if self.max_bytes <= 0 or len(blob) > self.max_bytes:
            return False
        self._evict(key)
        self._entries[key] = blob
        self._bytes += len(blob)
        while self._bytes > self.max_bytes and self._entries:
            oldest = next(iter(self._entries))
            self._evict(oldest)
        self.stores += 1
        return True


class DiskTier(CacheTier):
    """The existing on-disk store, wearing the tier interface.

    Counters are *views onto the store's own* — code that reads
    ``store.hits`` on the inner :class:`DiscoveryCache` and code that
    reads this tier's stats see the same numbers.
    """

    name = "disk"

    def __init__(self, store: DiscoveryCache) -> None:
        self.store = store

    # The store already counts; expose its counters instead of shadowing.
    @property
    def hits(self) -> int:  # type: ignore[override]
        return self.store.hits

    @property
    def misses(self) -> int:  # type: ignore[override]
        return self.store.misses

    @property
    def stores(self) -> int:  # type: ignore[override]
        return self.store.stores

    @property
    def degradations(self) -> dict[str, int]:  # type: ignore[override]
        return self.store.degradations

    def fetch(self, key: str) -> tuple[bytes, Any] | None:
        return self.store._read_validated(key)

    def put_blob(self, key: str, blob: bytes) -> bool:
        return self.store.put_blob(key, blob)


class PeerTier(CacheTier):
    """Remote tier: fetch a miss from the instances that should have it.

    Candidates come from the ring in the key's preference order with
    self filtered out — so the owner is asked first, and a read-only
    replica that happens to *be* the ring owner still has a peer to
    ask.  Each candidate gets a :class:`RetryPolicy`-bounded number of
    attempts under a timeout; transport failures open a per-peer
    circuit breaker (threshold/cooldown/half-open, same shape as the
    job queue's per-key breakers) so a dead peer costs one timeout per
    cooldown, not one per read.  An HTTP 404 is an authoritative miss
    from that candidate — no breaker penalty — and the next candidate
    is tried.
    """

    name = "peer"

    def __init__(
        self,
        ring: HashRing | None,
        retry: RetryPolicy = DEFAULT_PEER_RETRY,
        timeout: float = DEFAULT_PEER_TIMEOUT,
        version: int = _keys.SCHEMA_VERSION,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
    ) -> None:
        super().__init__()
        self.ring = ring
        self.retry = retry
        self.timeout = float(timeout)
        self.version = int(version)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        #: node -> {"failures": int, "blocked_until": monotonic seconds}
        self._health: dict[str, dict[str, float]] = {}

    def _validate(self, key: str, blob: bytes) -> Any:
        wrapped = pickle.loads(blob)
        if (
            not isinstance(wrapped, dict)
            or wrapped.get("schema") != self.version
            or wrapped.get("key") != key
        ):
            raise ValueError("peer blob does not match its address")
        return wrapped["payload"]

    def _blocked(self, node: str) -> bool:
        health = self._health.get(node)
        if health is None:
            return False
        # Past the cooldown the breaker is half-open: the next fetch is
        # the trial request; failure re-blocks, success heals.
        return time.monotonic() < health.get("blocked_until", 0.0)

    def _record_failure(self, node: str) -> None:
        health = self._health.setdefault(node, {"failures": 0, "blocked_until": 0.0})
        health["failures"] += 1
        if health["failures"] >= self.breaker_threshold:
            health["blocked_until"] = time.monotonic() + self.breaker_cooldown

    def _heal(self, node: str) -> None:
        self._health.pop(node, None)

    def open_peers(self) -> list[str]:
        """Peers currently blocked by their breaker (for /metrics)."""
        return sorted(n for n in self._health if self._blocked(n))

    def candidates(self, key: str) -> list[str]:
        if self.ring is None:
            return []
        return [n for n in self.ring.preference(key) if n != self.ring.self_node]

    def _fetch_from(self, node: str, key: str) -> tuple[bytes, Any] | None:
        """Try one candidate, with bounded retries on transport failure.

        Returns the validated pair, ``None`` for "this peer does not
        have it / is sick" (the caller moves on to the next candidate).
        """
        ctx = _trace.CURRENT.get()
        for attempt in range(1, self.retry.attempts + 1):
            fired = None
            span_start = time.perf_counter() if ctx is not None else 0.0
            try:
                fired = faults.inject("tier.peer", node)
                status, body = peer_fetch(node, key, timeout=self.timeout)
            except Exception:
                status, body = None, b""  # transport failure
            if ctx is not None:
                _trace.record(
                    ctx,
                    "peer.fetch",
                    span_start,
                    node=node,
                    attempt=attempt,
                    status=status if status is not None else "transport-error",
                )
            if fired is not None and fired.kind == "corrupt":
                body = body[: len(body) // 2]
            if status == 200:
                try:
                    payload = self._validate(key, body)
                except Exception:
                    # A peer that serves garbage is indistinguishable
                    # from a sick peer for routing purposes.
                    self.degradations["corrupt_entry"] += 1
                    self._record_failure(node)
                    return None
                self._heal(node)
                return body, payload
            if status == 404:
                # Authoritative miss: the peer is healthy, just cold.
                self._heal(node)
                return None
            if attempt < self.retry.attempts:
                time.sleep(self.retry.delay(key, attempt))
        self.degradations["read_error"] += 1
        self._record_failure(node)
        return None

    def fetch(self, key: str) -> tuple[bytes, Any] | None:
        hit = None
        for node in self.candidates(key):
            if self._blocked(node):
                continue
            hit = self._fetch_from(node, key)
            if hit is not None:
                break
        if hit is None:
            self.misses += 1
            return None
        self.hits += 1
        return hit

    def put_blob(self, key: str, blob: bytes) -> bool:
        """Peers pull; this instance never pushes.  Always a no-op.

        Replication is read-driven by design: the fetching side lands
        what it fetched (promotion), so the write path needs no remote
        I/O, no push-side retries, and no remote failure mode.
        """
        return False


#: Per-tier write policy values.
_WRITE_MODES = ("through", "back", "off")

#: Default write policy: land writes in memory and on disk immediately,
#: never push to peers (they pull).
DEFAULT_WRITE_POLICY = {"memory": "through", "disk": "through", "peer": "off"}


class TieredCache:
    """The composed stack — a drop-in for :class:`DiscoveryCache`.

    Reads (:meth:`get` / :meth:`get_blob`) consult tiers in order and
    promote the winning blob into every tier *above* the hit, so the
    expensive tiers self-heal the cheap ones; ``peer=False`` restricts
    the read to local tiers (what the ``/store/{key}`` route uses to
    stay loop-free).  Writes follow ``policy`` per tier: ``"through"``
    lands immediately, ``"back"`` buffers until :meth:`flush` (or an
    automatic flush every ``write_back_max`` buffered entries), and
    ``"off"`` skips the tier.

    Everything else a :class:`DiscoveryCache` owner relies on — key
    derivation, catalog enumeration, pruning, the wall-time sidecar,
    ``root`` / ``version`` — delegates to the disk tier, which is
    therefore mandatory.
    """

    def __init__(
        self,
        tiers: "list[CacheTier] | tuple[CacheTier, ...]",
        policy: dict[str, str] | None = None,
        write_back_max: int = 8,
    ) -> None:
        self.tiers: list[CacheTier] = list(tiers)
        disks = [t for t in self.tiers if isinstance(t, DiskTier)]
        if not disks:
            raise ValueError("a TieredCache needs a DiskTier (the durable anchor)")
        self._disk = disks[0]
        self.policy = dict(DEFAULT_WRITE_POLICY)
        if policy:
            for tier_name, mode in policy.items():
                if mode not in _WRITE_MODES:
                    raise ValueError(
                        f"unknown write mode {mode!r} for tier {tier_name!r}; "
                        f"known: {_WRITE_MODES}"
                    )
                self.policy[tier_name] = mode
        self.write_back_max = int(write_back_max)
        self._backlog: dict[str, OrderedDict[str, bytes]] = {}
        self._full_misses = 0

    # ------------------------------------------------------------------ #
    # composition                                                         #
    # ------------------------------------------------------------------ #

    def add_tier(self, tier: CacheTier, index: int | None = None) -> None:
        """Insert a tier (used to attach the peer tier after the server
        binds, when the instance finally knows its own advertise URL)."""
        if index is None:
            self.tiers.append(tier)
        else:
            self.tiers.insert(index, tier)

    @property
    def store(self) -> DiscoveryCache:
        """The durable disk store (also handy for tests)."""
        return self._disk.store

    @property
    def root(self) -> Path:
        return self._disk.store.root

    @property
    def version(self) -> int:
        return self._disk.store.version

    # ------------------------------------------------------------------ #
    # key derivation (delegated: keys must not depend on tiering)         #
    # ------------------------------------------------------------------ #

    def report_key(self, device, config, targets, extensions, validate) -> str:
        return self._disk.store.report_key(device, config, targets, extensions, validate)

    def measurement_key(
        self, device, config, element, attribute, seed_offset, context=None
    ) -> str:
        return self._disk.store.measurement_key(
            device, config, element, attribute, seed_offset, context
        )

    # ------------------------------------------------------------------ #
    # reads: fall through, promote on the way back                        #
    # ------------------------------------------------------------------ #

    def _fetch(self, key: str, peer: bool) -> tuple[bytes, Any] | None:
        ctx = _trace.CURRENT.get()  # None = tracing off (the usual case)
        consulted: list[CacheTier] = []
        for tier in self.tiers:
            if not peer and tier.name == "peer":
                continue
            start = time.perf_counter() if ctx is not None else 0.0
            got = tier.fetch(key)
            if ctx is not None:
                _trace.record(
                    ctx,
                    "tier.read",
                    start,
                    tier=tier.name,
                    outcome="hit" if got is not None else "miss",
                    key=key[:12],
                )
            if got is not None:
                blob = got[0]
                for upper in consulted:
                    # Promotion is read-path healing, not a write: it
                    # deliberately ignores the write policy.
                    promote_start = time.perf_counter() if ctx is not None else 0.0
                    upper.put_blob(key, blob)
                    if ctx is not None:
                        _trace.record(
                            ctx,
                            "tier.promote",
                            promote_start,
                            tier=upper.name,
                            key=key[:12],
                        )
                return got
            consulted.append(tier)
        buffered = self._buffered(key)
        if buffered is not None:
            return buffered
        self._full_misses += 1
        return None

    def _buffered(self, key: str) -> tuple[bytes, Any] | None:
        """A write-back entry not yet flushed anywhere must still hit."""
        for pending in self._backlog.values():
            blob = pending.get(key)
            if blob is None:
                continue
            try:
                wrapped = pickle.loads(blob)
                return blob, wrapped["payload"]
            except Exception:
                continue
        return None

    def get(self, key: str, peer: bool = True) -> Any | None:
        got = self._fetch(key, peer)
        return None if got is None else got[1]

    def get_blob(self, key: str, peer: bool = True) -> bytes | None:
        got = self._fetch(key, peer)
        return None if got is None else got[0]

    # ------------------------------------------------------------------ #
    # writes: policy per tier                                             #
    # ------------------------------------------------------------------ #

    def put(self, key: str, payload: Any) -> bool:
        try:
            blob = pickle.dumps(
                {"schema": self.version, "key": key, "payload": payload},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            self._disk.store.degradations["write_error"] += 1
            return False
        return self.put_blob(key, blob)

    def put_blob(self, key: str, blob: bytes) -> bool:
        landed = False
        for tier in self.tiers:
            mode = self.policy.get(tier.name, "through")
            if mode == "off":
                continue
            if mode == "back":
                pending = self._backlog.setdefault(tier.name, OrderedDict())
                pending[key] = blob
                pending.move_to_end(key)
                landed = True
                if len(pending) >= self.write_back_max:
                    self._flush_tier(tier)
            else:
                landed = tier.put_blob(key, blob) or landed
        return landed

    def _flush_tier(self, tier: CacheTier) -> int:
        pending = self._backlog.get(tier.name)
        if not pending:
            return 0
        flushed = 0
        while pending:
            key, blob = pending.popitem(last=False)
            if tier.put_blob(key, blob):
                flushed += 1
        return flushed

    def flush(self) -> int:
        """Drain every write-back backlog; returns entries landed."""
        flushed = 0
        for tier in self.tiers:
            flushed += self._flush_tier(tier)
        return flushed

    def pending_writes(self) -> int:
        return sum(len(p) for p in self._backlog.values())

    # ------------------------------------------------------------------ #
    # aggregate accounting (drop-in for DiscoveryCache counters)          #
    # ------------------------------------------------------------------ #

    @property
    def hits(self) -> int:
        return sum(t.hits for t in self.tiers)

    @property
    def misses(self) -> int:
        """Full misses: every consulted tier came up empty.

        Per-tier miss counts (a memory miss that the disk then served)
        live in :meth:`tier_stats`; this aggregate keeps the operator
        meaning the bare store had — "the stack could not answer".
        """
        return self._full_misses

    @property
    def stores(self) -> int:
        """Durable stores: entries landed on disk (memory is ephemeral)."""
        return self._disk.stores

    @property
    def degradations(self) -> dict[str, int]:
        merged = {k: 0 for k in DEGRADATION_KINDS}
        for tier in self.tiers:
            for kind, count in tier.degradations.items():
                merged[kind] = merged.get(kind, 0) + count
        return merged

    def tier_stats(self) -> dict[str, dict[str, Any]]:
        """Per-tier counters, in consultation order (for ``/metrics``)."""
        return {tier.name: tier.stats() for tier in self.tiers}

    # ------------------------------------------------------------------ #
    # durable-store plumbing (catalog, pruning, scheduling sidecar)       #
    # ------------------------------------------------------------------ #

    def entries(self) -> Iterator[tuple[str, Any]]:
        return self._disk.store.entries()

    def entry_count(self) -> int:
        return self._disk.store.entry_count()

    def prune(self, max_bytes: int = DEFAULT_PRUNE_BYTES) -> int:
        return self._disk.store.prune(max_bytes)

    def record_wall(self, label: str, seconds: float) -> None:
        self._disk.store.record_wall(label, seconds)

    def recorded_walls(self) -> dict[str, float]:
        return self._disk.store.recorded_walls()


def build_worker_cache(
    cache_dir: str | Path | None,
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
) -> TieredCache | None:
    """The standard local stack: memory LRU over the disk store.

    What fleet workers and the serving layer use when handed a cache
    directory; ``None`` in means ``None`` out (caching disabled).  The
    peer tier is attached separately by the server once it knows its
    ring (:meth:`TieredCache.add_tier`) — worker processes never talk
    to peers directly.
    """
    if cache_dir is None:
        return None
    tiers: list[CacheTier] = []
    if memory_bytes > 0:
        tiers.append(MemoryTier(max_bytes=memory_bytes))
    tiers.append(DiskTier(DiscoveryCache(cache_dir)))
    return TieredCache(tiers)
