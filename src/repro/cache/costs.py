"""Spec-derived discovery-cost estimates and LPT scheduling.

A fleet pool's makespan is governed by when the *longest* job starts:
submitting presets in input order can strand a 3-second MI210 discovery
behind an already-drained queue.  Ordering jobs longest-first
(longest-processing-time-first, the classic 4/3-approximation for
minimum makespan on identical machines) fixes that.

Job lengths come from the cache's ``stats.json`` sidecar when previous
runs recorded them; presets never seen before fall back to a spec-derived
estimate.  The estimate is *relative* (arbitrary units): benchmark count
scales with the number of cache levels, sweep work scales with the log
of each capacity (doubling ascent + bounded binary descent + a
budget-capped sweep), and the NVIDIA pipeline adds the constant-cache
pair and the pairwise sharing matrix.  When both sources appear in one
schedule the estimates are calibrated onto the recorded scale via the
median recorded-wall/estimate ratio.
"""

from __future__ import annotations

import math
from statistics import median
from typing import Mapping, Sequence

__all__ = ["estimate_discovery_cost", "schedule_order"]


def estimate_discovery_cost(spec) -> float:
    """Relative cost of one full discovery of ``spec`` (arbitrary units)."""
    # Fixed overhead: API reads, DRAM latency/bandwidth, report assembly.
    cost = 5.0
    for cache in spec.caches:
        # FG + size + latency + line + amount per level; sweep work grows
        # with the capacity's magnitude, eviction work with segmentation.
        cost += math.log2(max(cache.size, 2.0)) + 0.5 * cache.segments
    cost += 0.5 * math.log2(max(spec.memory.size, 2.0))
    if spec.vendor.value == "NVIDIA":
        # Constant pair (latency bands + two size sweeps) and the
        # pairwise physical-sharing matrix.
        cost += 12.0
    return cost


def schedule_order(
    names: Sequence[str],
    recorded_walls: Mapping[str, float],
    estimates: Mapping[str, float],
) -> list[str]:
    """``names`` reordered longest-first (LPT), deterministically.

    Recorded walls win over estimates; estimates are calibrated onto the
    recorded scale when both kinds appear.  Ties (and equal costs) keep
    the input order, so the schedule is stable run to run.
    """
    usable = {
        n: float(w)
        for n, w in recorded_walls.items()
        if isinstance(w, (int, float)) and w > 0
    }
    scale = 1.0
    ratios = [
        usable[n] / estimates[n]
        for n in names
        if n in usable and estimates.get(n, 0) > 0
    ]
    if ratios:
        scale = median(ratios)

    def cost(name: str) -> float:
        if name in usable:
            return usable[name]
        return float(estimates.get(name, 0.0)) * scale

    index = {name: i for i, name in enumerate(names)}
    return sorted(names, key=lambda n: (-cost(n), index[n]))
