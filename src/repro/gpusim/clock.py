"""Cycle clock and event timing.

Models the two timing facilities MT4G uses on real hardware:

* the per-thread cycle counter read inline around each load
  (``%%clock`` on NVIDIA, ``s_memtime`` on AMD — paper Listings 1 and 2);
  its constant read overhead is part of :class:`~repro.gpusim.noise.NoiseModel`;
* coarse kernel-level event timing (``hipEventRecord`` start/end,
  paper Section IV-I) used by the bandwidth benchmarks.

The clock also underpins the Section V-A run-time cost model: every
simulated memory operation advances the cycle count, and
:meth:`CycleClock.elapsed_seconds` converts cycles to wall time at the
device clock rate.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CycleClock", "TimedEvent"]


@dataclass
class TimedEvent:
    """A start/stop event pair, mirroring hipEventRecord semantics."""

    start_cycle: float = 0.0
    end_cycle: float = 0.0

    def elapsed_cycles(self) -> float:
        if self.end_cycle < self.start_cycle:
            raise ValueError("event stopped before it started")
        return self.end_cycle - self.start_cycle


class CycleClock:
    """Monotonic cycle counter for one simulated device."""

    def __init__(self, frequency_hz: float) -> None:
        if frequency_hz <= 0:
            raise ValueError("clock frequency must be positive")
        self.frequency_hz = frequency_hz
        self._cycles: float = 0.0

    @property
    def cycles(self) -> float:
        return self._cycles

    def advance(self, cycles: float) -> None:
        """Advance simulated time; used by kernels and the cost model."""
        if cycles < 0:
            raise ValueError("cannot advance the clock backwards")
        self._cycles += cycles

    def advance_seconds(self, seconds: float) -> None:
        self.advance(seconds * self.frequency_hz)

    def elapsed_seconds(self) -> float:
        """Total simulated time since device creation."""
        return self._cycles / self.frequency_hz

    def event(self) -> TimedEvent:
        """Record an event starting now; caller stops it via :meth:`stop`."""
        return TimedEvent(start_cycle=self._cycles, end_cycle=self._cycles)

    def stop(self, event: TimedEvent) -> float:
        """Close an event at the current cycle; returns elapsed seconds."""
        event.end_cycle = self._cycles
        return event.elapsed_cycles() / self.frequency_hz
