"""Multi-Instance GPU (MIG) partitioning.

NVIDIA MIG slices a GPU into isolated GPU Instances (GIs), each with a
fraction of the SMs, the L2 slices, the DRAM capacity and the DRAM
bandwidth (paper Section VI-C).  A profile like ``4g.20gb`` on the A100
grants 4 of 7 compute slices and 4 of 8 memory slices — i.e. 20 GB DRAM
and 20 MB of L2.

The key topological subtlety the paper's Fig. 5 demonstrates: a *single
SM* can only ever reach **one** L2 segment, so the L2 capacity visible to
one SM is ``min(segment_size, mig_fraction * total_l2)`` — which is why
the full A100 and its ``4g.20gb`` instance behave identically for a
one-SM streaming kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecError
from repro.gpuspec.spec import GPUSpec

__all__ = ["MIGState", "resolve_mig"]

#: Denominators of the slice fractions on MIG-capable parts.
_COMPUTE_SLICES = 7
_MEMORY_SLICES = 8


@dataclass(frozen=True)
class MIGState:
    """Resolved partition: what one GPU instance of the profile sees."""

    profile: str  # "full" when MIG is disabled
    compute_slices: int
    memory_slices: int

    @property
    def compute_fraction(self) -> float:
        return self.compute_slices / _COMPUTE_SLICES

    @property
    def memory_fraction(self) -> float:
        return self.memory_slices / _MEMORY_SLICES

    def visible_sms(self, spec: GPUSpec) -> int:
        return max(1, (spec.compute.num_sms * self.compute_slices) // _COMPUTE_SLICES)

    def visible_dram_bytes(self, spec: GPUSpec) -> int:
        return int(spec.memory.size * self.memory_fraction)

    def visible_dram_read_bandwidth(self, spec: GPUSpec) -> float:
        return spec.memory.read_bandwidth * self.memory_fraction

    def visible_dram_write_bandwidth(self, spec: GPUSpec) -> float:
        return spec.memory.write_bandwidth * self.memory_fraction

    def visible_l2_total(self, spec: GPUSpec) -> int:
        """L2 capacity assigned to the instance (all its slices)."""
        l2 = spec.cache("L2")
        return int(l2.size * l2.segments * self.memory_fraction)

    def visible_l2_per_sm(self, spec: GPUSpec) -> int:
        """L2 capacity one SM can actually reach (Fig. 5's insight).

        Never more than one hardware segment, never more than the
        instance's total allocation.
        """
        l2 = spec.cache("L2")
        return min(l2.size, self.visible_l2_total(spec))


def resolve_mig(spec: GPUSpec, profile: str | None) -> MIGState:
    """Resolve a MIG profile name against a device spec.

    ``None`` or ``"full"`` disables MIG (whole-GPU view).  Raises
    :class:`SpecError` for devices without MIG support or unknown profiles.
    """
    if profile is None or profile == "full":
        return MIGState("full", _COMPUTE_SLICES, _MEMORY_SLICES)
    if not spec.mig_profiles:
        raise SpecError(f"{spec.name} does not support MIG")
    try:
        compute_slices, memory_slices = spec.mig_profiles[profile]
    except KeyError:
        raise SpecError(
            f"{spec.name}: unknown MIG profile {profile!r}; "
            f"available: {sorted(spec.mig_profiles)}"
        ) from None
    return MIGState(profile, compute_slices, memory_slices)
