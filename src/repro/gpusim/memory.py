"""Device-memory endpoint and a bump allocator for benchmark buffers.

Real MT4G allocates its p-chase arrays with ``hipMalloc`` (global/texture/
readonly paths), ``__constant__`` arrays (constant path, capped at 64 KiB
— paper Section III-C) and ``__shared__`` buffers.  The simulator mirrors
that with per-address-space arenas so that distinct buffers occupy
distinct address ranges — only buffers routed through the *same physical
cache* can evict each other, which is exactly what the physical-sharing
benchmarks (Sections IV-G/H) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError
from repro.gpuspec.spec import MemorySpec

__all__ = ["Arena", "DeviceMemory", "CONSTANT_ARRAY_LIMIT"]

#: NVIDIA's constant-bank limit (paper Section III-C / footnote 10).
CONSTANT_ARRAY_LIMIT = 64 * 1024


@dataclass
class Arena:
    """A contiguous address range served by bump allocation."""

    name: str
    base: int
    capacity: int
    offset: int = 0

    def allocate(self, nbytes: int, align: int = 4096) -> int:
        if nbytes <= 0:
            raise AllocationError(f"{self.name}: allocation size must be positive")
        start = -(-(self.base + self.offset) // align) * align
        end = start + nbytes
        if end > self.base + self.capacity:
            raise AllocationError(
                f"{self.name}: out of memory "
                f"(requested {nbytes} B, {self.base + self.capacity - start} B free)"
            )
        self.offset = end - self.base
        return start

    def reset(self) -> None:
        self.offset = 0


class DeviceMemory:
    """Main-memory model: capacity, latency, and address-space arenas.

    The address map places each space in a disjoint region:

    * ``global``  — device-memory buffers (global/texture/readonly paths);
    * ``constant``— the constant bank (64 KiB hardware limit on NVIDIA);
    * ``scratch`` — shared-memory/LDS offsets (per-SM, not cached).
    """

    def __init__(self, spec: MemorySpec, constant_limit: int = CONSTANT_ARRAY_LIMIT) -> None:
        self.spec = spec
        self.constant_limit = constant_limit
        # Leave a guard gap between arenas so adjacent buffers never abut.
        self._global = Arena("global", base=1 << 32, capacity=spec.size)
        self._constant = Arena("constant", base=1 << 20, capacity=constant_limit)
        self._scratch = Arena("scratch", base=1 << 28, capacity=64 * 1024 * 1024)

    @property
    def size(self) -> int:
        return self.spec.size

    @property
    def load_latency(self) -> float:
        return self.spec.load_latency

    def allocate_global(self, nbytes: int) -> int:
        """hipMalloc-style allocation in device memory."""
        return self._global.allocate(nbytes)

    def allocate_constant(self, nbytes: int) -> int:
        """``__constant__`` array; enforces the 64 KiB bank limit."""
        if nbytes > self.constant_limit:
            raise AllocationError(
                f"constant arrays are limited to {self.constant_limit} B "
                f"(requested {nbytes} B)"
            )
        return self._constant.allocate(nbytes)

    def allocate_scratch(self, nbytes: int) -> int:
        """Shared-memory/LDS buffer address (capacity checked by the SM)."""
        return self._scratch.allocate(nbytes)

    def reset(self) -> None:
        """Free every buffer (between benchmarks)."""
        self._global.reset()
        self._constant.reset()
        self._scratch.reset()
